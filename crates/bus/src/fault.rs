//! Deterministic fault injection for hardware targets.
//!
//! The real HardSnap drives its FPGA over a physical USB3/JTAG link
//! (paper §III-B) where handshake timeouts, dropped scan bits and board
//! hangs are routine. [`FaultyTarget`] models that unreliable transport:
//! it wraps any [`HwTarget`] and injects faults drawn from a seeded PRNG
//! ([`hardsnap_util::rng`]) according to a [`FaultPlan`], so a faulted
//! run replays bit-exactly from its seed. The supervision layer in
//! `hardsnap-core` is tested against this decorator: recovery must make
//! the analysis result identical to the fault-free run.
//!
//! Fault taxonomy (each class has its own rate):
//!
//! * **Bus timeouts** — an AXI read/write fails with
//!   [`BusError::Timeout`] *before* reaching the design, so a retry of
//!   the same transaction observes the same device state (important for
//!   non-idempotent registers such as FIFO ports).
//! * **Scan-chain bit flips** — a capture succeeds but one register
//!   image carries a bit above its declared width, exactly what a
//!   dropped/duplicated scan cell produces. Detectable via
//!   [`HwSnapshot::validate`].
//! * **Truncated captures** — trailing registers fall off the image
//!   (a scan-out cut short). Detectable by comparing
//!   [`HwSnapshot::shape_hash`] against the target's own
//!   [`HwTarget::snapshot_shape`].
//! * **Partial readbacks** — the scan-out stops early but the driver
//!   still assembles a full-shaped image, padding the missing tail with
//!   zeros. Shape and width validation both pass; only the checksum
//!   trailer the scan controller computed over the full chain
//!   ([`HwTarget::capture_checksum`]) exposes the damage.
//! * **Restore-link timeouts** — a restore fails before any state is
//!   written; restores are idempotent, so retrying is always safe.
//! * **IRQ glitches** — a poll of the interrupt lines observes a
//!   spurious, dropped or stale (delayed) bitmask. The line settles
//!   immediately: at least the next two polls are honest, so a reader
//!   that insists on two consecutive agreeing samples always converges
//!   on the true value.
//! * **Clock drift** — each replica's reported virtual time runs a few
//!   ppm fast (board oscillators never quite agree); the design itself
//!   steps exactly the requested cycles, so drift is visible only in
//!   [`HwTarget::virtual_time_ns`].
//! * **Hangs** — the target wedges: every fallible operation fails with
//!   [`BusError::NotReady`] until [`HwTarget::reset`] is called.

use std::sync::atomic::{AtomicU64, Ordering};

use hardsnap_telemetry::{Counter, Recorder};
use hardsnap_util::rng::{splitmix64, Rng};

use crate::{BusError, HwSnapshot, HwTarget, TargetCaps, TargetError};

/// Modeled extra link latency charged (in virtual nanoseconds) for each
/// injected fault: the cost of the failed handshake itself, before any
/// supervisor backoff.
const FAULT_LINK_NS: u64 = 2_000;

/// Cycle budget reported in injected [`BusError::Timeout`]s, mirroring
/// the watchdog budget honest targets report.
const TIMEOUT_CYCLES: u64 = 256;

/// One class of injected fault, recorded in schedule order so tests can
/// assert two same-seed runs drew the identical schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// An AXI handshake timeout injected before the transaction.
    BusTimeout,
    /// A captured register image gained a bit above its width.
    ScanBitFlip,
    /// A captured image lost trailing registers/memories.
    TruncatedCapture,
    /// A capture kept its shape but the scan-out stopped early: the
    /// tail of the chain arrived as zeros.
    PartialReadback,
    /// A restore failed on the link before writing any state.
    RestoreTimeout,
    /// An IRQ-line poll observed a glitched bitmask.
    IrqGlitch,
    /// The target wedged until the next reset.
    Hang,
}

impl FaultKind {
    /// Telemetry instant-event name for an injection of this kind
    /// (static so the hot path allocates nothing).
    fn inject_event(self) -> &'static str {
        match self {
            FaultKind::BusTimeout => "inject:bus-timeout",
            FaultKind::ScanBitFlip => "inject:scan-bit-flip",
            FaultKind::TruncatedCapture => "inject:truncated-capture",
            FaultKind::PartialReadback => "inject:partial-readback",
            FaultKind::RestoreTimeout => "inject:restore-timeout",
            FaultKind::IrqGlitch => "inject:irq-glitch",
            FaultKind::Hang => "inject:hang",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::BusTimeout => "bus-timeout",
            FaultKind::ScanBitFlip => "scan-bit-flip",
            FaultKind::TruncatedCapture => "truncated-capture",
            FaultKind::PartialReadback => "partial-readback",
            FaultKind::RestoreTimeout => "restore-timeout",
            FaultKind::IrqGlitch => "irq-glitch",
            FaultKind::Hang => "hang",
        };
        f.write_str(s)
    }
}

/// A replayable fault schedule: per-class probabilities plus the PRNG
/// seed every draw derives from. Two targets configured with equal
/// plans inject the identical fault sequence for the identical
/// operation sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault PRNG; forked replicas derive their own seeds
    /// from this one (see [`FaultyTarget`]'s `fork_clean`).
    pub seed: u64,
    /// Probability an AXI read/write times out.
    pub bus_fault_rate: f64,
    /// Probability a capture suffers a scan-chain bit flip.
    pub scan_fault_rate: f64,
    /// Probability a capture comes back truncated.
    pub snapshot_fault_rate: f64,
    /// Probability a capture keeps its shape but the scan-out stops
    /// early, leaving the tail of the chain zeroed.
    pub readback_fault_rate: f64,
    /// Probability a restore times out on the link.
    pub restore_fault_rate: f64,
    /// Probability an IRQ-line poll observes a glitched bitmask
    /// (spurious, dropped or stale). Glitches never burst: the two
    /// polls after an injection are always honest.
    pub irq_fault_rate: f64,
    /// Oscillator-tolerance of the modeled board in parts per million.
    /// Each target (and each fork) derives its own effective drift in
    /// `[0, 2 * drift_ppm]` from its seed and reports virtual time
    /// faster by that factor; design state is never affected.
    pub drift_ppm: u32,
    /// Probability any fallible operation wedges the whole target
    /// (cleared only by reset). Checked before the per-class rates.
    pub hang_rate: f64,
    /// When a fault fires, up to `max_burst - 1` immediately following
    /// fallible operations also fail (correlated link glitches). `0`
    /// and `1` both mean single isolated faults.
    pub max_burst: u32,
}

impl FaultPlan {
    /// A plan that never injects anything (the honest transport).
    pub fn off() -> FaultPlan {
        FaultPlan {
            seed: 0,
            bus_fault_rate: 0.0,
            scan_fault_rate: 0.0,
            snapshot_fault_rate: 0.0,
            readback_fault_rate: 0.0,
            restore_fault_rate: 0.0,
            irq_fault_rate: 0.0,
            drift_ppm: 0,
            hang_rate: 0.0,
            max_burst: 0,
        }
    }

    /// A plan injecting every recoverable class at probability `rate`,
    /// with occasional hangs at `rate / 20` and short bursts — the
    /// configuration the chaos tests sweep.
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            bus_fault_rate: rate,
            scan_fault_rate: rate,
            snapshot_fault_rate: rate,
            readback_fault_rate: rate,
            restore_fault_rate: rate,
            irq_fault_rate: rate,
            drift_ppm: (rate * 10_000.0) as u32,
            hang_rate: rate / 20.0,
            max_burst: 2,
        }
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.bus_fault_rate > 0.0
            || self.scan_fault_rate > 0.0
            || self.snapshot_fault_rate > 0.0
            || self.readback_fault_rate > 0.0
            || self.restore_fault_rate > 0.0
            || self.irq_fault_rate > 0.0
            || self.drift_ppm > 0
            || self.hang_rate > 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::off()
    }
}

/// Counters of injected faults by class (what the injector *did*, as
/// opposed to what the supervisor recovered).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Injected bus handshake timeouts.
    pub bus_timeouts: u64,
    /// Injected scan-chain bit flips.
    pub scan_flips: u64,
    /// Injected truncated captures.
    pub truncations: u64,
    /// Injected zero-padded partial readbacks.
    pub partial_readbacks: u64,
    /// Injected restore-link timeouts.
    pub restore_timeouts: u64,
    /// Injected IRQ-line glitches.
    pub irq_glitches: u64,
    /// Injected hangs (each wedges the target until reset).
    pub hangs: u64,
}

impl FaultStats {
    /// Total injected faults across all classes.
    pub fn injected(&self) -> u64 {
        self.bus_timeouts
            + self.scan_flips
            + self.truncations
            + self.partial_readbacks
            + self.restore_timeouts
            + self.irq_glitches
            + self.hangs
    }

    /// Component-wise sum (for aggregating across replicas).
    pub fn merge(&mut self, other: &FaultStats) {
        self.bus_timeouts += other.bus_timeouts;
        self.scan_flips += other.scan_flips;
        self.truncations += other.truncations;
        self.partial_readbacks += other.partial_readbacks;
        self.restore_timeouts += other.restore_timeouts;
        self.irq_glitches += other.irq_glitches;
        self.hangs += other.hangs;
    }
}

/// Outcome of one fault draw.
enum Drawn {
    /// No fault; perform the operation honestly.
    Clean,
    /// Inject a fault of the operation's class.
    Fault,
    /// The target is (or just became) wedged.
    Hung,
}

/// An [`HwTarget`] decorator injecting a deterministic, seed-driven
/// fault schedule into every fallible operation of the wrapped target.
///
/// Faults never change the *semantics* visible after recovery: bus and
/// restore faults fire before the operation reaches the design, capture
/// corruption damages only the returned image (the design state is
/// untouched, so a re-capture yields the honest image), and a hang is
/// cleared by [`HwTarget::reset`]. That property is what allows the
/// supervision layer to recover transparently and is checked by the
/// fault-determinism test suites.
pub struct FaultyTarget<T: HwTarget> {
    inner: T,
    label: String,
    plan: FaultPlan,
    rng: Rng,
    hung: bool,
    pending_burst: u32,
    /// Honest IRQ polls still owed after a glitch (see `irq_lines`).
    irq_refractory: u32,
    /// Last honestly observed IRQ bitmask (what a delayed sample shows).
    last_irq: u32,
    /// Effective oscillator drift of *this* replica in ppm, drawn once
    /// from the seed in `[0, 2 * plan.drift_ppm]`.
    drift_ppm_eff: u64,
    extra_ns: u64,
    stats: FaultStats,
    schedule: Vec<FaultKind>,
    forks: AtomicU64,
    rec: Recorder,
}

impl<T: HwTarget> FaultyTarget<T> {
    /// Wraps `inner` with the fault schedule described by `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> FaultyTarget<T> {
        let label = format!("{}+faults", inner.name());
        let drift_ppm_eff = if plan.drift_ppm > 0 {
            let mut s = plan.seed ^ 0x9e37_79b9_7f4a_7c15;
            splitmix64(&mut s) % (2 * u64::from(plan.drift_ppm) + 1)
        } else {
            0
        };
        FaultyTarget {
            rng: Rng::seed_from_u64(plan.seed),
            inner,
            label,
            plan,
            hung: false,
            pending_burst: 0,
            irq_refractory: 0,
            last_irq: 0,
            drift_ppm_eff,
            extra_ns: 0,
            stats: FaultStats::default(),
            schedule: Vec::new(),
            forks: AtomicU64::new(0),
            rec: Recorder::disabled(),
        }
    }

    /// The active fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injected-fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The injected faults in schedule order (for determinism tests).
    pub fn schedule(&self) -> &[FaultKind] {
        &self.schedule
    }

    /// Whether the target is currently wedged (cleared by reset).
    pub fn is_hung(&self) -> bool {
        self.hung
    }

    /// Unwraps the decorator, discarding the fault state.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Shared read access to the wrapped target.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Draws the fate of the next fallible operation of a class with
    /// probability `rate`. Order matters and is fixed: wedged targets
    /// fail unconditionally, then burst continuations, then a fresh
    /// hang draw, then the per-class draw.
    fn draw(&mut self, rate: f64) -> Drawn {
        if self.hung {
            return Drawn::Hung;
        }
        if self.pending_burst > 0 {
            self.pending_burst -= 1;
            return Drawn::Fault;
        }
        if self.plan.hang_rate > 0.0 && self.rng.gen_bool(self.plan.hang_rate) {
            self.hung = true;
            self.stats.hangs += 1;
            self.schedule.push(FaultKind::Hang);
            self.rec.count(Counter::FaultsInjected);
            self.rec.instant("fault", FaultKind::Hang.inject_event(), 0);
            return Drawn::Hung;
        }
        if rate > 0.0 && self.rng.gen_bool(rate) {
            if self.plan.max_burst > 1 {
                self.pending_burst = self.rng.gen_range(0..self.plan.max_burst);
            }
            return Drawn::Fault;
        }
        Drawn::Clean
    }

    /// Records an injected fault: schedule entry, class counter (via
    /// `count`), and the modeled link latency of the failed handshake.
    fn record(&mut self, kind: FaultKind, count: impl FnOnce(&mut FaultStats)) {
        count(&mut self.stats);
        self.schedule.push(kind);
        self.extra_ns += FAULT_LINK_NS;
        self.rec.count(Counter::FaultsInjected);
        self.rec.instant("fault", kind.inject_event(), 0);
    }
}

/// Damages a captured image the way a dropped scan cell does: one
/// register with spare headroom gains a bit just above its width. Falls
/// back to truncation when every register is already 64 bits wide.
fn flip_scan_bit(snap: &mut HwSnapshot, rng: &mut Rng) {
    let candidates: Vec<usize> = snap
        .regs
        .iter()
        .enumerate()
        .filter(|(_, r)| r.width < 64)
        .map(|(i, _)| i)
        .collect();
    if let Some(&i) = rng.choose(&candidates) {
        let r = &mut snap.regs[i];
        r.bits |= 1 << r.width;
    } else {
        truncate_capture(snap, rng);
    }
}

/// Damages a captured image the way a scan-out that *stops early* does
/// when the driver still assembles a full-shaped image: every cell
/// after a random prefix point arrives as zeros. Unlike
/// [`truncate_capture`], shape and width validation both pass — only
/// the checksum trailer the scan controller computed over the full
/// chain ([`HwTarget::capture_checksum`]) can expose the damage.
fn zero_tail_readback(snap: &mut HwSnapshot, rng: &mut Rng) {
    let sections = snap.regs.len() + snap.mems.len();
    if sections == 0 {
        return;
    }
    let keep = rng.gen_range(0..sections);
    let nregs = snap.regs.len();
    for r in snap.regs.iter_mut().skip(keep) {
        r.bits = 0;
    }
    for m in snap.mems.iter_mut().skip(keep.saturating_sub(nregs)) {
        for w in &mut m.words {
            *w = 0;
        }
    }
}

/// Damages a captured image the way a scan-out cut short does: trailing
/// registers (or the last memory) disappear. An empty image gets its
/// design label damaged instead — still a shape mismatch.
fn truncate_capture(snap: &mut HwSnapshot, rng: &mut Rng) {
    if !snap.regs.is_empty() {
        let keep = rng.gen_range(0..snap.regs.len());
        snap.regs.truncate(keep);
    } else if !snap.mems.is_empty() {
        snap.mems.pop();
    } else {
        snap.design.push('?');
    }
}

impl<T: HwTarget> HwTarget for FaultyTarget<T> {
    fn name(&self) -> &str {
        &self.label
    }

    fn caps(&self) -> TargetCaps {
        self.inner.caps()
    }

    fn design_name(&self) -> &str {
        self.inner.design_name()
    }

    fn reset(&mut self) {
        // A reset un-wedges the link and clears any burst in progress;
        // the PRNG keeps its position so the schedule stays a pure
        // function of (seed, operation sequence).
        self.hung = false;
        self.pending_burst = 0;
        self.irq_refractory = 0;
        self.last_irq = 0;
        self.inner.reset();
    }

    fn step(&mut self, cycles: u64) {
        self.inner.step(cycles);
    }

    fn cycle(&self) -> u64 {
        self.inner.cycle()
    }

    fn bus_read(&mut self, addr: u32) -> Result<u32, BusError> {
        match self.draw(self.plan.bus_fault_rate) {
            Drawn::Hung => Err(BusError::NotReady),
            Drawn::Fault => {
                self.record(FaultKind::BusTimeout, |s| s.bus_timeouts += 1);
                Err(BusError::Timeout {
                    addr,
                    cycles: TIMEOUT_CYCLES,
                })
            }
            Drawn::Clean => self.inner.bus_read(addr),
        }
    }

    fn bus_write(&mut self, addr: u32, data: u32) -> Result<(), BusError> {
        match self.draw(self.plan.bus_fault_rate) {
            Drawn::Hung => Err(BusError::NotReady),
            Drawn::Fault => {
                self.record(FaultKind::BusTimeout, |s| s.bus_timeouts += 1);
                Err(BusError::Timeout {
                    addr,
                    cycles: TIMEOUT_CYCLES,
                })
            }
            Drawn::Clean => self.inner.bus_write(addr, data),
        }
    }

    fn irq_lines(&mut self) -> u32 {
        // IRQ polls stay honest while the link is wedged (the lines are
        // wired to the design, not to the scan/bus transport) and for
        // the two polls after a glitch — the refractory window is what
        // guarantees a two-consecutive-agreeing-samples reader always
        // converges on the honest bitmask.
        let honest = self.inner.irq_lines();
        if self.hung || self.plan.irq_fault_rate <= 0.0 {
            self.last_irq = honest;
            return honest;
        }
        if self.irq_refractory > 0 {
            self.irq_refractory -= 1;
            self.last_irq = honest;
            return honest;
        }
        if self.rng.gen_bool(self.plan.irq_fault_rate) {
            self.record(FaultKind::IrqGlitch, |s| s.irq_glitches += 1);
            self.irq_refractory = 2;
            let stale = self.last_irq;
            return match self.rng.gen_range(0..3u32) {
                0 => honest | (1 << self.rng.gen_range(0..8u32)), // spurious
                1 => 0,                                           // dropped
                _ => stale,                                       // delayed
            };
        }
        self.last_irq = honest;
        honest
    }

    fn save_snapshot(&mut self) -> Result<HwSnapshot, TargetError> {
        // Draw both capture corruptions up front so the schedule is a
        // fixed function of the draw sequence, then capture honestly
        // and damage only the returned image: the design state is
        // untouched and a re-capture observes the honest bits.
        let flip = match self.draw(self.plan.scan_fault_rate) {
            Drawn::Hung => return Err(TargetError::Bus(BusError::NotReady)),
            Drawn::Fault => true,
            Drawn::Clean => false,
        };
        let truncate = match self.draw(self.plan.snapshot_fault_rate) {
            Drawn::Hung => return Err(TargetError::Bus(BusError::NotReady)),
            Drawn::Fault => true,
            Drawn::Clean => false,
        };
        let readback = match self.draw(self.plan.readback_fault_rate) {
            Drawn::Hung => return Err(TargetError::Bus(BusError::NotReady)),
            Drawn::Fault => true,
            Drawn::Clean => false,
        };
        let mut snap = self.inner.save_snapshot()?;
        if flip {
            self.record(FaultKind::ScanBitFlip, |s| s.scan_flips += 1);
            flip_scan_bit(&mut snap, &mut self.rng);
        }
        if truncate {
            self.record(FaultKind::TruncatedCapture, |s| s.truncations += 1);
            truncate_capture(&mut snap, &mut self.rng);
        }
        if readback {
            self.record(FaultKind::PartialReadback, |s| s.partial_readbacks += 1);
            zero_tail_readback(&mut snap, &mut self.rng);
        }
        Ok(snap)
    }

    fn restore_snapshot(&mut self, snap: &HwSnapshot) -> Result<(), TargetError> {
        match self.draw(self.plan.restore_fault_rate) {
            Drawn::Hung => Err(TargetError::Bus(BusError::NotReady)),
            Drawn::Fault => {
                self.record(FaultKind::RestoreTimeout, |s| s.restore_timeouts += 1);
                Err(TargetError::Bus(BusError::Timeout {
                    addr: 0,
                    cycles: TIMEOUT_CYCLES,
                }))
            }
            Drawn::Clean => self.inner.restore_snapshot(snap),
        }
    }

    fn virtual_time_ns(&self) -> u64 {
        // A drifting oscillator reports time fast by a fixed per-replica
        // factor. Applied to the inner clock only (never to `step`), so
        // design state and the analysis digest are unaffected.
        let base = self.inner.virtual_time_ns();
        let drift = (u128::from(base) * u128::from(self.drift_ppm_eff) / 1_000_000) as u64;
        base + drift + self.extra_ns
    }

    fn fork_clean(&self) -> Result<Box<dyn HwTarget>, TargetError> {
        let inner = self.inner.fork_clean()?;
        // Derive a distinct but reproducible seed per fork: the n-th
        // fork of a given plan always gets the same stream.
        let n = self.forks.fetch_add(1, Ordering::Relaxed);
        let mut s = self.plan.seed ^ (n.wrapping_add(1).wrapping_mul(0xa076_1d64_78bd_642f));
        let plan = FaultPlan {
            seed: splitmix64(&mut s),
            ..self.plan
        };
        Ok(Box::new(FaultyTarget::new(inner, plan)))
    }

    fn snapshot_shape(&self) -> u64 {
        self.inner.snapshot_shape()
    }

    fn capture_checksum(&self) -> u64 {
        // The checksum trailer is computed by the target-side controller
        // over the full honest chain and arrives intact even when the
        // data payload does not — that asymmetry is exactly what makes
        // partial readbacks detectable.
        self.inner.capture_checksum()
    }

    fn fault_stats(&self) -> Option<FaultStats> {
        let mut total = self.stats;
        if let Some(inner) = self.inner.fault_stats() {
            total.merge(&inner);
        }
        Some(total)
    }

    fn attach_recorder(&mut self, rec: &Recorder) {
        self.rec = rec.clone();
        self.inner.attach_recorder(rec);
    }

    fn set_delta_snapshots(&mut self, on: bool) {
        self.inner.set_delta_snapshots(on);
    }

    fn save_snapshot_delta(&mut self) -> Result<crate::SnapshotCapture, TargetError> {
        // Same two-draw discipline as `save_snapshot`: corruption damages
        // only the returned capture, never the design state, so a
        // re-capture observes honest bits.
        let flip = match self.draw(self.plan.scan_fault_rate) {
            Drawn::Hung => return Err(TargetError::Bus(BusError::NotReady)),
            Drawn::Fault => true,
            Drawn::Clean => false,
        };
        let truncate = match self.draw(self.plan.snapshot_fault_rate) {
            Drawn::Hung => return Err(TargetError::Bus(BusError::NotReady)),
            Drawn::Fault => true,
            Drawn::Clean => false,
        };
        let readback = match self.draw(self.plan.readback_fault_rate) {
            Drawn::Hung => return Err(TargetError::Bus(BusError::NotReady)),
            Drawn::Fault => true,
            Drawn::Clean => false,
        };
        let mut cap = self.inner.save_snapshot_delta()?;
        if flip {
            self.record(FaultKind::ScanBitFlip, |s| s.scan_flips += 1);
            flip_capture_bit(&mut cap, &mut self.rng);
        }
        if truncate {
            self.record(FaultKind::TruncatedCapture, |s| s.truncations += 1);
            truncate_any_capture(&mut cap, &mut self.rng);
        }
        // A partial readback only exists on the full-chain scan path; a
        // delta travels the differential protocol, whose cut-short
        // transfers are the `TruncatedCapture` class above. The draw is
        // still consumed so the schedule stays a pure function of the
        // operation sequence.
        if readback {
            if let crate::SnapshotCapture::Full(s) = &mut cap {
                self.record(FaultKind::PartialReadback, |st| st.partial_readbacks += 1);
                zero_tail_readback(std::sync::Arc::make_mut(s), &mut self.rng);
            }
        }
        Ok(cap)
    }
}

/// Scan-bit-flip damage on either capture representation. A delta gains
/// an out-of-width bit on one of its patched registers (or, when it
/// patches nothing, a fabricated out-of-range patch) — both are exactly
/// what `SnapshotDelta::validate_against` exists to catch.
fn flip_capture_bit(cap: &mut crate::SnapshotCapture, rng: &mut Rng) {
    match cap {
        crate::SnapshotCapture::Full(s) => flip_scan_bit(std::sync::Arc::make_mut(s), rng),
        crate::SnapshotCapture::Delta { base, delta } => {
            let candidates: Vec<usize> = delta
                .regs
                .iter()
                .filter_map(|&(i, _)| base.regs.get(i as usize).map(|r| (i, r.width)))
                .enumerate()
                .filter(|(_, (_, w))| *w < 64)
                .map(|(k, _)| k)
                .collect();
            if let Some(&k) = rng.choose(&candidates) {
                let (i, bits) = delta.regs[k];
                let width = base.regs[i as usize].width;
                delta.regs[k] = (i, bits | 1 << width);
            } else {
                delta.regs.push((base.regs.len() as u32, 1));
            }
        }
    }
}

/// Truncation damage on either capture representation.
fn truncate_any_capture(cap: &mut crate::SnapshotCapture, rng: &mut Rng) {
    match cap {
        crate::SnapshotCapture::Full(s) => truncate_capture(std::sync::Arc::make_mut(s), rng),
        crate::SnapshotCapture::Delta { base, delta } => {
            // A cut-short delta transfer drops its tail — or, when there
            // is no tail to drop, claims a patch beyond the base.
            if !delta.regs.is_empty() || !delta.mem_words.is_empty() {
                let keep = rng.gen_range(0..delta.regs.len().max(1));
                delta.regs.truncate(keep);
                delta.mem_words.clear();
                // Dropping real changes alone would still validate;
                // mark the damage so supervision can see it.
                delta.regs.push((base.regs.len() as u32, 0));
            } else {
                delta.mem_words.push((base.mems.len() as u32, 0, 0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegImage;

    /// Honest in-memory target: bus ops always succeed, snapshots carry
    /// two registers, and the shape hash is self-computed.
    struct Honest {
        reg: u64,
        cycle: u64,
        resets: u64,
    }

    impl Honest {
        fn new() -> Honest {
            Honest {
                reg: 0,
                cycle: 0,
                resets: 0,
            }
        }
        fn image(&self) -> HwSnapshot {
            HwSnapshot {
                design: "honest".into(),
                cycle: self.cycle,
                regs: vec![
                    RegImage {
                        name: "a".into(),
                        width: 8,
                        bits: self.reg & 0xff,
                    },
                    RegImage {
                        name: "b".into(),
                        width: 16,
                        bits: (self.reg >> 8) & 0xffff,
                    },
                ],
                mems: vec![],
            }
        }
    }

    impl HwTarget for Honest {
        fn name(&self) -> &str {
            "honest"
        }
        fn caps(&self) -> TargetCaps {
            TargetCaps {
                kind: crate::TargetKind::Simulator,
                full_visibility: true,
                readback: false,
                clock_hz: 1_000_000,
            }
        }
        fn design_name(&self) -> &str {
            "honest"
        }
        fn reset(&mut self) {
            self.reg = 0;
            self.cycle = 0;
            self.resets += 1;
        }
        fn step(&mut self, cycles: u64) {
            self.cycle += cycles;
        }
        fn cycle(&self) -> u64 {
            self.cycle
        }
        fn bus_read(&mut self, addr: u32) -> Result<u32, BusError> {
            Ok(addr ^ self.reg as u32)
        }
        fn bus_write(&mut self, _addr: u32, data: u32) -> Result<(), BusError> {
            self.reg = data as u64;
            Ok(())
        }
        fn irq_lines(&mut self) -> u32 {
            0
        }
        fn save_snapshot(&mut self) -> Result<HwSnapshot, TargetError> {
            Ok(self.image())
        }
        fn restore_snapshot(&mut self, snap: &HwSnapshot) -> Result<(), TargetError> {
            self.reg = snap.reg("a").unwrap_or(0) | (snap.reg("b").unwrap_or(0) << 8);
            Ok(())
        }
        fn virtual_time_ns(&self) -> u64 {
            self.cycle * 1000
        }
        fn fork_clean(&self) -> Result<Box<dyn HwTarget>, TargetError> {
            Ok(Box::new(Honest::new()))
        }
        fn snapshot_shape(&self) -> u64 {
            self.image().shape_hash()
        }
        fn capture_checksum(&self) -> u64 {
            // Capture damage never touches the design, so the live
            // image *is* what the controller checksummed.
            self.image().content_hash()
        }
    }

    fn drive(t: &mut dyn HwTarget, ops: u32) -> Vec<bool> {
        // A fixed op sequence; returns the per-op success pattern.
        let mut pattern = Vec::new();
        for i in 0..ops {
            match i % 4 {
                0 => pattern.push(t.bus_read(0x4000_0000 + i).is_ok()),
                1 => pattern.push(t.bus_write(0x4000_0000 + i, i).is_ok()),
                2 => pattern.push(t.save_snapshot().is_ok_and(|s| s.validate().is_ok())),
                _ => {
                    let s = HwSnapshot {
                        design: "honest".into(),
                        cycle: 0,
                        regs: vec![
                            RegImage {
                                name: "a".into(),
                                width: 8,
                                bits: 1,
                            },
                            RegImage {
                                name: "b".into(),
                                width: 16,
                                bits: 2,
                            },
                        ],
                        mems: vec![],
                    };
                    pattern.push(t.restore_snapshot(&s).is_ok());
                }
            }
            if !pattern.last().copied().unwrap_or(true) {
                t.reset(); // clear hangs so the sequence continues
            }
        }
        pattern
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultyTarget::new(Honest::new(), FaultPlan::uniform(42, 0.2));
        let mut b = FaultyTarget::new(Honest::new(), FaultPlan::uniform(42, 0.2));
        let pa = drive(&mut a, 200);
        let pb = drive(&mut b, 200);
        assert_eq!(pa, pb);
        assert_eq!(a.schedule(), b.schedule());
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().injected() > 0, "a 20% plan must inject something");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultyTarget::new(Honest::new(), FaultPlan::uniform(1, 0.2));
        let mut b = FaultyTarget::new(Honest::new(), FaultPlan::uniform(2, 0.2));
        let pa = drive(&mut a, 300);
        let pb = drive(&mut b, 300);
        assert_ne!(pa, pb);
    }

    #[test]
    fn off_plan_is_transparent() {
        let mut t = FaultyTarget::new(Honest::new(), FaultPlan::off());
        let pattern = drive(&mut t, 100);
        assert!(pattern.iter().all(|&ok| ok));
        assert_eq!(t.stats().injected(), 0);
        assert!(t.schedule().is_empty());
        assert!(!FaultPlan::off().is_active());
        assert!(FaultPlan::uniform(0, 0.1).is_active());
    }

    #[test]
    fn hang_wedges_until_reset() {
        let plan = FaultPlan {
            hang_rate: 1.0,
            ..FaultPlan::off()
        };
        let mut t = FaultyTarget::new(Honest::new(), plan);
        assert_eq!(t.bus_read(0), Err(BusError::NotReady));
        assert!(t.is_hung());
        // Everything fallible fails while wedged.
        assert_eq!(t.bus_write(0, 1), Err(BusError::NotReady));
        assert!(t.save_snapshot().is_err());
        assert_eq!(t.stats().hangs, 1, "a wedged target draws no new hangs");
        t.reset();
        assert!(!t.is_hung());
        assert_eq!(t.inner().resets, 1);
        // Immediately wedges again (rate 1.0), proving reset cleared it.
        assert_eq!(t.bus_read(0), Err(BusError::NotReady));
        assert_eq!(t.stats().hangs, 2);
    }

    #[test]
    fn capture_corruption_is_detectable_and_recapturable() {
        let plan = FaultPlan {
            scan_fault_rate: 1.0,
            ..FaultPlan::off()
        };
        let mut t = FaultyTarget::new(Honest::new(), plan);
        let shape = t.snapshot_shape();
        let corrupt = t.save_snapshot().unwrap();
        assert!(
            corrupt.validate().is_err() || corrupt.shape_hash() != shape,
            "injected capture corruption must be detectable"
        );
        // The design itself is untouched: an honest capture of the same
        // state still exists underneath.
        assert_eq!(t.inner().image().shape_hash(), shape);
        assert!(t.inner().image().validate().is_ok());

        let plan = FaultPlan {
            snapshot_fault_rate: 1.0,
            ..FaultPlan::off()
        };
        let mut t = FaultyTarget::new(Honest::new(), plan);
        let truncated = t.save_snapshot().unwrap();
        assert_ne!(truncated.shape_hash(), shape, "truncation changes shape");
    }

    #[test]
    fn bus_faults_fire_before_the_design_sees_them() {
        let plan = FaultPlan {
            bus_fault_rate: 1.0,
            max_burst: 0,
            ..FaultPlan::off()
        };
        let mut t = FaultyTarget::new(Honest::new(), plan);
        assert!(matches!(t.bus_write(0, 77), Err(BusError::Timeout { .. })));
        // The write never reached the register.
        assert_eq!(t.inner().reg, 0);
    }

    #[test]
    fn faults_charge_virtual_link_time() {
        let plan = FaultPlan {
            bus_fault_rate: 1.0,
            max_burst: 0,
            ..FaultPlan::off()
        };
        let mut t = FaultyTarget::new(Honest::new(), plan);
        let before = t.virtual_time_ns();
        let _ = t.bus_read(0);
        assert!(t.virtual_time_ns() > before);
    }

    #[test]
    fn forks_get_distinct_deterministic_seeds() {
        let proto = FaultyTarget::new(Honest::new(), FaultPlan::uniform(7, 0.3));
        let mut f1 = proto.fork_clean().unwrap();
        let mut f2 = proto.fork_clean().unwrap();
        let p1 = drive(f1.as_mut(), 200);
        let p2 = drive(f2.as_mut(), 200);
        assert_ne!(p1, p2, "sibling forks draw uncorrelated schedules");

        // Re-forking from an identical prototype reproduces the exact
        // same per-fork streams.
        let proto2 = FaultyTarget::new(Honest::new(), FaultPlan::uniform(7, 0.3));
        let mut g1 = proto2.fork_clean().unwrap();
        let q1 = drive(g1.as_mut(), 200);
        assert_eq!(p1, q1);
        // Forks report their injected faults through the trait.
        assert!(f1.fault_stats().is_some());
    }

    #[test]
    fn irq_glitches_settle_and_a_voting_reader_converges() {
        let plan = FaultPlan {
            irq_fault_rate: 1.0,
            ..FaultPlan::off()
        };
        let mut t = FaultyTarget::new(Honest::new(), plan);
        // Even at rate 1.0 the refractory window forces the pattern
        // glitch, honest, honest, glitch, ... so a reader that demands
        // two consecutive agreeing samples always lands on the honest
        // bitmask (0 for this fixture) within four polls.
        for _ in 0..50 {
            let mut prev = t.irq_lines();
            let mut polls = 1;
            loop {
                let next = t.irq_lines();
                polls += 1;
                if next == prev {
                    break;
                }
                prev = next;
                assert!(polls <= 4, "voting reader failed to converge");
            }
            assert_eq!(prev, 0, "voting must land on the honest bitmask");
        }
        assert!(t.stats().irq_glitches > 0);

        // Same seed, same glitch schedule.
        let mut a = FaultyTarget::new(Honest::new(), plan);
        let mut b = FaultyTarget::new(Honest::new(), plan);
        let sa: Vec<u32> = (0..100).map(|_| a.irq_lines()).collect();
        let sb: Vec<u32> = (0..100).map(|_| b.irq_lines()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn partial_readback_keeps_shape_but_breaks_the_checksum() {
        let plan = FaultPlan {
            readback_fault_rate: 1.0,
            ..FaultPlan::off()
        };
        let mut t = FaultyTarget::new(Honest::new(), plan);
        // Make the tail of the chain nonzero so zeroing it is visible.
        t.bus_write(0, 0x00ab_cdef).unwrap();
        let shape = t.snapshot_shape();
        let snap = t.save_snapshot().unwrap();
        // The damaged image is structurally perfect...
        assert!(snap.validate().is_ok());
        assert_eq!(snap.shape_hash(), shape);
        // ...but disagrees with the checksum trailer the controller
        // computed over the full chain.
        assert_ne!(snap.content_hash(), t.capture_checksum());
        assert_eq!(t.stats().partial_readbacks, 1);
        // The design is untouched: an honest re-capture matches the
        // trailer again (recovery is a plain retry).
        assert_eq!(t.inner().image().content_hash(), t.capture_checksum());
    }

    #[test]
    fn clock_drift_skews_reported_time_only() {
        let plan = FaultPlan {
            seed: 11,
            drift_ppm: 10_000,
            ..FaultPlan::off()
        };
        let mut t = FaultyTarget::new(Honest::new(), plan);
        t.step(1_000_000);
        let honest_ns = 1_000_000u64 * 1000;
        let v = t.virtual_time_ns();
        assert!(v >= honest_ns, "drift only runs fast");
        assert!(v <= honest_ns + honest_ns / 50, "bounded by 2 * ppm");
        // The design itself stepped exactly the requested cycles.
        assert_eq!(t.cycle(), 1_000_000);
        // Same seed, same drift; sibling forks drift differently.
        let mut t2 = FaultyTarget::new(Honest::new(), plan);
        t2.step(1_000_000);
        assert_eq!(t2.virtual_time_ns(), v);
        let mut f1 = t.fork_clean().unwrap();
        let mut f2 = t.fork_clean().unwrap();
        f1.step(1_000_000);
        f2.step(1_000_000);
        assert_ne!(
            f1.virtual_time_ns(),
            f2.virtual_time_ns(),
            "replicas drift apart"
        );
    }

    #[test]
    fn stats_flow_through_the_trait() {
        let mut t = FaultyTarget::new(Honest::new(), FaultPlan::uniform(3, 0.5));
        let _ = drive(&mut t, 100);
        let via_trait = HwTarget::fault_stats(&t).unwrap();
        assert_eq!(via_trait, t.stats());
        let honest = Honest::new();
        assert!(honest.fault_stats().is_none());
    }
}
