//! # hardsnap-bus
//!
//! The hardware-abstraction layer of the HardSnap reproduction: AXI4-Lite
//! style bus transactions, the canonical hardware-snapshot format that
//! makes multi-target state transfer possible, the [`HwTarget`] trait
//! that both hardware targets (cycle-accurate simulator and FPGA
//! emulation) implement, and the firmware-visible memory map.
//!
//! In the paper, the symbolic virtual machine reaches peripherals through
//! Inception's memory-forwarding mechanism, over either a shared-memory
//! link to the Verilator-based simulator or a USB 3.0 debugger to the
//! FPGA. Here the same role is played by [`HwTarget`]: the symbolic
//! engine forwards MMIO loads/stores to whichever target is selected, and
//! the snapshot controller saves/restores through the same trait.

#![warn(missing_docs)]

pub mod archive;
pub mod fault;
pub mod map;
pub mod persist;
pub mod snapshot;
pub mod target;

pub use archive::{PackEntry, PackManifest, PACK_MAGIC, PACK_SCHEMA};
pub use fault::{FaultKind, FaultPlan, FaultStats, FaultyTarget};
pub use map::{MemoryMap, Region, RegionKind};
pub use persist::{
    mem_words_hash, regs_values_hash, ImageKind, PersistError, PersistMeta, PersistedImage,
    SectionEntry, SectionTag, SnapshotFile,
};
pub use snapshot::{
    shape_hash_parts, HwSnapshot, MemImage, RegImage, SnapshotCapture, SnapshotDelta,
};
pub use target::{transfer_state, HwTarget, LazyRestore, TargetCaps, TargetKind};

use std::error::Error;
use std::fmt;

/// Errors returned by bus transactions against a hardware target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BusError {
    /// The slave answered with an error response (AXI `SLVERR`/`DECERR`),
    /// e.g. an unmapped peripheral address.
    SlaveError {
        /// The offending address.
        addr: u32,
    },
    /// The handshake did not complete within the watchdog cycle budget —
    /// the design is wedged or the interface is miswired.
    Timeout {
        /// The offending address.
        addr: u32,
        /// Cycles waited before giving up.
        cycles: u64,
    },
    /// The target cannot accept transactions in its current mode (e.g. a
    /// suspended target during a scan operation).
    NotReady,
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::SlaveError { addr } => write!(f, "bus slave error at {addr:#010x}"),
            BusError::Timeout { addr, cycles } => {
                write!(
                    f,
                    "bus handshake timeout at {addr:#010x} after {cycles} cycles"
                )
            }
            BusError::NotReady => write!(f, "target not ready for bus transactions"),
        }
    }
}

impl Error for BusError {}

/// Errors returned by snapshot operations on a hardware target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TargetError {
    /// Snapshot belongs to a different design than the target runs.
    DesignMismatch {
        /// Design the snapshot was taken from.
        expected: String,
        /// Design the target runs.
        found: String,
    },
    /// The snapshot image is malformed.
    CorruptSnapshot(String),
    /// The operation is not supported by this target (e.g. readback on a
    /// target without the high-end readback feature).
    Unsupported(String),
    /// A bus-level failure while driving the snapshot-controller IP.
    Bus(BusError),
}

impl fmt::Display for TargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetError::DesignMismatch { expected, found } => {
                write!(f, "snapshot for design '{expected}' applied to '{found}'")
            }
            TargetError::CorruptSnapshot(m) => write!(f, "corrupt snapshot: {m}"),
            TargetError::Unsupported(m) => write!(f, "unsupported target operation: {m}"),
            TargetError::Bus(e) => write!(f, "snapshot bus operation failed: {e}"),
        }
    }
}

impl Error for TargetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TargetError::Bus(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BusError> for TargetError {
    fn from(e: BusError) -> Self {
        TargetError::Bus(e)
    }
}

/// Standard AXI4-Lite slave port names used by every corpus peripheral
/// and by the SoC top; the bus drivers in the targets drive these nets.
pub mod axi_ports {
    /// Clock.
    pub const CLK: &str = "clk";
    /// Synchronous active-high reset.
    pub const RST: &str = "rst";
    /// Write-address valid.
    pub const AWVALID: &str = "s_axi_awvalid";
    /// Write address.
    pub const AWADDR: &str = "s_axi_awaddr";
    /// Write-address ready.
    pub const AWREADY: &str = "s_axi_awready";
    /// Write-data valid.
    pub const WVALID: &str = "s_axi_wvalid";
    /// Write data.
    pub const WDATA: &str = "s_axi_wdata";
    /// Write-data ready.
    pub const WREADY: &str = "s_axi_wready";
    /// Write-response valid.
    pub const BVALID: &str = "s_axi_bvalid";
    /// Write response (0 = OKAY, 2 = SLVERR).
    pub const BRESP: &str = "s_axi_bresp";
    /// Write-response ready.
    pub const BREADY: &str = "s_axi_bready";
    /// Read-address valid.
    pub const ARVALID: &str = "s_axi_arvalid";
    /// Read address.
    pub const ARADDR: &str = "s_axi_araddr";
    /// Read-address ready.
    pub const ARREADY: &str = "s_axi_arready";
    /// Read-data valid.
    pub const RVALID: &str = "s_axi_rvalid";
    /// Read data.
    pub const RDATA: &str = "s_axi_rdata";
    /// Read response (0 = OKAY, 2 = SLVERR).
    pub const RRESP: &str = "s_axi_rresp";
    /// Read-data ready.
    pub const RREADY: &str = "s_axi_rready";
    /// Interrupt lines out of the SoC top (bit per peripheral).
    pub const IRQ: &str = "irq";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BusError>();
        assert_send_sync::<TargetError>();
        let e = BusError::SlaveError { addr: 0x4000_0000 };
        assert!(e.to_string().contains("0x40000000"));
        let t: TargetError = e.into();
        assert!(t.to_string().contains("bus"));
    }
}
