//! Versioned on-disk snapshot images: TLV section framing with per-section
//! and whole-file checksums.
//!
//! [`HwSnapshot::to_bytes`] is a monolithic image: reading any of it means
//! reading (and checksumming) all of it. This module is the durable tier
//! on top — the aero-snapshot-style container that makes snapshots a
//! bounded, resumable resource instead of process-lifetime RAM objects:
//!
//! * **magic + version header** so format evolution is detectable, never
//!   silently misparsed;
//! * **TLV section framing** — one section for the register file and one
//!   per memory region, in canonical (scan-chain) order, each carrying its
//!   own FNV-1a payload checksum *and* a content hash of just the values,
//!   so a lazy restore can decide "this section already matches the live
//!   state" from the 40-byte table entry alone;
//! * a **table checksum** covering header + section table, verified on
//!   [`SnapshotFile::open`], so a lazily opened file with a corrupt index
//!   fails before any payload is trusted;
//! * a **trailing whole-file checksum** so an eager load (or
//!   `snapshot validate --deep`) detects any single flipped byte anywhere
//!   in the image;
//! * both [`SnapshotCapture::Full`] and [`SnapshotCapture::Delta`] kinds,
//!   so a delta chain survives serialization: a delta image names its base
//!   by an opaque reference string and pins the base's shape/content
//!   hashes, and applying it against the wrong base is a typed error.
//!
//! All errors are the typed [`PersistError`]; no path in here panics on
//! malformed input.

use crate::snapshot::{fnv1a, put_str, Cursor, FNV_OFFSET};
use crate::{HwSnapshot, MemImage, RegImage, SnapshotDelta};
use std::fmt;
use std::path::Path;

/// Container magic: distinct from the monolithic `HSNAPv2` image magic.
pub const TLV_MAGIC: &[u8; 8] = b"HSTLV01\0";
/// Current container format version.
pub const TLV_VERSION: u16 = 1;

const HEADER_LEN: usize = 16;
const TABLE_ENTRY_LEN: usize = 40;
const MAX_SECTIONS: usize = (1 << 20) + 4;

/// Section type tags in the TLV table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionTag {
    /// Image metadata: design, cycle, shape/content hashes, base ref.
    Meta = 1,
    /// The whole register file (one section, scan-chain order).
    Regs = 2,
    /// One memory region; `index` is the memory's position in the shape.
    Mem = 3,
    /// Changed registers of a delta image.
    DeltaRegs = 4,
    /// Changed memory words of a delta image.
    DeltaMem = 5,
}

impl SectionTag {
    fn from_u32(v: u32) -> Option<SectionTag> {
        match v {
            1 => Some(SectionTag::Meta),
            2 => Some(SectionTag::Regs),
            3 => Some(SectionTag::Mem),
            4 => Some(SectionTag::DeltaRegs),
            5 => Some(SectionTag::DeltaMem),
            _ => None,
        }
    }

    /// Short human name used by `snapshot inspect`.
    pub fn name(self) -> &'static str {
        match self {
            SectionTag::Meta => "META",
            SectionTag::Regs => "REGS",
            SectionTag::Mem => "MEM",
            SectionTag::DeltaRegs => "DELTA_REGS",
            SectionTag::DeltaMem => "DELTA_MEM",
        }
    }
}

/// Whether an image holds a complete state or a delta against a base.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImageKind {
    /// A complete image (also a valid delta base).
    Full,
    /// Only what changed since the referenced base.
    Delta,
}

impl fmt::Display for ImageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ImageKind::Full => "full",
            ImageKind::Delta => "delta",
        })
    }
}

/// Errors from writing, opening, or loading on-disk snapshot images.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// Filesystem I/O failed; carries the path and the OS error text.
    Io {
        /// The file involved.
        path: String,
        /// The underlying error, stringified.
        error: String,
    },
    /// The file does not start with [`TLV_MAGIC`].
    BadMagic,
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The file ended before a structure was complete.
    Truncated {
        /// Byte offset at which data ran out.
        at: usize,
    },
    /// A checksum did not match the stored value.
    ChecksumMismatch {
        /// Which checksum failed: `"table"`, `"file"`, or a section name.
        what: String,
    },
    /// Structurally invalid content (bad tag, count overflow, bad UTF-8,
    /// out-of-width values, ...).
    Malformed(String),
    /// A delta image was applied against a base with the wrong identity.
    BaseMismatch {
        /// The base reference recorded in the delta image.
        reference: String,
        /// What was wrong about the supplied base.
        detail: String,
    },
    /// The image's design shape does not match the consumer's — e.g. a
    /// warm-pool baseline or a packed archive built from a different
    /// design, rejected before any section payload is transferred.
    ShapeMismatch {
        /// Shape hash recorded in the image/manifest.
        expected: u64,
        /// Shape hash of the live target / receiving side.
        found: u64,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, error } => write!(f, "i/o on '{path}': {error}"),
            PersistError::BadMagic => write!(f, "not a TLV snapshot image (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot image version {v}")
            }
            PersistError::Truncated { at } => write!(f, "truncated image at offset {at}"),
            PersistError::ChecksumMismatch { what } => write!(f, "{what} checksum mismatch"),
            PersistError::Malformed(m) => write!(f, "malformed image: {m}"),
            PersistError::BaseMismatch { reference, detail } => {
                write!(f, "delta base '{reference}' mismatch: {detail}")
            }
            PersistError::ShapeMismatch { expected, found } => {
                write!(
                    f,
                    "design shape mismatch: image has {expected:#018x}, live side has {found:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl PersistError {
    /// Wraps an `std::io::Error` with the path it happened on.
    pub fn io(path: &Path, e: std::io::Error) -> PersistError {
        PersistError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        }
    }
}

/// Parsed META section of an image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PersistMeta {
    /// Design the state belongs to.
    pub design: String,
    /// Target cycle counter of the captured state (the delta's cycle for
    /// a delta image).
    pub cycle: u64,
    /// Shape hash of the full image (for a delta: of its base).
    pub shape_hash: u64,
    /// Content hash of the full image (for a delta: of its base — the
    /// reader uses it to reject application against the wrong base).
    pub content_hash: u64,
    /// Register count of the (base) shape.
    pub n_regs: u32,
    /// Memory count of the (base) shape.
    pub n_mems: u32,
    /// Opaque reference naming the base image a delta patches; empty for
    /// a full image. Campaign manifests use sibling file names, the spill
    /// tier uses in-store snapshot ids.
    pub base_ref: String,
}

impl PersistMeta {
    /// Rejects an image whose design shape differs from the consumer's.
    ///
    /// This is the cheap admission gate used before restoring a warm-pool
    /// baseline or unpacking an archive: the 40-byte META entry decides
    /// compatibility without reading a single section payload. A
    /// `live_shape` of 0 means the consumer cannot fingerprint its own
    /// shape (the [`crate::HwTarget::snapshot_shape`] "unknown" value);
    /// the check is skipped and a later eager restore does the full
    /// name/width comparison instead.
    pub fn check_shape(&self, live_shape: u64) -> Result<(), PersistError> {
        if live_shape != 0 && self.shape_hash != live_shape {
            return Err(PersistError::ShapeMismatch {
                expected: self.shape_hash,
                found: live_shape,
            });
        }
        Ok(())
    }
}

/// One entry of the section table.
#[derive(Clone, Debug)]
pub struct SectionEntry {
    /// Section type.
    pub tag: SectionTag,
    /// Per-tag index (memory position for [`SectionTag::Mem`], else 0).
    pub index: u32,
    /// Absolute payload offset in the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a over the payload bytes.
    pub checksum: u64,
    /// FNV-1a over just the section's *values* (register bits / memory
    /// words) — comparable against a hash of live target state without
    /// reading the payload.
    pub content_hash: u64,
}

/// Hash of a register file's values only, in scan-chain order — the
/// live-state counterpart of a [`SectionTag::Regs`] entry's
/// `content_hash`.
pub fn regs_values_hash(bits: impl Iterator<Item = u64>) -> u64 {
    let mut h = FNV_OFFSET;
    for b in bits {
        h = fnv1a(&b.to_le_bytes(), h);
    }
    h
}

/// Hash of one memory's words — the live-state counterpart of a
/// [`SectionTag::Mem`] entry's `content_hash`.
pub fn mem_words_hash(words: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for w in words {
        h = fnv1a(&w.to_le_bytes(), h);
    }
    h
}

struct Builder {
    kind: ImageKind,
    payloads: Vec<(SectionTag, u32, u64, Vec<u8>)>,
}

impl Builder {
    fn new(kind: ImageKind) -> Builder {
        Builder {
            kind,
            payloads: Vec::new(),
        }
    }

    fn push(&mut self, tag: SectionTag, index: u32, content_hash: u64, payload: Vec<u8>) {
        self.payloads.push((tag, index, content_hash, payload));
    }

    fn finish(self) -> Vec<u8> {
        let n = self.payloads.len();
        let mut out = Vec::with_capacity(
            HEADER_LEN
                + n * TABLE_ENTRY_LEN
                + 16
                + self.payloads.iter().map(|p| p.3.len()).sum::<usize>(),
        );
        out.extend_from_slice(TLV_MAGIC);
        out.extend_from_slice(&TLV_VERSION.to_le_bytes());
        out.push(match self.kind {
            ImageKind::Full => 0,
            ImageKind::Delta => 1,
        });
        out.push(0); // reserved
        out.extend_from_slice(&(n as u32).to_le_bytes());
        let mut offset = (HEADER_LEN + n * TABLE_ENTRY_LEN + 8) as u64;
        for (tag, index, content_hash, payload) in &self.payloads {
            out.extend_from_slice(&(*tag as u32).to_le_bytes());
            out.extend_from_slice(&index.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a(payload, FNV_OFFSET).to_le_bytes());
            out.extend_from_slice(&content_hash.to_le_bytes());
            offset += payload.len() as u64;
        }
        let table_sum = fnv1a(&out, FNV_OFFSET);
        out.extend_from_slice(&table_sum.to_le_bytes());
        for (_, _, _, payload) in &self.payloads {
            out.extend_from_slice(payload);
        }
        let file_sum = fnv1a(&out, FNV_OFFSET);
        out.extend_from_slice(&file_sum.to_le_bytes());
        out
    }
}

fn meta_payload(m: &PersistMeta) -> Vec<u8> {
    let mut p = Vec::with_capacity(64 + m.design.len() + m.base_ref.len());
    put_str(&mut p, &m.design);
    p.extend_from_slice(&m.cycle.to_le_bytes());
    p.extend_from_slice(&m.shape_hash.to_le_bytes());
    p.extend_from_slice(&m.content_hash.to_le_bytes());
    p.extend_from_slice(&m.n_regs.to_le_bytes());
    p.extend_from_slice(&m.n_mems.to_le_bytes());
    put_str(&mut p, &m.base_ref);
    p
}

/// Serializes a full snapshot into the TLV container: META, then the
/// register file, then one section per memory, in canonical order.
pub fn write_full(snap: &HwSnapshot) -> Vec<u8> {
    let mut b = Builder::new(ImageKind::Full);
    b.push(
        SectionTag::Meta,
        0,
        0,
        meta_payload(&PersistMeta {
            design: snap.design.clone(),
            cycle: snap.cycle,
            shape_hash: snap.shape_hash(),
            content_hash: snap.content_hash(),
            n_regs: snap.regs.len() as u32,
            n_mems: snap.mems.len() as u32,
            base_ref: String::new(),
        }),
    );
    let mut regs = Vec::with_capacity(4 + snap.regs.len() * 24);
    regs.extend_from_slice(&(snap.regs.len() as u32).to_le_bytes());
    for r in &snap.regs {
        put_str(&mut regs, &r.name);
        regs.extend_from_slice(&r.width.to_le_bytes());
        regs.extend_from_slice(&r.bits.to_le_bytes());
    }
    b.push(
        SectionTag::Regs,
        0,
        regs_values_hash(snap.regs.iter().map(|r| r.bits)),
        regs,
    );
    for (k, m) in snap.mems.iter().enumerate() {
        let mut p = Vec::with_capacity(12 + m.name.len() + 8 * m.words.len());
        put_str(&mut p, &m.name);
        p.extend_from_slice(&m.width.to_le_bytes());
        p.extend_from_slice(&(m.words.len() as u32).to_le_bytes());
        for w in &m.words {
            p.extend_from_slice(&w.to_le_bytes());
        }
        b.push(SectionTag::Mem, k as u32, mem_words_hash(&m.words), p);
    }
    b.finish()
}

/// Serializes a delta capture into the TLV container. `base_ref` is the
/// opaque name under which the base can be found again (a sibling file
/// name for campaign manifests, a snapshot id for the spill tier); the
/// base's shape and content hashes are pinned in META so a later apply
/// against the wrong base is rejected.
pub fn write_delta(base: &HwSnapshot, delta: &SnapshotDelta, base_ref: &str) -> Vec<u8> {
    let mut b = Builder::new(ImageKind::Delta);
    b.push(
        SectionTag::Meta,
        0,
        0,
        meta_payload(&PersistMeta {
            design: base.design.clone(),
            cycle: delta.cycle,
            shape_hash: base.shape_hash(),
            content_hash: base.content_hash(),
            n_regs: base.regs.len() as u32,
            n_mems: base.mems.len() as u32,
            base_ref: base_ref.to_string(),
        }),
    );
    let mut dr = Vec::with_capacity(4 + delta.regs.len() * 12);
    dr.extend_from_slice(&(delta.regs.len() as u32).to_le_bytes());
    for &(i, bits) in &delta.regs {
        dr.extend_from_slice(&i.to_le_bytes());
        dr.extend_from_slice(&bits.to_le_bytes());
    }
    b.push(
        SectionTag::DeltaRegs,
        0,
        regs_values_hash(delta.regs.iter().map(|&(_, b)| b)),
        dr,
    );
    let mut dm = Vec::with_capacity(4 + delta.mem_words.len() * 16);
    dm.extend_from_slice(&(delta.mem_words.len() as u32).to_le_bytes());
    for &(mi, wi, v) in &delta.mem_words {
        dm.extend_from_slice(&mi.to_le_bytes());
        dm.extend_from_slice(&wi.to_le_bytes());
        dm.extend_from_slice(&v.to_le_bytes());
    }
    b.push(
        SectionTag::DeltaMem,
        0,
        mem_words_hash(
            &delta
                .mem_words
                .iter()
                .map(|&(_, _, v)| v)
                .collect::<Vec<_>>(),
        ),
        dm,
    );
    b.finish()
}

/// An image read eagerly, whole-file checksum verified first.
#[derive(Clone, Debug)]
pub enum PersistedImage {
    /// A complete snapshot.
    Full(HwSnapshot),
    /// A delta plus everything needed to find and verify its base.
    Delta {
        /// Name of the base image (see [`write_delta`]).
        base_ref: String,
        /// The base's shape hash at write time.
        base_shape_hash: u64,
        /// The base's content hash at write time.
        base_content_hash: u64,
        /// The changed state.
        delta: SnapshotDelta,
    },
}

impl PersistedImage {
    /// Reads an image eagerly: the whole-file checksum is verified before
    /// anything is parsed, so *any* single flipped byte in the image is a
    /// typed [`PersistError`], never a wrong restore.
    ///
    /// # Errors
    ///
    /// Any [`PersistError`] the image deserves.
    pub fn from_bytes(data: &[u8]) -> Result<PersistedImage, PersistError> {
        let file = SnapshotFile::parse(data.to_vec(), true)?;
        file.materialize()
    }

    /// Reads an image file eagerly (see [`PersistedImage::from_bytes`]).
    ///
    /// # Errors
    ///
    /// I/O failures and any [`PersistError`] the content deserves.
    pub fn read(path: &Path) -> Result<PersistedImage, PersistError> {
        let data = std::fs::read(path).map_err(|e| PersistError::io(path, e))?;
        PersistedImage::from_bytes(&data)
    }
}

/// A lazily opened TLV image: [`SnapshotFile::open`] verifies only the
/// header + section-table checksum, and each section's payload checksum
/// is verified when (and only when) that section is loaded — the on-disk
/// analogue of demand paging. `validate(deep)` escalates to the
/// whole-file checksum plus every section.
#[derive(Clone, Debug)]
pub struct SnapshotFile {
    data: Vec<u8>,
    kind: ImageKind,
    sections: Vec<SectionEntry>,
}

impl SnapshotFile {
    /// Opens an image, verifying magic, version, and the table checksum
    /// only.
    ///
    /// # Errors
    ///
    /// I/O failures, bad magic/version, truncation, or a corrupt table.
    pub fn open(path: &Path) -> Result<SnapshotFile, PersistError> {
        let data = std::fs::read(path).map_err(|e| PersistError::io(path, e))?;
        SnapshotFile::parse(data, false)
    }

    /// Opens an image from bytes already in memory (see
    /// [`SnapshotFile::open`]).
    ///
    /// # Errors
    ///
    /// Bad magic/version, truncation, or a corrupt table.
    pub fn from_bytes(data: Vec<u8>) -> Result<SnapshotFile, PersistError> {
        SnapshotFile::parse(data, false)
    }

    fn parse(data: Vec<u8>, check_file_sum: bool) -> Result<SnapshotFile, PersistError> {
        if check_file_sum {
            if data.len() < 8 {
                return Err(PersistError::Truncated { at: data.len() });
            }
            let (body, tail) = data.split_at(data.len() - 8);
            let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
            if fnv1a(body, FNV_OFFSET) != stored {
                return Err(PersistError::ChecksumMismatch {
                    what: "file".into(),
                });
            }
        }
        if data.len() < HEADER_LEN {
            return Err(PersistError::Truncated { at: data.len() });
        }
        if &data[0..8] != TLV_MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = u16::from_le_bytes([data[8], data[9]]);
        if version != TLV_VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let kind = match data[10] {
            0 => ImageKind::Full,
            1 => ImageKind::Delta,
            k => return Err(PersistError::Malformed(format!("unknown image kind {k}"))),
        };
        if data[11] != 0 {
            return Err(PersistError::Malformed("nonzero reserved byte".into()));
        }
        let n = u32::from_le_bytes([data[12], data[13], data[14], data[15]]) as usize;
        if n > MAX_SECTIONS {
            return Err(PersistError::Malformed(format!(
                "implausible section count {n}"
            )));
        }
        let table_end = HEADER_LEN + n * TABLE_ENTRY_LEN;
        if data.len() < table_end + 8 {
            return Err(PersistError::Truncated { at: data.len() });
        }
        let stored_table_sum = u64::from_le_bytes(
            data[table_end..table_end + 8]
                .try_into()
                .expect("8-byte table checksum"),
        );
        if fnv1a(&data[..table_end], FNV_OFFSET) != stored_table_sum {
            return Err(PersistError::ChecksumMismatch {
                what: "table".into(),
            });
        }
        let mut sections = Vec::with_capacity(n);
        for i in 0..n {
            let e = &data[HEADER_LEN + i * TABLE_ENTRY_LEN..HEADER_LEN + (i + 1) * TABLE_ENTRY_LEN];
            let tag_raw = u32::from_le_bytes(e[0..4].try_into().expect("4 bytes"));
            let tag = SectionTag::from_u32(tag_raw)
                .ok_or_else(|| PersistError::Malformed(format!("unknown section tag {tag_raw}")))?;
            let entry = SectionEntry {
                tag,
                index: u32::from_le_bytes(e[4..8].try_into().expect("4 bytes")),
                offset: u64::from_le_bytes(e[8..16].try_into().expect("8 bytes")),
                len: u64::from_le_bytes(e[16..24].try_into().expect("8 bytes")),
                checksum: u64::from_le_bytes(e[24..32].try_into().expect("8 bytes")),
                content_hash: u64::from_le_bytes(e[32..40].try_into().expect("8 bytes")),
            };
            let end = entry.offset.checked_add(entry.len);
            match end {
                Some(end) if end as usize <= data.len().saturating_sub(8) => {}
                _ => {
                    return Err(PersistError::Malformed(format!(
                        "section {} extends past the payload area",
                        tag.name()
                    )))
                }
            }
            sections.push(entry);
        }
        Ok(SnapshotFile {
            data,
            kind,
            sections,
        })
    }

    /// Whether this image is a full state or a delta.
    pub fn kind(&self) -> ImageKind {
        self.kind
    }

    /// The verified section table.
    pub fn sections(&self) -> &[SectionEntry] {
        &self.sections
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> usize {
        self.data.len()
    }

    fn find(&self, tag: SectionTag, index: u32) -> Result<&SectionEntry, PersistError> {
        self.sections
            .iter()
            .find(|s| s.tag == tag && s.index == index)
            .ok_or_else(|| {
                PersistError::Malformed(format!("missing {} section (index {index})", tag.name()))
            })
    }

    /// Loads one section's payload, verifying its checksum — the unit of
    /// demand paging.
    ///
    /// # Errors
    ///
    /// [`PersistError::ChecksumMismatch`] naming the section on payload
    /// corruption.
    pub fn section_payload(&self, entry: &SectionEntry) -> Result<&[u8], PersistError> {
        let payload = &self.data[entry.offset as usize..(entry.offset + entry.len) as usize];
        if fnv1a(payload, FNV_OFFSET) != entry.checksum {
            return Err(PersistError::ChecksumMismatch {
                what: format!("section {}", entry.tag.name()),
            });
        }
        Ok(payload)
    }

    /// Parses the META section.
    ///
    /// # Errors
    ///
    /// Missing/corrupt META.
    pub fn meta(&self) -> Result<PersistMeta, PersistError> {
        let entry = self.find(SectionTag::Meta, 0)?;
        let payload = self.section_payload(entry)?;
        let mut cur = Cursor {
            data: payload,
            pos: 0,
        };
        let meta = (|| -> Result<PersistMeta, String> {
            Ok(PersistMeta {
                design: cur.get_str()?,
                cycle: cur.get_u64()?,
                shape_hash: cur.get_u64()?,
                content_hash: cur.get_u64()?,
                n_regs: cur.get_u32()?,
                n_mems: cur.get_u32()?,
                base_ref: cur.get_str()?,
            })
        })()
        .map_err(PersistError::Malformed)?;
        if cur.pos != payload.len() {
            return Err(PersistError::Malformed("trailing bytes in META".into()));
        }
        Ok(meta)
    }

    /// Loads the register-file section of a full image.
    ///
    /// # Errors
    ///
    /// Missing/corrupt/malformed REGS.
    pub fn load_regs(&self) -> Result<Vec<RegImage>, PersistError> {
        let entry = self.find(SectionTag::Regs, 0)?;
        let payload = self.section_payload(entry)?;
        let mut cur = Cursor {
            data: payload,
            pos: 0,
        };
        let regs = (|| -> Result<Vec<RegImage>, String> {
            let n = cur.get_u32()? as usize;
            if n > 1 << 24 {
                return Err(format!("implausible register count {n}"));
            }
            let mut regs = Vec::with_capacity(n);
            for _ in 0..n {
                let name = cur.get_str()?;
                let width = cur.get_u32()?;
                let bits = cur.get_u64()?;
                if width == 0 || width > 64 {
                    return Err(format!("register '{name}' has invalid width {width}"));
                }
                regs.push(RegImage { name, width, bits });
            }
            Ok(regs)
        })()
        .map_err(PersistError::Malformed)?;
        if cur.pos != payload.len() {
            return Err(PersistError::Malformed("trailing bytes in REGS".into()));
        }
        Ok(regs)
    }

    /// Loads memory section `index` of a full image.
    ///
    /// # Errors
    ///
    /// Missing/corrupt/malformed MEM section.
    pub fn load_mem(&self, index: u32) -> Result<MemImage, PersistError> {
        let entry = self.find(SectionTag::Mem, index)?;
        let payload = self.section_payload(entry)?;
        let mut cur = Cursor {
            data: payload,
            pos: 0,
        };
        let mem = (|| -> Result<MemImage, String> {
            let name = cur.get_str()?;
            let width = cur.get_u32()?;
            let depth = cur.get_u32()? as usize;
            if width == 0 || width > 64 {
                return Err(format!("memory '{name}' has invalid width {width}"));
            }
            if depth > 1 << 28 {
                return Err(format!("implausible memory depth {depth}"));
            }
            let mut words = Vec::with_capacity(depth);
            for _ in 0..depth {
                words.push(cur.get_u64()?);
            }
            Ok(MemImage { name, width, words })
        })()
        .map_err(PersistError::Malformed)?;
        if cur.pos != payload.len() {
            return Err(PersistError::Malformed("trailing bytes in MEM".into()));
        }
        Ok(mem)
    }

    /// Loads the delta sections of a delta image.
    ///
    /// # Errors
    ///
    /// Missing/corrupt/malformed delta sections, or calling this on a
    /// full image.
    pub fn load_delta(&self) -> Result<SnapshotDelta, PersistError> {
        if self.kind != ImageKind::Delta {
            return Err(PersistError::Malformed(
                "full image has no delta sections".into(),
            ));
        }
        let meta = self.meta()?;
        let mut delta = SnapshotDelta {
            cycle: meta.cycle,
            ..Default::default()
        };
        let entry = self.find(SectionTag::DeltaRegs, 0)?;
        let payload = self.section_payload(entry)?;
        let mut cur = Cursor {
            data: payload,
            pos: 0,
        };
        (|| -> Result<(), String> {
            let n = cur.get_u32()? as usize;
            if n > 1 << 24 {
                return Err(format!("implausible delta register count {n}"));
            }
            for _ in 0..n {
                let i = cur.get_u32()?;
                let bits = cur.get_u64()?;
                delta.regs.push((i, bits));
            }
            Ok(())
        })()
        .map_err(PersistError::Malformed)?;
        if cur.pos != payload.len() {
            return Err(PersistError::Malformed(
                "trailing bytes in DELTA_REGS".into(),
            ));
        }
        let entry = self.find(SectionTag::DeltaMem, 0)?;
        let payload = self.section_payload(entry)?;
        let mut cur = Cursor {
            data: payload,
            pos: 0,
        };
        (|| -> Result<(), String> {
            let n = cur.get_u32()? as usize;
            if n > 1 << 28 {
                return Err(format!("implausible delta word count {n}"));
            }
            for _ in 0..n {
                let mi = cur.get_u32()?;
                let wi = cur.get_u32()?;
                let v = cur.get_u64()?;
                delta.mem_words.push((mi, wi, v));
            }
            Ok(())
        })()
        .map_err(PersistError::Malformed)?;
        if cur.pos != payload.len() {
            return Err(PersistError::Malformed(
                "trailing bytes in DELTA_MEM".into(),
            ));
        }
        Ok(delta)
    }

    /// Materializes the image's content eagerly: every section loaded and
    /// parsed (each payload checksum verified along the way).
    ///
    /// # Errors
    ///
    /// Any section problem found.
    pub fn materialize(&self) -> Result<PersistedImage, PersistError> {
        let meta = self.meta()?;
        match self.kind {
            ImageKind::Full => {
                let regs = self.load_regs()?;
                if regs.len() != meta.n_regs as usize {
                    return Err(PersistError::Malformed(format!(
                        "META claims {} registers, REGS holds {}",
                        meta.n_regs,
                        regs.len()
                    )));
                }
                let mut mems = Vec::with_capacity(meta.n_mems as usize);
                for k in 0..meta.n_mems {
                    mems.push(self.load_mem(k)?);
                }
                let snap = HwSnapshot {
                    design: meta.design,
                    cycle: meta.cycle,
                    regs,
                    mems,
                };
                if snap.shape_hash() != meta.shape_hash {
                    return Err(PersistError::Malformed(
                        "reassembled shape hash differs from META".into(),
                    ));
                }
                if snap.content_hash() != meta.content_hash {
                    return Err(PersistError::ChecksumMismatch {
                        what: "content".into(),
                    });
                }
                snap.validate().map_err(PersistError::Malformed)?;
                Ok(PersistedImage::Full(snap))
            }
            ImageKind::Delta => {
                let delta = self.load_delta()?;
                Ok(PersistedImage::Delta {
                    base_ref: meta.base_ref,
                    base_shape_hash: meta.shape_hash,
                    base_content_hash: meta.content_hash,
                    delta,
                })
            }
        }
    }

    /// Validates the image. Shallow (`deep == false`) re-checks the
    /// header/table invariants and META; deep additionally verifies the
    /// trailing whole-file checksum, every section payload checksum, the
    /// per-section content hashes, and full structural validation of the
    /// reassembled state.
    ///
    /// # Errors
    ///
    /// The first problem found.
    pub fn validate(&self, deep: bool) -> Result<(), PersistError> {
        let meta = self.meta()?;
        if !deep {
            return Ok(());
        }
        if self.data.len() < 8 {
            return Err(PersistError::Truncated {
                at: self.data.len(),
            });
        }
        let (body, tail) = self.data.split_at(self.data.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a(body, FNV_OFFSET) != stored {
            return Err(PersistError::ChecksumMismatch {
                what: "file".into(),
            });
        }
        match self.materialize()? {
            PersistedImage::Full(snap) => {
                let entry = self.find(SectionTag::Regs, 0)?;
                if regs_values_hash(snap.regs.iter().map(|r| r.bits)) != entry.content_hash {
                    return Err(PersistError::ChecksumMismatch {
                        what: "REGS content hash".into(),
                    });
                }
                for (k, m) in snap.mems.iter().enumerate() {
                    let entry = self.find(SectionTag::Mem, k as u32)?;
                    if mem_words_hash(&m.words) != entry.content_hash {
                        return Err(PersistError::ChecksumMismatch {
                            what: format!("MEM[{k}] content hash"),
                        });
                    }
                }
            }
            PersistedImage::Delta { delta, .. } => {
                if meta.base_ref.is_empty() {
                    return Err(PersistError::Malformed(
                        "delta image with empty base reference".into(),
                    ));
                }
                for &(i, _) in &delta.regs {
                    if i >= meta.n_regs {
                        return Err(PersistError::Malformed(format!(
                            "delta register index {i} outside base shape ({} regs)",
                            meta.n_regs
                        )));
                    }
                }
                for &(mi, _, _) in &delta.mem_words {
                    if mi >= meta.n_mems {
                        return Err(PersistError::Malformed(format!(
                            "delta memory index {mi} outside base shape ({} mems)",
                            meta.n_mems
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies a delta image to its base, after verifying the base's
    /// identity against the hashes pinned at write time.
    ///
    /// # Errors
    ///
    /// [`PersistError::BaseMismatch`] when `base` is not the image's
    /// recorded base; otherwise any load error.
    pub fn apply_to_base(&self, base: &HwSnapshot) -> Result<HwSnapshot, PersistError> {
        let meta = self.meta()?;
        if self.kind != ImageKind::Delta {
            return Err(PersistError::Malformed(
                "apply_to_base on a full image".into(),
            ));
        }
        if base.shape_hash() != meta.shape_hash {
            return Err(PersistError::BaseMismatch {
                reference: meta.base_ref.clone(),
                detail: "shape hash differs".into(),
            });
        }
        if base.content_hash() != meta.content_hash {
            return Err(PersistError::BaseMismatch {
                reference: meta.base_ref.clone(),
                detail: "content hash differs".into(),
            });
        }
        let delta = self.load_delta()?;
        delta.apply(base).map_err(PersistError::Malformed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample() -> HwSnapshot {
        HwSnapshot {
            design: "soc_top".into(),
            cycle: 4242,
            regs: (0..10)
                .map(|i| RegImage {
                    name: format!("u_p.r{i}"),
                    width: 32,
                    bits: i * 3,
                })
                .collect(),
            mems: vec![
                MemImage {
                    name: "u_p.ram".into(),
                    width: 32,
                    words: (0..64).collect(),
                },
                MemImage {
                    name: "u_p.fifo".into(),
                    width: 16,
                    words: vec![7; 8],
                },
            ],
        }
    }

    #[test]
    fn full_roundtrip_eager() {
        let s = sample();
        let bytes = write_full(&s);
        match PersistedImage::from_bytes(&bytes).unwrap() {
            PersistedImage::Full(got) => assert_eq!(got, s),
            _ => panic!("expected full image"),
        }
        // Serialization is deterministic.
        assert_eq!(bytes, write_full(&s));
    }

    #[test]
    fn full_roundtrip_lazy_sections() {
        let s = sample();
        let file = SnapshotFile::from_bytes(write_full(&s)).unwrap();
        assert_eq!(file.kind(), ImageKind::Full);
        let meta = file.meta().unwrap();
        assert_eq!(meta.design, "soc_top");
        assert_eq!(meta.n_regs, 10);
        assert_eq!(meta.n_mems, 2);
        assert!(meta.base_ref.is_empty());
        let regs = file.load_regs().unwrap();
        assert_eq!(regs, s.regs);
        assert_eq!(file.load_mem(1).unwrap(), s.mems[1]);
        file.validate(true).unwrap();
    }

    #[test]
    fn delta_roundtrip_and_base_pinning() {
        let base = sample();
        let mut new = base.clone();
        new.cycle = 5000;
        new.regs[3].bits = 0xffff;
        new.mems[0].words[9] = 0xabcd;
        let delta = SnapshotDelta::between(&base, &new).unwrap();
        let bytes = write_delta(&base, &delta, "base-0001");
        let file = SnapshotFile::from_bytes(bytes.clone()).unwrap();
        assert_eq!(file.kind(), ImageKind::Delta);
        assert_eq!(file.meta().unwrap().base_ref, "base-0001");
        assert_eq!(file.apply_to_base(&base).unwrap(), new);
        file.validate(true).unwrap();
        // The wrong base is rejected by content hash.
        let mut wrong = base.clone();
        wrong.regs[0].bits ^= 1;
        match file.apply_to_base(&wrong) {
            Err(PersistError::BaseMismatch { .. }) => {}
            other => panic!("expected BaseMismatch, got {other:?}"),
        }
        match PersistedImage::from_bytes(&bytes).unwrap() {
            PersistedImage::Delta {
                base_ref, delta: d, ..
            } => {
                assert_eq!(base_ref, "base-0001");
                assert_eq!(d, delta);
            }
            _ => panic!("expected delta image"),
        }
    }

    #[test]
    fn every_single_byte_flip_is_a_typed_error() {
        let s = sample();
        let bytes = write_full(&s);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                PersistedImage::from_bytes(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn lazy_open_catches_table_corruption() {
        let s = sample();
        let bytes = write_full(&s);
        // Flip a byte inside the section table: caught at open time.
        let mut bad = bytes.clone();
        bad[HEADER_LEN + 4] ^= 1;
        assert!(matches!(
            SnapshotFile::from_bytes(bad),
            Err(PersistError::ChecksumMismatch { .. }) | Err(PersistError::Malformed(_))
        ));
        // Flip a payload byte: open succeeds (lazy), loading that section
        // fails, deep validation fails.
        let file_ok = SnapshotFile::from_bytes(bytes.clone()).unwrap();
        let regs_entry = file_ok.find(SectionTag::Regs, 0).unwrap();
        let mut bad = bytes.clone();
        bad[regs_entry.offset as usize + 6] ^= 1;
        let file = SnapshotFile::from_bytes(bad).unwrap();
        assert!(matches!(
            file.load_regs(),
            Err(PersistError::ChecksumMismatch { .. })
        ));
        assert!(file.validate(true).is_err());
        assert!(file.load_mem(0).is_ok(), "untouched sections still load");
    }

    #[test]
    fn truncation_and_magic_and_version_errors() {
        let s = sample();
        let bytes = write_full(&s);
        assert!(matches!(
            SnapshotFile::from_bytes(bytes[..10].to_vec()),
            Err(PersistError::Truncated { .. })
        ));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            SnapshotFile::from_bytes(bad),
            Err(PersistError::BadMagic)
        ));
        let mut bad = bytes.clone();
        bad[8] = 99;
        // Version bump also breaks the table checksum; re-sign the table
        // to prove the version check itself fires.
        let n = s.mems.len() + 2;
        let table_end = HEADER_LEN + n * TABLE_ENTRY_LEN;
        let sum = fnv1a(&bad[..table_end], FNV_OFFSET);
        bad[table_end..table_end + 8].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            SnapshotFile::from_bytes(bad),
            Err(PersistError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn content_hashes_enable_section_skip_decisions() {
        let s = sample();
        let file = SnapshotFile::from_bytes(write_full(&s)).unwrap();
        let regs_entry = file.find(SectionTag::Regs, 0).unwrap();
        assert_eq!(
            regs_entry.content_hash,
            regs_values_hash(s.regs.iter().map(|r| r.bits))
        );
        let mem0 = file.find(SectionTag::Mem, 0).unwrap();
        assert_eq!(mem0.content_hash, mem_words_hash(&s.mems[0].words));
        // A live state with one changed word hashes differently.
        let mut live = s.mems[0].words.clone();
        live[3] ^= 1;
        assert_ne!(mem0.content_hash, mem_words_hash(&live));
    }

    #[test]
    fn capture_round_trips_through_files() {
        let base = Arc::new(sample());
        let mut new = (*base).clone();
        new.regs[1].bits = 999;
        let delta = SnapshotDelta::between(&base, &new).unwrap();
        let cap = crate::SnapshotCapture::Delta {
            base: base.clone(),
            delta: delta.clone(),
        };
        let base_bytes = write_full(&base);
        let delta_bytes = write_delta(&base, &delta, "b");
        let base_file = SnapshotFile::from_bytes(base_bytes).unwrap();
        let delta_file = SnapshotFile::from_bytes(delta_bytes).unwrap();
        let base_back = match base_file.materialize().unwrap() {
            PersistedImage::Full(s) => s,
            _ => panic!(),
        };
        let got = delta_file.apply_to_base(&base_back).unwrap();
        assert_eq!(got, cap.materialize().unwrap());
    }
}
