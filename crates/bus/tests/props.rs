//! Property tests for snapshot serialization and delta compression:
//! `SnapshotDelta::between(a, b).apply(a)` must reproduce `b` exactly,
//! and `diff_regs` must agree with the delta's register set. These are
//! the invariants the incremental snapshot transfer (HardSnap §IV-C)
//! depends on.

use hardsnap_bus::{HwSnapshot, MemImage, RegImage, SnapshotDelta};
use hardsnap_util::prop::from_fn;
use hardsnap_util::prop_check;
use hardsnap_util::Rng;

fn mask(w: u32) -> u64 {
    if w == 64 {
        u64::MAX
    } else {
        (1 << w) - 1
    }
}

fn arb_snapshot(rng: &mut Rng) -> HwSnapshot {
    let regs = (0..rng.gen_range(1usize..12))
        .map(|i| {
            let width = rng.gen_range(1u32..=64);
            RegImage {
                name: format!("r{i}"),
                width,
                bits: rng.next_u64() & mask(width),
            }
        })
        .collect();
    let mems = (0..rng.gen_range(0usize..3))
        .map(|i| MemImage {
            name: format!("m{i}"),
            width: 32,
            words: (0..rng.gen_range(1usize..32))
                .map(|_| rng.next_u64() & 0xffff_ffff)
                .collect(),
        })
        .collect();
    HwSnapshot {
        design: "prop".into(),
        cycle: rng.next_u64(),
        regs,
        mems,
    }
}

/// Mutates a random subset of `snap`'s state, keeping the shape.
fn perturb(rng: &mut Rng, snap: &HwSnapshot) -> HwSnapshot {
    let mut out = snap.clone();
    out.cycle = rng.next_u64();
    for r in &mut out.regs {
        if rng.gen_bool(0.4) {
            r.bits = rng.next_u64() & mask(r.width);
        }
    }
    for m in &mut out.mems {
        for w in &mut m.words {
            if rng.gen_bool(0.2) {
                *w = rng.next_u64() & 0xffff_ffff;
            }
        }
    }
    out
}

#[test]
fn delta_between_then_apply_is_identity() {
    prop_check!(cases = 128, seed = 0xDE17A_ABB, (pair in from_fn(|rng: &mut Rng| {
        let base = arb_snapshot(rng);
        let new = perturb(rng, &base);
        (base, new)
    })) => {
        let (base, new) = pair;
        let delta = SnapshotDelta::between(&base, &new).unwrap();
        assert_eq!(delta.apply(&base).unwrap(), new);
        // The delta names exactly the registers diff_regs reports.
        let mut from_delta: Vec<&str> = delta
            .regs
            .iter()
            .map(|&(i, _)| base.regs[i as usize].name.as_str())
            .collect();
        from_delta.sort_unstable();
        let mut from_diff = base.diff_regs(&new);
        from_diff.sort_unstable();
        assert_eq!(from_delta, from_diff);
    });
}

#[test]
fn empty_delta_for_identical_snapshots() {
    prop_check!(cases = 64, seed = 0xE401_DE17, (snap in from_fn(arb_snapshot)) => {
        let delta = SnapshotDelta::between(&snap, &snap).unwrap();
        assert!(delta.regs.is_empty());
        assert!(delta.mem_words.is_empty());
        assert!(snap.diff_regs(&snap).is_empty());
        assert_eq!(delta.apply(&snap).unwrap(), snap);
    });
}

#[test]
fn bytes_roundtrip_and_corrupt_header_is_an_error() {
    prop_check!(cases = 64, seed = 0xB17E_5AFE, (snap in from_fn(arb_snapshot)) => {
        let bytes = snap.to_bytes();
        assert_eq!(bytes.len(), snap.byte_size());
        assert_eq!(HwSnapshot::from_bytes(&bytes).unwrap(), snap);
        // Truncations must fail cleanly, never panic.
        for cut in [0, 1, bytes.len() / 2, bytes.len().saturating_sub(1)] {
            if cut < bytes.len() {
                assert!(HwSnapshot::from_bytes(&bytes[..cut]).is_err());
            }
        }
    });
}
