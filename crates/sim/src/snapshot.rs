//! Activity-proportional snapshot capture for the simulator backend.
//!
//! [`SnapshotTracker`] makes capture and restore O(changed) instead of
//! O(design): it resolves every clocked register and memory to its
//! simulator id once, keeps a shared immutable [`Arc`] base image, and
//! accumulates the bytecode engine's snapshot journal into cumulative
//! dirty-since-base sets. A delta capture then touches only journalled
//! locations, and a restore pokes only the locations whose value differs
//! from the requested image. On the interpreter backend (no journal) the
//! tracker falls back to a full index-aligned scan, producing the exact
//! same delta bit-for-bit — only the host cost differs, never the image.
//!
//! The tracker deliberately lives at the [`Simulator`] level rather than
//! inside [`crate::SimTarget`] so designs without AXI ports (e.g. the
//! random modules used by property tests) can exercise delta capture
//! directly.

use crate::Simulator;
use hardsnap_bus::{HwSnapshot, MemImage, RegImage, SnapshotCapture, SnapshotDelta};
use hardsnap_rtl::{MemId, NetId};
use std::sync::Arc;

/// Rebase when a delta grows to at least this fraction (1/N) of the full
/// image: shipping the delta would no longer be meaningfully cheaper and
/// every later delta would only grow from there.
const REBASE_DIVISOR: usize = 4;

/// Tracks dirty state between captures and emits copy-on-write delta
/// images against a shared immutable base.
pub struct SnapshotTracker {
    /// Clocked register net ids, in canonical capture (scan-chain) order.
    reg_ids: Vec<NetId>,
    /// Net slot -> index into `reg_ids` (`u32::MAX` = not a captured
    /// register, e.g. a combinational net or input port).
    slot_to_reg: Vec<u32>,
    /// Memory ids, in canonical capture order.
    mem_ids: Vec<MemId>,
    /// The shared base image deltas are expressed against. `None` until
    /// the first capture (or after [`SnapshotTracker::reset`]).
    base: Option<Arc<HwSnapshot>>,
    /// Cumulative dirty-since-base register flags + list (journal path).
    reg_dirty: Vec<bool>,
    reg_dirty_list: Vec<u32>,
    /// Cumulative dirty-since-base memory-word flags + list.
    mem_dirty: Vec<Vec<bool>>,
    mem_dirty_list: Vec<(u32, u32)>,
    /// Journal drain scratch (reused across captures).
    nets_scratch: Vec<u32>,
    mems_scratch: Vec<(u32, u32)>,
}

/// What a [`SnapshotTracker::restore_diff`] actually had to touch —
/// drives the activity-proportional restore cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// Registers whose value differed and were poked.
    pub regs_changed: usize,
    /// Memory words whose value differed and were poked.
    pub words_changed: usize,
}

impl RestoreStats {
    /// Delta-equivalent byte volume of the restore (same accounting as
    /// [`SnapshotDelta::byte_size`]).
    pub fn byte_size(&self) -> usize {
        8 + self.regs_changed * 12 + self.words_changed * 16
    }
}

impl SnapshotTracker {
    /// Resolves capture-order register and memory ids for `sim`'s design.
    pub fn new(sim: &Simulator) -> Self {
        let module = sim.module();
        let reg_ids = module.clocked_regs();
        let mut slot_to_reg = vec![u32::MAX; module.iter_nets().count()];
        for (ri, id) in reg_ids.iter().enumerate() {
            slot_to_reg[id.0 as usize] = ri as u32;
        }
        let mem_ids: Vec<MemId> = module.iter_mems().map(|(id, _)| id).collect();
        let mem_dirty = mem_ids
            .iter()
            .map(|&id| vec![false; sim.mem_words(id).len()])
            .collect();
        SnapshotTracker {
            reg_dirty: vec![false; reg_ids.len()],
            reg_dirty_list: Vec::new(),
            mem_dirty,
            mem_dirty_list: Vec::new(),
            nets_scratch: Vec::new(),
            mems_scratch: Vec::new(),
            reg_ids,
            slot_to_reg,
            mem_ids,
            base: None,
        }
    }

    /// Drops the base and all dirty state; the next capture is full.
    pub fn reset(&mut self) {
        self.base = None;
        self.clear_dirty();
    }

    /// The current base image, if a capture has established one.
    pub fn base(&self) -> Option<&Arc<HwSnapshot>> {
        self.base.as_ref()
    }

    fn clear_dirty(&mut self) {
        for &ri in &self.reg_dirty_list {
            self.reg_dirty[ri as usize] = false;
        }
        self.reg_dirty_list.clear();
        for &(mi, wi) in &self.mem_dirty_list {
            self.mem_dirty[mi as usize][wi as usize] = false;
        }
        self.mem_dirty_list.clear();
    }

    /// Builds the canonical full snapshot by scanning every resolved
    /// register and memory, in capture order.
    pub fn capture_full(&self, sim: &Simulator) -> HwSnapshot {
        let module = sim.module();
        let regs = self
            .reg_ids
            .iter()
            .map(|&id| {
                let net = module.net(id);
                RegImage {
                    name: net.name.clone(),
                    width: net.width,
                    bits: sim.peek_id(id).bits(),
                }
            })
            .collect();
        let mems = self
            .mem_ids
            .iter()
            .map(|&id| {
                let mem = module.memory(id);
                MemImage {
                    name: mem.name.clone(),
                    width: mem.width,
                    words: sim.mem_words(id).to_vec(),
                }
            })
            .collect();
        HwSnapshot {
            design: module.name.clone(),
            cycle: sim.cycle(),
            regs,
            mems,
        }
    }

    /// Captures the current state as a delta against the shared base, or
    /// as a new full base when none exists yet / the delta has grown past
    /// the rebase threshold. Materializing the returned capture is
    /// guaranteed bit-identical to [`SnapshotTracker::capture_full`].
    pub fn capture(&mut self, sim: &mut Simulator) -> SnapshotCapture {
        let base = match &self.base {
            Some(b) => b.clone(),
            None => {
                // Journal from this moment on; everything journalled
                // before the base existed is already inside the base.
                sim.enable_snapshot_journal();
                let snap = Arc::new(self.capture_full(sim));
                sim.drain_snapshot_changes(&mut self.nets_scratch, &mut self.mems_scratch);
                self.nets_scratch.clear();
                self.mems_scratch.clear();
                self.clear_dirty();
                self.base = Some(snap.clone());
                return SnapshotCapture::Full(snap);
            }
        };

        let mut delta = SnapshotDelta {
            regs: Vec::new(),
            mem_words: Vec::new(),
            cycle: sim.cycle(),
        };
        if sim.drain_snapshot_changes(&mut self.nets_scratch, &mut self.mems_scratch) {
            // Bytecode path: fold the journal into the cumulative
            // dirty-since-base sets, then emit only locations that still
            // differ from the base. Locations that changed back are
            // dropped from the lists — any later change re-journals them.
            for i in 0..self.nets_scratch.len() {
                let ri = self.slot_to_reg[self.nets_scratch[i] as usize];
                if ri != u32::MAX && !self.reg_dirty[ri as usize] {
                    self.reg_dirty[ri as usize] = true;
                    self.reg_dirty_list.push(ri);
                }
            }
            for i in 0..self.mems_scratch.len() {
                let (mi, wi) = self.mems_scratch[i];
                if !self.mem_dirty[mi as usize][wi as usize] {
                    self.mem_dirty[mi as usize][wi as usize] = true;
                    self.mem_dirty_list.push((mi, wi));
                }
            }
            let mut list = std::mem::take(&mut self.reg_dirty_list);
            list.retain(|&ri| {
                let cur = sim.peek_id(self.reg_ids[ri as usize]).bits();
                if cur != base.regs[ri as usize].bits {
                    delta.regs.push((ri, cur));
                    true
                } else {
                    self.reg_dirty[ri as usize] = false;
                    false
                }
            });
            self.reg_dirty_list = list;
            let mut mlist = std::mem::take(&mut self.mem_dirty_list);
            mlist.retain(|&(mi, wi)| {
                let cur = sim.mem_words(self.mem_ids[mi as usize])[wi as usize];
                if cur != base.mems[mi as usize].words[wi as usize] {
                    delta.mem_words.push((mi, wi, cur));
                    true
                } else {
                    self.mem_dirty[mi as usize][wi as usize] = false;
                    false
                }
            });
            self.mem_dirty_list = mlist;
            delta.regs.sort_unstable_by_key(|&(i, _)| i);
            delta.mem_words.sort_unstable_by_key(|&(m, w, _)| (m, w));
        } else {
            // Interpreter fallback: full index-aligned scan against the
            // base. Host cost is O(design), but the emitted image is the
            // same delta the journal path would produce.
            for (ri, &id) in self.reg_ids.iter().enumerate() {
                let cur = sim.peek_id(id).bits();
                if cur != base.regs[ri].bits {
                    delta.regs.push((ri as u32, cur));
                }
            }
            for (mi, &id) in self.mem_ids.iter().enumerate() {
                let words = sim.mem_words(id);
                let base_words = &base.mems[mi].words;
                for (wi, (&cur, &b)) in words.iter().zip(base_words).enumerate() {
                    if cur != b {
                        delta.mem_words.push((mi as u32, wi as u32, cur));
                    }
                }
            }
        }

        if delta.byte_size() * REBASE_DIVISOR >= base.byte_size() {
            // The delta stopped paying for itself: promote the current
            // state to a new shared base (journal already drained above).
            let snap = Arc::new(self.capture_full(sim));
            self.clear_dirty();
            self.base = Some(snap.clone());
            return SnapshotCapture::Full(snap);
        }
        SnapshotCapture::Delta { base, delta }
    }

    /// Validates that `snap` matches the design's shape exactly — same
    /// registers (name, width, order), same memories (name, width,
    /// depth), all values normalized to their width — WITHOUT touching
    /// simulator state. A snapshot that passes cannot fail mid-restore,
    /// which is what makes [`SnapshotTracker::restore_diff`]
    /// all-or-nothing.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn validate_shape(&self, sim: &Simulator, snap: &HwSnapshot) -> Result<(), String> {
        let module = sim.module();
        if snap.regs.len() != self.reg_ids.len() {
            return Err(format!(
                "register count mismatch: snapshot has {}, design has {}",
                snap.regs.len(),
                self.reg_ids.len()
            ));
        }
        for (&id, r) in self.reg_ids.iter().zip(&snap.regs) {
            let net = module.net(id);
            if r.name != net.name || r.width != net.width {
                return Err(format!(
                    "register mismatch: snapshot has '{}' ({} bits), design has '{}' ({} bits)",
                    r.name, r.width, net.name, net.width
                ));
            }
            if r.width < 64 && r.bits >> r.width != 0 {
                return Err(format!(
                    "register '{}' value {:#x} exceeds its {} bits",
                    r.name, r.bits, r.width
                ));
            }
        }
        if snap.mems.len() != self.mem_ids.len() {
            return Err(format!(
                "memory count mismatch: snapshot has {}, design has {}",
                snap.mems.len(),
                self.mem_ids.len()
            ));
        }
        for (&id, m) in self.mem_ids.iter().zip(&snap.mems) {
            let mem = module.memory(id);
            if m.name != mem.name || m.width != mem.width {
                return Err(format!(
                    "memory mismatch: snapshot has '{}' ({} bits), design has '{}' ({} bits)",
                    m.name, m.width, mem.name, mem.width
                ));
            }
            let depth = sim.mem_words(id).len();
            if m.words.len() != depth {
                return Err(format!(
                    "memory '{}' depth mismatch: snapshot has {} words, design has {}",
                    m.name,
                    m.words.len(),
                    depth
                ));
            }
            if m.width < 64 {
                let msk = hardsnap_rtl::mask(m.width);
                if let Some(wi) = m.words.iter().position(|&w| w & !msk != 0) {
                    return Err(format!(
                        "memory '{}'[{}] value exceeds its {} bits",
                        m.name, wi, m.width
                    ));
                }
            }
        }
        Ok(())
    }

    /// Restores `snap` by poking only the registers and memory words
    /// whose current value differs — O(changed) between the loaded state
    /// and the requested snapshot. The shape is validated up front (see
    /// [`SnapshotTracker::validate_shape`]), so the restore either
    /// happens completely or leaves the simulator untouched.
    ///
    /// Pokes flow through the engine's normal write paths, so on the
    /// bytecode backend they land in the snapshot journal and the
    /// cumulative dirty sets stay sound for the next delta capture.
    ///
    /// # Errors
    ///
    /// Returns the shape-validation error; on `Err` no state was written.
    pub fn restore_diff(
        &mut self,
        sim: &mut Simulator,
        snap: &HwSnapshot,
    ) -> Result<RestoreStats, String> {
        self.validate_shape(sim, snap)?;
        let mut stats = RestoreStats::default();
        for (&id, r) in self.reg_ids.iter().zip(&snap.regs) {
            if sim.peek_id(id).bits() != r.bits {
                sim.poke_id(id, r.bits);
                stats.regs_changed += 1;
            }
        }
        for (&id, m) in self.mem_ids.iter().zip(&snap.mems) {
            // Bulk fast path: untouched memories (the common case for
            // quiescent peripherals) are skipped with one slice compare.
            if sim.mem_words(id) == &m.words[..] {
                continue;
            }
            for (wi, &w) in m.words.iter().enumerate() {
                if sim.mem_words(id)[wi] != w {
                    sim.poke_mem_id(id, wi as u32, w);
                    stats.words_changed += 1;
                }
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimEngine;
    use hardsnap_verilog::parse_design;

    const TOY: &str = r#"
    module toy (input wire clk, input wire rst, input wire [7:0] d,
                output reg [7:0] q);
        reg [7:0] shadow;
        reg [7:0] mem [0:15];
        always @(posedge clk) begin
            if (rst) begin
                q <= 8'd0; shadow <= 8'd0;
            end else begin
                q <= d; shadow <= q;
                mem[d[3:0]] <= q;
            end
        end
    endmodule
    "#;

    fn sim(engine: SimEngine) -> Simulator {
        let d = parse_design(TOY).unwrap();
        let flat = hardsnap_rtl::elaborate(&d, "toy").unwrap();
        Simulator::with_engine(flat, engine).unwrap()
    }

    fn run_a_bit(s: &mut Simulator, seed: u64) {
        for i in 0..8u64 {
            s.poke("d", (seed.wrapping_mul(31).wrapping_add(i)) & 0xff)
                .unwrap();
            s.step(1);
        }
    }

    #[test]
    fn delta_capture_materializes_identically_to_full() {
        for engine in [SimEngine::Bytecode, SimEngine::Interpreter] {
            let mut s = sim(engine);
            let mut tr = SnapshotTracker::new(&s);
            run_a_bit(&mut s, 1);
            let first = tr.capture(&mut s);
            assert!(matches!(first, SnapshotCapture::Full(_)));
            run_a_bit(&mut s, 2);
            let cap = tr.capture(&mut s);
            let full = tr.capture_full(&s);
            assert_eq!(
                cap.materialize().unwrap().content_hash(),
                full.content_hash()
            );
            assert_eq!(cap.materialize().unwrap(), full);
        }
    }

    #[test]
    fn restore_diff_rewinds_exactly_and_reports_activity() {
        let mut s = sim(SimEngine::Bytecode);
        let mut tr = SnapshotTracker::new(&s);
        run_a_bit(&mut s, 3);
        let snap = tr.capture_full(&s);
        run_a_bit(&mut s, 4);
        let stats = tr.restore_diff(&mut s, &snap).unwrap();
        assert!(stats.regs_changed > 0 || stats.words_changed > 0);
        assert_eq!(tr.capture_full(&s).content_hash(), snap.content_hash());
        // Restoring the state we're already in touches nothing.
        let stats2 = tr.restore_diff(&mut s, &snap).unwrap();
        assert_eq!(stats2, RestoreStats::default());
    }

    #[test]
    fn restore_diff_rejects_bad_shapes_without_touching_state() {
        let mut s = sim(SimEngine::Bytecode);
        let mut tr = SnapshotTracker::new(&s);
        run_a_bit(&mut s, 5);
        let good = tr.capture_full(&s);
        let mut bad = good.clone();
        bad.regs[0].bits = 1 << 20; // exceeds the 8-bit width
        assert!(tr.restore_diff(&mut s, &bad).is_err());
        // The failed restore wrote nothing.
        assert_eq!(tr.capture_full(&s).content_hash(), good.content_hash());
        let mut bad2 = good.clone();
        bad2.regs.remove(0);
        assert!(tr.restore_diff(&mut s, &bad2).is_err());
        let mut bad3 = good;
        bad3.mems[0].words.pop();
        assert!(tr.restore_diff(&mut s, &bad3).is_err());
    }

    #[test]
    fn deltas_rebase_once_they_stop_paying() {
        let mut s = sim(SimEngine::Bytecode);
        let mut tr = SnapshotTracker::new(&s);
        let first = tr.capture(&mut s);
        let base_hash = match &first {
            SnapshotCapture::Full(b) => b.content_hash(),
            _ => unreachable!(),
        };
        // Touch essentially every word of state.
        for round in 0..32u64 {
            run_a_bit(&mut s, round.wrapping_mul(7919).wrapping_add(13));
        }
        let cap = tr.capture(&mut s);
        match cap {
            SnapshotCapture::Full(b) => assert_ne!(b.content_hash(), base_hash),
            SnapshotCapture::Delta {
                ref base,
                ref delta,
            } => {
                // If it stayed a delta it must still be cheap.
                assert!(delta.byte_size() * REBASE_DIVISOR < base.byte_size());
            }
        }
    }
}
