//! # hardsnap-sim
//!
//! Cycle-accurate RTL simulation target for the HardSnap reproduction —
//! the stand-in for the paper's Verilator-generated simulator with a
//! remote bus interface (§IV-A, path A of Fig. 3).
//!
//! * [`Simulator`] executes a flat [`hardsnap_rtl::Module`] on a
//!   compiled, levelized bytecode program with activity-driven
//!   (dirty-cone) scheduling — Verilator-style — with correct
//!   non-blocking clocked semantics, and offers **full visibility**:
//!   peek/poke of any net or memory word by hierarchical name. The
//!   original tree-walking interpreter is retained behind
//!   [`SimEngine::Interpreter`] as the differential-testing reference.
//! * [`AxiLite`] drives the design's AXI4-Lite slave ports with real
//!   multi-cycle handshakes (the "memory bus abstraction layer").
//! * [`VcdTrace`] records full execution traces (the simulator's selling
//!   point in the paper's multi-target orchestration).
//! * [`SimTarget`] packages all of it behind the
//!   [`hardsnap_bus::HwTarget`] trait with a CRIU-style snapshot cost
//!   model.

#![warn(missing_docs)]

pub mod axi;
mod compiled;
pub mod engine;
pub mod snapshot;
pub mod target;
pub mod vcd;
pub mod vcd_read;

pub use axi::{AxiLite, AXI_TIMEOUT_CYCLES};
pub use engine::{SimEngine, Simulator};
pub use snapshot::{RestoreStats, SnapshotTracker};
pub use target::{SimTarget, SimTimeModel};
pub use vcd::VcdTrace;
pub use vcd_read::{first_divergence, Divergence, VcdData, VcdParseError};

use std::error::Error;
use std::fmt;

/// Errors from simulator construction and state access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The module failed RTL validation.
    Rtl(hardsnap_rtl::RtlError),
    /// The combinational fabric contains a cycle through the named nets.
    CombLoop(Vec<String>),
    /// No net or memory of this name exists.
    UnknownNet(String),
    /// A memory access was out of range.
    OutOfRange {
        /// Memory name.
        name: String,
        /// Offending word index.
        index: u32,
    },
    /// A required port is missing from the design.
    MissingPort(String),
    /// The construct is outside the supported simulation subset.
    Unsupported(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Rtl(e) => write!(f, "rtl error: {e}"),
            SimError::CombLoop(nets) => {
                write!(f, "combinational loop through nets: {}", nets.join(", "))
            }
            SimError::UnknownNet(n) => write!(f, "unknown net or memory '{n}'"),
            SimError::OutOfRange { name, index } => {
                write!(f, "memory '{name}' index {index} out of range")
            }
            SimError::MissingPort(p) => write!(f, "design is missing required port '{p}'"),
            SimError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Rtl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hardsnap_rtl::RtlError> for SimError {
    fn from(e: hardsnap_rtl::RtlError) -> Self {
        SimError::Rtl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = SimError::CombLoop(vec!["a".into(), "b".into()]);
        assert!(e.to_string().contains("a, b"));
        let e = SimError::OutOfRange {
            name: "ram".into(),
            index: 9,
        };
        assert!(e.to_string().contains("ram"));
    }
}
