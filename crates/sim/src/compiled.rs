//! Bytecode execution backend: runs a [`CompiledProgram`] with
//! activity-driven (dirty-cone) scheduling.
//!
//! State is raw normalized `u64` slots (one per net) plus memory word
//! arrays — no [`hardsnap_rtl::Value`] construction anywhere on the hot
//! path. A per-comb-block dirty flag plus the program's net→readers /
//! mem→readers maps let `settle()` re-execute only blocks in the
//! fan-out cone of nets that actually changed; a quiescent design costs
//! two flag tests per cycle.
//!
//! ## Why dirty-cone settling is bit-exact
//!
//! The interpreter's `settle()` runs *every* comb unit once, in
//! levelized order, whenever anything is dirty. Skipping a block whose
//! inputs did not change is exact because (a) full-target self-reads
//! are rejected as comb loops, so every ordinary block is a pure
//! function of its read set and re-running it with unchanged inputs
//! rewrites unchanged outputs; and (b) Kahn order places every reader
//! of a net after all of its drivers, so one forward pass propagates a
//! change through the whole cone. Two non-pure cases are handled
//! specially:
//!
//! * Blocks reading a net they *partially* drive (`self_rmw`) shift
//!   state on every executed settle; they are re-marked exactly when
//!   the interpreter's global dirty flag would be set (`global_dirty`).
//! * An external poke smashes a comb-driven net, so the poked net's
//!   *drivers* are marked too — re-running them rewrites the derived
//!   value exactly as a full interpreter settle would.

use hardsnap_rtl::{mask, BinaryOp, Block, CompiledProgram, Module, Op, UnaryOp};
use std::sync::Arc;

/// Change journal for VCD tracing: per-net "changed since last drain"
/// bit plus the list of changed slots.
#[derive(Debug)]
struct Journal {
    changed: Vec<bool>,
    list: Vec<u32>,
}

/// Dirty journal for activity-proportional snapshots: which nets and
/// which individual memory words changed since the last drain.
/// Independent of the VCD [`Journal`] — tracing and snapshot capture
/// drain at their own cadences, and enabling one must not perturb the
/// other.
#[derive(Debug)]
struct SnapJournal {
    net_changed: Vec<bool>,
    nets: Vec<u32>,
    /// Per-memory per-word "changed" bit (indices match `st.mems`).
    mem_changed: Vec<Vec<bool>>,
    /// Changed words as (mem index, word index).
    mem_words: Vec<(u32, u32)>,
}

/// Bytecode simulator state for one replica.
#[derive(Debug)]
pub(crate) struct CompiledSim {
    prog: Arc<CompiledProgram>,
    st: ExecState,
}

#[derive(Debug)]
struct ExecState {
    nets: Vec<u64>,
    mems: Vec<Vec<u64>>,
    stack: Vec<u64>,
    tmps: Vec<u64>,
    /// Pending non-blocking net writes: (slot, mask, bits).
    nba_nets: Vec<(u32, u64, u64)>,
    /// Pending non-blocking memory writes: (mem, addr, value).
    nba_mems: Vec<(u32, u64, u64)>,
    /// Per-comb-block dirty flag (indices match `prog.comb_blocks`).
    dirty: Vec<bool>,
    any_dirty: bool,
    /// Mirrors the interpreter's global `comb_dirty` cadence; consumed
    /// by `settle()` to re-mark `self_rmw` blocks.
    global_dirty: bool,
    /// Comb block currently executing in the settle pass (u32::MAX
    /// outside it); a block never re-marks itself mid-settle, matching
    /// the interpreter's run-each-node-once-per-settle rule.
    cur_block: u32,
    /// Whether activity scheduling is on (off = full re-evaluation of
    /// every block per dirty settle, for benchmarking the win).
    activity: bool,
    /// Whether settle() currently charges the activity counters (only
    /// during `step`, so driver peeks don't skew the hit rate).
    account: bool,
    ops_executed: u64,
    ops_skipped: u64,
    journal: Option<Journal>,
    snap_journal: Option<SnapJournal>,
}

impl CompiledSim {
    pub(crate) fn new(prog: Arc<CompiledProgram>, module: &Module) -> Self {
        let st = ExecState {
            nets: vec![0; prog.net_widths.len()],
            mems: module
                .memories
                .iter()
                .map(|m| vec![0u64; m.depth as usize])
                .collect(),
            stack: Vec::with_capacity(32),
            tmps: vec![0; prog.tmp_slots],
            nba_nets: Vec::new(),
            nba_mems: Vec::new(),
            dirty: vec![true; prog.comb_blocks.len()],
            any_dirty: true,
            global_dirty: true,
            cur_block: u32::MAX,
            activity: true,
            account: false,
            ops_executed: 0,
            ops_skipped: 0,
            journal: None,
            snap_journal: None,
        };
        CompiledSim { prog, st }
    }

    /// Fresh power-on replica sharing the compiled program (keeps the
    /// activity setting; drops journal and counters).
    pub(crate) fn fork(&self, module: &Module) -> Self {
        let mut f = CompiledSim::new(Arc::clone(&self.prog), module);
        f.st.activity = self.st.activity;
        f
    }

    pub(crate) fn set_activity(&mut self, on: bool) {
        self.st.activity = on;
    }

    pub(crate) fn activity(&self) -> bool {
        self.st.activity
    }

    pub(crate) fn ops_executed(&self) -> u64 {
        self.st.ops_executed
    }

    pub(crate) fn ops_skipped(&self) -> u64 {
        self.st.ops_skipped
    }

    pub(crate) fn peek_raw(&self, slot: usize) -> u64 {
        self.st.nets[slot]
    }

    pub(crate) fn mem_words(&self, mem: usize) -> &[u64] {
        &self.st.mems[mem]
    }

    pub(crate) fn settle(&mut self) {
        self.st.settle(&self.prog);
    }

    /// One posedge: settle, clock edge with NBA commit, re-settle.
    /// Mirrors the interpreter's `step()` body exactly.
    pub(crate) fn step_one(&mut self) {
        self.st.account = true;
        self.st.settle(&self.prog);
        self.st.clock_edge(&self.prog);
        self.st.global_dirty = true;
        self.st.settle(&self.prog);
        self.st.account = false;
    }

    pub(crate) fn poke(&mut self, slot: u32, value: u64) {
        self.st.poke(&self.prog, slot, value);
    }

    /// Writes one memory word; returns false when out of range.
    pub(crate) fn poke_mem(&mut self, mem: usize, addr: usize, value: u64) -> bool {
        self.st.poke_mem(&self.prog, mem, addr, value)
    }

    pub(crate) fn clear_state(&mut self) {
        self.st.clear_state(&self.prog);
    }

    pub(crate) fn enable_journal(&mut self) {
        if self.st.journal.is_none() {
            self.st.journal = Some(Journal {
                changed: vec![false; self.st.nets.len()],
                list: Vec::new(),
            });
        }
    }

    /// Enables the snapshot dirty journal (idempotent). The journal
    /// starts empty: the caller is expected to take a full base capture
    /// at the same moment, so "changed since enable" equals "changed
    /// since the base".
    pub(crate) fn enable_snap_journal(&mut self) {
        if self.st.snap_journal.is_none() {
            self.st.snap_journal = Some(SnapJournal {
                net_changed: vec![false; self.st.nets.len()],
                nets: Vec::new(),
                mem_changed: self.st.mems.iter().map(|m| vec![false; m.len()]).collect(),
                mem_words: Vec::new(),
            });
        }
    }

    /// Drains the snapshot journal: nets whose value changed since the
    /// last drain into `nets_out` (ascending), changed memory words
    /// into `mems_out` (ascending (mem, word)). Returns false when the
    /// journal is not enabled (caller must fall back to a full scan).
    pub(crate) fn drain_snap_changes(
        &mut self,
        nets_out: &mut Vec<u32>,
        mems_out: &mut Vec<(u32, u32)>,
    ) -> bool {
        match &mut self.st.snap_journal {
            None => false,
            Some(j) => {
                nets_out.clear();
                nets_out.extend_from_slice(&j.nets);
                nets_out.sort_unstable();
                for &s in nets_out.iter() {
                    j.net_changed[s as usize] = false;
                }
                j.nets.clear();
                mems_out.clear();
                mems_out.extend_from_slice(&j.mem_words);
                mems_out.sort_unstable();
                for &(m, w) in mems_out.iter() {
                    j.mem_changed[m as usize][w as usize] = false;
                }
                j.mem_words.clear();
                true
            }
        }
    }

    /// Drains the set of nets whose value changed since the last drain
    /// into `out` (ascending slot order). Returns false when no journal
    /// is enabled (caller must fall back to a full scan).
    pub(crate) fn drain_changes(&mut self, out: &mut Vec<u32>) -> bool {
        match &mut self.st.journal {
            None => false,
            Some(j) => {
                out.clear();
                out.extend_from_slice(&j.list);
                out.sort_unstable();
                for &s in out.iter() {
                    j.changed[s as usize] = false;
                }
                j.list.clear();
                true
            }
        }
    }
}

impl ExecState {
    /// Marks the readers of a changed net dirty and journals the
    /// change. `self.cur_block` is skipped: a block never re-queues
    /// itself within one settle (see module docs on `self_rmw`).
    #[inline]
    fn on_net_change(&mut self, prog: &CompiledProgram, slot: u32) {
        if let Some(j) = &mut self.journal {
            if !j.changed[slot as usize] {
                j.changed[slot as usize] = true;
                j.list.push(slot);
            }
        }
        if let Some(j) = &mut self.snap_journal {
            if !j.net_changed[slot as usize] {
                j.net_changed[slot as usize] = true;
                j.nets.push(slot);
            }
        }
        for &bi in &prog.net_readers[slot as usize] {
            if bi != self.cur_block && !self.dirty[bi as usize] {
                self.dirty[bi as usize] = true;
                self.any_dirty = true;
            }
        }
    }

    #[inline]
    fn on_mem_change(&mut self, prog: &CompiledProgram, mem: u32, addr: u64) {
        if let Some(j) = &mut self.snap_journal {
            if !j.mem_changed[mem as usize][addr as usize] {
                j.mem_changed[mem as usize][addr as usize] = true;
                j.mem_words.push((mem, addr as u32));
            }
        }
        for &bi in &prog.mem_readers[mem as usize] {
            if bi != self.cur_block && !self.dirty[bi as usize] {
                self.dirty[bi as usize] = true;
                self.any_dirty = true;
            }
        }
    }

    fn settle(&mut self, prog: &CompiledProgram) {
        if self.global_dirty {
            self.global_dirty = false;
            for &bi in &prog.self_rmw {
                if !self.dirty[bi as usize] {
                    self.dirty[bi as usize] = true;
                    self.any_dirty = true;
                }
            }
            if !self.activity {
                // Full-evaluation mode: a dirty settle runs everything,
                // exactly like the interpreter's global flag.
                for d in self.dirty.iter_mut() {
                    *d = true;
                }
                self.any_dirty = !self.dirty.is_empty();
            }
        }
        if !self.any_dirty {
            if self.account {
                self.ops_skipped += prog.total_comb_ops;
            }
            return;
        }
        for bi in 0..prog.comb_blocks.len() {
            if self.dirty[bi] {
                self.dirty[bi] = false;
                self.cur_block = bi as u32;
                let b = prog.comb_blocks[bi];
                self.exec_block(prog, b);
                if self.account {
                    self.ops_executed += b.len() as u64;
                }
            } else if self.account {
                self.ops_skipped += prog.comb_blocks[bi].len() as u64;
            }
        }
        self.cur_block = u32::MAX;
        self.any_dirty = false;
    }

    fn clock_edge(&mut self, prog: &CompiledProgram) {
        debug_assert!(self.nba_nets.is_empty() && self.nba_mems.is_empty());
        for bi in 0..prog.clocked_blocks.len() {
            let b = prog.clocked_blocks[bi];
            self.exec_block(prog, b);
        }
        // Commit NBA writes in program order. The scratch Vecs are
        // drained in place so their capacity survives across cycles.
        for k in 0..self.nba_nets.len() {
            let (slot, m, bits) = self.nba_nets[k];
            let s = slot as usize;
            let nv = (self.nets[s] & !m) | (bits & m);
            if self.nets[s] != nv {
                self.nets[s] = nv;
                self.on_net_change(prog, slot);
            }
        }
        self.nba_nets.clear();
        for k in 0..self.nba_mems.len() {
            let (mem, addr, value) = self.nba_mems[k];
            let nv = value & prog.mem_masks[mem as usize];
            if let Some(slot) = self.mems[mem as usize].get_mut(addr as usize) {
                if *slot != nv {
                    *slot = nv;
                    self.on_mem_change(prog, mem, addr);
                }
            }
        }
        self.nba_mems.clear();
    }

    fn poke(&mut self, prog: &CompiledProgram, slot: u32, value: u64) {
        let s = slot as usize;
        let v = value & mask(prog.net_widths[s]);
        self.global_dirty = true;
        if self.nets[s] != v {
            self.nets[s] = v;
            self.on_net_change(prog, slot);
            // Re-derive a poked combinational net at the next settle,
            // exactly as the interpreter's full re-evaluation would.
            for &bi in &prog.net_drivers[s] {
                if !self.dirty[bi as usize] {
                    self.dirty[bi as usize] = true;
                    self.any_dirty = true;
                }
            }
        }
    }

    fn poke_mem(&mut self, prog: &CompiledProgram, mem: usize, addr: usize, value: u64) -> bool {
        let nv = value & prog.mem_masks[mem];
        self.global_dirty = true;
        match self.mems[mem].get_mut(addr) {
            None => false,
            Some(slot) => {
                if *slot != nv {
                    *slot = nv;
                    self.on_mem_change(prog, mem as u32, addr as u64);
                }
                true
            }
        }
    }

    fn clear_state(&mut self, prog: &CompiledProgram) {
        for slot in 0..self.nets.len() {
            if self.nets[slot] != 0 {
                self.nets[slot] = 0;
                if let Some(j) = &mut self.journal {
                    if !j.changed[slot] {
                        j.changed[slot] = true;
                        j.list.push(slot as u32);
                    }
                }
                if let Some(j) = &mut self.snap_journal {
                    if !j.net_changed[slot] {
                        j.net_changed[slot] = true;
                        j.nets.push(slot as u32);
                    }
                }
            }
        }
        for (mi, mem) in self.mems.iter_mut().enumerate() {
            for (wi, w) in mem.iter_mut().enumerate() {
                if *w != 0 {
                    *w = 0;
                    if let Some(j) = &mut self.snap_journal {
                        if !j.mem_changed[mi][wi] {
                            j.mem_changed[mi][wi] = true;
                            j.mem_words.push((mi as u32, wi as u32));
                        }
                    }
                }
            }
        }
        for d in self.dirty.iter_mut() {
            *d = true;
        }
        self.any_dirty = !prog.comb_blocks.is_empty();
        self.global_dirty = true;
    }

    fn exec_block(&mut self, prog: &CompiledProgram, b: Block) {
        let ops = &prog.ops;
        let mut pc = b.start as usize;
        let end = b.end as usize;
        while pc < end {
            match ops[pc] {
                Op::Const(k) => self.stack.push(k),
                Op::Load(slot) => self.stack.push(self.nets[slot as usize]),
                Op::LoadSlice { slot, lo, mask } => {
                    self.stack.push((self.nets[slot as usize] >> lo) & mask);
                }
                Op::LoadBit { slot, width } => {
                    let i = self.stack.pop().expect("stack underflow");
                    let v = if i < width as u64 {
                        (self.nets[slot as usize] >> i) & 1
                    } else {
                        0
                    };
                    self.stack.push(v);
                }
                Op::LoadMem { mem } => {
                    let a = self.stack.pop().expect("stack underflow");
                    let v = self.mems[mem as usize]
                        .get(a as usize)
                        .copied()
                        .unwrap_or(0);
                    self.stack.push(v);
                }
                Op::Unary { op, mask } => {
                    let a = self.stack.pop().expect("stack underflow");
                    let r = match op {
                        UnaryOp::Not => !a & mask,
                        UnaryOp::Neg => a.wrapping_neg() & mask,
                        UnaryOp::LogicNot => (a == 0) as u64,
                        UnaryOp::RedAnd => (a == mask) as u64,
                        UnaryOp::RedOr => (a != 0) as u64,
                        UnaryOp::RedXor => (a.count_ones() & 1) as u64,
                    };
                    self.stack.push(r);
                }
                Op::Binary { op, mask, lw } => {
                    let b = self.stack.pop().expect("stack underflow");
                    let a = self.stack.pop().expect("stack underflow");
                    let r = match op {
                        BinaryOp::Add => a.wrapping_add(b) & mask,
                        BinaryOp::Sub => a.wrapping_sub(b) & mask,
                        BinaryOp::Mul => a.wrapping_mul(b) & mask,
                        BinaryOp::And => a & b,
                        BinaryOp::Or => a | b,
                        BinaryOp::Xor => a ^ b,
                        BinaryOp::Shl => {
                            if b >= lw as u64 {
                                0
                            } else {
                                (a << b) & mask
                            }
                        }
                        BinaryOp::Shr => {
                            if b >= lw as u64 {
                                0
                            } else {
                                a >> b
                            }
                        }
                        BinaryOp::Eq => (a == b) as u64,
                        BinaryOp::Ne => (a != b) as u64,
                        BinaryOp::Lt => (a < b) as u64,
                        BinaryOp::Le => (a <= b) as u64,
                        BinaryOp::Gt => (a > b) as u64,
                        BinaryOp::Ge => (a >= b) as u64,
                        BinaryOp::LogicAnd => (a != 0 && b != 0) as u64,
                        BinaryOp::LogicOr => (a != 0 || b != 0) as u64,
                    };
                    self.stack.push(r);
                }
                Op::Concat { shift } => {
                    let low = self.stack.pop().expect("stack underflow");
                    let high = self.stack.pop().expect("stack underflow");
                    self.stack.push((high << shift) | low);
                }
                Op::Repeat { count, width } => {
                    let v = self.stack.pop().expect("stack underflow");
                    let mut acc = v;
                    for _ in 1..count {
                        acc = (acc << width) | v;
                    }
                    self.stack.push(acc);
                }
                Op::Jump(t) => {
                    pc = t as usize;
                    continue;
                }
                Op::JumpIfZero(t) => {
                    if self.stack.pop().expect("stack underflow") == 0 {
                        pc = t as usize;
                        continue;
                    }
                }
                Op::SetTmp(i) => {
                    self.tmps[i as usize] = self.stack.pop().expect("stack underflow");
                }
                Op::JumpTmpEq { tmp, label, target } => {
                    if self.tmps[tmp as usize] == label {
                        pc = target as usize;
                        continue;
                    }
                }
                Op::Store { slot, mask } => {
                    let v = self.stack.pop().expect("stack underflow") & mask;
                    let s = slot as usize;
                    if self.nets[s] != v {
                        self.nets[s] = v;
                        self.on_net_change(prog, slot);
                    }
                }
                Op::StoreSlice { slot, lo, mask } => {
                    let v = self.stack.pop().expect("stack underflow");
                    let s = slot as usize;
                    let m = mask << lo;
                    let nv = (self.nets[s] & !m) | ((v & mask) << lo);
                    if self.nets[s] != nv {
                        self.nets[s] = nv;
                        self.on_net_change(prog, slot);
                    }
                }
                Op::StoreBit { slot, width } => {
                    let i = self.stack.pop().expect("stack underflow");
                    let v = self.stack.pop().expect("stack underflow");
                    if i < width as u64 {
                        let s = slot as usize;
                        let m = 1u64 << i;
                        let nv = (self.nets[s] & !m) | ((v & 1) << i);
                        if self.nets[s] != nv {
                            self.nets[s] = nv;
                            self.on_net_change(prog, slot);
                        }
                    }
                }
                Op::StoreMem { mem, mask } => {
                    let a = self.stack.pop().expect("stack underflow");
                    let v = self.stack.pop().expect("stack underflow");
                    let nv = v & mask;
                    if let Some(slot) = self.mems[mem as usize].get_mut(a as usize) {
                        if *slot != nv {
                            *slot = nv;
                            self.on_mem_change(prog, mem, a);
                        }
                    }
                }
                Op::NbaStore { slot, mask } => {
                    let v = self.stack.pop().expect("stack underflow");
                    self.nba_nets.push((slot, mask, v & mask));
                }
                Op::NbaStoreSlice { slot, lo, mask } => {
                    let v = self.stack.pop().expect("stack underflow");
                    self.nba_nets.push((slot, mask << lo, (v & mask) << lo));
                }
                Op::NbaStoreBit { slot, width } => {
                    let i = self.stack.pop().expect("stack underflow");
                    let v = self.stack.pop().expect("stack underflow");
                    if i < width as u64 {
                        self.nba_nets.push((slot, 1u64 << i, (v & 1) << i));
                    }
                }
                Op::NbaStoreMem { mem } => {
                    let a = self.stack.pop().expect("stack underflow");
                    let v = self.stack.pop().expect("stack underflow");
                    self.nba_mems.push((mem, a, v));
                }
            }
            pc += 1;
        }
        debug_assert!(self.stack.is_empty(), "unbalanced stack after block");
    }
}
