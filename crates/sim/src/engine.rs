//! Cycle-accurate interpreter for flat RTL modules.
//!
//! Semantics match the synthesizable-Verilog expectations the corpus is
//! written against:
//!
//! * Combinational logic (continuous assigns and `always @(*)` bodies) is
//!   **levelized**: nodes are topologically sorted by net dependencies
//!   once at build time and re-evaluated in that order whenever state
//!   changes. Combinational cycles are rejected at construction.
//! * A clock [`Simulator::step`] evaluates all `posedge` processes
//!   against pre-edge state with correct **non-blocking** semantics (all
//!   RHS sampled before any commit), then commits, then re-settles the
//!   combinational fabric.
//! * Full visibility: any net or memory word can be peeked or poked by
//!   hierarchical name at any time — the property (paper §III-A) that
//!   makes simulator-side hardware snapshots trivial and exact.

use crate::SimError;
use hardsnap_rtl::{
    check_module, eval_binary, eval_unary, CaseArm, Expr, LValue, MemId, Module, NetId,
    ProcessKind, Stmt, Value,
};
use std::sync::Arc;

/// One combinational evaluation unit: a continuous assign or an
/// `always @(*)` process.
#[derive(Clone, Debug)]
enum CombNode {
    Assign(usize),
    Process(usize),
}

/// A cycle-accurate simulator for one flat module.
///
/// # Examples
///
/// ```
/// use hardsnap_sim::Simulator;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = hardsnap_verilog::parse_design(r#"
///     module counter (input wire clk, input wire rst, output reg [7:0] q);
///         always @(posedge clk) begin
///             if (rst) q <= 8'd0; else q <= q + 8'd1;
///         end
///     endmodule
/// "#)?;
/// let flat = hardsnap_rtl::elaborate(&design, "counter")?;
/// let mut sim = Simulator::new(flat)?;
/// sim.poke("rst", 1)?;
/// sim.step(1);
/// sim.poke("rst", 0)?;
/// sim.step(5);
/// assert_eq!(sim.peek("q")?.bits(), 5);
/// # Ok(())
/// # }
/// ```
pub struct Simulator {
    module: Arc<Module>,
    // (Debug is implemented manually below: dumping every net value
    // would be unusable for large designs.)
    /// Current value of every net (index = NetId).
    nets: Vec<Value>,
    /// Current contents of every memory (index = MemId).
    mems: Vec<Vec<u64>>,
    /// Combinational nodes in evaluation order.
    comb_order: Vec<CombNode>,
    /// Indices of clocked processes.
    clocked: Vec<usize>,
    /// Pending non-blocking register writes: (net, mask, bits).
    nba_nets: Vec<(NetId, u64, u64)>,
    /// Pending non-blocking memory writes: (mem, addr, value).
    nba_mems: Vec<(MemId, u64, u64)>,
    cycle: u64,
    comb_dirty: bool,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("module", &self.module.name)
            .field("cycle", &self.cycle)
            .field("nets", &self.nets.len())
            .field("memories", &self.mems.len())
            .finish()
    }
}

impl Simulator {
    /// Builds a simulator for `module`, which must be flat (no
    /// instances).
    ///
    /// # Errors
    ///
    /// * [`SimError::Rtl`] — the module fails [`check_module`] or still
    ///   contains instances.
    /// * [`SimError::CombLoop`] — the combinational fabric has a cycle.
    /// * [`SimError::Unsupported`] — `negedge` processes (the corpus is
    ///   single-edge) or other out-of-scope constructs.
    pub fn new(module: Module) -> Result<Self, SimError> {
        if !module.instances.is_empty() {
            return Err(SimError::Rtl(hardsnap_rtl::RtlError::Elab(format!(
                "module '{}' still has instances; run elaborate() first",
                module.name
            ))));
        }
        check_module(&module).map_err(SimError::Rtl)?;
        for p in &module.processes {
            if let ProcessKind::Clocked {
                edge: hardsnap_rtl::EdgeKind::Neg,
                ..
            } = p.kind
            {
                return Err(SimError::Unsupported(
                    "negedge processes are not supported (single-edge corpus)".into(),
                ));
            }
        }

        let comb_order = levelize(&module)?;
        let clocked = module
            .processes
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p.kind, ProcessKind::Clocked { .. }))
            .map(|(i, _)| i)
            .collect();

        let nets = module.nets.iter().map(|n| Value::zero(n.width)).collect();
        let mems = module
            .memories
            .iter()
            .map(|m| vec![0u64; m.depth as usize])
            .collect();
        let mut sim = Simulator {
            module: Arc::new(module),
            nets,
            mems,
            comb_order,
            clocked,
            nba_nets: Vec::new(),
            nba_mems: Vec::new(),
            cycle: 0,
            comb_dirty: true,
        };
        sim.settle();
        Ok(sim)
    }

    /// The simulated module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Creates an independent simulator over the same elaborated module
    /// in its power-on state. The `Arc<Module>` and the levelized
    /// combinational order are shared/copied, so replication skips
    /// elaboration checks and re-levelization entirely — this is what
    /// makes per-worker target replicas cheap.
    pub fn fork_clean(&self) -> Self {
        let nets = self
            .module
            .nets
            .iter()
            .map(|n| Value::zero(n.width))
            .collect();
        let mems = self
            .module
            .memories
            .iter()
            .map(|m| vec![0u64; m.depth as usize])
            .collect();
        let mut sim = Simulator {
            module: self.module.clone(),
            nets,
            mems,
            comb_order: self.comb_order.clone(),
            clocked: self.clocked.clone(),
            nba_nets: Vec::new(),
            nba_mems: Vec::new(),
            cycle: 0,
            comb_dirty: true,
        };
        sim.settle();
        sim
    }

    /// Elapsed clock cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Reads a net's current value by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNet`] if no net has that name.
    pub fn peek(&mut self, name: &str) -> Result<Value, SimError> {
        let id = self.net_id(name)?;
        self.settle();
        Ok(self.nets[id.0 as usize])
    }

    /// Reads a net by id (no settle; internal fast path for drivers that
    /// just stepped).
    pub fn peek_id(&self, id: NetId) -> Value {
        self.nets[id.0 as usize]
    }

    /// Forces a net to a value. Intended for input ports (stimulus) and
    /// for snapshot restore of registers; poking a derived combinational
    /// net is allowed but will be overwritten at the next settle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNet`] for unknown names.
    pub fn poke(&mut self, name: &str, value: u64) -> Result<(), SimError> {
        let id = self.net_id(name)?;
        let w = self.module.net(id).width;
        self.nets[id.0 as usize] = Value::new(value, w);
        self.comb_dirty = true;
        Ok(())
    }

    /// Reads one memory word.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNet`] for unknown memories and
    /// [`SimError::OutOfRange`] for bad addresses.
    pub fn peek_mem(&self, name: &str, addr: u32) -> Result<u64, SimError> {
        let id = self
            .module
            .find_mem(name)
            .ok_or_else(|| SimError::UnknownNet(name.to_string()))?;
        let mem = &self.mems[id.0 as usize];
        mem.get(addr as usize)
            .copied()
            .ok_or_else(|| SimError::OutOfRange {
                name: name.to_string(),
                index: addr,
            })
    }

    /// Writes one memory word.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::peek_mem`].
    pub fn poke_mem(&mut self, name: &str, addr: u32, value: u64) -> Result<(), SimError> {
        let id = self
            .module
            .find_mem(name)
            .ok_or_else(|| SimError::UnknownNet(name.to_string()))?;
        let width = self.module.memory(id).width;
        let mem = &mut self.mems[id.0 as usize];
        let slot = mem
            .get_mut(addr as usize)
            .ok_or_else(|| SimError::OutOfRange {
                name: name.to_string(),
                index: addr,
            })?;
        *slot = value & hardsnap_rtl::mask(width);
        self.comb_dirty = true;
        Ok(())
    }

    /// Returns all net values and memory contents to the power-on state
    /// (all zeros). Note this is *stronger* than asserting the reset net:
    /// synchronous reset logic only initializes registers, while a power
    /// cycle also clears SRAM contents.
    pub fn clear_state(&mut self) {
        for (i, net) in self.module.nets.iter().enumerate() {
            self.nets[i] = Value::zero(net.width);
        }
        for mem in &mut self.mems {
            mem.iter_mut().for_each(|w| *w = 0);
        }
        self.comb_dirty = true;
    }

    /// Advances the clock by `cycles` posedges.
    pub fn step(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.settle();
            self.clock_edge();
            self.comb_dirty = true;
            self.settle();
            self.cycle += 1;
        }
    }

    /// Direct access to all net values in id order (used by the VCD
    /// writer and the snapshot path).
    pub fn net_values(&mut self) -> &[Value] {
        self.settle();
        &self.nets
    }

    /// Direct access to one memory's words by id.
    pub fn mem_words(&self, id: MemId) -> &[u64] {
        &self.mems[id.0 as usize]
    }

    fn net_id(&self, name: &str) -> Result<NetId, SimError> {
        self.module
            .find_net(name)
            .ok_or_else(|| SimError::UnknownNet(name.to_string()))
    }

    // ------------------------------------------------------------- internals

    /// Re-evaluates the combinational fabric in levelized order.
    fn settle(&mut self) {
        if !self.comb_dirty {
            return;
        }
        self.comb_dirty = false;
        let module = Arc::clone(&self.module);
        for node in &self.comb_order {
            match *node {
                CombNode::Assign(ai) => {
                    let a = &module.assigns[ai];
                    let v = eval_expr(&module, &self.nets, &self.mems, &a.rhs);
                    write_net_lvalue(&module, &mut self.nets, &mut self.mems, &a.lv, v);
                }
                CombNode::Process(pi) => {
                    for s in &module.processes[pi].body {
                        exec_comb_stmt(&module, &mut self.nets, &mut self.mems, s);
                    }
                }
            }
        }
    }

    /// Executes one clock edge with NBA semantics.
    fn clock_edge(&mut self) {
        debug_assert!(self.nba_nets.is_empty() && self.nba_mems.is_empty());
        let module = Arc::clone(&self.module);
        let clocked = std::mem::take(&mut self.clocked);
        for &pi in &clocked {
            for s in &module.processes[pi].body {
                self.exec_clocked_stmt(&module, s);
            }
        }
        self.clocked = clocked;
        // Commit NBA writes in program order.
        let writes = std::mem::take(&mut self.nba_nets);
        for (net, mask, bits) in writes {
            let cur = self.nets[net.0 as usize];
            self.nets[net.0 as usize] =
                Value::new((cur.bits() & !mask) | (bits & mask), cur.width());
        }
        let mem_writes = std::mem::take(&mut self.nba_mems);
        for (mem, addr, value) in mem_writes {
            let width = self.module.memory(mem).width;
            if let Some(slot) = self.mems[mem.0 as usize].get_mut(addr as usize) {
                *slot = value & hardsnap_rtl::mask(width);
            }
        }
    }

    fn exec_clocked_stmt(&mut self, module: &Module, s: &Stmt) {
        match s {
            Stmt::Assign { lv, rhs, blocking } => {
                let v = eval_expr(module, &self.nets, &self.mems, rhs);
                if *blocking {
                    write_net_lvalue(module, &mut self.nets, &mut self.mems, lv, v);
                } else {
                    self.schedule_nba(module, lv, v);
                }
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let c = eval_expr(module, &self.nets, &self.mems, cond);
                let branch = if c.is_true() { then_s } else { else_s };
                for s in branch {
                    self.exec_clocked_stmt(module, s);
                }
            }
            Stmt::Case { sel, arms, default } => {
                let sv = eval_expr(module, &self.nets, &self.mems, sel);
                let body = select_case_arm(sv, arms, default);
                for s in body {
                    self.exec_clocked_stmt(module, s);
                }
            }
        }
    }

    /// Schedules a non-blocking write (sampled now, committed at edge
    /// end).
    fn schedule_nba(&mut self, module: &Module, lv: &LValue, v: Value) {
        match lv {
            LValue::Net(n) => {
                let w = module.net(*n).width;
                self.nba_nets
                    .push((*n, hardsnap_rtl::mask(w), v.resize(w).bits()));
            }
            LValue::Slice { base, hi, lo } => {
                let m = hardsnap_rtl::mask(hi - lo + 1) << lo;
                self.nba_nets
                    .push((*base, m, (v.resize(hi - lo + 1).bits()) << lo));
            }
            LValue::Index { base, index } => {
                let i = eval_expr(module, &self.nets, &self.mems, index).bits();
                let w = module.net(*base).width;
                if i < w as u64 {
                    self.nba_nets.push((*base, 1 << i, (v.bits() & 1) << i));
                }
            }
            LValue::Mem { mem, addr } => {
                let a = eval_expr(module, &self.nets, &self.mems, addr).bits();
                self.nba_mems.push((*mem, a, v.bits()));
            }
        }
    }
}

fn exec_comb_stmt(module: &Module, nets: &mut [Value], mems: &mut [Vec<u64>], s: &Stmt) {
    match s {
        Stmt::Assign { lv, rhs, .. } => {
            // In a comb process all assignments behave as blocking.
            let v = eval_expr(module, nets, mems, rhs);
            write_net_lvalue(module, nets, mems, lv, v);
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
        } => {
            let c = eval_expr(module, nets, mems, cond);
            let branch = if c.is_true() { then_s } else { else_s };
            for s in branch {
                exec_comb_stmt(module, nets, mems, s);
            }
        }
        Stmt::Case { sel, arms, default } => {
            let sv = eval_expr(module, nets, mems, sel);
            let body = select_case_arm(sv, arms, default);
            for s in body {
                exec_comb_stmt(module, nets, mems, s);
            }
        }
    }
}

/// Immediate (blocking / continuous) write.
fn write_net_lvalue(
    module: &Module,
    nets: &mut [Value],
    mems: &mut [Vec<u64>],
    lv: &LValue,
    v: Value,
) {
    match lv {
        LValue::Net(n) => {
            let w = module.net(*n).width;
            nets[n.0 as usize] = v.resize(w);
        }
        LValue::Slice { base, hi, lo } => {
            let cur = nets[base.0 as usize];
            nets[base.0 as usize] = cur.set_slice(*hi, *lo, v.resize(hi - lo + 1));
        }
        LValue::Index { base, index } => {
            let i = eval_expr(module, nets, mems, index).bits();
            let cur = nets[base.0 as usize];
            if i < cur.width() as u64 {
                nets[base.0 as usize] = cur.set_slice(i as u32, i as u32, v.resize(1));
            }
        }
        LValue::Mem { mem, addr } => {
            let a = eval_expr(module, nets, mems, addr).bits();
            let width = module.memory(*mem).width;
            if let Some(slot) = mems[mem.0 as usize].get_mut(a as usize) {
                *slot = v.bits() & hardsnap_rtl::mask(width);
            }
        }
    }
}

/// Selects the matching case arm (or the default) for a selector value.
fn select_case_arm<'a>(sel: Value, arms: &'a [CaseArm], default: &'a [Stmt]) -> &'a [Stmt] {
    for arm in arms {
        if arm.labels.iter().any(|l| l.bits() == sel.bits()) {
            return &arm.body;
        }
    }
    default
}

/// Pure expression evaluation against a net/memory state.
pub(crate) fn eval_expr(module: &Module, nets: &[Value], mems: &[Vec<u64>], e: &Expr) -> Value {
    match e {
        Expr::Const(v) => *v,
        Expr::Net(n) => nets[n.0 as usize],
        Expr::Slice { base, hi, lo } => nets[base.0 as usize].slice(*hi, *lo),
        Expr::Index { base, index } => {
            let i = eval_expr(module, nets, mems, index).bits();
            nets[base.0 as usize].get_bit(i)
        }
        Expr::Unary { op, arg } => eval_unary(*op, eval_expr(module, nets, mems, arg)),
        Expr::Binary { op, lhs, rhs } => eval_binary(
            *op,
            eval_expr(module, nets, mems, lhs),
            eval_expr(module, nets, mems, rhs),
        ),
        Expr::Cond {
            cond,
            then_e,
            else_e,
        } => {
            // Width unification mirrors Expr::width (max of arms).
            let t = eval_expr(module, nets, mems, then_e);
            let f = eval_expr(module, nets, mems, else_e);
            let w = t.width().max(f.width());
            if eval_expr(module, nets, mems, cond).is_true() {
                t.resize(w)
            } else {
                f.resize(w)
            }
        }
        Expr::Concat(parts) => {
            let mut acc: Option<Value> = None;
            for p in parts {
                let v = eval_expr(module, nets, mems, p);
                acc = Some(match acc {
                    None => v,
                    Some(a) => a.concat(v),
                });
            }
            acc.expect("empty concat rejected at check time")
        }
        Expr::Repeat { count, arg } => {
            let v = eval_expr(module, nets, mems, arg);
            let mut acc = v;
            for _ in 1..*count {
                acc = acc.concat(v);
            }
            acc
        }
        Expr::MemRead { mem, addr } => {
            let a = eval_expr(module, nets, mems, addr).bits();
            let width = module.memory(*mem).width;
            let word = mems[mem.0 as usize].get(a as usize).copied().unwrap_or(0);
            Value::new(word, width)
        }
    }
}

/// Builds the levelized combinational evaluation order (Kahn's
/// algorithm over net dependencies).
fn levelize(module: &Module) -> Result<Vec<CombNode>, SimError> {
    // Collect nodes.
    let mut nodes: Vec<CombNode> = Vec::new();
    for (i, _) in module.assigns.iter().enumerate() {
        nodes.push(CombNode::Assign(i));
    }
    for (i, p) in module.processes.iter().enumerate() {
        if matches!(p.kind, ProcessKind::Comb) {
            nodes.push(CombNode::Process(i));
        }
    }

    // net -> list of comb nodes driving it.
    let mut drivers: Vec<Vec<usize>> = vec![Vec::new(); module.nets.len()];
    for (ni, node) in nodes.iter().enumerate() {
        for target in node_targets(module, node) {
            drivers[target.0 as usize].push(ni);
        }
    }

    // Edges: node A -> node B when B reads a net driven by A.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut out_deg: Vec<usize> = vec![0; nodes.len()];
    for (ni, node) in nodes.iter().enumerate() {
        let mut reads = Vec::new();
        node_reads(module, node, &mut reads);
        for r in reads {
            for &d in &drivers[r.0 as usize] {
                preds[ni].push(d);
            }
        }
        preds[ni].sort_unstable();
        preds[ni].dedup();
        // A node driving a net it also reads is a combinational loop,
        // except the benign read-modify-write of partial lvalues, which
        // we permit by not counting a node as its own predecessor when
        // the only overlap comes from a partial write to the same net.
        preds[ni].retain(|&p| p != ni || node_reads_own_full_target(module, node));
    }
    for p in preds.iter() {
        for &d in p {
            out_deg[d] += 1;
        }
    }

    // Kahn: repeatedly emit nodes with no unresolved predecessors.
    let mut unresolved: Vec<usize> = preds.iter().map(|p| p.len()).collect();
    let mut ready: Vec<usize> = (0..nodes.len()).filter(|&i| unresolved[i] == 0).collect();
    // succ map
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (ni, ps) in preds.iter().enumerate() {
        for &p in ps {
            succs[p].push(ni);
        }
    }
    let mut order = Vec::with_capacity(nodes.len());
    while let Some(n) = ready.pop() {
        order.push(n);
        for &s in &succs[n] {
            unresolved[s] -= 1;
            if unresolved[s] == 0 {
                ready.push(s);
            }
        }
    }
    if order.len() != nodes.len() {
        let stuck: Vec<String> = (0..nodes.len())
            .filter(|&i| unresolved[i] > 0)
            .flat_map(|i| {
                node_targets(module, &nodes[i])
                    .into_iter()
                    .map(|n| module.net(n).name.clone())
            })
            .collect();
        return Err(SimError::CombLoop(stuck));
    }
    // `order` is emitted in reverse-ready order; restore determinism by
    // sorting stable over the topological levels: re-run to compute
    // levels is overkill — Kahn order is already a valid topo order.
    Ok(order.into_iter().map(|i| nodes[i].clone()).collect())
}

/// True when a comb node reads the *same whole net* it fully drives —
/// a genuine feedback loop (as opposed to partial-lvalue RMW).
fn node_reads_own_full_target(module: &Module, node: &CombNode) -> bool {
    let targets = node_targets(module, node);
    let full_targets: Vec<NetId> = match node {
        CombNode::Assign(ai) => match &module.assigns[*ai].lv {
            LValue::Net(n) => vec![*n],
            _ => vec![],
        },
        CombNode::Process(_) => targets, // comb processes: any self-read is a loop
    };
    let mut reads = Vec::new();
    node_reads(module, node, &mut reads);
    full_targets.iter().any(|t| reads.contains(t))
}

/// Nets written by a comb node.
fn node_targets(module: &Module, node: &CombNode) -> Vec<NetId> {
    match node {
        CombNode::Assign(ai) => module.assigns[*ai].lv.target_net().into_iter().collect(),
        CombNode::Process(pi) => {
            let mut out = Vec::new();
            for s in &module.processes[*pi].body {
                s.for_each(&mut |s| {
                    if let Stmt::Assign { lv, .. } = s {
                        if let Some(n) = lv.target_net() {
                            if !out.contains(&n) {
                                out.push(n);
                            }
                        }
                    }
                });
            }
            out
        }
    }
}

/// Nets read by a comb node (RHS, conditions, selectors, indices).
fn node_reads(module: &Module, node: &CombNode, out: &mut Vec<NetId>) {
    let mut push = |n: NetId| {
        if !out.contains(&n) {
            out.push(n);
        }
    };
    match node {
        CombNode::Assign(ai) => {
            let a = &module.assigns[*ai];
            a.rhs.for_each_net(&mut push);
            if let LValue::Index { index, .. } = &a.lv {
                index.for_each_net(&mut push);
            }
            if let LValue::Mem { addr, .. } = &a.lv {
                addr.for_each_net(&mut push);
            }
        }
        CombNode::Process(pi) => {
            // Conservative: everything read anywhere in the body,
            // including targets of other branches' RMW via partial
            // writes — handled by treating partial comb targets as reads
            // only when they appear on a RHS.
            for s in &module.processes[*pi].body {
                stmt_reads(s, &mut push);
            }
        }
    }
}

fn stmt_reads(s: &Stmt, push: &mut impl FnMut(NetId)) {
    match s {
        Stmt::Assign { lv, rhs, .. } => {
            rhs.for_each_net(push);
            if let LValue::Index { index, .. } = lv {
                index.for_each_net(push);
            }
            if let LValue::Mem { addr, .. } = lv {
                addr.for_each_net(push);
            }
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
        } => {
            cond.for_each_net(push);
            for s in then_s.iter().chain(else_s) {
                stmt_reads(s, push);
            }
        }
        Stmt::Case { sel, arms, default } => {
            sel.for_each_net(push);
            for arm in arms {
                for s in &arm.body {
                    stmt_reads(s, push);
                }
            }
            for s in default {
                stmt_reads(s, push);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardsnap_verilog::parse_design;

    fn sim(src: &str, top: &str) -> Simulator {
        let d = parse_design(src).unwrap();
        let flat = hardsnap_rtl::elaborate(&d, top).unwrap();
        Simulator::new(flat).unwrap()
    }

    #[test]
    fn counter_counts() {
        let mut s = sim(
            r#"
            module counter (input wire clk, input wire rst, output reg [7:0] q);
                always @(posedge clk) begin
                    if (rst) q <= 8'd0; else q <= q + 8'd1;
                end
            endmodule
            "#,
            "counter",
        );
        s.poke("rst", 1).unwrap();
        s.step(2);
        assert_eq!(s.peek("q").unwrap().bits(), 0);
        s.poke("rst", 0).unwrap();
        s.step(300);
        assert_eq!(s.peek("q").unwrap().bits(), 300 % 256);
        assert_eq!(s.cycle(), 302);
    }

    #[test]
    fn nba_swap_is_simultaneous() {
        let mut s = sim(
            r#"
            module swap (input wire clk, input wire load,
                         input wire [7:0] va, input wire [7:0] vb,
                         output reg [7:0] a, output reg [7:0] b);
                always @(posedge clk) begin
                    if (load) begin a <= va; b <= vb; end
                    else begin a <= b; b <= a; end
                end
            endmodule
            "#,
            "swap",
        );
        s.poke("load", 1).unwrap();
        s.poke("va", 1).unwrap();
        s.poke("vb", 2).unwrap();
        s.step(1);
        s.poke("load", 0).unwrap();
        s.step(1);
        assert_eq!(s.peek("a").unwrap().bits(), 2);
        assert_eq!(s.peek("b").unwrap().bits(), 1);
        s.step(1);
        assert_eq!(s.peek("a").unwrap().bits(), 1);
        assert_eq!(s.peek("b").unwrap().bits(), 2);
    }

    #[test]
    fn comb_chain_settles_in_order() {
        let mut s = sim(
            r#"
            module chain (input wire [3:0] x, output wire [3:0] z);
                wire [3:0] a;
                wire [3:0] b;
                assign z = b + 4'd1;
                assign b = a + 4'd1;
                assign a = x + 4'd1;
            endmodule
            "#,
            "chain",
        );
        s.poke("x", 0).unwrap();
        assert_eq!(s.peek("z").unwrap().bits(), 3);
        s.poke("x", 5).unwrap();
        assert_eq!(s.peek("z").unwrap().bits(), 8);
    }

    #[test]
    fn comb_loop_is_rejected() {
        let d = parse_design(
            r#"
            module looper (input wire x, output wire y);
                wire a;
                wire b;
                assign a = b ^ x;
                assign b = a;
                assign y = b;
            endmodule
            "#,
        )
        .unwrap();
        let flat = hardsnap_rtl::elaborate(&d, "looper").unwrap();
        match Simulator::new(flat) {
            Err(SimError::CombLoop(nets)) => {
                assert!(nets.iter().any(|n| n == "a" || n == "b"));
            }
            other => panic!("expected comb loop, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn comb_process_with_case() {
        let mut s = sim(
            r#"
            module dec (input wire [1:0] s, output reg [3:0] y);
                always @(*) begin
                    case (s)
                        2'd0: y = 4'b0001;
                        2'd1: y = 4'b0010;
                        2'd2: y = 4'b0100;
                        default: y = 4'b1000;
                    endcase
                end
            endmodule
            "#,
            "dec",
        );
        for (i, exp) in [(0u64, 1u64), (1, 2), (2, 4), (3, 8)] {
            s.poke("s", i).unwrap();
            assert_eq!(s.peek("y").unwrap().bits(), exp, "sel {i}");
        }
    }

    #[test]
    fn memory_write_then_read() {
        let mut s = sim(
            r#"
            module m (input wire clk, input wire we, input wire [3:0] addr,
                      input wire [7:0] din, output wire [7:0] dout);
                reg [7:0] ram [0:15];
                assign dout = ram[addr];
                always @(posedge clk) if (we) ram[addr] <= din;
            endmodule
            "#,
            "m",
        );
        s.poke("we", 1).unwrap();
        s.poke("addr", 3).unwrap();
        s.poke("din", 0xab).unwrap();
        s.step(1);
        s.poke("we", 0).unwrap();
        assert_eq!(s.peek("dout").unwrap().bits(), 0xab);
        s.poke("addr", 4).unwrap();
        assert_eq!(s.peek("dout").unwrap().bits(), 0);
        assert_eq!(s.peek_mem("ram", 3).unwrap(), 0xab);
    }

    #[test]
    fn memory_read_sees_same_cycle_old_value() {
        // Classic NBA property: a read in the same clocked process sees
        // the pre-edge memory contents.
        let mut s = sim(
            r#"
            module m (input wire clk, output reg [7:0] snap);
                reg [7:0] ram [0:3];
                reg [1:0] i;
                always @(posedge clk) begin
                    ram[i] <= 8'd7;
                    snap <= ram[i];
                    i <= i + 2'd1;
                end
            endmodule
            "#,
            "m",
        );
        s.step(1); // writes ram[0]=7, snap <= old ram[0] (0)
        assert_eq!(s.peek("snap").unwrap().bits(), 0);
        s.step(4); // wraps; at i=0 again snap <= ram[0] which is 7 now
        assert_eq!(s.peek("snap").unwrap().bits(), 7);
    }

    #[test]
    fn poke_and_peek_mem_bounds_checked() {
        let mut s = sim(
            r#"
            module m (input wire clk, input wire [1:0] a, output wire [7:0] d);
                reg [7:0] ram [0:3];
                assign d = ram[a];
                always @(posedge clk) ram[a] <= 8'd1;
            endmodule
            "#,
            "m",
        );
        assert!(matches!(
            s.peek_mem("ram", 4),
            Err(SimError::OutOfRange { .. })
        ));
        assert!(s.poke_mem("ram", 2, 0x55).is_ok());
        assert_eq!(s.peek_mem("ram", 2).unwrap(), 0x55);
        assert!(matches!(s.peek("nope"), Err(SimError::UnknownNet(_))));
    }

    #[test]
    fn dynamic_index_read_and_write() {
        let mut s = sim(
            r#"
            module b (input wire clk, input wire [2:0] i, input wire v,
                      output reg [7:0] q, output wire o);
                assign o = q[i];
                always @(posedge clk) q[i] <= v;
            endmodule
            "#,
            "b",
        );
        s.poke("i", 5).unwrap();
        s.poke("v", 1).unwrap();
        s.step(1);
        assert_eq!(s.peek("q").unwrap().bits(), 1 << 5);
        assert_eq!(s.peek("o").unwrap().bits(), 1);
        s.poke("i", 4).unwrap();
        assert_eq!(s.peek("o").unwrap().bits(), 0);
    }

    #[test]
    fn blocking_assign_in_clocked_process_is_sequential() {
        let mut s = sim(
            r#"
            module blk (input wire clk, output reg [7:0] y);
                reg [7:0] t;
                always @(posedge clk) begin
                    t = 8'd5;
                    y <= t + 8'd1;
                end
            endmodule
            "#,
            "blk",
        );
        s.step(1);
        assert_eq!(s.peek("y").unwrap().bits(), 6);
    }

    #[test]
    fn hierarchical_design_simulates() {
        let mut s = sim(
            r#"
            module dff (input wire clk, input wire d, output reg q);
                always @(posedge clk) q <= d;
            endmodule
            module shift2 (input wire clk, input wire d, output wire q);
                wire mid;
                dff s0 (.clk(clk), .d(d), .q(mid));
                dff s1 (.clk(clk), .d(mid), .q(q));
            endmodule
            "#,
            "shift2",
        );
        s.poke("d", 1).unwrap();
        s.step(1);
        assert_eq!(s.peek("q").unwrap().bits(), 0);
        s.step(1);
        assert_eq!(s.peek("q").unwrap().bits(), 1);
        assert_eq!(s.peek("s0.q").unwrap().bits(), 1);
    }
}
