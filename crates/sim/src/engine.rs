//! Cycle-accurate simulator for flat RTL modules.
//!
//! Semantics match the synthesizable-Verilog expectations the corpus is
//! written against:
//!
//! * Combinational logic (continuous assigns and `always @(*)` bodies) is
//!   **levelized**: nodes are topologically sorted by net dependencies
//!   once at build time and re-evaluated in that order whenever state
//!   changes. Combinational cycles are rejected at construction.
//! * A clock [`Simulator::step`] evaluates all `posedge` processes
//!   against pre-edge state with correct **non-blocking** semantics (all
//!   RHS sampled before any commit), then commits, then re-settles the
//!   combinational fabric.
//! * Full visibility: any net or memory word can be peeked or poked by
//!   hierarchical name at any time — the property (paper §III-A) that
//!   makes simulator-side hardware snapshots trivial and exact.
//!
//! Two execution backends share these semantics bit-exactly:
//!
//! * **Bytecode** (the default, [`SimEngine::Bytecode`]): the module is
//!   lowered once by [`hardsnap_rtl::compile`] into a levelized op
//!   array over raw `u64` slots and executed by the activity-driven
//!   engine in [`crate::compiled`] — only comb blocks in the fan-out
//!   cone of changed nets re-run each cycle (Verilator-style).
//! * **Interpreter** ([`SimEngine::Interpreter`]): the original
//!   tree-walking evaluator, retained as the semantic reference for
//!   differential testing.

use crate::compiled::CompiledSim;
use crate::SimError;
use hardsnap_rtl::{
    check_module, eval_binary, eval_unary, CaseArm, CombUnit, CompileError, Expr, LValue, MemId,
    Module, NetId, ProcessKind, Stmt, Value,
};
use hardsnap_telemetry::{Counter, Metric, Recorder};
use std::sync::Arc;

/// Which execution backend a [`Simulator`] runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimEngine {
    /// Compiled bytecode with activity-driven (dirty-cone) scheduling —
    /// the default.
    Bytecode,
    /// Compiled bytecode, but every dirty settle re-runs all comb
    /// blocks (isolates the compilation win from the scheduling win in
    /// benchmarks).
    BytecodeFullEval,
    /// The tree-walking reference interpreter.
    Interpreter,
}

impl SimEngine {
    /// Parses an engine name as used by CLI flags.
    pub fn from_name(name: &str) -> Option<SimEngine> {
        match name {
            "bytecode" => Some(SimEngine::Bytecode),
            "bytecode-full" => Some(SimEngine::BytecodeFullEval),
            "interp" | "interpreter" => Some(SimEngine::Interpreter),
            _ => None,
        }
    }

    /// Stable lowercase name (inverse of [`SimEngine::from_name`]).
    pub fn name(&self) -> &'static str {
        match self {
            SimEngine::Bytecode => "bytecode",
            SimEngine::BytecodeFullEval => "bytecode-full",
            SimEngine::Interpreter => "interp",
        }
    }
}

enum Backend {
    Compiled(CompiledSim),
    Interp(InterpSim),
}

/// A cycle-accurate simulator for one flat module.
///
/// # Examples
///
/// ```
/// use hardsnap_sim::Simulator;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = hardsnap_verilog::parse_design(r#"
///     module counter (input wire clk, input wire rst, output reg [7:0] q);
///         always @(posedge clk) begin
///             if (rst) q <= 8'd0; else q <= q + 8'd1;
///         end
///     endmodule
/// "#)?;
/// let flat = hardsnap_rtl::elaborate(&design, "counter")?;
/// let mut sim = Simulator::new(flat)?;
/// sim.poke("rst", 1)?;
/// sim.step(1);
/// sim.poke("rst", 0)?;
/// sim.step(5);
/// assert_eq!(sim.peek("q")?.bits(), 5);
/// # Ok(())
/// # }
/// ```
pub struct Simulator {
    module: Arc<Module>,
    // (Debug is implemented manually below: dumping every net value
    // would be unusable for large designs.)
    backend: Backend,
    cycle: u64,
    rec: Recorder,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("module", &self.module.name)
            .field("engine", &self.engine().name())
            .field("cycle", &self.cycle)
            .field("nets", &self.module.nets.len())
            .field("memories", &self.module.memories.len())
            .finish()
    }
}

impl Simulator {
    /// Builds a simulator for `module`, which must be flat (no
    /// instances). Runs on the bytecode engine; see
    /// [`Simulator::with_engine`] for the interpreter.
    ///
    /// # Errors
    ///
    /// * [`SimError::Rtl`] — the module fails [`check_module`] or still
    ///   contains instances.
    /// * [`SimError::CombLoop`] — the combinational fabric has a cycle.
    /// * [`SimError::Unsupported`] — `negedge` processes (the corpus is
    ///   single-edge) or other out-of-scope constructs.
    pub fn new(module: Module) -> Result<Self, SimError> {
        Simulator::with_engine(module, SimEngine::Bytecode)
    }

    /// Builds a simulator on a specific execution backend. All backends
    /// are bit-exact against each other; the interpreter exists as the
    /// differential-testing reference and the full-eval bytecode mode
    /// for benchmarking the activity-scheduling win in isolation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::new`].
    pub fn with_engine(module: Module, engine: SimEngine) -> Result<Self, SimError> {
        validate(&module)?;
        let backend = match engine {
            SimEngine::Bytecode | SimEngine::BytecodeFullEval => {
                let prog = hardsnap_rtl::compile(&module).map_err(compile_err)?;
                let mut c = CompiledSim::new(Arc::new(prog), &module);
                c.set_activity(engine == SimEngine::Bytecode);
                Backend::Compiled(c)
            }
            SimEngine::Interpreter => {
                Backend::Interp(InterpSim::new(&module).map_err(compile_err)?)
            }
        };
        let mut sim = Simulator {
            module: Arc::new(module),
            backend,
            cycle: 0,
            rec: Recorder::disabled(),
        };
        sim.settle();
        Ok(sim)
    }

    /// The simulated module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The backend this simulator executes on.
    pub fn engine(&self) -> SimEngine {
        match &self.backend {
            Backend::Compiled(c) if c.activity() => SimEngine::Bytecode,
            Backend::Compiled(_) => SimEngine::BytecodeFullEval,
            Backend::Interp(_) => SimEngine::Interpreter,
        }
    }

    /// Attaches a telemetry recorder; each subsequent [`Simulator::step`]
    /// on a bytecode backend reports `sim.ops_executed` /
    /// `sim.ops_skipped` counters and the per-step comb-activity
    /// histogram through it.
    pub fn attach_recorder(&mut self, rec: &Recorder) {
        self.rec = rec.clone();
    }

    /// Lifetime totals of combinational ops `(executed, skipped)` by the
    /// activity scheduler during `step`s. Both zero on the interpreter.
    pub fn comb_activity(&self) -> (u64, u64) {
        match &self.backend {
            Backend::Compiled(c) => (c.ops_executed(), c.ops_skipped()),
            Backend::Interp(_) => (0, 0),
        }
    }

    /// Creates an independent simulator over the same elaborated module
    /// in its power-on state. The `Arc<Module>` and the compiled program
    /// (or levelized order) are shared, so replication skips elaboration
    /// checks, re-levelization and re-compilation entirely — this is
    /// what makes per-worker target replicas cheap. The engine choice is
    /// inherited; the recorder is not.
    pub fn fork_clean(&self) -> Self {
        let backend = match &self.backend {
            Backend::Compiled(c) => Backend::Compiled(c.fork(&self.module)),
            Backend::Interp(i) => Backend::Interp(i.fork(&self.module)),
        };
        let mut sim = Simulator {
            module: self.module.clone(),
            backend,
            cycle: 0,
            rec: Recorder::disabled(),
        };
        sim.settle();
        sim
    }

    /// Elapsed clock cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Reads a net's current value by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNet`] if no net has that name.
    pub fn peek(&mut self, name: &str) -> Result<Value, SimError> {
        let id = self.net_id(name)?;
        self.settle();
        Ok(self.net_value_at(id.0 as usize))
    }

    /// Reads a net by id (no settle; internal fast path for drivers that
    /// just stepped).
    pub fn peek_id(&self, id: NetId) -> Value {
        self.net_value_at(id.0 as usize)
    }

    /// Forces a net to a value. Intended for input ports (stimulus) and
    /// for snapshot restore of registers; poking a derived combinational
    /// net is allowed but will be overwritten at the next settle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNet`] for unknown names.
    pub fn poke(&mut self, name: &str, value: u64) -> Result<(), SimError> {
        let id = self.net_id(name)?;
        self.poke_id(id, value);
        Ok(())
    }

    /// Forces a net to a value by id (infallible fast path for bus
    /// drivers that resolved the port id once at bind time).
    pub fn poke_id(&mut self, id: NetId, value: u64) {
        match &mut self.backend {
            Backend::Compiled(c) => c.poke(id.0, value),
            Backend::Interp(i) => {
                let w = self.module.net(id).width;
                i.nets[id.0 as usize] = Value::new(value, w);
                i.comb_dirty = true;
            }
        }
    }

    /// Reads one memory word.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNet`] for unknown memories and
    /// [`SimError::OutOfRange`] for bad addresses.
    pub fn peek_mem(&self, name: &str, addr: u32) -> Result<u64, SimError> {
        let id = self
            .module
            .find_mem(name)
            .ok_or_else(|| SimError::UnknownNet(name.to_string()))?;
        self.mem_words(id)
            .get(addr as usize)
            .copied()
            .ok_or_else(|| SimError::OutOfRange {
                name: name.to_string(),
                index: addr,
            })
    }

    /// Writes one memory word.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::peek_mem`].
    pub fn poke_mem(&mut self, name: &str, addr: u32, value: u64) -> Result<(), SimError> {
        let id = self
            .module
            .find_mem(name)
            .ok_or_else(|| SimError::UnknownNet(name.to_string()))?;
        let in_range = match &mut self.backend {
            Backend::Compiled(c) => c.poke_mem(id.0 as usize, addr as usize, value),
            Backend::Interp(i) => {
                let width = self.module.memory(id).width;
                match i.mems[id.0 as usize].get_mut(addr as usize) {
                    None => false,
                    Some(slot) => {
                        *slot = value & hardsnap_rtl::mask(width);
                        i.comb_dirty = true;
                        true
                    }
                }
            }
        };
        if in_range {
            Ok(())
        } else {
            Err(SimError::OutOfRange {
                name: name.to_string(),
                index: addr,
            })
        }
    }

    /// Returns all net values and memory contents to the power-on state
    /// (all zeros). Note this is *stronger* than asserting the reset net:
    /// synchronous reset logic only initializes registers, while a power
    /// cycle also clears SRAM contents.
    pub fn clear_state(&mut self) {
        match &mut self.backend {
            Backend::Compiled(c) => c.clear_state(),
            Backend::Interp(i) => i.clear_state(&self.module),
        }
    }

    /// Advances the clock by `cycles` posedges.
    pub fn step(&mut self, cycles: u64) {
        for _ in 0..cycles {
            match &mut self.backend {
                Backend::Compiled(c) => {
                    let (e0, s0) = (c.ops_executed(), c.ops_skipped());
                    c.step_one();
                    if self.rec.is_enabled() {
                        let de = c.ops_executed() - e0;
                        self.rec.add(Counter::SimOpsExecuted, de);
                        self.rec.add(Counter::SimOpsSkipped, c.ops_skipped() - s0);
                        self.rec.observe(Metric::SimCombOpsPerStep, de);
                    }
                }
                Backend::Interp(i) => i.step_one(&self.module),
            }
            self.cycle += 1;
        }
    }

    /// Direct access to one memory's words by id.
    pub fn mem_words(&self, id: MemId) -> &[u64] {
        match &self.backend {
            Backend::Compiled(c) => c.mem_words(id.0 as usize),
            Backend::Interp(i) => &i.mems[id.0 as usize],
        }
    }

    fn net_id(&self, name: &str) -> Result<NetId, SimError> {
        self.module
            .find_net(name)
            .ok_or_else(|| SimError::UnknownNet(name.to_string()))
    }

    // ------------------------------------------------------------- internals

    /// One net's current value by index, no settle (callers settle
    /// first when they need post-combinational values).
    pub(crate) fn net_value_at(&self, i: usize) -> Value {
        match &self.backend {
            Backend::Compiled(c) => Value::new(c.peek_raw(i), self.module.nets[i].width),
            Backend::Interp(it) => it.nets[i],
        }
    }

    /// Settles the combinational fabric (used by the VCD writer before
    /// sampling).
    pub(crate) fn settle_for_trace(&mut self) {
        self.settle();
    }

    /// Turns on the net-change journal (bytecode backends only) so
    /// [`Simulator::drain_changed_nets`] can report exactly which nets
    /// changed since the last drain.
    pub(crate) fn enable_change_journal(&mut self) {
        if let Backend::Compiled(c) = &mut self.backend {
            c.enable_journal();
        }
    }

    /// Drains changed-net ids (ascending) into `out`; false when no
    /// journal is available (interpreter) and the caller must scan all
    /// nets.
    pub(crate) fn drain_changed_nets(&mut self, out: &mut Vec<u32>) -> bool {
        match &mut self.backend {
            Backend::Compiled(c) => c.drain_changes(out),
            Backend::Interp(_) => false,
        }
    }

    /// Turns on the snapshot dirty journal (bytecode backends only) so
    /// delta captures can report exactly which nets and memory words
    /// changed since the last capture. Independent of the VCD change
    /// journal — the two drain at their own cadences.
    pub(crate) fn enable_snapshot_journal(&mut self) {
        if let Backend::Compiled(c) = &mut self.backend {
            c.enable_snap_journal();
        }
    }

    /// Drains the snapshot journal: changed net ids (ascending) into
    /// `nets_out` and changed `(mem, word)` pairs (ascending) into
    /// `mems_out`. Returns false when no journal is available
    /// (interpreter) — the caller must fall back to a full diff.
    pub(crate) fn drain_snapshot_changes(
        &mut self,
        nets_out: &mut Vec<u32>,
        mems_out: &mut Vec<(u32, u32)>,
    ) -> bool {
        match &mut self.backend {
            Backend::Compiled(c) => c.drain_snap_changes(nets_out, mems_out),
            Backend::Interp(_) => false,
        }
    }

    /// Writes one memory word by resolved id (infallible fast path for
    /// bulk snapshot restores that resolved the memory ids once at
    /// construction). Out-of-range addresses are ignored — callers are
    /// expected to have validated the shape up front.
    pub fn poke_mem_id(&mut self, id: MemId, addr: u32, value: u64) {
        match &mut self.backend {
            Backend::Compiled(c) => {
                c.poke_mem(id.0 as usize, addr as usize, value);
            }
            Backend::Interp(i) => {
                let width = self.module.memory(id).width;
                if let Some(slot) = i.mems[id.0 as usize].get_mut(addr as usize) {
                    *slot = value & hardsnap_rtl::mask(width);
                    i.comb_dirty = true;
                }
            }
        }
    }

    fn settle(&mut self) {
        match &mut self.backend {
            Backend::Compiled(c) => c.settle(),
            Backend::Interp(i) => i.settle(&self.module),
        }
    }
}

/// Shared construction-time validation (both backends).
fn validate(module: &Module) -> Result<(), SimError> {
    if !module.instances.is_empty() {
        return Err(SimError::Rtl(hardsnap_rtl::RtlError::Elab(format!(
            "module '{}' still has instances; run elaborate() first",
            module.name
        ))));
    }
    check_module(module).map_err(SimError::Rtl)?;
    for p in &module.processes {
        if let ProcessKind::Clocked {
            edge: hardsnap_rtl::EdgeKind::Neg,
            ..
        } = p.kind
        {
            return Err(SimError::Unsupported(
                "negedge processes are not supported (single-edge corpus)".into(),
            ));
        }
    }
    Ok(())
}

fn compile_err(e: CompileError) -> SimError {
    match e {
        CompileError::CombLoop(nets) => SimError::CombLoop(nets),
        CompileError::Unsupported(m) => SimError::Unsupported(m),
    }
}

// ===================================================================
// Tree-walking reference interpreter
// ===================================================================

/// The original AST-walking backend. Kept as the semantic reference the
/// bytecode engine is differentially tested against.
struct InterpSim {
    /// Current value of every net (index = NetId).
    nets: Vec<Value>,
    /// Current contents of every memory (index = MemId).
    mems: Vec<Vec<u64>>,
    /// Combinational nodes in evaluation order (shared across forks).
    comb_order: Arc<Vec<CombUnit>>,
    /// Indices of clocked processes.
    clocked: Vec<usize>,
    /// Pending non-blocking register writes: (net, mask, bits). Reused
    /// across cycles — drained in place, never reallocated.
    nba_nets: Vec<(NetId, u64, u64)>,
    /// Pending non-blocking memory writes: (mem, addr, value).
    nba_mems: Vec<(MemId, u64, u64)>,
    comb_dirty: bool,
}

impl InterpSim {
    fn new(module: &Module) -> Result<Self, CompileError> {
        let comb_order = Arc::new(hardsnap_rtl::comb_schedule(module)?);
        let clocked = module
            .processes
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p.kind, ProcessKind::Clocked { .. }))
            .map(|(i, _)| i)
            .collect();
        Ok(InterpSim {
            nets: module.nets.iter().map(|n| Value::zero(n.width)).collect(),
            mems: module
                .memories
                .iter()
                .map(|m| vec![0u64; m.depth as usize])
                .collect(),
            comb_order,
            clocked,
            nba_nets: Vec::new(),
            nba_mems: Vec::new(),
            comb_dirty: true,
        })
    }

    fn fork(&self, module: &Module) -> Self {
        InterpSim {
            nets: module.nets.iter().map(|n| Value::zero(n.width)).collect(),
            mems: module
                .memories
                .iter()
                .map(|m| vec![0u64; m.depth as usize])
                .collect(),
            comb_order: Arc::clone(&self.comb_order),
            clocked: self.clocked.clone(),
            nba_nets: Vec::new(),
            nba_mems: Vec::new(),
            comb_dirty: true,
        }
    }

    fn clear_state(&mut self, module: &Module) {
        for (i, net) in module.nets.iter().enumerate() {
            self.nets[i] = Value::zero(net.width);
        }
        for mem in &mut self.mems {
            mem.iter_mut().for_each(|w| *w = 0);
        }
        self.comb_dirty = true;
    }

    fn step_one(&mut self, module: &Module) {
        self.settle(module);
        self.clock_edge(module);
        self.comb_dirty = true;
        self.settle(module);
    }

    /// Re-evaluates the combinational fabric in levelized order.
    fn settle(&mut self, module: &Module) {
        if !self.comb_dirty {
            return;
        }
        self.comb_dirty = false;
        for node in self.comb_order.iter() {
            match *node {
                CombUnit::Assign(ai) => {
                    let a = &module.assigns[ai];
                    let v = eval_expr(module, &self.nets, &self.mems, &a.rhs);
                    write_net_lvalue(module, &mut self.nets, &mut self.mems, &a.lv, v);
                }
                CombUnit::Process(pi) => {
                    for s in &module.processes[pi].body {
                        exec_comb_stmt(module, &mut self.nets, &mut self.mems, s);
                    }
                }
            }
        }
    }

    /// Executes one clock edge with NBA semantics.
    fn clock_edge(&mut self, module: &Module) {
        debug_assert!(self.nba_nets.is_empty() && self.nba_mems.is_empty());
        for k in 0..self.clocked.len() {
            let pi = self.clocked[k];
            for s in &module.processes[pi].body {
                self.exec_clocked_stmt(module, s);
            }
        }
        // Commit NBA writes in program order. The scratch Vecs are
        // drained in place so their capacity survives across cycles.
        for k in 0..self.nba_nets.len() {
            let (net, mask, bits) = self.nba_nets[k];
            let cur = self.nets[net.0 as usize];
            self.nets[net.0 as usize] =
                Value::new((cur.bits() & !mask) | (bits & mask), cur.width());
        }
        self.nba_nets.clear();
        for k in 0..self.nba_mems.len() {
            let (mem, addr, value) = self.nba_mems[k];
            let width = module.memory(mem).width;
            if let Some(slot) = self.mems[mem.0 as usize].get_mut(addr as usize) {
                *slot = value & hardsnap_rtl::mask(width);
            }
        }
        self.nba_mems.clear();
    }

    fn exec_clocked_stmt(&mut self, module: &Module, s: &Stmt) {
        match s {
            Stmt::Assign { lv, rhs, blocking } => {
                let v = eval_expr(module, &self.nets, &self.mems, rhs);
                if *blocking {
                    write_net_lvalue(module, &mut self.nets, &mut self.mems, lv, v);
                } else {
                    self.schedule_nba(module, lv, v);
                }
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let c = eval_expr(module, &self.nets, &self.mems, cond);
                let branch = if c.is_true() { then_s } else { else_s };
                for s in branch {
                    self.exec_clocked_stmt(module, s);
                }
            }
            Stmt::Case { sel, arms, default } => {
                let sv = eval_expr(module, &self.nets, &self.mems, sel);
                let body = select_case_arm(sv, arms, default);
                for s in body {
                    self.exec_clocked_stmt(module, s);
                }
            }
        }
    }

    /// Schedules a non-blocking write (sampled now, committed at edge
    /// end).
    fn schedule_nba(&mut self, module: &Module, lv: &LValue, v: Value) {
        match lv {
            LValue::Net(n) => {
                let w = module.net(*n).width;
                self.nba_nets
                    .push((*n, hardsnap_rtl::mask(w), v.resize(w).bits()));
            }
            LValue::Slice { base, hi, lo } => {
                let m = hardsnap_rtl::mask(hi - lo + 1) << lo;
                self.nba_nets
                    .push((*base, m, (v.resize(hi - lo + 1).bits()) << lo));
            }
            LValue::Index { base, index } => {
                let i = eval_expr(module, &self.nets, &self.mems, index).bits();
                let w = module.net(*base).width;
                if i < w as u64 {
                    self.nba_nets.push((*base, 1 << i, (v.bits() & 1) << i));
                }
            }
            LValue::Mem { mem, addr } => {
                let a = eval_expr(module, &self.nets, &self.mems, addr).bits();
                self.nba_mems.push((*mem, a, v.bits()));
            }
        }
    }
}

fn exec_comb_stmt(module: &Module, nets: &mut [Value], mems: &mut [Vec<u64>], s: &Stmt) {
    match s {
        Stmt::Assign { lv, rhs, .. } => {
            // In a comb process all assignments behave as blocking.
            let v = eval_expr(module, nets, mems, rhs);
            write_net_lvalue(module, nets, mems, lv, v);
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
        } => {
            let c = eval_expr(module, nets, mems, cond);
            let branch = if c.is_true() { then_s } else { else_s };
            for s in branch {
                exec_comb_stmt(module, nets, mems, s);
            }
        }
        Stmt::Case { sel, arms, default } => {
            let sv = eval_expr(module, nets, mems, sel);
            let body = select_case_arm(sv, arms, default);
            for s in body {
                exec_comb_stmt(module, nets, mems, s);
            }
        }
    }
}

/// Immediate (blocking / continuous) write.
fn write_net_lvalue(
    module: &Module,
    nets: &mut [Value],
    mems: &mut [Vec<u64>],
    lv: &LValue,
    v: Value,
) {
    match lv {
        LValue::Net(n) => {
            let w = module.net(*n).width;
            nets[n.0 as usize] = v.resize(w);
        }
        LValue::Slice { base, hi, lo } => {
            let cur = nets[base.0 as usize];
            nets[base.0 as usize] = cur.set_slice(*hi, *lo, v.resize(hi - lo + 1));
        }
        LValue::Index { base, index } => {
            let i = eval_expr(module, nets, mems, index).bits();
            let cur = nets[base.0 as usize];
            if i < cur.width() as u64 {
                nets[base.0 as usize] = cur.set_slice(i as u32, i as u32, v.resize(1));
            }
        }
        LValue::Mem { mem, addr } => {
            let a = eval_expr(module, nets, mems, addr).bits();
            let width = module.memory(*mem).width;
            if let Some(slot) = mems[mem.0 as usize].get_mut(a as usize) {
                *slot = v.bits() & hardsnap_rtl::mask(width);
            }
        }
    }
}

/// Selects the matching case arm (or the default) for a selector value.
fn select_case_arm<'a>(sel: Value, arms: &'a [CaseArm], default: &'a [Stmt]) -> &'a [Stmt] {
    for arm in arms {
        if arm.labels.iter().any(|l| l.bits() == sel.bits()) {
            return &arm.body;
        }
    }
    default
}

/// Pure expression evaluation against a net/memory state.
pub(crate) fn eval_expr(module: &Module, nets: &[Value], mems: &[Vec<u64>], e: &Expr) -> Value {
    match e {
        Expr::Const(v) => *v,
        Expr::Net(n) => nets[n.0 as usize],
        Expr::Slice { base, hi, lo } => nets[base.0 as usize].slice(*hi, *lo),
        Expr::Index { base, index } => {
            let i = eval_expr(module, nets, mems, index).bits();
            nets[base.0 as usize].get_bit(i)
        }
        Expr::Unary { op, arg } => eval_unary(*op, eval_expr(module, nets, mems, arg)),
        Expr::Binary { op, lhs, rhs } => eval_binary(
            *op,
            eval_expr(module, nets, mems, lhs),
            eval_expr(module, nets, mems, rhs),
        ),
        Expr::Cond {
            cond,
            then_e,
            else_e,
        } => {
            // Width unification mirrors Expr::width (max of arms).
            let t = eval_expr(module, nets, mems, then_e);
            let f = eval_expr(module, nets, mems, else_e);
            let w = t.width().max(f.width());
            if eval_expr(module, nets, mems, cond).is_true() {
                t.resize(w)
            } else {
                f.resize(w)
            }
        }
        Expr::Concat(parts) => {
            let mut acc: Option<Value> = None;
            for p in parts {
                let v = eval_expr(module, nets, mems, p);
                acc = Some(match acc {
                    None => v,
                    Some(a) => a.concat(v),
                });
            }
            acc.expect("empty concat rejected at check time")
        }
        Expr::Repeat { count, arg } => {
            let v = eval_expr(module, nets, mems, arg);
            let mut acc = v;
            for _ in 1..*count {
                acc = acc.concat(v);
            }
            acc
        }
        Expr::MemRead { mem, addr } => {
            let a = eval_expr(module, nets, mems, addr).bits();
            let width = module.memory(*mem).width;
            let word = mems[mem.0 as usize].get(a as usize).copied().unwrap_or(0);
            Value::new(word, width)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardsnap_verilog::parse_design;

    fn sim(src: &str, top: &str) -> Simulator {
        let d = parse_design(src).unwrap();
        let flat = hardsnap_rtl::elaborate(&d, top).unwrap();
        Simulator::new(flat).unwrap()
    }

    #[test]
    fn counter_counts() {
        let mut s = sim(
            r#"
            module counter (input wire clk, input wire rst, output reg [7:0] q);
                always @(posedge clk) begin
                    if (rst) q <= 8'd0; else q <= q + 8'd1;
                end
            endmodule
            "#,
            "counter",
        );
        s.poke("rst", 1).unwrap();
        s.step(2);
        assert_eq!(s.peek("q").unwrap().bits(), 0);
        s.poke("rst", 0).unwrap();
        s.step(300);
        assert_eq!(s.peek("q").unwrap().bits(), 300 % 256);
        assert_eq!(s.cycle(), 302);
    }

    #[test]
    fn nba_swap_is_simultaneous() {
        let mut s = sim(
            r#"
            module swap (input wire clk, input wire load,
                         input wire [7:0] va, input wire [7:0] vb,
                         output reg [7:0] a, output reg [7:0] b);
                always @(posedge clk) begin
                    if (load) begin a <= va; b <= vb; end
                    else begin a <= b; b <= a; end
                end
            endmodule
            "#,
            "swap",
        );
        s.poke("load", 1).unwrap();
        s.poke("va", 1).unwrap();
        s.poke("vb", 2).unwrap();
        s.step(1);
        s.poke("load", 0).unwrap();
        s.step(1);
        assert_eq!(s.peek("a").unwrap().bits(), 2);
        assert_eq!(s.peek("b").unwrap().bits(), 1);
        s.step(1);
        assert_eq!(s.peek("a").unwrap().bits(), 1);
        assert_eq!(s.peek("b").unwrap().bits(), 2);
    }

    #[test]
    fn comb_chain_settles_in_order() {
        let mut s = sim(
            r#"
            module chain (input wire [3:0] x, output wire [3:0] z);
                wire [3:0] a;
                wire [3:0] b;
                assign z = b + 4'd1;
                assign b = a + 4'd1;
                assign a = x + 4'd1;
            endmodule
            "#,
            "chain",
        );
        s.poke("x", 0).unwrap();
        assert_eq!(s.peek("z").unwrap().bits(), 3);
        s.poke("x", 5).unwrap();
        assert_eq!(s.peek("z").unwrap().bits(), 8);
    }

    #[test]
    fn comb_loop_is_rejected() {
        let d = parse_design(
            r#"
            module looper (input wire x, output wire y);
                wire a;
                wire b;
                assign a = b ^ x;
                assign b = a;
                assign y = b;
            endmodule
            "#,
        )
        .unwrap();
        let flat = hardsnap_rtl::elaborate(&d, "looper").unwrap();
        match Simulator::new(flat) {
            Err(SimError::CombLoop(nets)) => {
                assert!(nets.iter().any(|n| n == "a" || n == "b"));
            }
            other => panic!("expected comb loop, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn comb_process_with_case() {
        let mut s = sim(
            r#"
            module dec (input wire [1:0] s, output reg [3:0] y);
                always @(*) begin
                    case (s)
                        2'd0: y = 4'b0001;
                        2'd1: y = 4'b0010;
                        2'd2: y = 4'b0100;
                        default: y = 4'b1000;
                    endcase
                end
            endmodule
            "#,
            "dec",
        );
        for (i, exp) in [(0u64, 1u64), (1, 2), (2, 4), (3, 8)] {
            s.poke("s", i).unwrap();
            assert_eq!(s.peek("y").unwrap().bits(), exp, "sel {i}");
        }
    }

    #[test]
    fn memory_write_then_read() {
        let mut s = sim(
            r#"
            module m (input wire clk, input wire we, input wire [3:0] addr,
                      input wire [7:0] din, output wire [7:0] dout);
                reg [7:0] ram [0:15];
                assign dout = ram[addr];
                always @(posedge clk) if (we) ram[addr] <= din;
            endmodule
            "#,
            "m",
        );
        s.poke("we", 1).unwrap();
        s.poke("addr", 3).unwrap();
        s.poke("din", 0xab).unwrap();
        s.step(1);
        s.poke("we", 0).unwrap();
        assert_eq!(s.peek("dout").unwrap().bits(), 0xab);
        s.poke("addr", 4).unwrap();
        assert_eq!(s.peek("dout").unwrap().bits(), 0);
        assert_eq!(s.peek_mem("ram", 3).unwrap(), 0xab);
    }

    #[test]
    fn memory_read_sees_same_cycle_old_value() {
        // Classic NBA property: a read in the same clocked process sees
        // the pre-edge memory contents.
        let mut s = sim(
            r#"
            module m (input wire clk, output reg [7:0] snap);
                reg [7:0] ram [0:3];
                reg [1:0] i;
                always @(posedge clk) begin
                    ram[i] <= 8'd7;
                    snap <= ram[i];
                    i <= i + 2'd1;
                end
            endmodule
            "#,
            "m",
        );
        s.step(1); // writes ram[0]=7, snap <= old ram[0] (0)
        assert_eq!(s.peek("snap").unwrap().bits(), 0);
        s.step(4); // wraps; at i=0 again snap <= ram[0] which is 7 now
        assert_eq!(s.peek("snap").unwrap().bits(), 7);
    }

    #[test]
    fn poke_and_peek_mem_bounds_checked() {
        let mut s = sim(
            r#"
            module m (input wire clk, input wire [1:0] a, output wire [7:0] d);
                reg [7:0] ram [0:3];
                assign d = ram[a];
                always @(posedge clk) ram[a] <= 8'd1;
            endmodule
            "#,
            "m",
        );
        assert!(matches!(
            s.peek_mem("ram", 4),
            Err(SimError::OutOfRange { .. })
        ));
        assert!(s.poke_mem("ram", 2, 0x55).is_ok());
        assert!(matches!(
            s.poke_mem("ram", 4, 0x55),
            Err(SimError::OutOfRange { .. })
        ));
        assert_eq!(s.peek_mem("ram", 2).unwrap(), 0x55);
        assert!(matches!(s.peek("nope"), Err(SimError::UnknownNet(_))));
    }

    #[test]
    fn dynamic_index_read_and_write() {
        let mut s = sim(
            r#"
            module b (input wire clk, input wire [2:0] i, input wire v,
                      output reg [7:0] q, output wire o);
                assign o = q[i];
                always @(posedge clk) q[i] <= v;
            endmodule
            "#,
            "b",
        );
        s.poke("i", 5).unwrap();
        s.poke("v", 1).unwrap();
        s.step(1);
        assert_eq!(s.peek("q").unwrap().bits(), 1 << 5);
        assert_eq!(s.peek("o").unwrap().bits(), 1);
        s.poke("i", 4).unwrap();
        assert_eq!(s.peek("o").unwrap().bits(), 0);
    }

    #[test]
    fn blocking_assign_in_clocked_process_is_sequential() {
        let mut s = sim(
            r#"
            module blk (input wire clk, output reg [7:0] y);
                reg [7:0] t;
                always @(posedge clk) begin
                    t = 8'd5;
                    y <= t + 8'd1;
                end
            endmodule
            "#,
            "blk",
        );
        s.step(1);
        assert_eq!(s.peek("y").unwrap().bits(), 6);
    }

    #[test]
    fn hierarchical_design_simulates() {
        let mut s = sim(
            r#"
            module dff (input wire clk, input wire d, output reg q);
                always @(posedge clk) q <= d;
            endmodule
            module shift2 (input wire clk, input wire d, output wire q);
                wire mid;
                dff s0 (.clk(clk), .d(d), .q(mid));
                dff s1 (.clk(clk), .d(mid), .q(q));
            endmodule
            "#,
            "shift2",
        );
        s.poke("d", 1).unwrap();
        s.step(1);
        assert_eq!(s.peek("q").unwrap().bits(), 0);
        s.step(1);
        assert_eq!(s.peek("q").unwrap().bits(), 1);
        assert_eq!(s.peek("s0.q").unwrap().bits(), 1);
    }

    #[test]
    fn engines_agree_on_mixed_design() {
        let src = r#"
            module mix (input wire clk, input wire rst, input wire [7:0] x,
                        output reg [7:0] acc, output wire [7:0] y);
                wire [7:0] t;
                assign t = x ^ acc;
                assign y = t + 8'd3;
                always @(posedge clk) begin
                    if (rst) acc <= 8'd0;
                    else acc <= acc + y;
                end
            endmodule
        "#;
        let mk = |engine| {
            let d = parse_design(src).unwrap();
            let flat = hardsnap_rtl::elaborate(&d, "mix").unwrap();
            Simulator::with_engine(flat, engine).unwrap()
        };
        let mut a = mk(SimEngine::Bytecode);
        let mut b = mk(SimEngine::Interpreter);
        let mut c = mk(SimEngine::BytecodeFullEval);
        for i in 0..64u64 {
            for s in [&mut a, &mut b, &mut c] {
                s.poke("rst", (i == 0) as u64).unwrap();
                s.poke("x", i.wrapping_mul(37)).unwrap();
                s.step(1);
            }
            assert_eq!(a.peek("acc").unwrap(), b.peek("acc").unwrap(), "cycle {i}");
            assert_eq!(a.peek("y").unwrap(), b.peek("y").unwrap(), "cycle {i}");
            assert_eq!(c.peek("acc").unwrap(), b.peek("acc").unwrap(), "cycle {i}");
        }
        let (exec, skip) = a.comb_activity();
        assert!(exec > 0);
        let (fe_exec, fe_skip) = c.comb_activity();
        assert!(fe_exec >= exec, "full eval must execute at least as much");
        assert_eq!(fe_skip, 0, "full eval never skips on an active design");
        let _ = skip;
    }

    #[test]
    fn quiescent_design_skips_comb_work() {
        // No input changes after reset: the dirty-cone scheduler should
        // skip essentially all comb work once the design is quiescent.
        let mut s = sim(
            r#"
            module quiet (input wire clk, input wire [7:0] x, output wire [7:0] y);
                wire [7:0] a;
                wire [7:0] b;
                assign a = x + 8'd1;
                assign b = a ^ 8'h5a;
                assign y = b;
            endmodule
            "#,
            "quiet",
        );
        s.poke("x", 7).unwrap();
        s.step(1);
        let (_, skip0) = s.comb_activity();
        s.step(100);
        let (_, skip1) = s.comb_activity();
        assert!(skip1 > skip0, "quiescent cycles must skip comb blocks");
        assert_eq!(s.peek("y").unwrap().bits(), (7u64 + 1) ^ 0x5a);
    }
}
