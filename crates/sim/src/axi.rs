//! AXI4-Lite master driver over a simulated design's slave ports.
//!
//! Drives the standard port set declared in [`hardsnap_bus::axi_ports`]
//! cycle-by-cycle through the simulator, with the real multi-cycle
//! handshake — which is exactly why MMIO forwarding has measurable,
//! design-dependent latency (evaluation E2).

use crate::{SimError, Simulator};
use hardsnap_bus::{axi_ports as p, BusError};
use hardsnap_rtl::NetId;

/// Handshake watchdog: a well-formed slave answers within a few cycles;
/// anything beyond this is a wedged design.
pub const AXI_TIMEOUT_CYCLES: u64 = 1000;

/// Resolved AXI4-Lite slave port ids for a design.
#[derive(Clone, Debug)]
pub struct AxiLite {
    awvalid: NetId,
    awaddr: NetId,
    awready: NetId,
    wvalid: NetId,
    wdata: NetId,
    wready: NetId,
    bvalid: NetId,
    bresp: NetId,
    bready: NetId,
    arvalid: NetId,
    araddr: NetId,
    arready: NetId,
    rvalid: NetId,
    rdata: NetId,
    rresp: NetId,
    rready: NetId,
}

impl AxiLite {
    /// Resolves the standard slave ports on `sim`'s design.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MissingPort`] naming the first absent port.
    pub fn bind(sim: &Simulator) -> Result<Self, SimError> {
        let f = |name: &str| {
            sim.module()
                .find_net(name)
                .ok_or_else(|| SimError::MissingPort(name.to_string()))
        };
        Ok(AxiLite {
            awvalid: f(p::AWVALID)?,
            awaddr: f(p::AWADDR)?,
            awready: f(p::AWREADY)?,
            wvalid: f(p::WVALID)?,
            wdata: f(p::WDATA)?,
            wready: f(p::WREADY)?,
            bvalid: f(p::BVALID)?,
            bresp: f(p::BRESP)?,
            bready: f(p::BREADY)?,
            arvalid: f(p::ARVALID)?,
            araddr: f(p::ARADDR)?,
            arready: f(p::ARREADY)?,
            rvalid: f(p::RVALID)?,
            rdata: f(p::RDATA)?,
            rresp: f(p::RRESP)?,
            rready: f(p::RREADY)?,
        })
    }

    /// Performs one 32-bit write transaction; returns the cycles it took.
    ///
    /// # Errors
    ///
    /// [`BusError::SlaveError`] on a non-OKAY response,
    /// [`BusError::Timeout`] if a handshake never completes.
    pub fn write(&self, sim: &mut Simulator, addr: u32, data: u32) -> Result<u64, BusError> {
        let start = sim.cycle();
        let poke = |sim: &mut Simulator, id: NetId, v: u64| sim.poke_id(id, v);
        poke(sim, self.awvalid, 1);
        poke(sim, self.awaddr, addr as u64);
        poke(sim, self.wvalid, 1);
        poke(sim, self.wdata, data as u64);
        poke(sim, self.bready, 1);

        // One unified loop: a slave may complete the address, data and
        // response channels in any relative order, so all three are
        // sampled every cycle (pre-edge, as AXI requires).
        let mut aw_done = false;
        let mut w_done = false;
        let mut waited = 0u64;
        loop {
            if waited >= AXI_TIMEOUT_CYCLES {
                return Err(BusError::Timeout {
                    addr,
                    cycles: sim.cycle() - start,
                });
            }
            let awr = sim.peek_id(self.awready).is_true();
            let wr = sim.peek_id(self.wready).is_true();
            let bv = sim.peek_id(self.bvalid).is_true();
            let resp = sim.peek_id(self.bresp).bits();
            sim.step(1);
            waited += 1;
            if !aw_done && awr {
                aw_done = true;
                poke(sim, self.awvalid, 0);
            }
            if !w_done && wr {
                w_done = true;
                poke(sim, self.wvalid, 0);
            }
            if bv {
                poke(sim, self.bready, 0);
                if resp != 0 {
                    return Err(BusError::SlaveError { addr });
                }
                return Ok(sim.cycle() - start);
            }
        }
    }

    /// Performs one 32-bit read transaction; returns `(data, cycles)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AxiLite::write`].
    pub fn read(&self, sim: &mut Simulator, addr: u32) -> Result<(u32, u64), BusError> {
        let start = sim.cycle();
        let poke = |sim: &mut Simulator, id: NetId, v: u64| sim.poke_id(id, v);
        poke(sim, self.arvalid, 1);
        poke(sim, self.araddr, addr as u64);
        poke(sim, self.rready, 1);

        // Unified loop: rvalid may assert in the same cycle arready does
        // (or even earlier), so both channels are sampled every cycle and
        // rdata is captured pre-edge while rvalid is high.
        let mut ar_done = false;
        let mut waited = 0u64;
        loop {
            if waited >= AXI_TIMEOUT_CYCLES {
                return Err(BusError::Timeout {
                    addr,
                    cycles: sim.cycle() - start,
                });
            }
            let arr = sim.peek_id(self.arready).is_true();
            let rv = sim.peek_id(self.rvalid).is_true();
            let data = sim.peek_id(self.rdata).bits() as u32;
            let resp = sim.peek_id(self.rresp).bits();
            sim.step(1);
            waited += 1;
            if !ar_done && arr {
                ar_done = true;
                poke(sim, self.arvalid, 0);
            }
            if rv {
                poke(sim, self.rready, 0);
                if !ar_done {
                    // Data arrived before the address handshake finished;
                    // keep draining the address channel.
                    poke(sim, self.arvalid, 0);
                }
                if resp != 0 {
                    return Err(BusError::SlaveError { addr });
                }
                return Ok((data, sim.cycle() - start));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardsnap_verilog::parse_design;

    /// A minimal AXI4-Lite register file: 4 registers, reg[1] reads back
    /// incremented to prove we are talking to logic and not a mirror;
    /// unmapped addresses answer SLVERR.
    const REGFILE: &str = r#"
    module regfile (
        input wire clk,
        input wire rst,
        input wire s_axi_awvalid, input wire [31:0] s_axi_awaddr,
        output reg s_axi_awready,
        input wire s_axi_wvalid, input wire [31:0] s_axi_wdata,
        output reg s_axi_wready,
        output reg s_axi_bvalid, output reg [1:0] s_axi_bresp,
        input wire s_axi_bready,
        input wire s_axi_arvalid, input wire [31:0] s_axi_araddr,
        output reg s_axi_arready,
        output reg s_axi_rvalid, output reg [31:0] s_axi_rdata,
        output reg [1:0] s_axi_rresp,
        input wire s_axi_rready
    );
        reg [31:0] r0;
        reg [31:0] r1;
        reg [31:0] waddr;
        reg aw_got;
        reg w_got;
        reg [31:0] wdata_l;
        always @(posedge clk) begin
            if (rst) begin
                s_axi_awready <= 1'b0; s_axi_wready <= 1'b0;
                s_axi_bvalid <= 1'b0; s_axi_bresp <= 2'd0;
                s_axi_arready <= 1'b0; s_axi_rvalid <= 1'b0;
                s_axi_rdata <= 32'd0; s_axi_rresp <= 2'd0;
                r0 <= 32'd0; r1 <= 32'd0;
                aw_got <= 1'b0; w_got <= 1'b0;
                waddr <= 32'd0; wdata_l <= 32'd0;
            end else begin
                s_axi_awready <= 1'b0;
                s_axi_wready <= 1'b0;
                if (s_axi_awvalid && !aw_got && !s_axi_awready) begin
                    s_axi_awready <= 1'b1;
                    waddr <= s_axi_awaddr;
                    aw_got <= 1'b1;
                end
                if (s_axi_wvalid && !w_got && !s_axi_wready) begin
                    s_axi_wready <= 1'b1;
                    wdata_l <= s_axi_wdata;
                    w_got <= 1'b1;
                end
                if (aw_got && w_got && !s_axi_bvalid) begin
                    s_axi_bvalid <= 1'b1;
                    if (waddr[7:0] == 8'h00) begin
                        r0 <= wdata_l; s_axi_bresp <= 2'd0;
                    end else begin
                        if (waddr[7:0] == 8'h04) begin
                            r1 <= wdata_l; s_axi_bresp <= 2'd0;
                        end else s_axi_bresp <= 2'd2;
                    end
                end
                if (s_axi_bvalid && s_axi_bready) begin
                    s_axi_bvalid <= 1'b0;
                    aw_got <= 1'b0;
                    w_got <= 1'b0;
                end
                s_axi_arready <= 1'b0;
                if (s_axi_arvalid && !s_axi_rvalid && !s_axi_arready) begin
                    s_axi_arready <= 1'b1;
                    s_axi_rvalid <= 1'b1;
                    if (s_axi_araddr[7:0] == 8'h00) begin
                        s_axi_rdata <= r0; s_axi_rresp <= 2'd0;
                    end else begin
                        if (s_axi_araddr[7:0] == 8'h04) begin
                            s_axi_rdata <= r1 + 32'd1; s_axi_rresp <= 2'd0;
                        end else begin
                            s_axi_rdata <= 32'd0; s_axi_rresp <= 2'd2;
                        end
                    end
                end
                if (s_axi_rvalid && s_axi_rready) s_axi_rvalid <= 1'b0;
            end
        end
    endmodule
    "#;

    fn regfile_sim() -> (Simulator, AxiLite) {
        let d = parse_design(REGFILE).unwrap();
        let flat = hardsnap_rtl::elaborate(&d, "regfile").unwrap();
        let mut sim = Simulator::new(flat).unwrap();
        sim.poke("rst", 1).unwrap();
        sim.step(2);
        sim.poke("rst", 0).unwrap();
        sim.step(1);
        let axi = AxiLite::bind(&sim).unwrap();
        (sim, axi)
    }

    #[test]
    fn write_then_read_roundtrips() {
        let (mut sim, axi) = regfile_sim();
        let cyc = axi.write(&mut sim, 0x00, 0xcafe_f00d).unwrap();
        assert!(cyc >= 2, "a real handshake takes cycles, took {cyc}");
        let (v, _) = axi.read(&mut sim, 0x00).unwrap();
        assert_eq!(v, 0xcafe_f00d);
    }

    #[test]
    fn logic_behind_the_bus_is_exercised() {
        let (mut sim, axi) = regfile_sim();
        axi.write(&mut sim, 0x04, 41).unwrap();
        let (v, _) = axi.read(&mut sim, 0x04).unwrap();
        assert_eq!(v, 42, "r1 reads back incremented");
    }

    #[test]
    fn unmapped_address_is_slave_error() {
        let (mut sim, axi) = regfile_sim();
        assert!(matches!(
            axi.write(&mut sim, 0x40, 1),
            Err(BusError::SlaveError { addr: 0x40 })
        ));
        assert!(matches!(
            axi.read(&mut sim, 0x40),
            Err(BusError::SlaveError { addr: 0x40 })
        ));
    }

    #[test]
    fn back_to_back_transactions() {
        let (mut sim, axi) = regfile_sim();
        for i in 0..10u32 {
            axi.write(&mut sim, 0x00, i).unwrap();
            let (v, _) = axi.read(&mut sim, 0x00).unwrap();
            assert_eq!(v, i);
        }
    }

    #[test]
    fn missing_port_is_reported() {
        let d = parse_design("module empty (input wire clk); endmodule").unwrap();
        let flat = hardsnap_rtl::elaborate(&d, "empty").unwrap();
        let sim = Simulator::new(flat).unwrap();
        match AxiLite::bind(&sim) {
            Err(SimError::MissingPort(p)) => assert_eq!(p, "s_axi_awvalid"),
            other => panic!("expected MissingPort, got {other:?}"),
        }
    }
}
