//! The simulator-platform [`HwTarget`]: the Verilator-target analogue.
//!
//! Snapshots are taken by direct state serialization — the moral
//! equivalent of the paper's CRIU process checkpoint (flush pending I/O,
//! freeze the simulator process, dump its memory) — so they are exact and
//! independent of the scan chain. The time model charges CRIU-like costs
//! (large fixed freeze overhead plus a per-byte dump cost) to virtual
//! time, and a per-cycle host cost reflecting that HDL simulation is
//! orders of magnitude slower than the FPGA fabric.

use crate::{AxiLite, SimEngine, SimError, Simulator, SnapshotTracker, VcdTrace};
use hardsnap_bus::{
    axi_ports, mem_words_hash, regs_values_hash, BusError, HwSnapshot, HwTarget, ImageKind,
    LazyRestore, SectionTag, SnapshotCapture, SnapshotFile, TargetCaps, TargetError, TargetKind,
};
use hardsnap_rtl::NetId;
use hardsnap_telemetry::{Counter, Metric, Recorder};
use std::sync::Arc;

/// Virtual-time cost model of the simulator platform.
///
/// Defaults are calibrated to the orders of magnitude reported for
/// Verilator-class simulation and CRIU checkpointing (see
/// `EXPERIMENTS.md` for the calibration notes):
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimTimeModel {
    /// Host nanoseconds consumed per simulated cycle (~0.5 MHz effective
    /// simulation speed).
    pub ns_per_cycle: u64,
    /// Per-transaction overhead of the shared-memory remote interface.
    pub io_overhead_ns: u64,
    /// Fixed freeze/checkpoint overhead per snapshot (CRIU analogue).
    pub snapshot_fixed_ns: u64,
    /// Incremental cost per byte of checkpoint image.
    pub snapshot_ns_per_byte: u64,
    /// Fixed overhead of a delta (dirty-page style) capture or restore:
    /// no fork of the full image, just a soft-dirty scan — two orders of
    /// magnitude below the full freeze.
    pub delta_snapshot_fixed_ns: u64,
}

impl Default for SimTimeModel {
    fn default() -> Self {
        SimTimeModel {
            ns_per_cycle: 2_000,           // ~0.5 MHz effective
            io_overhead_ns: 2_000,         // shared-memory hop
            snapshot_fixed_ns: 20_000_000, // 20 ms freeze + fork
            snapshot_ns_per_byte: 100,
            delta_snapshot_fixed_ns: 200_000, // soft-dirty walk, no fork
        }
    }
}

/// The simulator hardware target.
///
/// # Examples
///
/// ```no_run
/// use hardsnap_sim::SimTarget;
/// use hardsnap_bus::HwTarget;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let flat: hardsnap_rtl::Module = unimplemented!();
/// let mut target = SimTarget::new(flat)?;
/// target.reset();
/// target.bus_write(0x4000_0000, 0x55)?;
/// let snap = target.save_snapshot()?;
/// target.step(100);
/// target.restore_snapshot(&snap)?; // exact rewind
/// # Ok(())
/// # }
/// ```
pub struct SimTarget {
    sim: Simulator,
    axi: AxiLite,
    model: SimTimeModel,
    vtime_ns: u64,
    trace: Option<VcdTrace>,
    /// IRQ net resolved once at construction: `None` means the design
    /// genuinely has no IRQ output (id-based peeks cannot fail, so a
    /// raised line is never silently misread as 0).
    irq_net: Option<NetId>,
    tracker: SnapshotTracker,
    delta_mode: bool,
    /// Content hash of the most recent full capture — the checksum the
    /// (modeled) checkpoint engine computes over the complete image,
    /// reported through [`HwTarget::capture_checksum`].
    capture_checksum: u64,
    rec: Recorder,
}

impl SimTarget {
    /// Builds a simulator target for a flat design exposing the standard
    /// AXI4-Lite slave ports.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction errors and missing-port errors.
    pub fn new(module: hardsnap_rtl::Module) -> Result<Self, SimError> {
        Self::with_model_and_engine(module, SimTimeModel::default(), SimEngine::Bytecode)
    }

    /// Builds a target on a specific simulator backend (bit-exact
    /// alternatives; see [`SimEngine`]).
    ///
    /// # Errors
    ///
    /// Same as [`SimTarget::new`].
    pub fn with_engine(module: hardsnap_rtl::Module, engine: SimEngine) -> Result<Self, SimError> {
        Self::with_model_and_engine(module, SimTimeModel::default(), engine)
    }

    /// Builds a target with an explicit time model.
    ///
    /// # Errors
    ///
    /// Same as [`SimTarget::new`].
    pub fn with_model(module: hardsnap_rtl::Module, model: SimTimeModel) -> Result<Self, SimError> {
        Self::with_model_and_engine(module, model, SimEngine::Bytecode)
    }

    /// Builds a target with an explicit time model and engine.
    ///
    /// # Errors
    ///
    /// Same as [`SimTarget::new`].
    pub fn with_model_and_engine(
        module: hardsnap_rtl::Module,
        model: SimTimeModel,
        engine: SimEngine,
    ) -> Result<Self, SimError> {
        let sim = Simulator::with_engine(module, engine)?;
        let axi = AxiLite::bind(&sim)?;
        let irq_net = sim.module().find_net(axi_ports::IRQ);
        let tracker = SnapshotTracker::new(&sim);
        Ok(SimTarget {
            sim,
            axi,
            model,
            vtime_ns: 0,
            trace: None,
            irq_net,
            tracker,
            delta_mode: false,
            capture_checksum: 0,
            rec: Recorder::disabled(),
        })
    }

    /// Enables full-trace recording (the simulator-only capability).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(VcdTrace::new(&mut self.sim));
        }
    }

    /// Takes the recorded trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<String> {
        self.trace.take().map(VcdTrace::into_string)
    }

    /// Full-visibility access to the underlying simulator (peek/poke any
    /// net — this is what "simulator target" buys you).
    pub fn simulator(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// The time model in force.
    pub fn model(&self) -> SimTimeModel {
        self.model
    }

    fn charge_cycles(&mut self, cycles: u64) {
        self.vtime_ns = self
            .vtime_ns
            .saturating_add(cycles.saturating_mul(self.model.ns_per_cycle));
    }

    fn sample_trace(&mut self) {
        if let Some(t) = &mut self.trace {
            t.sample(&mut self.sim);
        }
    }

    /// Builds the canonical snapshot from the simulator's full-visibility
    /// state: all clocked registers plus all memories (ids resolved once
    /// at construction by the tracker).
    fn capture(&mut self) -> HwSnapshot {
        self.tracker.capture_full(&self.sim)
    }
}

impl HwTarget for SimTarget {
    fn name(&self) -> &str {
        "simulator"
    }

    fn caps(&self) -> TargetCaps {
        TargetCaps {
            kind: TargetKind::Simulator,
            full_visibility: true,
            readback: false,
            clock_hz: 1_000_000_000 / self.model.ns_per_cycle.max(1),
        }
    }

    fn design_name(&self) -> &str {
        &self.sim.module().name
    }

    fn reset(&mut self) {
        // Power-on: zero state (registers AND memories — a power cycle
        // clears SRAM), then a proper synchronous reset pulse.
        self.sim.clear_state();
        let _ = self.sim.poke(axi_ports::RST, 1);
        self.sim.step(4);
        let _ = self.sim.poke(axi_ports::RST, 0);
        self.sim.step(1);
        self.charge_cycles(5);
        self.sample_trace();
    }

    fn step(&mut self, cycles: u64) {
        if let Some(_t) = &self.trace {
            for _ in 0..cycles {
                self.sim.step(1);
                self.sample_trace();
            }
        } else {
            self.sim.step(cycles);
        }
        self.charge_cycles(cycles);
    }

    fn cycle(&self) -> u64 {
        self.sim.cycle()
    }

    fn bus_read(&mut self, addr: u32) -> Result<u32, BusError> {
        self.rec.count(Counter::BusReads);
        let (v, cycles) = self.axi.read(&mut self.sim, addr)?;
        self.charge_cycles(cycles);
        self.vtime_ns += self.model.io_overhead_ns;
        self.sample_trace();
        Ok(v)
    }

    fn bus_write(&mut self, addr: u32, data: u32) -> Result<(), BusError> {
        self.rec.count(Counter::BusWrites);
        let cycles = self.axi.write(&mut self.sim, addr, data)?;
        self.charge_cycles(cycles);
        self.vtime_ns += self.model.io_overhead_ns;
        self.sample_trace();
        Ok(())
    }

    fn irq_lines(&mut self) -> u32 {
        // 0 only when the design genuinely has no IRQ output; with the
        // net resolved at construction the peek itself cannot fail, so a
        // raised line can never be silently swallowed as "no IRQ".
        match self.irq_net {
            Some(id) => {
                self.sim.settle_for_trace();
                self.sim.peek_id(id).bits() as u32
            }
            None => 0,
        }
    }

    fn save_snapshot(&mut self) -> Result<HwSnapshot, TargetError> {
        let mut span = self.rec.span("snapshot", "capture");
        let snap = self.capture();
        self.capture_checksum = snap.content_hash();
        let charged = self.model.snapshot_fixed_ns
            + snap.byte_size() as u64 * self.model.snapshot_ns_per_byte;
        self.vtime_ns += charged;
        span.set_arg(snap.byte_size() as u64);
        self.rec.count(Counter::SnapshotsSaved);
        self.rec.observe(Metric::CaptureVtimeNs, charged);
        Ok(snap)
    }

    fn set_delta_snapshots(&mut self, on: bool) {
        if self.delta_mode != on {
            self.delta_mode = on;
            // A mode change invalidates the shared base: the next
            // delta-mode capture starts from a fresh full image.
            self.tracker.reset();
        }
    }

    fn save_snapshot_delta(&mut self) -> Result<SnapshotCapture, TargetError> {
        if !self.delta_mode {
            return self
                .save_snapshot()
                .map(|s| SnapshotCapture::Full(Arc::new(s)));
        }
        let mut span = self.rec.span("snapshot", "capture_delta");
        let cap = self.tracker.capture(&mut self.sim);
        if let SnapshotCapture::Full(s) = &cap {
            self.capture_checksum = s.content_hash();
        }
        let charged = match &cap {
            // A full capture (first, or a rebase) pays the full
            // freeze-and-dump cost.
            SnapshotCapture::Full(s) => {
                self.model.snapshot_fixed_ns
                    + s.byte_size() as u64 * self.model.snapshot_ns_per_byte
            }
            SnapshotCapture::Delta { delta, .. } => {
                self.model.delta_snapshot_fixed_ns
                    + delta.byte_size() as u64 * self.model.snapshot_ns_per_byte
            }
        };
        self.vtime_ns = self.vtime_ns.saturating_add(charged);
        span.set_arg(cap.byte_size() as u64);
        self.rec.count(Counter::SnapshotsSaved);
        if matches!(cap, SnapshotCapture::Delta { .. }) {
            self.rec.count(Counter::DeltaSnapshotsSaved);
        }
        if let Some(full_bytes) = self.tracker.base().map(|b| b.byte_size()) {
            if full_bytes > 0 {
                let permille = (cap.byte_size().min(full_bytes) * 1000 / full_bytes) as u64;
                self.rec.observe(Metric::SnapshotDirtyPermille, permille);
            }
        }
        self.rec.observe(Metric::CaptureVtimeNs, charged);
        Ok(cap)
    }

    fn restore_snapshot(&mut self, snap: &HwSnapshot) -> Result<(), TargetError> {
        let mut span = self.rec.span("snapshot", "restore");
        span.set_arg(snap.byte_size() as u64);
        if snap.design != self.sim.module().name {
            return Err(TargetError::DesignMismatch {
                expected: snap.design.clone(),
                found: self.sim.module().name.clone(),
            });
        }
        // Shape is validated up front (all-or-nothing: a corrupt image
        // leaves the target untouched), then only the registers and
        // memory words that differ from the loaded state are written.
        let stats = self
            .tracker
            .restore_diff(&mut self.sim, snap)
            .map_err(TargetError::CorruptSnapshot)?;
        let charged = if self.delta_mode {
            // Dirty-page restore: fixed soft-dirty walk plus only the
            // bytes that actually differed.
            self.model.delta_snapshot_fixed_ns
                + stats.byte_size() as u64 * self.model.snapshot_ns_per_byte
        } else {
            self.model.snapshot_fixed_ns + snap.byte_size() as u64 * self.model.snapshot_ns_per_byte
        };
        self.vtime_ns = self.vtime_ns.saturating_add(charged);
        self.rec.count(Counter::SnapshotsRestored);
        self.rec.observe(Metric::RestoreVtimeNs, charged);
        self.sample_trace();
        Ok(())
    }

    fn restore_snapshot_lazy(&mut self, file: &SnapshotFile) -> Result<LazyRestore, TargetError> {
        let mut span = self.rec.span("snapshot", "restore_lazy");
        if file.kind() != ImageKind::Full {
            return Err(TargetError::Unsupported(
                "lazy restore needs a full snapshot file; resolve the delta chain first".into(),
            ));
        }
        let corrupt = |e: hardsnap_bus::PersistError| TargetError::CorruptSnapshot(e.to_string());
        let meta = file.meta().map_err(corrupt)?;
        if meta.design != self.sim.module().name {
            return Err(TargetError::DesignMismatch {
                expected: meta.design,
                found: self.sim.module().name.clone(),
            });
        }
        if meta.shape_hash != self.snapshot_shape() {
            return Err(TargetError::CorruptSnapshot(
                "snapshot file shape does not match the running design".into(),
            ));
        }
        // Host-side live image (no virtual-time charge): the section
        // table's content hashes decide which payloads are read at all.
        // Sections that already match the live state are never loaded —
        // the demand-paged part of "demand-paged lazy restore".
        let mut want = self.capture();
        let mut total = 0usize;
        let mut loaded = 0usize;
        let mut bytes = 0u64;
        for entry in file.sections() {
            match entry.tag {
                SectionTag::Regs => {
                    total += 1;
                    if entry.content_hash != regs_values_hash(want.regs.iter().map(|r| r.bits)) {
                        want.regs = file.load_regs().map_err(corrupt)?;
                        loaded += 1;
                        bytes += entry.len;
                    }
                }
                SectionTag::Mem => {
                    total += 1;
                    let idx = entry.index as usize;
                    let live = want.mems.get(idx).ok_or_else(|| {
                        TargetError::CorruptSnapshot(format!(
                            "memory section index {idx} out of range"
                        ))
                    })?;
                    if entry.content_hash != mem_words_hash(&live.words) {
                        want.mems[idx] = file.load_mem(entry.index).map_err(corrupt)?;
                        loaded += 1;
                        bytes += entry.len;
                    }
                }
                _ => {}
            }
        }
        self.tracker
            .restore_diff(&mut self.sim, &want)
            .map_err(TargetError::CorruptSnapshot)?;
        // Paged restore cost: a fixed soft-dirty walk plus only the
        // payload bytes that actually came off disk — time to first
        // quantum scales with *touched* state, not design size.
        let charged = self
            .model
            .delta_snapshot_fixed_ns
            .saturating_add(bytes.saturating_mul(self.model.snapshot_ns_per_byte));
        self.vtime_ns = self.vtime_ns.saturating_add(charged);
        self.rec.count(Counter::SnapshotsRestored);
        self.rec.observe(Metric::RestoreVtimeNs, charged);
        span.set_arg(bytes);
        self.sample_trace();
        Ok(LazyRestore {
            sections_total: total,
            sections_loaded: loaded,
            bytes_loaded: bytes,
        })
    }

    fn virtual_time_ns(&self) -> u64 {
        self.vtime_ns
    }

    fn fork_clean(&self) -> Result<Box<dyn HwTarget>, TargetError> {
        let sim = self.sim.fork_clean();
        let axi = AxiLite::bind(&sim)
            .map_err(|e| TargetError::CorruptSnapshot(format!("replica AXI bind: {e}")))?;
        let tracker = SnapshotTracker::new(&sim);
        Ok(Box::new(SimTarget {
            sim,
            axi,
            model: self.model,
            vtime_ns: 0,
            trace: None,
            irq_net: self.irq_net,
            tracker,
            // Replicas inherit the capture mode (power-on state, fresh
            // base on their first delta capture).
            delta_mode: self.delta_mode,
            // Replicas go to other workers; each worker attaches its
            // own track's recorder.
            rec: Recorder::disabled(),
            capture_checksum: 0,
        }))
    }

    fn snapshot_shape(&self) -> u64 {
        // Must iterate exactly as `capture` does so honest captures
        // always hash equal to the design's own shape.
        let module = self.sim.module();
        let reg_ids = module.clocked_regs();
        hardsnap_bus::shape_hash_parts(
            &module.name,
            reg_ids.iter().map(|&id| {
                let net = module.net(id);
                (net.name.as_str(), net.width)
            }),
            module
                .iter_mems()
                .map(|(id, mem)| (mem.name.as_str(), mem.width, self.sim.mem_words(id).len())),
        )
    }

    fn capture_checksum(&self) -> u64 {
        // The checkpoint engine checksums the complete image as it
        // dumps it; the trailer survives link damage to the payload.
        self.capture_checksum
    }

    fn attach_recorder(&mut self, rec: &Recorder) {
        self.rec = rec.clone();
        // The simulator reports comb-activity counters on its own.
        self.sim.attach_recorder(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardsnap_verilog::parse_design;

    /// A tiny AXI peripheral with internal state: a write to offset 0
    /// starts a countdown; the counter is invisible on the bus until it
    /// reaches zero, then status (offset 4) reads 1. Exercises the fact
    /// that snapshots must capture state *not* reachable via the bus.
    const COUNTDOWN: &str = r#"
    module countdown (
        input wire clk, input wire rst,
        input wire s_axi_awvalid, input wire [31:0] s_axi_awaddr,
        output reg s_axi_awready,
        input wire s_axi_wvalid, input wire [31:0] s_axi_wdata,
        output reg s_axi_wready,
        output reg s_axi_bvalid, output reg [1:0] s_axi_bresp,
        input wire s_axi_bready,
        input wire s_axi_arvalid, input wire [31:0] s_axi_araddr,
        output reg s_axi_arready,
        output reg s_axi_rvalid, output reg [31:0] s_axi_rdata,
        output reg [1:0] s_axi_rresp,
        input wire s_axi_rready,
        output wire irq
    );
        reg [15:0] count;
        reg busy;
        reg aw_got; reg w_got; reg [31:0] waddr; reg [31:0] wdata_l;
        assign irq = busy && (count == 16'd0);
        always @(posedge clk) begin
            if (rst) begin
                count <= 16'd0; busy <= 1'b0;
                s_axi_awready <= 1'b0; s_axi_wready <= 1'b0;
                s_axi_bvalid <= 1'b0; s_axi_bresp <= 2'd0;
                s_axi_arready <= 1'b0; s_axi_rvalid <= 1'b0;
                s_axi_rdata <= 32'd0; s_axi_rresp <= 2'd0;
                aw_got <= 1'b0; w_got <= 1'b0; waddr <= 32'd0; wdata_l <= 32'd0;
            end else begin
                if (busy && count != 16'd0) count <= count - 16'd1;
                s_axi_awready <= 1'b0; s_axi_wready <= 1'b0;
                if (s_axi_awvalid && !aw_got && !s_axi_awready) begin
                    s_axi_awready <= 1'b1; waddr <= s_axi_awaddr; aw_got <= 1'b1;
                end
                if (s_axi_wvalid && !w_got && !s_axi_wready) begin
                    s_axi_wready <= 1'b1; wdata_l <= s_axi_wdata; w_got <= 1'b1;
                end
                if (aw_got && w_got && !s_axi_bvalid) begin
                    s_axi_bvalid <= 1'b1; s_axi_bresp <= 2'd0;
                    if (waddr[7:0] == 8'h00) begin
                        count <= wdata_l[15:0]; busy <= 1'b1;
                    end
                end
                if (s_axi_bvalid && s_axi_bready) begin
                    s_axi_bvalid <= 1'b0; aw_got <= 1'b0; w_got <= 1'b0;
                end
                s_axi_arready <= 1'b0;
                if (s_axi_arvalid && !s_axi_rvalid && !s_axi_arready) begin
                    s_axi_arready <= 1'b1; s_axi_rvalid <= 1'b1; s_axi_rresp <= 2'd0;
                    if (s_axi_araddr[7:0] == 8'h04)
                        s_axi_rdata <= {31'd0, busy && (count == 16'd0)};
                    else s_axi_rdata <= 32'd0;
                end
                if (s_axi_rvalid && s_axi_rready) s_axi_rvalid <= 1'b0;
            end
        end
    endmodule
    "#;

    fn target() -> SimTarget {
        let d = parse_design(COUNTDOWN).unwrap();
        let flat = hardsnap_rtl::elaborate(&d, "countdown").unwrap();
        let mut t = SimTarget::new(flat).unwrap();
        t.reset();
        t
    }

    #[test]
    fn countdown_runs_and_raises_irq() {
        let mut t = target();
        t.bus_write(0x00, 10).unwrap();
        assert_eq!(t.irq_lines(), 0);
        t.step(20);
        assert_eq!(t.irq_lines(), 1);
        assert_eq!(t.bus_read(0x04).unwrap(), 1);
    }

    #[test]
    fn snapshot_restores_hidden_state_exactly() {
        let mut t = target();
        t.bus_write(0x00, 1000).unwrap();
        t.step(5);
        let snap = t.save_snapshot().unwrap();
        let count_at_snap = snap.reg("count").unwrap();
        assert!(count_at_snap < 1000 && count_at_snap > 900);

        // Run to completion, then rewind.
        t.step(2000);
        assert_eq!(t.irq_lines(), 1);
        t.restore_snapshot(&snap).unwrap();
        assert_eq!(t.irq_lines(), 0);
        let snap2 = t.save_snapshot().unwrap();
        assert_eq!(snap2.reg("count").unwrap(), count_at_snap);
        // And the countdown continues correctly from the restored point.
        t.step(2000);
        assert_eq!(t.irq_lines(), 1);
    }

    #[test]
    fn virtual_time_charges_cycles_io_and_snapshots() {
        let mut t = target();
        let m = t.model();
        let t0 = t.virtual_time_ns();
        t.step(100);
        assert_eq!(t.virtual_time_ns() - t0, 100 * m.ns_per_cycle);
        let t1 = t.virtual_time_ns();
        t.bus_write(0x00, 5).unwrap();
        assert!(t.virtual_time_ns() - t1 >= m.io_overhead_ns + 2 * m.ns_per_cycle);
        let t2 = t.virtual_time_ns();
        let snap = t.save_snapshot().unwrap();
        let expect = m.snapshot_fixed_ns + snap.byte_size() as u64 * m.snapshot_ns_per_byte;
        assert_eq!(t.virtual_time_ns() - t2, expect);
    }

    #[test]
    fn trace_records_bus_activity() {
        let mut t = target();
        t.enable_trace();
        t.bus_write(0x00, 3).unwrap();
        t.step(10);
        let vcd = t.take_trace().unwrap();
        assert!(vcd.contains("$enddefinitions"));
        assert!(
            vcd.contains("count"),
            "trace should include internal registers"
        );
    }

    #[test]
    fn restore_of_foreign_design_is_rejected() {
        let mut t = target();
        let mut snap = t.save_snapshot().unwrap();
        snap.design = "other_design".into();
        assert!(matches!(
            t.restore_snapshot(&snap),
            Err(TargetError::DesignMismatch { .. })
        ));
    }

    #[test]
    fn fork_clean_replicas_are_independent_and_power_on() {
        let mut t = target();
        t.bus_write(0x00, 50).unwrap();
        t.step(5);
        let mut r = t.fork_clean().unwrap();
        // The replica starts from power-on, not from the parent's state.
        assert_eq!(r.cycle(), 0);
        assert_eq!(r.virtual_time_ns(), 0);
        r.reset();
        assert_eq!(r.irq_lines(), 0);
        // Driving the replica does not disturb the parent.
        r.bus_write(0x00, 1).unwrap();
        r.step(10);
        assert_eq!(r.irq_lines(), 1);
        let parent_snap = t.save_snapshot().unwrap();
        assert!(parent_snap.reg("count").unwrap() > 40);
        // Snapshots interchange between parent and replica (same design).
        r.restore_snapshot(&parent_snap).unwrap();
        let back = r.save_snapshot().unwrap();
        assert_eq!(back.reg("count"), parent_snap.reg("count"));
    }

    #[test]
    fn charge_cycles_saturates_instead_of_overflowing() {
        let d = parse_design(COUNTDOWN).unwrap();
        let flat = hardsnap_rtl::elaborate(&d, "countdown").unwrap();
        let model = SimTimeModel {
            ns_per_cycle: u64::MAX,
            ..SimTimeModel::default()
        };
        let mut t = SimTarget::with_model(flat, model).unwrap();
        // reset() charges 5 cycles; 5 * u64::MAX must clamp, not wrap
        // (or panic in debug builds).
        t.reset();
        assert_eq!(t.virtual_time_ns(), u64::MAX);
    }

    #[test]
    fn restore_is_all_or_nothing() {
        let mut t = target();
        t.bus_write(0x00, 500).unwrap();
        t.step(5);
        let good = t.save_snapshot().unwrap();
        t.step(50);
        let before = t.capture();

        // A value wider than its register must be rejected up front...
        let mut bad = good.clone();
        let w = bad.regs[0].width;
        bad.regs[0].bits = 1u64 << w.min(63);
        assert!(matches!(
            t.restore_snapshot(&bad),
            Err(TargetError::CorruptSnapshot(_))
        ));
        // ...as must a missing register...
        let mut bad2 = good.clone();
        bad2.regs.remove(0);
        assert!(matches!(
            t.restore_snapshot(&bad2),
            Err(TargetError::CorruptSnapshot(_))
        ));
        // ...and in both cases the failed restore wrote NOTHING.
        assert_eq!(t.capture().content_hash(), before.content_hash());

        // The untampered snapshot still restores fine afterwards.
        t.restore_snapshot(&good).unwrap();
        assert_eq!(t.capture().content_hash(), good.content_hash());
    }

    #[test]
    fn delta_mode_captures_and_restores_are_activity_proportional() {
        let mut t = target();
        let m = t.model();
        t.set_delta_snapshots(true);
        t.bus_write(0x00, 20000).unwrap();

        // First capture in delta mode establishes the full base.
        let first = t.save_snapshot_delta().unwrap();
        assert!(matches!(first, SnapshotCapture::Full(_)));

        // A few quiet cycles only tick the countdown: the capture ships
        // as a small delta and is charged the delta cost exactly.
        t.step(3);
        let v0 = t.virtual_time_ns();
        let cap = t.save_snapshot_delta().unwrap();
        match &cap {
            SnapshotCapture::Delta { delta, .. } => {
                let expect =
                    m.delta_snapshot_fixed_ns + delta.byte_size() as u64 * m.snapshot_ns_per_byte;
                assert_eq!(t.virtual_time_ns() - v0, expect);
                assert!(
                    expect < m.snapshot_fixed_ns,
                    "delta must be cheaper than full"
                );
            }
            SnapshotCapture::Full(_) => panic!("3 quiet cycles must not force a rebase"),
        }

        // Materializing the delta is bit-identical to a direct full scan.
        assert_eq!(
            cap.materialize().unwrap().content_hash(),
            t.capture().content_hash()
        );

        // Restoring it from a later state touches only what changed and
        // charges the delta restore cost (< full fixed cost).
        let img = cap.materialize().unwrap();
        t.step(100);
        let v1 = t.virtual_time_ns();
        t.restore_snapshot(&img).unwrap();
        assert!(t.virtual_time_ns() - v1 < m.snapshot_fixed_ns);
        assert_eq!(t.capture().content_hash(), img.content_hash());

        // And the next delta capture after the restore is still sound.
        let cap2 = t.save_snapshot_delta().unwrap();
        assert_eq!(
            cap2.materialize().unwrap().content_hash(),
            t.capture().content_hash()
        );
    }

    #[test]
    fn lazy_restore_loads_only_differing_sections() {
        let mut t = target();
        t.bus_write(0x00, 300).unwrap();
        t.step(5);
        let snap = t.save_snapshot().unwrap();
        let file = SnapshotFile::from_bytes(hardsnap_bus::persist::write_full(&snap)).unwrap();
        let m = t.model();

        // Quiescent resume: live state already equals the file, so no
        // section is paged in and only the fixed walk is charged.
        t.restore_snapshot(&snap).unwrap();
        let v0 = t.virtual_time_ns();
        let st = t.restore_snapshot_lazy(&file).unwrap();
        assert_eq!(st.sections_total, 1); // countdown has no memories
        assert_eq!(st.sections_loaded, 0);
        assert_eq!(st.bytes_loaded, 0);
        assert_eq!(t.virtual_time_ns() - v0, m.delta_snapshot_fixed_ns);

        // Divergent resume: the register section differs, is loaded, and
        // the restored state is bit-identical to the eager path.
        t.step(123);
        let st2 = t.restore_snapshot_lazy(&file).unwrap();
        assert_eq!(st2.sections_loaded, 1);
        assert!(st2.bytes_loaded > 0);
        assert_eq!(t.capture().content_hash(), snap.content_hash());

        // A wrong-design file is rejected before any state is written.
        let mut foreign = snap.clone();
        foreign.design = "other".into();
        let ffile = SnapshotFile::from_bytes(hardsnap_bus::persist::write_full(&foreign)).unwrap();
        assert!(matches!(
            t.restore_snapshot_lazy(&ffile),
            Err(TargetError::DesignMismatch { .. })
        ));
    }

    #[test]
    fn caps_reflect_simulator_tradeoff() {
        let t = target();
        let caps = t.caps();
        assert_eq!(caps.kind, TargetKind::Simulator);
        assert!(caps.full_visibility);
        assert!(!caps.readback);
    }
}
