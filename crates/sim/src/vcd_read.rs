//! VCD reader and trace diffing.
//!
//! The counterpart of [`crate::VcdTrace`]: parses VCD text back into
//! per-signal value sequences and finds the first divergence between two
//! traces. This is the root-cause workflow the paper's multi-target
//! orchestration enables — capture a full trace around the failure on
//! the simulator target, then diff it against a known-good run to find
//! the first signal that went wrong.

use std::collections::HashMap;

/// A parsed VCD trace: signal names and their change lists.
#[derive(Clone, Debug, Default)]
pub struct VcdData {
    /// Signal name → ordered (time, value) change list.
    changes: HashMap<String, Vec<(u64, u64)>>,
}

/// A VCD parse diagnostic with its 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VcdParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for VcdParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vcd line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for VcdParseError {}

impl VcdData {
    /// Parses VCD text (the subset [`crate::VcdTrace`] writes: `$var`
    /// declarations, `#time` stamps, scalar `0!`/`1!` and vector
    /// `b1010 !` changes).
    ///
    /// # Errors
    ///
    /// Returns [`VcdParseError`] on undeclared id codes or malformed
    /// value lines.
    pub fn parse(text: &str) -> Result<VcdData, VcdParseError> {
        let mut id_to_name: HashMap<String, String> = HashMap::new();
        let mut changes: HashMap<String, Vec<(u64, u64)>> = HashMap::new();
        let mut time = 0u64;
        let err = |line: usize, message: String| VcdParseError { line, message };
        for (ln, raw) in text.lines().enumerate() {
            let line = ln + 1;
            let l = raw.trim();
            if l.is_empty() {
                continue;
            }
            if l.starts_with("$var") {
                // $var wire <width> <id> <name> $end
                let parts: Vec<&str> = l.split_whitespace().collect();
                if parts.len() < 5 {
                    return Err(err(line, format!("malformed $var: '{l}'")));
                }
                id_to_name.insert(parts[3].to_string(), parts[4].to_string());
                changes.entry(parts[4].to_string()).or_default();
            } else if l.starts_with('$') {
                // Other directives are skipped.
            } else if let Some(t) = l.strip_prefix('#') {
                time = t
                    .parse()
                    .map_err(|_| err(line, format!("bad timestamp '{l}'")))?;
            } else if let Some(rest) = l.strip_prefix('b') {
                let (bits, id) = rest
                    .split_once(' ')
                    .ok_or_else(|| err(line, format!("malformed vector change '{l}'")))?;
                let v = u64::from_str_radix(bits, 2)
                    .map_err(|_| err(line, format!("bad binary value '{bits}'")))?;
                let name = id_to_name
                    .get(id.trim())
                    .ok_or_else(|| err(line, format!("undeclared id '{id}'")))?;
                changes.get_mut(name).unwrap().push((time, v));
            } else {
                // Scalar change: <0|1><id>
                let mut chars = l.chars();
                let v = match chars.next() {
                    Some('0') => 0u64,
                    Some('1') => 1,
                    other => return Err(err(line, format!("bad scalar change '{other:?}'"))),
                };
                let id: String = chars.collect();
                let name = id_to_name
                    .get(id.trim())
                    .ok_or_else(|| err(line, format!("undeclared id '{id}'")))?;
                changes.get_mut(name).unwrap().push((time, v));
            }
        }
        Ok(VcdData { changes })
    }

    /// Signal names in the trace.
    pub fn signals(&self) -> impl Iterator<Item = &str> {
        self.changes.keys().map(String::as_str)
    }

    /// The value of `signal` at `time` (last change at or before `time`),
    /// or `None` for unknown signals or times before the first change.
    pub fn value_at(&self, signal: &str, time: u64) -> Option<u64> {
        let ch = self.changes.get(signal)?;
        let idx = ch.partition_point(|&(t, _)| t <= time);
        if idx == 0 {
            None
        } else {
            Some(ch[idx - 1].1)
        }
    }

    /// Number of recorded changes for `signal`.
    pub fn change_count(&self, signal: &str) -> usize {
        self.changes.get(signal).map(Vec::len).unwrap_or(0)
    }

    /// Latest timestamp in the trace.
    pub fn end_time(&self) -> u64 {
        self.changes
            .values()
            .filter_map(|ch| ch.last().map(|&(t, _)| t))
            .max()
            .unwrap_or(0)
    }
}

/// A divergence between two traces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// First time the traces disagree.
    pub time: u64,
    /// Signal that diverges at that time (alphabetically first when
    /// several diverge simultaneously).
    pub signal: String,
    /// Value in the first trace (`None` = not yet defined).
    pub a: Option<u64>,
    /// Value in the second trace.
    pub b: Option<u64>,
}

/// Finds the earliest time at which any signal common to both traces
/// differs; signals present in only one trace are ignored. Returns
/// `None` when the traces agree over their common span.
pub fn first_divergence(a: &VcdData, b: &VcdData) -> Option<Divergence> {
    let mut commons: Vec<&str> = a.signals().filter(|s| b.changes.contains_key(*s)).collect();
    commons.sort_unstable();
    let end = a.end_time().min(b.end_time());
    let mut best: Option<Divergence> = None;
    for s in commons {
        // Walk the merged change times of this signal.
        let mut times: Vec<u64> = a.changes[s]
            .iter()
            .chain(&b.changes[s])
            .map(|&(t, _)| t)
            .filter(|&t| t <= end)
            .collect();
        times.sort_unstable();
        times.dedup();
        for t in times {
            let va = a.value_at(s, t);
            let vb = b.value_at(s, t);
            if va != vb {
                let better = match &best {
                    None => true,
                    Some(d) => t < d.time || (t == d.time && s < d.signal.as_str()),
                };
                if better {
                    best = Some(Divergence {
                        time: t,
                        signal: s.to_string(),
                        a: va,
                        b: vb,
                    });
                }
                break;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Simulator, VcdTrace};
    use hardsnap_verilog::parse_design;

    fn counter_trace(start: u64, cycles: u64) -> VcdData {
        let d = parse_design(
            r#"
            module c (input wire clk, input wire rst, output reg [7:0] q);
                always @(posedge clk) begin
                    if (rst) q <= 8'd0; else q <= q + 8'd1;
                end
            endmodule
            "#,
        )
        .unwrap();
        let flat = hardsnap_rtl::elaborate(&d, "c").unwrap();
        let mut sim = Simulator::new(flat).unwrap();
        sim.poke("q", start).unwrap();
        let mut tr = VcdTrace::new(&mut sim);
        for _ in 0..cycles {
            sim.step(1);
            tr.sample(&mut sim);
        }
        VcdData::parse(&tr.into_string()).unwrap()
    }

    #[test]
    fn writer_output_parses_and_queries() {
        let v = counter_trace(0, 10);
        assert!(v.signals().any(|s| s == "q"));
        assert_eq!(v.value_at("q", 0), Some(0));
        // After sample k (time k), q = k (q increments each step).
        assert_eq!(v.value_at("q", 5), Some(5));
        assert_eq!(v.end_time(), 10);
        assert!(v.change_count("q") >= 10);
        assert_eq!(v.value_at("nope", 3), None);
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let a = counter_trace(0, 8);
        let b = counter_trace(0, 8);
        assert_eq!(first_divergence(&a, &b), None);
    }

    #[test]
    fn divergence_found_at_first_difference() {
        let a = counter_trace(0, 8);
        let b = counter_trace(100, 8); // starts from a different value
        let d = first_divergence(&a, &b).expect("must diverge");
        assert_eq!(d.signal, "q");
        assert_eq!(d.time, 0);
        assert_eq!(d.a, Some(0));
        assert_eq!(d.b, Some(100));
    }

    #[test]
    fn parse_rejects_undeclared_ids() {
        let e = VcdData::parse("#0\n1!\n").unwrap_err();
        assert!(e.message.contains("undeclared"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn parse_rejects_garbage_values() {
        assert!(VcdData::parse("$var wire 1 ! q $end\n#0\nx!\n").is_err());
        assert!(VcdData::parse("$var wire 4 ! q $end\n#0\nb2z !\n").is_err());
    }
}
