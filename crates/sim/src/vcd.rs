//! Value-change-dump (VCD) trace writer.
//!
//! Full execution tracing is the simulator target's distinguishing
//! capability in the paper (FPGA = speed, simulator = full traces); the
//! multi-target orchestration exists precisely so an analysis can run
//! fast on the FPGA and then transfer to the simulator *to get this
//! trace*. The writer emits standard VCD consumable by GTKWave.
//!
//! Emission is change-driven: on bytecode backends the simulator's
//! net-change journal reports exactly which nets changed since the last
//! sample, so a sample costs O(changes), not O(total nets). The
//! interpreter backend has no journal and falls back to a full scan.

use crate::Simulator;
use hardsnap_rtl::Value;
use std::fmt::Write as _;

/// An incremental VCD trace of a running [`Simulator`].
#[derive(Debug)]
pub struct VcdTrace {
    buf: String,
    /// Last dumped value per net (None = never dumped).
    last: Vec<Option<Value>>,
    ids: Vec<String>,
    time: u64,
    /// Scratch for journal drains (reused across samples).
    changed: Vec<u32>,
}

impl VcdTrace {
    /// Starts a trace of `sim`'s design: writes the VCD header and the
    /// initial dump of all nets, and turns on the simulator's net-change
    /// journal so subsequent samples only touch changed signals.
    pub fn new(sim: &mut Simulator) -> Self {
        let module = sim.module().clone();
        let mut buf = String::new();
        writeln!(buf, "$timescale 1ns $end").unwrap();
        writeln!(buf, "$scope module {} $end", sanitize(&module.name)).unwrap();
        let mut ids = Vec::with_capacity(module.nets.len());
        for (i, net) in module.nets.iter().enumerate() {
            let id = code(i);
            writeln!(
                buf,
                "$var wire {} {} {} $end",
                net.width,
                id,
                sanitize(&net.name)
            )
            .unwrap();
            ids.push(id);
        }
        writeln!(buf, "$upscope $end").unwrap();
        writeln!(buf, "$enddefinitions $end").unwrap();
        let mut t = VcdTrace {
            buf,
            last: vec![None; module.nets.len()],
            ids,
            time: 0,
            changed: Vec::new(),
        };
        // Initial dump is a full scan (the journal is enabled only
        // afterwards, so it records exactly the changes since time 0).
        t.sample(sim);
        sim.enable_change_journal();
        t
    }

    /// Records the current state; call once per clock cycle.
    pub fn sample(&mut self, sim: &mut Simulator) {
        sim.settle_for_trace();
        let mut header_written = false;
        let mut changed = std::mem::take(&mut self.changed);
        if sim.drain_changed_nets(&mut changed) {
            for &i in &changed {
                self.emit(
                    i as usize,
                    sim.net_value_at(i as usize),
                    &mut header_written,
                );
            }
        } else {
            for i in 0..self.last.len() {
                self.emit(i, sim.net_value_at(i), &mut header_written);
            }
        }
        self.changed = changed;
        self.time += 1;
    }

    fn emit(&mut self, i: usize, v: Value, header_written: &mut bool) {
        if self.last[i] == Some(v) {
            return;
        }
        if !*header_written {
            writeln!(self.buf, "#{}", self.time).unwrap();
            *header_written = true;
        }
        if v.width() == 1 {
            writeln!(self.buf, "{}{}", v.bits(), self.ids[i]).unwrap();
        } else {
            writeln!(self.buf, "b{:b} {}", v.bits(), self.ids[i]).unwrap();
        }
        self.last[i] = Some(v);
    }

    /// The trace so far, as VCD text.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Consumes the trace and returns the VCD text.
    pub fn into_string(self) -> String {
        self.buf
    }

    /// Number of sample points recorded.
    pub fn samples(&self) -> u64 {
        self.time
    }
}

/// VCD identifier codes: printable ASCII 33..=126, multi-char as needed.
fn code(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push(((i % 94) as u8 + 33) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

fn sanitize(name: &str) -> String {
    name.replace('.', "__")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimEngine;
    use hardsnap_verilog::parse_design;

    #[test]
    fn vcd_has_header_and_changes() {
        let d = parse_design(
            r#"
            module c (input wire clk, output reg [3:0] q);
                always @(posedge clk) q <= q + 4'd1;
            endmodule
            "#,
        )
        .unwrap();
        let flat = hardsnap_rtl::elaborate(&d, "c").unwrap();
        let mut sim = Simulator::new(flat).unwrap();
        let mut trace = VcdTrace::new(&mut sim);
        for _ in 0..4 {
            sim.step(1);
            trace.sample(&mut sim);
        }
        let vcd = trace.into_string();
        assert!(vcd.contains("$timescale"));
        assert!(vcd.contains("$var wire 4"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("b100 ")); // q reached 4
    }

    #[test]
    fn unchanged_nets_are_not_redumped() {
        let d = parse_design(
            r#"
            module s (input wire clk, input wire d, output reg q);
                always @(posedge clk) q <= d;
            endmodule
            "#,
        )
        .unwrap();
        let flat = hardsnap_rtl::elaborate(&d, "s").unwrap();
        let mut sim = Simulator::new(flat).unwrap();
        let mut trace = VcdTrace::new(&mut sim);
        for _ in 0..10 {
            sim.step(1);
            trace.sample(&mut sim);
        }
        // After the initial dump nothing changes (d stays 0), so only the
        // initial timestamp appears.
        let vcd = trace.as_str();
        let timestamps = vcd.lines().filter(|l| l.starts_with('#')).count();
        assert_eq!(timestamps, 1, "{vcd}");
        assert_eq!(trace.samples(), 11);
    }

    #[test]
    fn journal_and_full_scan_traces_are_identical() {
        let src = r#"
            module t (input wire clk, input wire rst, output reg [7:0] q,
                      output wire [7:0] y);
                assign y = q ^ 8'h0f;
                always @(posedge clk) begin
                    if (rst) q <= 8'd0; else q <= q + 8'd3;
                end
            endmodule
        "#;
        let run = |engine| {
            let d = parse_design(src).unwrap();
            let flat = hardsnap_rtl::elaborate(&d, "t").unwrap();
            let mut sim = Simulator::with_engine(flat, engine).unwrap();
            let mut trace = VcdTrace::new(&mut sim);
            for i in 0..12u64 {
                sim.poke("rst", (i < 2) as u64).unwrap();
                sim.step(1);
                trace.sample(&mut sim);
            }
            trace.into_string()
        };
        assert_eq!(run(SimEngine::Bytecode), run(SimEngine::Interpreter));
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let c = code(i);
            assert!(c.chars().all(|ch| (33..=126).contains(&(ch as u32))));
            assert!(seen.insert(c));
        }
    }
}
