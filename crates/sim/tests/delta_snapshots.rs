//! Property: activity-proportional (delta) capture is observationally
//! identical to full capture on randomly generated designs under
//! random stimulus — every delta materializes to the exact full image,
//! on both the journaling bytecode engine and the scan-fallback
//! interpreter, and `restore_diff` rewinds the simulator bit-exactly
//! to any earlier capture.

use hardsnap_bus::SnapshotCapture;
use hardsnap_rtl::{Module, PortDir};
use hardsnap_sim::{SimEngine, Simulator, SnapshotTracker};
use hardsnap_util::prop::from_fn;
use hardsnap_util::prop_check;
use hardsnap_util::Rng;
use hardsnap_verilog::gen_module;

/// Random stimulus for one phase: input pokes, occasional memory pokes
/// and state clears, then `cycles` steps. Mirrors the differential
/// test's driver so delta tracking sees every state-mutation path.
fn drive(module: &Module, sim: &mut Simulator, rng: &mut Rng, cycles: u32) {
    let inputs: Vec<_> = module
        .ports()
        .filter(|(_, n)| n.port == Some(PortDir::Input) && n.name != "clk")
        .map(|(id, _)| id)
        .collect();
    let mems: Vec<_> = module
        .iter_mems()
        .map(|(id, m)| (m.name.clone(), id))
        .collect();
    for _ in 0..cycles {
        for &id in &inputs {
            if rng.gen_bool(0.7) {
                sim.poke_id(id, rng.next_u64());
            }
        }
        if let Some((name, id)) = rng.choose(&mems) {
            if rng.gen_bool(0.1) {
                let addr = rng.gen_range(0..sim.mem_words(*id).len() as u32);
                sim.poke_mem(name, addr, rng.next_u64()).unwrap();
            }
        }
        if rng.gen_bool(0.02) {
            sim.clear_state();
        }
        sim.step(1);
    }
}

#[test]
fn delta_captures_match_full_captures_on_random_designs() {
    prop_check!(cases = 32, seed = 0xDE17_A5A9, (case_seed in from_fn(|rng: &mut Rng| rng.next_u64())) => {
        for engine in [SimEngine::Bytecode, SimEngine::Interpreter] {
            let mut rng = Rng::seed_from_u64(case_seed);
            let module = gen_module(&mut rng, "fuzz");
            let mut sim = Simulator::with_engine(module.clone(), engine)
                .unwrap_or_else(|e| panic!("seed {case_seed:#x}: {engine:?}: {e}"));
            let mut tracker = SnapshotTracker::new(&sim);
            let mut stim = Rng::seed_from_u64(case_seed ^ 0x0DE1_7A00);
            for phase in 0..6u32 {
                drive(&module, &mut sim, &mut stim, 9);
                let cap = tracker.capture(&mut sim);
                let full = tracker.capture_full(&sim);
                let materialized = cap
                    .materialize()
                    .unwrap_or_else(|e| panic!("seed {case_seed:#x} phase {phase}: {e}"));
                assert_eq!(
                    materialized, full,
                    "seed {case_seed:#x} phase {phase} ({engine:?}): \
                     delta capture diverged from full capture"
                );
            }
        }
    });
}

#[test]
fn restore_diff_rewinds_to_any_earlier_capture() {
    prop_check!(cases = 16, seed = 0xBAC6_0E5C, (case_seed in from_fn(|rng: &mut Rng| rng.next_u64())) => {
        let mut rng = Rng::seed_from_u64(case_seed);
        let module = gen_module(&mut rng, "fuzz");
        let mut sim = Simulator::with_engine(module.clone(), SimEngine::Bytecode).unwrap();
        let mut tracker = SnapshotTracker::new(&sim);
        let mut stim = Rng::seed_from_u64(case_seed ^ 0x7E57_0001);
        let mut history = Vec::new();
        for _ in 0..5u32 {
            drive(&module, &mut sim, &mut stim, 11);
            let cap = tracker.capture(&mut sim);
            history.push(cap.materialize().unwrap());
        }
        // Rewind to each point in history (newest first, then jumping
        // back and forth) and prove the live state matches bit-exactly.
        let order = [3usize, 1, 4, 0, 2];
        for &i in &order {
            tracker
                .restore_diff(&mut sim, &history[i])
                .unwrap_or_else(|e| panic!("seed {case_seed:#x} restore {i}: {e}"));
            let now = tracker.capture_full(&sim);
            assert_eq!(
                now.content_hash(),
                history[i].content_hash(),
                "seed {case_seed:#x}: restore to capture {i} diverged"
            );
            // Delta tracking stays sound across restores: the next
            // delta capture must still materialize exactly.
            let cap = tracker.capture(&mut sim);
            if let SnapshotCapture::Delta { .. } = &cap {
                assert_eq!(
                    cap.materialize().unwrap().content_hash(),
                    history[i].content_hash(),
                    "seed {case_seed:#x}: post-restore delta capture diverged"
                );
            }
        }
    });
}

#[test]
fn engines_agree_on_delta_capture_streams() {
    // The journaling bytecode path and the interpreter's full-scan
    // fallback must produce byte-identical materialized streams for
    // the same seed.
    for case_seed in [5u64, 23, 77] {
        let run = |engine: SimEngine| {
            let mut rng = Rng::seed_from_u64(case_seed);
            let module = gen_module(&mut rng, "fuzz");
            let mut sim = Simulator::with_engine(module.clone(), engine).unwrap();
            let mut tracker = SnapshotTracker::new(&sim);
            let mut stim = Rng::seed_from_u64(case_seed ^ 0x5EED);
            let mut stream = Vec::new();
            for _ in 0..4u32 {
                drive(&module, &mut sim, &mut stim, 13);
                stream.push(tracker.capture(&mut sim).materialize().unwrap());
            }
            stream
        };
        let bytecode = run(SimEngine::Bytecode);
        let interp = run(SimEngine::Interpreter);
        assert_eq!(
            bytecode, interp,
            "seed {case_seed}: engines disagree on materialized capture stream"
        );
    }
}
