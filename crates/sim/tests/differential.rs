//! Differential properties: the compiled bytecode engine must be
//! bit-for-bit indistinguishable from the tree-walking interpreter on
//! randomly generated designs under random stimulus — every net value,
//! every memory word, every captured snapshot image, every cycle. This
//! is the safety net that lets the bytecode engine be the default: any
//! scheduling bug in the dirty-cone pass or codegen bug in the lowering
//! shows up as a divergence here with a reproducing seed.

use hardsnap_rtl::{Module, PortDir};
use hardsnap_sim::{SimEngine, Simulator};
use hardsnap_util::prop::from_fn;
use hardsnap_util::prop_check;
use hardsnap_util::Rng;
use hardsnap_verilog::gen_module;

/// A serialized register+memory image, the moral equivalent of the
/// snapshot a `SimTarget::capture` would take.
fn snapshot_image(sim: &Simulator) -> Vec<u8> {
    let m = sim.module().clone();
    let mut out = Vec::new();
    for id in m.clocked_regs() {
        out.extend_from_slice(&sim.peek_id(id).bits().to_le_bytes());
    }
    for (id, _) in m.iter_mems() {
        for &w in sim.mem_words(id) {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    out
}

/// Drives `sims` in lockstep with identical random stimulus for
/// `cycles` cycles, asserting full-state agreement after every step.
/// Returns the concatenated snapshot images taken along the way.
fn drive_lockstep(module: &Module, sims: &mut [Simulator], seed: u64, cycles: u32) -> Vec<u8> {
    let inputs: Vec<_> = module
        .ports()
        .filter(|(_, n)| n.port == Some(PortDir::Input) && n.name != "clk")
        .map(|(id, _)| id)
        .collect();
    let mems: Vec<_> = module
        .iter_mems()
        .map(|(id, m)| (m.name.clone(), id))
        .collect();
    let mut rng = Rng::seed_from_u64(seed);
    let mut images = Vec::new();
    for cycle in 0..cycles {
        for &id in &inputs {
            if rng.gen_bool(0.7) {
                let v = rng.next_u64();
                for sim in sims.iter_mut() {
                    sim.poke_id(id, v);
                }
            }
        }
        if let Some((name, id)) = rng.choose(&mems) {
            if rng.gen_bool(0.1) {
                let addr = rng.gen_range(0..sims[0].mem_words(*id).len() as u32);
                let v = rng.next_u64();
                for sim in sims.iter_mut() {
                    sim.poke_mem(name, addr, v).unwrap();
                }
            }
        }
        if rng.gen_bool(0.02) {
            for sim in sims.iter_mut() {
                sim.clear_state();
            }
        }
        for sim in sims.iter_mut() {
            sim.step(1);
        }
        for (i, net) in module.iter_nets() {
            let want = sims[0].peek_id(i);
            for sim in &sims[1..] {
                assert_eq!(
                    sim.peek_id(i),
                    want,
                    "cycle {cycle}: net '{}' diverged between {:?} and {:?}",
                    net.name,
                    sims[0].engine(),
                    sim.engine(),
                );
            }
        }
        for (name, id) in &mems {
            let want = sims[0].mem_words(*id);
            for sim in &sims[1..] {
                assert_eq!(
                    sim.mem_words(*id),
                    want,
                    "cycle {cycle}: memory '{name}' diverged"
                );
            }
        }
        if cycle % 7 == 0 {
            let img = snapshot_image(&sims[0]);
            for sim in &sims[1..] {
                assert_eq!(snapshot_image(sim), img, "cycle {cycle}: snapshot diverged");
            }
            images.extend_from_slice(&img);
        }
    }
    images
}

#[test]
fn bytecode_and_interpreter_agree_on_random_designs() {
    prop_check!(cases = 48, seed = 0xD1FF_BEEF, (case_seed in from_fn(|rng: &mut Rng| rng.next_u64())) => {
        let mut rng = Rng::seed_from_u64(case_seed);
        let module = gen_module(&mut rng, "fuzz");
        let mut sims = [
            Simulator::with_engine(module.clone(), SimEngine::Bytecode)
                .unwrap_or_else(|e| panic!("seed {case_seed:#x}: bytecode: {e}")),
            Simulator::with_engine(module.clone(), SimEngine::BytecodeFullEval)
                .unwrap_or_else(|e| panic!("seed {case_seed:#x}: bytecode-full: {e}")),
            Simulator::with_engine(module.clone(), SimEngine::Interpreter)
                .unwrap_or_else(|e| panic!("seed {case_seed:#x}: interpreter: {e}")),
        ];
        drive_lockstep(&module, &mut sims, case_seed ^ 0x5715_0CAB, 40);
    });
}

#[test]
fn same_seed_gives_byte_identical_snapshots() {
    for case_seed in [3u64, 17, 99] {
        let run = |engine: SimEngine| {
            let mut rng = Rng::seed_from_u64(case_seed);
            let module = gen_module(&mut rng, "fuzz");
            let mut sims = [Simulator::with_engine(module.clone(), engine).unwrap()];
            drive_lockstep(&module, &mut sims, case_seed, 64)
        };
        let a = run(SimEngine::Bytecode);
        let b = run(SimEngine::Bytecode);
        assert_eq!(a, b, "bytecode runs must be deterministic");
        let c = run(SimEngine::Interpreter);
        assert_eq!(a, c, "interpreter snapshot stream must match bytecode");
        assert!(!a.is_empty());
    }
}
