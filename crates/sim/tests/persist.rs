//! Property: the TLV snapshot container round-trips captures of
//! randomly generated designs bit-exactly — full images and delta
//! images both decode to exactly what was encoded and re-encode to the
//! same bytes — and any single-byte corruption anywhere in an image
//! surfaces as a typed [`hardsnap_bus::PersistError`], never a panic
//! and never a silently different snapshot.

use hardsnap_bus::persist::{write_delta, write_full};
use hardsnap_bus::{PersistedImage, SnapshotDelta, SnapshotFile};
use hardsnap_rtl::{Module, PortDir};
use hardsnap_sim::{SimEngine, Simulator, SnapshotTracker};
use hardsnap_util::prop::from_fn;
use hardsnap_util::prop_check;
use hardsnap_util::Rng;
use hardsnap_verilog::gen_module;

/// Random stimulus for one phase: input pokes, occasional memory pokes,
/// then `cycles` steps — the same driver the delta-snapshot properties
/// use, so the images exercised here carry realistic state.
fn drive(module: &Module, sim: &mut Simulator, rng: &mut Rng, cycles: u32) {
    let inputs: Vec<_> = module
        .ports()
        .filter(|(_, n)| n.port == Some(PortDir::Input) && n.name != "clk")
        .map(|(id, _)| id)
        .collect();
    let mems: Vec<_> = module
        .iter_mems()
        .map(|(id, m)| (m.name.clone(), id))
        .collect();
    for _ in 0..cycles {
        for &id in &inputs {
            if rng.gen_bool(0.7) {
                sim.poke_id(id, rng.next_u64());
            }
        }
        if let Some((name, id)) = rng.choose(&mems) {
            if rng.gen_bool(0.1) {
                let addr = rng.gen_range(0..sim.mem_words(*id).len() as u32);
                sim.poke_mem(name, addr, rng.next_u64()).unwrap();
            }
        }
        sim.step(1);
    }
}

/// Two captures of a random design a few cycles apart: a base and a
/// diverged successor, for building full and delta images.
fn capture_pair(case_seed: u64) -> (hardsnap_bus::HwSnapshot, hardsnap_bus::HwSnapshot) {
    let mut rng = Rng::seed_from_u64(case_seed);
    let module = gen_module(&mut rng, "fuzz");
    let mut sim = Simulator::with_engine(module.clone(), SimEngine::Bytecode)
        .unwrap_or_else(|e| panic!("seed {case_seed:#x}: {e}"));
    let tracker = SnapshotTracker::new(&sim);
    let mut stim = Rng::seed_from_u64(case_seed ^ 0x50F7_BA5E);
    drive(&module, &mut sim, &mut stim, 9);
    let base = tracker.capture_full(&sim);
    drive(&module, &mut sim, &mut stim, 9);
    let new = tracker.capture_full(&sim);
    (base, new)
}

#[test]
fn images_round_trip_bit_exactly_on_random_designs() {
    prop_check!(cases = 24, seed = 0x9E85_1570, (case_seed in from_fn(|rng: &mut Rng| rng.next_u64())) => {
        let (base, new) = capture_pair(case_seed);

        // Full image: decode == capture, re-encode == original bytes.
        let bytes = write_full(&base);
        let file = SnapshotFile::from_bytes(bytes.clone())
            .unwrap_or_else(|e| panic!("seed {case_seed:#x}: full decode: {e}"));
        file.validate(true)
            .unwrap_or_else(|e| panic!("seed {case_seed:#x}: full deep-validate: {e}"));
        match file.materialize().unwrap() {
            PersistedImage::Full(snap) => {
                assert_eq!(snap, base, "seed {case_seed:#x}: full image diverged");
                assert_eq!(
                    write_full(&snap),
                    bytes,
                    "seed {case_seed:#x}: full re-encode is not byte-identical"
                );
            }
            other => panic!("seed {case_seed:#x}: full image decoded as {other:?}"),
        }

        // Delta image: applying to the base reproduces the successor,
        // and the decoded delta re-encodes to the same bytes.
        let delta = SnapshotDelta::between(&base, &new)
            .unwrap_or_else(|e| panic!("seed {case_seed:#x}: delta: {e}"));
        let dbytes = write_delta(&base, &delta, "base.hsnap");
        let dfile = SnapshotFile::from_bytes(dbytes.clone())
            .unwrap_or_else(|e| panic!("seed {case_seed:#x}: delta decode: {e}"));
        dfile
            .validate(true)
            .unwrap_or_else(|e| panic!("seed {case_seed:#x}: delta deep-validate: {e}"));
        let applied = dfile
            .apply_to_base(&base)
            .unwrap_or_else(|e| panic!("seed {case_seed:#x}: apply: {e}"));
        assert_eq!(applied, new, "seed {case_seed:#x}: delta image diverged");
        let decoded = dfile.load_delta().unwrap();
        assert_eq!(
            write_delta(&base, &decoded, "base.hsnap"),
            dbytes,
            "seed {case_seed:#x}: delta re-encode is not byte-identical"
        );
    });
}

#[test]
fn any_single_byte_flip_is_a_typed_error() {
    // One representative design; every byte position of both image
    // kinds corrupted in turn. Cheap decode checks (header/table
    // checksums) may reject immediately; anything they admit must fail
    // deep validation or materialization — no flip may yield a usable,
    // silently different snapshot.
    let (base, new) = capture_pair(0xC0_44E7);
    let delta = SnapshotDelta::between(&base, &new).unwrap();
    for (kind, clean) in [
        ("full", write_full(&base)),
        ("delta", write_delta(&base, &delta, "base.hsnap")),
    ] {
        for pos in 0..clean.len() {
            let mut bad = clean.clone();
            bad[pos] ^= 0x41;
            let caught = match SnapshotFile::from_bytes(bad) {
                Err(_) => true,
                Ok(f) => f.validate(true).is_err() || f.materialize().is_err(),
            };
            assert!(
                caught,
                "{kind} image: flipping byte {pos} went completely undetected"
            );
        }
    }
}
