//! The parallel engine's headline invariant: worker count changes the
//! wall clock, never the result. Every test compares a run against the
//! sequential engine and across worker counts via the canonical digest.

use hardsnap::firmware::{self, PlantedBug};
use hardsnap::{
    ConsistencyMode, Engine, EngineConfig, EngineMetrics, ParallelEngine, RunResult, Searcher,
};
use hardsnap_sim::SimTarget;

fn config() -> EngineConfig {
    EngineConfig {
        mode: ConsistencyMode::HardSnap,
        searcher: Searcher::RoundRobin,
        max_instructions: 300_000,
        quantum: 4,
        ..Default::default()
    }
}

fn sequential_run(asm: &str, config: &EngineConfig) -> RunResult {
    let soc = hardsnap_periph::soc().unwrap();
    let target = Box::new(SimTarget::new(soc).unwrap());
    let mut engine = Engine::new(target, config.clone());
    let prog = hardsnap_isa::assemble(asm).unwrap();
    engine.load_firmware(&prog);
    engine.run()
}

fn parallel_run(asm: &str, config: &EngineConfig, workers: usize) -> (RunResult, EngineMetrics) {
    let soc = hardsnap_periph::soc().unwrap();
    let target = SimTarget::new(soc).unwrap();
    let mut engine = ParallelEngine::new(&target, workers, config.clone()).unwrap();
    let prog = hardsnap_isa::assemble(asm).unwrap();
    engine.load_firmware(&prog);
    let result = engine.run();
    assert!(
        engine.store.is_empty(),
        "all private snapshots retired with their states ({} left, {} bytes)",
        engine.store.len(),
        engine.store.total_bytes()
    );
    (result, engine.metrics)
}

#[test]
fn worker_count_does_not_change_the_result() {
    let asm = firmware::branching_firmware(4);
    let config = config();
    let seq = sequential_run(&asm, &config);
    assert_eq!(seq.metrics.paths_completed, 16);
    let seq_digest = seq.canonical_digest();

    let mut par_digests = Vec::new();
    for workers in [1, 2, 4] {
        let (r, metrics) = parallel_run(&asm, &config, workers);
        assert_eq!(metrics.paths_completed, 16, "workers={workers}");
        assert!(r.bugs.is_empty(), "workers={workers}: {:?}", r.bugs);
        assert_eq!(r.covered_pcs, seq.covered_pcs, "workers={workers}");
        assert_eq!(r.instructions, seq.instructions, "workers={workers}");
        par_digests.push((workers, r.canonical_digest(), r.hw_virtual_time_ns));
    }
    for &(workers, digest, _) in &par_digests {
        assert_eq!(
            digest, seq_digest,
            "workers={workers}: parallel result differs from sequential"
        );
    }
    // Hardware virtual time is a sum of per-state costs, so it too is
    // schedule-invariant (across worker counts; the sequential engine
    // saves/restores less because consecutive quanta can share a live
    // context).
    let t1 = par_digests[0].2;
    for &(workers, _, t) in &par_digests {
        assert_eq!(t, t1, "workers={workers}: virtual time diverged");
    }
}

#[test]
fn parallel_engine_finds_the_same_bugs() {
    let config = config();
    for bug in PlantedBug::all() {
        let asm = firmware::vulnerable_firmware(bug);
        let seq = sequential_run(&asm, &config);
        assert!(
            !seq.bugs.is_empty(),
            "{}: seed workload finds bugs",
            bug.name()
        );
        for workers in [1, 4] {
            let (r, _) = parallel_run(&asm, &config, workers);
            assert_eq!(
                r.canonical_digest(),
                seq.canonical_digest(),
                "{} workers={workers}",
                bug.name()
            );
            assert_eq!(r.bugs.len(), seq.bugs.len());
        }
    }
}

#[test]
fn fork_heavy_stress_hammers_the_shared_store() {
    // 2^7 = 128 paths with a 2-instruction quantum: every state is
    // context-switched constantly, so the sharded store sees a dense
    // mix of concurrent insert/update/remove from all 4 workers.
    let asm = firmware::branching_firmware(7);
    let config = EngineConfig {
        quantum: 2,
        ..config()
    };
    let seq_digest = sequential_run(&asm, &config).canonical_digest();
    for delta in [false, true] {
        let config = EngineConfig {
            delta_snapshots: delta,
            ..config.clone()
        };
        let (r, metrics) = parallel_run(&asm, &config, 4);
        assert_eq!(metrics.paths_completed, 128, "delta={delta}");
        assert!(r.bugs.is_empty(), "delta={delta}: {:?}", r.bugs);
        assert_eq!(
            r.canonical_digest(),
            seq_digest,
            "delta={delta}: stress run must stay deterministic"
        );
    }
}

#[test]
fn baselines_are_rejected() {
    let soc = hardsnap_periph::soc().unwrap();
    let target = SimTarget::new(soc).unwrap();
    for mode in [
        ConsistencyMode::NaiveConsistent,
        ConsistencyMode::NaiveInconsistent,
    ] {
        let config = EngineConfig {
            mode,
            ..EngineConfig::default()
        };
        assert!(
            ParallelEngine::new(&target, 2, config).is_err(),
            "{mode:?} must be refused (baselines serialize on one device)"
        );
    }
}
