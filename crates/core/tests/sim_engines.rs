//! The RTL evaluation backend is an implementation detail: the compiled
//! bytecode engine (with and without dirty-cone scheduling) and the
//! reference interpreter must produce bit-identical analysis results on
//! the demo firmware, sequentially and across parallel worker counts.
//! This is the engine-level analogue of the `ci/check.sh` digest gate.

use hardsnap::firmware;
use hardsnap::{ConsistencyMode, Engine, EngineConfig, ParallelEngine, RunResult, Searcher};
use hardsnap_sim::{SimEngine, SimTarget};

fn config() -> EngineConfig {
    EngineConfig {
        mode: ConsistencyMode::HardSnap,
        searcher: Searcher::RoundRobin,
        max_instructions: 300_000,
        quantum: 4,
        ..Default::default()
    }
}

fn run(engine: SimEngine, workers: usize, asm: &str, config: &EngineConfig) -> RunResult {
    let soc = hardsnap_periph::soc().unwrap();
    let target = SimTarget::with_engine(soc, engine).unwrap();
    let prog = hardsnap_isa::assemble(asm).unwrap();
    if workers == 1 {
        let mut e = Engine::new(Box::new(target), config.clone());
        e.load_firmware(&prog);
        e.run()
    } else {
        let mut e = ParallelEngine::new(&target, workers, config.clone()).unwrap();
        e.load_firmware(&prog);
        e.run()
    }
}

#[test]
fn sim_engine_choice_never_changes_the_digest() {
    // Same workload the CI gate drives: `analyze demo` = 2^3 paths.
    let asm = firmware::branching_firmware(3);
    let config = config();
    let reference = run(SimEngine::Interpreter, 1, &asm, &config);
    assert_eq!(reference.metrics.paths_completed, 8);
    let want = reference.canonical_digest();
    for engine in [
        SimEngine::Bytecode,
        SimEngine::BytecodeFullEval,
        SimEngine::Interpreter,
    ] {
        for workers in [1, 2, 4] {
            let r = run(engine, workers, &asm, &config);
            assert_eq!(
                r.canonical_digest(),
                want,
                "{engine:?} workers={workers}: digest diverged from interpreter"
            );
            assert_eq!(r.instructions, reference.instructions);
            assert_eq!(r.covered_pcs, reference.covered_pcs);
        }
    }
}
