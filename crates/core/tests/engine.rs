//! Integration tests of the HardSnap engine over the real simulated SoC:
//! the consistency and bug-finding claims of the paper, at test scale.

use hardsnap::firmware::{self, PlantedBug};
use hardsnap::{ConsistencyMode, Engine, EngineConfig, Searcher};
use hardsnap_periph::golden;
use hardsnap_sim::SimTarget;

fn sim_engine(mode: ConsistencyMode, searcher: Searcher) -> Engine {
    let soc = hardsnap_periph::soc().unwrap();
    let target = Box::new(SimTarget::new(soc).unwrap());
    // A small quantum forces visible interleaving at test scale (the
    // evaluation binaries sweep this knob).
    let config = EngineConfig {
        mode,
        searcher,
        max_instructions: 300_000,
        quantum: 4,
        ..Default::default()
    };
    Engine::new(target, config)
}

/// Golden digest word 0 for a one-shot SHA-256 compression of a block
/// whose word 0 is `w0` and the rest zero (what fig1 firmware computes).
fn golden_digest_w0(w0: u32) -> u32 {
    let mut state = golden::SHA256_IV;
    let mut block = [0u32; 16];
    block[0] = w0;
    golden::sha256_compress(&mut state, &block);
    state[0]
}

#[test]
fn fig1_hardsnap_paths_get_private_hardware() {
    let mut engine = sim_engine(ConsistencyMode::HardSnap, Searcher::RoundRobin);
    let prog = hardsnap_isa::assemble(&firmware::fig1_firmware()).unwrap();
    engine.load_firmware(&prog);
    let result = engine.run();
    assert_eq!(result.metrics.paths_completed, 2);
    assert!(result.bugs.is_empty(), "{:?}", result.bugs);
    // Context switching really happened (round-robin over 2 states).
    assert!(result.metrics.context_switches > 2);
    assert!(result.metrics.snapshots_saved > 0);
    assert!(result.metrics.snapshots_restored > 0);
}

#[test]
fn branching_firmware_all_paths_consistent() {
    for searcher in [Searcher::Dfs, Searcher::Bfs, Searcher::RoundRobin] {
        let mut engine = sim_engine(ConsistencyMode::HardSnap, searcher);
        let prog = hardsnap_isa::assemble(&firmware::branching_firmware(4)).unwrap();
        engine.load_firmware(&prog);
        let result = engine.run();
        assert_eq!(result.metrics.paths_completed, 16, "{searcher:?}");
        // The firmware asserts that the timer readback matches the
        // path-private value; any context mixing trips the assert.
        assert!(result.bugs.is_empty(), "{searcher:?}: {:?}", result.bugs);
    }
}

#[test]
fn naive_inconsistent_corrupts_branching_firmware() {
    let mut engine = sim_engine(ConsistencyMode::NaiveInconsistent, Searcher::RoundRobin);
    let prog = hardsnap_isa::assemble(&firmware::branching_firmware(4)).unwrap();
    engine.load_firmware(&prog);
    let result = engine.run();
    // Shared hardware: paths overwrite each other's timer programming,
    // so readback asserts fail => false positives appear.
    assert!(
        !result.bugs.is_empty(),
        "inconsistent mode must produce (false-positive) assertion failures"
    );
    assert_eq!(result.metrics.snapshots_saved, 0);
    assert_eq!(result.metrics.reboots, 0);
}

#[test]
fn naive_consistent_is_correct_but_reboots() {
    let mut engine = sim_engine(ConsistencyMode::NaiveConsistent, Searcher::RoundRobin);
    let prog = hardsnap_isa::assemble(&firmware::branching_firmware(3)).unwrap();
    engine.load_firmware(&prog);
    let result = engine.run();
    assert_eq!(result.metrics.paths_completed, 8);
    assert!(result.bugs.is_empty(), "{:?}", result.bugs);
    assert!(result.metrics.reboots > 8, "reboot per context switch");
    assert!(result.metrics.replayed_ios > 0);
}

#[test]
fn hardsnap_uses_less_hw_time_than_reboot_on_init_heavy_firmware() {
    let src = firmware::init_heavy_firmware(40, 3);
    let prog = hardsnap_isa::assemble(&src).unwrap();

    let mut hs = sim_engine(ConsistencyMode::HardSnap, Searcher::RoundRobin);
    hs.load_firmware(&prog);
    let r_hs = hs.run();

    let mut nc = sim_engine(ConsistencyMode::NaiveConsistent, Searcher::RoundRobin);
    nc.load_firmware(&prog);
    let r_nc = nc.run();

    assert_eq!(r_hs.metrics.paths_completed, 8);
    assert_eq!(r_nc.metrics.paths_completed, 8);
    assert!(r_hs.bugs.is_empty() && r_nc.bugs.is_empty());
    // The replay of the 40-write init sequence on every switch must cost
    // far more virtual hardware time than snapshot save/restore.
    assert!(
        r_nc.hw_virtual_time_ns > r_hs.hw_virtual_time_ns,
        "reboot {} ns should exceed hardsnap {} ns",
        r_nc.hw_virtual_time_ns,
        r_hs.hw_virtual_time_ns
    );
}

#[test]
fn finds_length_overflow_bug_with_testcase() {
    let mut engine = sim_engine(ConsistencyMode::HardSnap, Searcher::Dfs);
    let prog =
        hardsnap_isa::assemble(&firmware::vulnerable_firmware(PlantedBug::LengthOverflow)).unwrap();
    engine.load_firmware(&prog);
    let result = engine.run();
    let bug = result
        .bugs
        .iter()
        .find(|b| b.kind == hardsnap::BugKind::Unmapped)
        .expect("overflow bug found");
    let tc = bug.testcase.as_ref().expect("testcase");
    let (_, len) = tc.iter().next().unwrap();
    assert_eq!(len & 0x1f, 17, "exactly the off-by-one length");
}

#[test]
fn finds_magic_command_bug_via_hardware_readback() {
    let mut engine = sim_engine(ConsistencyMode::HardSnap, Searcher::Dfs);
    let prog =
        hardsnap_isa::assemble(&firmware::vulnerable_firmware(PlantedBug::MagicCommand)).unwrap();
    engine.load_firmware(&prog);
    let result = engine.run();
    let bug = result
        .bugs
        .iter()
        .find(|b| b.kind == hardsnap::BugKind::FailHit)
        .expect("magic-command bug found");
    // The test case depends on the timer value the firmware read back:
    // input == 0xDEAD0000 ^ timer_value, and the timer delta is small.
    let tc = bug.testcase.as_ref().unwrap();
    let (_, v) = tc.iter().next().unwrap();
    assert_eq!(v as u32 >> 16, 0xDEAD, "high half survives the xor: {v:#x}");
}

#[test]
fn finds_irq_gated_bug_only_with_interrupts() {
    let mut engine = sim_engine(ConsistencyMode::HardSnap, Searcher::Dfs);
    let prog =
        hardsnap_isa::assemble(&firmware::vulnerable_firmware(PlantedBug::IrqGated)).unwrap();
    engine.load_firmware(&prog);
    let result = engine.run();
    assert!(result.metrics.irqs_delivered > 0, "the timer irq must fire");
    let bug = result
        .bugs
        .iter()
        .find(|b| b.kind == hardsnap::BugKind::FailHit)
        .expect("irq-gated bug found");
    let tc = bug.testcase.as_ref().unwrap();
    let (_, v) = tc.iter().next().unwrap();
    assert_eq!(v as u32, 0x00BA_DBAD);
}

#[test]
fn hw_assertions_fire_on_snapshots() {
    let mut engine = sim_engine(ConsistencyMode::HardSnap, Searcher::RoundRobin);
    // Property: the timer's prescaler register must never exceed 100.
    engine.add_hw_assertion("prescaler-bound", |snap| {
        snap.reg("u_timer.prescaler")
            .map(|v| v <= 100)
            .unwrap_or(true)
    });
    let prog = hardsnap_isa::assemble(&format!(
        "
        .equ TIMER_BASE, {:#x}
        .org 0x100
        entry:
            li r3, TIMER_BASE
            sym r1, #0
            movi r2, #0
            beq r1, r2, small
            li r4, 50000
            stw r4, [r3, #0x10]    ; violates the property
            j end
        small:
            movi r4, #10
            stw r4, [r3, #0x10]
        end:
            nop
            halt
        ",
        hardsnap_bus::map::soc::TIMER_BASE
    ))
    .unwrap();
    engine.load_firmware(&prog);
    let result = engine.run();
    assert_eq!(result.metrics.paths_completed, 2);
    assert!(
        engine
            .hw_violations
            .iter()
            .any(|(n, _)| n == "prescaler-bound"),
        "violation detected through snapshot inspection: {:?}",
        engine.hw_violations
    );
}

#[test]
fn multi_target_switch_mid_analysis() {
    use hardsnap_fpga::{FpgaOptions, FpgaTarget};
    let soc = hardsnap_periph::soc().unwrap();
    let target = Box::new(FpgaTarget::new(soc, &FpgaOptions::default()).unwrap());
    let config = EngineConfig {
        max_instructions: 200_000,
        ..Default::default()
    };
    let mut engine = Engine::new(target, config);
    let prog = hardsnap_isa::assemble(&firmware::branching_firmware(2)).unwrap();
    engine.load_firmware(&prog);
    assert_eq!(engine.target().caps().kind, hardsnap::TargetKind::Fpga);
    // Switch to the simulator (full traces) mid-analysis.
    let sim = Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap());
    engine.switch_target(sim).unwrap();
    assert_eq!(engine.target().caps().kind, hardsnap::TargetKind::Simulator);
    let result = engine.run();
    assert_eq!(result.metrics.paths_completed, 4);
    assert!(result.bugs.is_empty(), "{:?}", result.bugs);
}

#[test]
fn golden_digest_sanity_for_fig1_harness() {
    // The constants the consistency experiment compares against.
    let a = golden_digest_w0(0xAAAA_0001);
    let b = golden_digest_w0(0xBBBB_0002);
    assert_ne!(a, b);
}

#[test]
fn delta_snapshots_are_correct_and_smaller() {
    let prog = hardsnap_isa::assemble(&firmware::branching_firmware(4)).unwrap();
    let mut peaks = Vec::new();
    for delta in [false, true] {
        let soc = hardsnap_periph::soc().unwrap();
        let config = EngineConfig {
            searcher: Searcher::Bfs, // widest frontier => most snapshots
            quantum: 4,
            delta_snapshots: delta,
            max_instructions: 300_000,
            ..Default::default()
        };
        let mut engine = Engine::new(Box::new(SimTarget::new(soc).unwrap()), config);
        engine.load_firmware(&prog);
        let r = engine.run();
        assert_eq!(r.metrics.paths_completed, 16, "delta={delta}");
        assert!(r.bugs.is_empty(), "delta={delta}: {:?}", r.bugs);
        peaks.push(engine.store.peak_bytes());
    }
    assert!(
        peaks[1] < peaks[0],
        "delta store peak {} must be below full store peak {}",
        peaks[1],
        peaks[0]
    );
}

#[test]
fn random_searcher_explores_all_paths() {
    let prog = hardsnap_isa::assemble(&firmware::branching_firmware(3)).unwrap();
    let soc = hardsnap_periph::soc().unwrap();
    let config = EngineConfig {
        searcher: Searcher::Random(0xC0FFEE),
        quantum: 4,
        ..Default::default()
    };
    let mut engine = Engine::new(Box::new(SimTarget::new(soc).unwrap()), config);
    engine.load_firmware(&prog);
    let r = engine.run();
    assert_eq!(r.metrics.paths_completed, 8);
    assert!(r.bugs.is_empty(), "{:?}", r.bugs);
}

#[test]
fn exhaustive_policy_forks_over_mmio_write_data() {
    use hardsnap::Concretization;
    // The firmware writes a symbolic 1-bit-masked value into the timer
    // prescaler: exhaustive concretization must explore both hardware
    // configurations as separate paths (each with private hardware).
    let src = format!(
        "
        .equ TIMER_BASE, {:#x}
        .org 0x100
        entry:
            li r3, TIMER_BASE
            sym r1, #0
            andi r1, r1, #1
            stw r1, [r3, #0x10]    ; PRESCALER = 0 or 1
            ldw r5, [r3, #0x10]
            sub r6, r5, r1
            movi r7, #1
            beq r6, r0, ok
            movi r7, #0
        ok:
            assert r7              ; readback matches this path's value
            halt
        ",
        hardsnap_bus::map::soc::TIMER_BASE
    );
    let prog = hardsnap_isa::assemble(&src).unwrap();
    for (policy, want_paths) in [
        (Concretization::Minimal, 1u64),
        (Concretization::Exhaustive(4), 2u64),
    ] {
        let config = EngineConfig {
            policy,
            ..Default::default()
        };
        let mut engine = Engine::new(
            Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap()),
            config,
        );
        engine.load_firmware(&prog);
        let r = engine.run();
        assert_eq!(r.metrics.paths_completed, want_paths, "{policy:?}");
        assert!(r.bugs.is_empty(), "{policy:?}: {:?}", r.bugs);
    }
}
