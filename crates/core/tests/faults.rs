//! Fault-injected transport: the engines must absorb an unreliable
//! link without changing the analysis result.
//!
//! The headline invariant is **full transparency in the parallel
//! engine**: with faults injected on up to 10% of bus/scan/snapshot
//! operations, every workload completes with a canonical digest
//! bit-identical to the fault-free run, for any worker count — faults
//! may only show up in `RunResult::faults` and in timing. The
//! sequential engine guarantees **graceful degradation**: a terminal
//! fault kills only the affected state and names it in the fault log.

use hardsnap::firmware;
use hardsnap::{
    ConsistencyMode, Engine, EngineConfig, FaultPlan, FaultyTarget, ParallelEngine, RetryPolicy,
    RunResult, Searcher,
};
use hardsnap_bus::{BusError, HwSnapshot, HwTarget, TargetCaps, TargetError};
use hardsnap_sim::SimTarget;
use hardsnap_util::prop::from_fn;
use hardsnap_util::prop_check;
use hardsnap_util::rng::Rng;

fn config() -> EngineConfig {
    EngineConfig {
        mode: ConsistencyMode::HardSnap,
        searcher: Searcher::RoundRobin,
        max_instructions: 300_000,
        quantum: 4,
        ..Default::default()
    }
}

fn sim() -> SimTarget {
    SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap()
}

fn sequential_run(asm: &str, config: &EngineConfig, plan: FaultPlan) -> RunResult {
    let target: Box<dyn HwTarget> = if plan.is_active() {
        Box::new(FaultyTarget::new(sim(), plan))
    } else {
        Box::new(sim())
    };
    let mut engine = Engine::new(target, config.clone());
    let prog = hardsnap_isa::assemble(asm).unwrap();
    engine.load_firmware(&prog);
    engine.run()
}

fn parallel_run(asm: &str, config: &EngineConfig, workers: usize, plan: FaultPlan) -> RunResult {
    let prog = hardsnap_isa::assemble(asm).unwrap();
    let run = |prototype: &dyn HwTarget| {
        let mut engine = ParallelEngine::new(prototype, workers, config.clone()).unwrap();
        engine.load_firmware(&prog);
        engine.run()
    };
    if plan.is_active() {
        run(&FaultyTarget::new(sim(), plan))
    } else {
        run(&sim())
    }
}

/// Same seed + same fault plan ⇒ the whole run replays exactly: same
/// digest, same injected/retried/recovered counters, same fault log.
#[test]
fn fault_runs_replay_exactly_from_their_seed() {
    let asm = firmware::branching_firmware(3);
    let config = config();
    prop_check!(cases = 4, seed = 0xFA01_7E57, (seed in from_fn(|rng: &mut Rng| rng.next_u64())) => {
        let plan = FaultPlan::uniform(seed, 0.05);
        let a = sequential_run(&asm, &config, plan);
        let b = sequential_run(&asm, &config, plan);
        assert_eq!(a.canonical_digest(), b.canonical_digest());
        assert_eq!(a.faults, b.faults, "fault schedule must replay exactly");
        assert_eq!(a.fault_log, b.fault_log);
    });
}

/// The tentpole acceptance bar: with up to 10% of operations faulted,
/// the parallel engine's digest is bit-identical to the fault-free
/// sequential run for workers ∈ {1, 2, 4}.
#[test]
fn faulty_parallel_matches_fault_free_digest_across_worker_counts() {
    let asm = firmware::branching_firmware(3);
    let config = config();
    let clean = sequential_run(&asm, &config, FaultPlan::off());
    assert_eq!(clean.metrics.paths_completed, 8);
    assert_eq!(clean.faults.injected, 0);
    assert!(clean.fault_log.is_empty());
    let clean_digest = clean.canonical_digest();

    prop_check!(cases = 2, seed = 0x10AD_FAB1, (seed in from_fn(|rng: &mut Rng| rng.next_u64())) => {
        for rate in [0.05, 0.10] {
            let plan = FaultPlan::uniform(seed, rate);
            for workers in [1usize, 2, 4] {
                let r = parallel_run(&asm, &config, workers, plan);
                assert_eq!(
                    r.canonical_digest(),
                    clean_digest,
                    "workers={workers} rate={rate}: faults leaked into the result \
                     (injected={}, retried={}, recovered={}, quarantined={}, log={:?})",
                    r.faults.injected,
                    r.faults.retried,
                    r.faults.recovered,
                    r.faults.quarantined,
                    r.fault_log
                );
                assert!(r.fault_log.is_empty(), "workers={workers}: no state may die");
            }
        }
    });
}

/// Transient bus faults in the sequential engine are absorbed by the
/// retry layer: the digest matches fault-free and the summary shows
/// recovery actually happened.
#[test]
fn sequential_recovers_transparently_from_transient_bus_faults() {
    // Dense MMIO traffic so a 10% per-op rate is guaranteed to fire.
    let asm = firmware::init_heavy_firmware(40, 2);
    let config = config();
    let clean_digest = sequential_run(&asm, &config, FaultPlan::off()).canonical_digest();
    let plan = FaultPlan {
        seed: 0xB05_FA17,
        bus_fault_rate: 0.10,
        ..FaultPlan::off()
    };
    let r = sequential_run(&asm, &config, plan);
    assert_eq!(r.canonical_digest(), clean_digest);
    assert!(
        r.faults.injected > 0,
        "the 10% plan must fire on this workload"
    );
    assert!(r.faults.retried > 0);
    assert!(r.faults.recovered > 0);
    assert!(r.fault_log.is_empty());
}

/// Deterministic quarantine regression: a zero fault budget plus a
/// hang-prone link forces replica replacement, and the re-queued work
/// still completes with the fault-free digest.
#[test]
fn quarantine_rebuilds_replicas_without_changing_the_result() {
    let asm = firmware::branching_firmware(2);
    let mut config = config();
    config.retry.replica_fault_budget = 0;
    let clean_digest = sequential_run(&asm, &config, FaultPlan::off()).canonical_digest();
    // Only hangs: every wedge is a terminal quantum failure, and budget
    // 0 turns each one into a quarantine + rebuild. (A hang rate near
    // 1.0 would livelock — replacements inherit the plan's rates.)
    let plan = FaultPlan {
        seed: 0x0AB5_EC07,
        hang_rate: 0.15,
        ..FaultPlan::off()
    };
    let r = parallel_run(&asm, &config, 2, plan);
    assert!(
        r.faults.quarantined >= 1,
        "the hang-prone link must trip at least one quarantine (injected={})",
        r.faults.injected
    );
    assert_eq!(
        r.canonical_digest(),
        clean_digest,
        "re-queued work must replay bit-identically on the rebuilt replica"
    );
    assert!(
        r.fault_log.is_empty(),
        "no state may be lost: {:?}",
        r.fault_log
    );
}

/// A simulator spare can stand in for a replica that cannot rebuild
/// itself: exploration finishes on the failover target with the
/// fault-free digest.
#[test]
fn failover_to_a_spare_target_preserves_the_result() {
    let asm = firmware::branching_firmware(2);
    let mut config = config();
    config.retry.replica_fault_budget = 0;
    let clean_digest = sequential_run(&asm, &config, FaultPlan::off()).canonical_digest();
    let plan = FaultPlan {
        seed: 0xFA1_0BE8,
        hang_rate: 0.15,
        ..FaultPlan::off()
    };
    let prog = hardsnap_isa::assemble(&asm).unwrap();
    let prototype = FaultyTarget::new(sim(), plan);
    let mut engine = ParallelEngine::new(&prototype, 2, config.clone()).unwrap();
    // The spare is an honest simulator: once a worker fails over, its
    // link faults stop entirely.
    engine.set_failover(Box::new(sim()));
    engine.load_firmware(&prog);
    let r = engine.run();
    assert!(r.faults.quarantined >= 1);
    assert_eq!(r.canonical_digest(), clean_digest);
}

/// Sequential graceful degradation: when `UpdateState` fails terminally
/// the engine kills exactly the state whose context was lost, names it
/// in the fault log, and finishes the rest of the exploration.
#[test]
fn sequential_update_state_failure_kills_the_state_by_name() {
    /// Delegating wrapper whose snapshot captures start failing
    /// permanently after a budget of honest ones.
    struct FailSavesAfter {
        inner: SimTarget,
        ok_saves: u32,
    }
    impl HwTarget for FailSavesAfter {
        fn name(&self) -> &str {
            "sim+dying-link"
        }
        fn caps(&self) -> TargetCaps {
            self.inner.caps()
        }
        fn design_name(&self) -> &str {
            self.inner.design_name()
        }
        fn reset(&mut self) {
            self.inner.reset()
        }
        fn step(&mut self, cycles: u64) {
            self.inner.step(cycles)
        }
        fn cycle(&self) -> u64 {
            self.inner.cycle()
        }
        fn bus_read(&mut self, addr: u32) -> Result<u32, BusError> {
            self.inner.bus_read(addr)
        }
        fn bus_write(&mut self, addr: u32, data: u32) -> Result<(), BusError> {
            self.inner.bus_write(addr, data)
        }
        fn irq_lines(&mut self) -> u32 {
            self.inner.irq_lines()
        }
        fn save_snapshot(&mut self) -> Result<HwSnapshot, TargetError> {
            if self.ok_saves == 0 {
                return Err(TargetError::Bus(BusError::Timeout {
                    addr: 0,
                    cycles: 256,
                }));
            }
            self.ok_saves -= 1;
            self.inner.save_snapshot()
        }
        fn restore_snapshot(&mut self, snap: &HwSnapshot) -> Result<(), TargetError> {
            self.inner.restore_snapshot(snap)
        }
        fn virtual_time_ns(&self) -> u64 {
            self.inner.virtual_time_ns()
        }
        fn snapshot_shape(&self) -> u64 {
            self.inner.snapshot_shape()
        }
    }

    let asm = firmware::branching_firmware(3);
    let mut config = config();
    // Keep the test fast: one failed save must become terminal quickly.
    config.retry = RetryPolicy {
        max_attempts: 2,
        ..RetryPolicy::default()
    };
    let target = Box::new(FailSavesAfter {
        inner: sim(),
        ok_saves: 2,
    });
    let mut engine = Engine::new(target, config);
    let prog = hardsnap_isa::assemble(&asm).unwrap();
    engine.load_firmware(&prog);
    let r = engine.run();
    assert!(
        !r.fault_log.is_empty(),
        "a permanently dead link must kill at least one state"
    );
    for entry in &r.fault_log {
        assert!(
            entry.contains("StateId") && entry.contains("killed"),
            "fault log must name the casualty: {entry}"
        );
    }
    assert!(r.metrics.states_dropped > 0);
    // Graceful, not fatal: the run returned instead of panicking, and
    // the first two honest saves let some exploration happen.
    assert!(r.instructions > 0);
}
