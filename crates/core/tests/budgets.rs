//! Budget property: a run cut by *any* budget axis at *any* point,
//! checkpointed, and resumed in a fresh engine must produce a canonical
//! digest bit-identical to one uninterrupted run — across worker counts
//! and even when the resumed engine runs under a smaller snapshot RAM
//! budget. Budgets decide *where* a run pauses, never *what* it
//! computes.

use hardsnap::firmware;
use hardsnap::{
    resume_parallel, resume_sequential, snapshot_parallel, snapshot_sequential, CancelToken,
    ConsistencyMode, Engine, EngineConfig, ParallelEngine, RunResult, Searcher, StopReason,
};
use hardsnap_sim::SimTarget;
use std::path::PathBuf;

fn config() -> EngineConfig {
    EngineConfig {
        mode: ConsistencyMode::HardSnap,
        searcher: Searcher::RoundRobin,
        quantum: 4,
        ..Default::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hardsnap-budgets-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_fresh(asm: &str, config: &EngineConfig, workers: usize) -> RunResult {
    let soc = hardsnap_periph::soc().unwrap();
    let prog = hardsnap_isa::assemble(asm).unwrap();
    if workers > 1 {
        let target = SimTarget::new(soc).unwrap();
        let mut engine = ParallelEngine::new(&target, workers, config.clone()).unwrap();
        engine.load_firmware(&prog);
        engine.run()
    } else {
        let mut engine = Engine::new(Box::new(SimTarget::new(soc).unwrap()), config.clone());
        engine.load_firmware(&prog);
        engine.run()
    }
}

/// Runs under `first` until it stops, checkpoints into `dir`, then
/// resumes in a fresh engine under `second` and returns both halves.
fn cut_and_resume(
    asm: &str,
    first: &EngineConfig,
    second: &EngineConfig,
    workers: usize,
    dir: &PathBuf,
) -> (RunResult, RunResult) {
    let prog = hardsnap_isa::assemble(asm).unwrap();
    if workers > 1 {
        let soc = hardsnap_periph::soc().unwrap();
        let target = SimTarget::new(soc).unwrap();
        let mut engine = ParallelEngine::new(&target, workers, first.clone()).unwrap();
        engine.load_firmware(&prog);
        let r1 = engine.run();
        snapshot_parallel(dir, &mut engine, &r1).unwrap();
        let soc = hardsnap_periph::soc().unwrap();
        let target = SimTarget::new(soc).unwrap();
        let mut engine = ParallelEngine::new(&target, workers, second.clone()).unwrap();
        resume_parallel(dir, &mut engine).unwrap();
        (r1, engine.run())
    } else {
        let soc = hardsnap_periph::soc().unwrap();
        let mut engine = Engine::new(Box::new(SimTarget::new(soc).unwrap()), first.clone());
        engine.load_firmware(&prog);
        let r1 = engine.run();
        snapshot_sequential(dir, &mut engine, &r1).unwrap();
        let soc = hardsnap_periph::soc().unwrap();
        let mut engine = Engine::new(Box::new(SimTarget::new(soc).unwrap()), second.clone());
        resume_sequential(dir, &mut engine).unwrap();
        (r1, engine.run())
    }
}

/// The property, parameterized by which budget axis cuts the first run.
fn budget_cut_is_digest_invariant(cut: &dyn Fn(&mut EngineConfig), tag: &str, expect: StopReason) {
    let asm = firmware::branching_firmware(4);
    let whole = run_fresh(&asm, &config(), 1);
    assert_eq!(whole.stop, StopReason::Complete);
    let digest = whole.canonical_digest();
    for workers in [1usize, 2, 4] {
        let dir = tmp(&format!("{tag}-{workers}"));
        let mut first = config();
        cut(&mut first);
        let (r1, r2) = cut_and_resume(&asm, &first, &config(), workers, &dir);
        assert_eq!(
            r1.stop, expect,
            "{tag} workers={workers}: wrong stop reason"
        );
        assert!(
            r1.instructions < whole.instructions,
            "{tag} workers={workers}: the budget never actually cut the run"
        );
        assert_eq!(r2.stop, StopReason::Complete, "{tag} workers={workers}");
        assert_eq!(
            r2.canonical_digest(),
            digest,
            "{tag} workers={workers}: budget cut + resume changed the result"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn vtime_budget_cut_resumes_to_identical_digest() {
    budget_cut_is_digest_invariant(
        &|c| c.max_vtime_ns = 2_000,
        "vtime",
        StopReason::VirtualTime,
    );
}

#[test]
fn quanta_budget_cut_resumes_to_identical_digest() {
    budget_cut_is_digest_invariant(&|c| c.max_quanta = 6, "quanta", StopReason::Quanta);
}

#[test]
fn wall_clock_budget_cut_resumes_to_identical_digest() {
    // An already-expired deadline stops the run at the very first
    // quantum boundary — the extreme (and fully deterministic) case of
    // a wall-clock cut.
    budget_cut_is_digest_invariant(
        &|c| c.wall_deadline = Some(std::time::Instant::now()),
        "wall",
        StopReason::WallClock,
    );
}

#[test]
fn cancel_token_cut_resumes_to_identical_digest() {
    budget_cut_is_digest_invariant(
        &|c| {
            let t = CancelToken::new();
            t.cancel();
            c.cancel = t;
        },
        "cancel",
        StopReason::Cancelled,
    );
}

#[test]
fn resume_under_smaller_snapshot_budget_is_digest_invariant() {
    let asm = firmware::branching_firmware(4);
    let digest = run_fresh(&asm, &config(), 1).canonical_digest();
    for workers in [1usize, 2, 4] {
        let dir = tmp(&format!("membudget-{workers}"));
        let mut first = config();
        first.max_quanta = 8;
        // The resumed engine gets a drastically smaller snapshot RAM
        // budget than the one that wrote the checkpoint: cold snapshots
        // spill and page back in, and the digest must not notice.
        let mut second = config();
        second.snapshot_mem_budget = Some(1);
        let (r1, r2) = cut_and_resume(&asm, &first, &second, workers, &dir);
        assert_eq!(r1.stop, StopReason::Quanta, "workers={workers}");
        assert_eq!(r2.stop, StopReason::Complete, "workers={workers}");
        assert_eq!(
            r2.canonical_digest(),
            digest,
            "workers={workers}: spill-constrained resume changed the result"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn repeated_cuts_chain_to_identical_digest() {
    // Cut → resume → cut → resume … with a tiny quanta budget each leg:
    // the many-checkpoint chain must still land on the uninterrupted
    // digest, sequentially and in parallel.
    let asm = firmware::branching_firmware(4);
    let digest = run_fresh(&asm, &config(), 1).canonical_digest();
    for workers in [1usize, 2] {
        let dir = tmp(&format!("chain-{workers}"));
        let prog = hardsnap_isa::assemble(&asm).unwrap();
        let mut legs = 0u64;
        let final_digest = loop {
            let mut cfg = config();
            // Quanta carry across resume (like instructions), so each
            // leg grants five *more* than the chain has consumed.
            cfg.max_quanta = (legs + 1) * 5;
            let soc = hardsnap_periph::soc().unwrap();
            let r = if workers > 1 {
                let target = SimTarget::new(soc).unwrap();
                let mut engine = ParallelEngine::new(&target, workers, cfg).unwrap();
                if legs == 0 {
                    engine.load_firmware(&prog);
                } else {
                    resume_parallel(&dir, &mut engine).unwrap();
                }
                let r = engine.run();
                snapshot_parallel(&dir, &mut engine, &r).unwrap();
                r
            } else {
                let mut engine = Engine::new(Box::new(SimTarget::new(soc).unwrap()), cfg);
                if legs == 0 {
                    engine.load_firmware(&prog);
                } else {
                    resume_sequential(&dir, &mut engine).unwrap();
                }
                let r = engine.run();
                snapshot_sequential(&dir, &mut engine, &r).unwrap();
                r
            };
            legs += 1;
            assert!(legs <= 1_000, "workers={workers}: chain never completed");
            if r.stop == StopReason::Complete {
                break r.canonical_digest();
            }
            assert_eq!(r.stop, StopReason::Quanta, "workers={workers}");
        };
        assert!(
            legs > 2,
            "workers={workers}: budget too loose to test the chain"
        );
        assert_eq!(
            final_digest, digest,
            "workers={workers}: {legs}-leg chain diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn budget_priority_is_stable() {
    // When several budgets are simultaneously exhausted the reported
    // reason follows the documented priority: cancelled > wall-clock >
    // instructions > paths > vtime > quanta.
    let asm = firmware::branching_firmware(3);
    let mut c = config();
    c.max_quanta = 1;
    c.max_vtime_ns = 1;
    let r = run_fresh(&asm, &c, 1);
    assert_eq!(r.stop, StopReason::VirtualTime);

    let t = CancelToken::new();
    t.cancel();
    let mut c = config();
    c.max_quanta = 1;
    c.cancel = t;
    let r = run_fresh(&asm, &c, 1);
    assert_eq!(r.stop, StopReason::Cancelled);
}
