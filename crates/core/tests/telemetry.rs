//! Telemetry observer-effect and export guarantees.
//!
//! The telemetry layer is observe-only: switching it on (or varying
//! the worker count under it) must never change the canonical result
//! digest, and its Chrome-trace export must be valid, per-track
//! monotonic JSON that names the span taxonomy the engine emits.

use hardsnap::firmware;
use hardsnap::{
    ConsistencyMode, Engine, EngineConfig, FaultPlan, FaultyTarget, MetricsSnapshot,
    ParallelEngine, RunResult, Searcher, TelemetryConfig,
};
use hardsnap_sim::SimTarget;
use hardsnap_util::json;

fn config(telemetry: TelemetryConfig) -> EngineConfig {
    EngineConfig {
        mode: ConsistencyMode::HardSnap,
        searcher: Searcher::RoundRobin,
        quantum: 4,
        telemetry,
        ..Default::default()
    }
}

fn run_parallel(workers: usize, telemetry: TelemetryConfig) -> RunResult {
    let prog = hardsnap_isa::assemble(&firmware::branching_firmware(3)).unwrap();
    let proto = SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap();
    let mut engine = ParallelEngine::new(&proto, workers, config(telemetry)).unwrap();
    engine.load_firmware(&prog);
    engine.run()
}

#[test]
fn digest_identical_with_telemetry_on_off_across_worker_counts() {
    let baseline = run_parallel(1, TelemetryConfig::OFF).canonical_digest();
    for workers in [1usize, 2, 4] {
        for telemetry in [TelemetryConfig::OFF, TelemetryConfig::ON] {
            let r = run_parallel(workers, telemetry);
            assert_eq!(
                r.canonical_digest(),
                baseline,
                "workers={workers} telemetry={telemetry:?} diverged"
            );
            assert_eq!(
                r.telemetry.is_some(),
                telemetry.enabled,
                "telemetry snapshot present iff enabled"
            );
        }
    }
}

#[test]
fn sequential_engine_collects_engine_track_telemetry() {
    let prog = hardsnap_isa::assemble(&firmware::branching_firmware(2)).unwrap();
    let target = Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap());
    let mut engine = Engine::new(target, config(TelemetryConfig::ON));
    engine.load_firmware(&prog);
    let r = engine.run();
    let t = r.telemetry.expect("telemetry enabled");
    assert_eq!(t.tracks, vec![(0, "engine".to_string())]);
    assert_eq!(t.counter("context_switches"), r.metrics.context_switches);
    assert_eq!(t.counter("snapshots_saved"), r.metrics.snapshots_saved);
    assert!(t.counter("quanta") > 0, "quantum counter must tick");
    assert!(
        t.hist("quantum_instructions").is_some(),
        "quantum length histogram recorded"
    );
    assert!(
        t.counter("store_hits") > 0,
        "store stats folded into the snapshot"
    );
}

/// End-to-end Chrome-trace contract: parses with the in-tree JSON
/// reader, has per-track thread-name metadata, strictly non-decreasing
/// timestamps per track, and covers the capture/restore/quantum span
/// taxonomy (plus retry spans when faults are injected).
#[test]
fn chrome_trace_roundtrips_and_names_the_span_taxonomy() {
    let prog = hardsnap_isa::assemble(&firmware::branching_firmware(3)).unwrap();
    let sim = SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap();
    let proto = FaultyTarget::new(sim, FaultPlan::uniform(0xE4_FA17, 0.08));
    let mut engine = ParallelEngine::new(&proto, 2, config(TelemetryConfig::ON)).unwrap();
    engine.load_firmware(&prog);
    let r = engine.run();
    let t: &MetricsSnapshot = r.telemetry.as_ref().expect("telemetry enabled");

    let trace = t.chrome_trace_json();
    let v = json::parse(&trace).expect("trace is valid JSON");
    let events = v.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
    assert!(!events.is_empty());

    let mut names: Vec<&str> = Vec::new();
    let mut meta_tracks = 0usize;
    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).unwrap();
        let name = ev.get("name").and_then(|n| n.as_str()).unwrap();
        if ph == "M" {
            meta_tracks += 1;
            continue;
        }
        names.push(name);
        let tid = ev.get("tid").and_then(json::Value::as_u64).unwrap();
        let ts = ev.get("ts").and_then(json::Value::as_f64).unwrap();
        let prev = last_ts.entry(tid).or_insert(f64::MIN);
        assert!(ts >= *prev, "track {tid} not monotonic: {ts} < {prev}");
        *prev = ts;
    }
    assert_eq!(meta_tracks, 2, "one thread_name record per worker track");
    for expected in ["capture", "restore", "quantum"] {
        assert!(
            names.iter().any(|n| *n == expected),
            "trace must contain {expected:?} spans; got {names:?}"
        );
    }
    assert!(
        names
            .iter()
            .any(|n| n.starts_with("retry:") || n.starts_with("inject:")),
        "faulted run must contain retry/inject events; got {names:?}"
    );

    // The metrics JSON export parses too and agrees on a counter.
    let m = json::parse(&t.metrics_json()).expect("metrics JSON parses");
    assert_eq!(
        m.get("counters")
            .and_then(|c| c.get("context_switches"))
            .and_then(json::Value::as_u64),
        Some(t.counter("context_switches")),
    );
}
