//! Synthetic firmware generators: the evaluation workloads.
//!
//! The paper evaluates on "synthetic firmware" over the open-source
//! peripheral corpus; these builders generate the HS32 assembly for each
//! experiment (E3 analysis speed, E4 consistency, E5 bug finding) so
//! benches, examples and tests share one source of truth.

use hardsnap_bus::map::soc;

/// Prelude of `.equ` definitions for the SoC register map.
fn equates() -> String {
    format!(
        "
        .equ UART_BASE, {:#x}
        .equ TIMER_BASE, {:#x}
        .equ SHA_BASE, {:#x}
        .equ AES_BASE, {:#x}
        ",
        soc::UART_BASE,
        soc::TIMER_BASE,
        soc::SHA_BASE,
        soc::AES_BASE
    )
}

/// Firmware with `k` symbolic branches (2^k paths), where every path
/// interacts with the timer peripheral. Used by the analysis-speed
/// experiment (E3): lots of forks, hardware interaction on every path.
///
/// Each path programs a path-specific timer LOAD value and asserts the
/// readback matches — which only holds if the hardware context the path
/// sees is its own.
pub fn branching_firmware(k: u32) -> String {
    assert!(k >= 1 && k <= 16, "k branches in 1..=16");
    let mut body = String::new();
    // r10 = accumulated path id.
    body.push_str("    movi r10, #0\n");
    for i in 0..k {
        body.push_str(&format!(
            "    sym r1, #{i}
    movi r2, #0
    beq r1, r2, skip{i}
    ori r10, r10, #{}
skip{i}:
",
            1 << i
        ));
    }
    // Program the timer with 1000 + path id, read it back, assert match.
    format!(
        "{equ}
        .org 0x100
        entry:
{body}
            li r3, TIMER_BASE
            addi r4, r10, #1000
            stw r4, [r3, #0x04]     ; LOAD (also loads VALUE)
            ldw r5, [r3, #0x08]     ; VALUE readback
            sub r6, r5, r4
            movi r7, #1
            beq r6, r0, value_ok
            movi r7, #0
        value_ok:
            assert r7               ; hardware context must be private
            halt
        ",
        equ = equates(),
        body = body
    )
}

/// Firmware performing `n` device-initialization writes before a single
/// symbolic branch. Models the expensive INIT sequence of paper Fig. 1
/// (cf. the 8800-I/O camera-driver init the paper cites): reboot-based
/// consistency must replay all of it on every context switch.
pub fn init_heavy_firmware(n_init_writes: u32, k_branches: u32) -> String {
    let mut init = String::new();
    init.push_str("    li r3, TIMER_BASE\n");
    for i in 0..n_init_writes {
        // Alternate prescaler writes: harmless, realistic config churn.
        init.push_str(&format!(
            "    movi r4, #{}\n    stw r4, [r3, #0x10]\n",
            i % 7 + 1
        ));
    }
    let mut body = String::new();
    for i in 0..k_branches {
        body.push_str(&format!(
            "    sym r1, #{i}
    movi r2, #0
    beq r1, r2, sk{i}
    addi r10, r10, #1
sk{i}:
"
        ));
    }
    format!(
        "{equ}
        .org 0x100
        entry:
            movi r10, #0
{init}
{body}
            halt
        ",
        equ = equates(),
        init = init,
        body = body
    )
}

/// The paper's Fig. 1 use case: two execution paths each request a
/// different computation (REQ A / REQ B) from the same accelerator and
/// read back the result. With private hardware snapshots both paths
/// observe their own digest; with shared hardware the interleaved
/// requests corrupt each other.
///
/// Each path loads a distinct block into the SHA accelerator, starts an
/// `init` digest, polls for completion and stores digest word 0 to RAM
/// at `0x2000` (+ path * 4). The harness compares both stored words with
/// golden SHA-256 results.
pub fn fig1_firmware() -> String {
    format!(
        "{equ}
        .org 0x100
        entry:
            li r3, SHA_BASE
            sym r1, #0
            movi r2, #0
            beq r1, r2, path_b
        ; ---- REQ A: digest of block word0 = 0xAAAA0001
        path_a:
            li r4, 0xAAAA0001
            stw r4, [r3, #0x40]
            movi r5, #1
            stw r5, [r3, #0x00]      ; CTRL.init
        wait_a:
            ldw r6, [r3, #0x04]
            andi r6, r6, #2
            beq r6, r0, wait_a
            ldw r7, [r3, #0x80]      ; digest word 0
            li r8, 0x2000
            stw r7, [r8]
            halt
        ; ---- REQ B: digest of block word0 = 0xBBBB0002
        path_b:
            li r4, 0xBBBB0002
            stw r4, [r3, #0x40]
            movi r5, #1
            stw r5, [r3, #0x00]
        wait_b:
            ldw r6, [r3, #0x04]
            andi r6, r6, #2
            beq r6, r0, wait_b
            ldw r7, [r3, #0x80]
            li r8, 0x2004
            stw r7, [r8]
            halt
        ",
        equ = equates()
    )
}

/// RAM addresses where [`fig1_firmware`] stores the observed digests.
pub const FIG1_RESULT_A: u32 = 0x2000;
/// See [`FIG1_RESULT_A`].
pub const FIG1_RESULT_B: u32 = 0x2004;

/// Identifier of a planted bug for the bug-finding experiment (E5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlantedBug {
    /// Off-by-one bounds check on a symbolic length lets a copy loop
    /// write one word past the end of RAM (unmapped-access detector).
    LengthOverflow,
    /// A magic symbolic command, combined with a value read back from
    /// the timer, reaches a `fail` marker — requires correct hardware
    /// interaction to diagnose.
    MagicCommand,
    /// The timer-IRQ handler sets a flag; a magic input while the flag
    /// is set detonates. Requires interrupt delivery to reach.
    IrqGated,
}

impl PlantedBug {
    /// All planted bugs.
    pub fn all() -> [PlantedBug; 3] {
        [
            PlantedBug::LengthOverflow,
            PlantedBug::MagicCommand,
            PlantedBug::IrqGated,
        ]
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PlantedBug::LengthOverflow => "length-overflow",
            PlantedBug::MagicCommand => "magic-command",
            PlantedBug::IrqGated => "irq-gated",
        }
    }
}

/// Firmware containing the selected planted bug.
pub fn vulnerable_firmware(bug: PlantedBug) -> String {
    match bug {
        PlantedBug::LengthOverflow => format!(
            "{equ}
            .org 0x100
            entry:
                sym r1, #0           ; attacker-controlled length
                andi r1, r1, #0x1F   ; 0..31
                movi r2, #17
                ; BUG: should reject len > 16, rejects only len > 17
                bltu r2, r1, reject
                ; copy loop: writes r1 words starting at RAM_END-64
                li r3, 0xFFC0        ; 64 bytes below the 64KiB top
                movi r4, #0
            copy:
                beq r4, r1, done
                stw r4, [r3]
                addi r3, r3, #4
                addi r4, r4, #1
                j copy
            reject:
                halt
            done:
                halt
            ",
            equ = equates()
        ),
        PlantedBug::MagicCommand => format!(
            "{equ}
            .org 0x100
            entry:
                ; program the timer and let it run a known number of ticks
                li r3, TIMER_BASE
                movi r4, #1000
                stw r4, [r3, #0x04]   ; LOAD
                movi r4, #1
                stw r4, [r3, #0x00]   ; CTRL.enable
                ldw r5, [r3, #0x08]   ; VALUE: deterministic under
                                      ; consistent hardware
                sym r1, #0            ; attacker command word
                xor r6, r1, r5        ; depends on hardware readback
                li r7, 0xDEAD0000
                bne r6, r7, ok
                fail                  ; reachable iff r1 == 0xDEAD0000 ^ r5
            ok:
                halt
            ",
            equ = equates()
        ),
        PlantedBug::IrqGated => format!(
            "{equ}
            .org 0x0
            .word 0, timer_isr, 0, 0, 0, 0, 0, 0
            .org 0x100
            entry:
                li r3, TIMER_BASE
                movi r4, #2
                stw r4, [r3, #0x04]   ; LOAD = 2 (fires quickly)
                movi r4, #7
                stw r4, [r3, #0x00]   ; enable | irq_en | oneshot
                movi r9, #0           ; flag (init BEFORE unmasking)
                sei
                nop
                nop
                nop
                nop
                nop
                nop
                cli
                sym r1, #0
                movi r2, #0
                beq r9, r2, no_irq
                li r7, 0x00BADBAD
                bne r1, r7, no_irq
                fail                  ; needs flag set by the ISR + magic
            no_irq:
                halt
            timer_isr:
                movi r9, #1
                ; acknowledge: W1C expired
                movi r8, #1
                stw r8, [r3, #0x0c]
                iret
            ",
            equ = equates()
        ),
    }
}

/// A UART command-parser firmware for the fuzzing experiment (E8): reads
/// bytes from the symbolic input, interprets a tiny command protocol and
/// contains one crashing command sequence.
pub fn uart_parser_firmware() -> String {
    format!(
        "{equ}
        .org 0x100
        entry:
            li r3, UART_BASE
            movi r4, #4
            stw r4, [r3, #0x10]      ; BAUDDIV
            sym r1, #0               ; command byte 1
            andi r1, r1, #0xFF
            sym r2, #1               ; command byte 2
            andi r2, r2, #0xFF
            ; 'W' 0xNN: transmit byte NN
            movi r5, #0x57
            bne r1, r5, not_write
            stw r2, [r3, #0x00]      ; TXDATA
            halt
        not_write:
            ; 'R': read RXDATA
            movi r5, #0x52
            bne r1, r5, not_read
            ldw r6, [r3, #0x04]
            halt
        not_read:
            ; 'X' 0x42: the crash
            movi r5, #0x58
            bne r1, r5, unknown
            movi r5, #0x42
            bne r2, r5, unknown
            fail
        unknown:
            halt
        ",
        equ = equates()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_firmware_assembles() {
        for k in [1, 4, 8] {
            hardsnap_isa::assemble(&branching_firmware(k)).unwrap();
        }
        hardsnap_isa::assemble(&init_heavy_firmware(50, 3)).unwrap();
        hardsnap_isa::assemble(&fig1_firmware()).unwrap();
        for bug in PlantedBug::all() {
            hardsnap_isa::assemble(&vulnerable_firmware(bug)).unwrap();
        }
        hardsnap_isa::assemble(&uart_parser_firmware()).unwrap();
    }

    #[test]
    #[should_panic(expected = "k branches")]
    fn branch_count_is_validated() {
        branching_firmware(0);
    }
}
