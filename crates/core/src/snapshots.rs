//! The snapshotting controller's snapshot store (paper §III-C).
//!
//! Snapshots are "identified by a unique identifier"; the store is the
//! persistent side of the controller (the paper's checkpoint files /
//! snapshot SRAM). It is shared (`Arc` + locks) so diagnostic tooling
//! can inspect snapshots while an analysis runs.
//!
//! Two storage representations are supported:
//!
//! * **full** images — one complete [`HwSnapshot`] per id;
//! * **delta** images — a [`SnapshotDelta`] against an immutable base
//!   image. Fork-heavy analyses produce many snapshots that differ from
//!   their fork point by a handful of registers, so delta storage cuts
//!   the controller's memory footprint dramatically (measured by the
//!   `exp_ablation` harness).
//!
//! ## Concurrency
//!
//! The store is **lock-sharded**: ids map to `id % N` shards, each
//! behind its own `RwLock`, so the N workers of the parallel engine do
//! not serialize on one store-wide lock. No operation ever holds two
//! shard guards at once — delta chains are walked one locked hop at a
//! time — which keeps the sharding deadlock-free by construction. Id
//! allocation and byte accounting are lock-free atomics.
//!
//! ## Pinning
//!
//! Delta bases are refcounted. [`SnapshotStore::remove`] on a base that
//! live deltas still reference is *deferred*: the entry is marked
//! hidden and reclaimed when the last dependent goes away, so normal
//! operation can never break a delta chain. The unconditional
//! [`SnapshotStore::purge`] models external corruption/eviction and is
//! what makes the [`SnapshotError::MissingBase`] path testable.

use hardsnap_bus::{HwSnapshot, SnapshotDelta};
use hardsnap_util::sync::{ShardedRwLock, WatermarkCounter};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A snapshot identifier.
pub type SnapId = u64;

/// Number of independently locked shards.
const SHARDS: usize = 16;

/// Errors from snapshot lookup/reconstruction.
///
/// A delta entry is only usable while its base image is alive; pinning
/// prevents the store itself from evicting a referenced base, but a
/// [`SnapshotStore::purge`] (the external-corruption model) can still
/// break a chain, and lookups then report exactly which link is broken
/// instead of panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// No entry under this id.
    Missing(SnapId),
    /// A delta entry (somewhere along `id`'s chain) references a base
    /// that no longer exists.
    MissingBase {
        /// The id whose reconstruction failed.
        id: SnapId,
        /// The missing base id the chain references.
        base: SnapId,
    },
    /// The delta no longer applies to its base image (shape mismatch —
    /// indicates store corruption).
    Corrupt {
        /// The id whose delta failed to apply.
        id: SnapId,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Missing(id) => write!(f, "snapshot {id} does not exist"),
            SnapshotError::MissingBase { id, base } => {
                write!(f, "snapshot {id} is a delta against missing base {base}")
            }
            SnapshotError::Corrupt { id } => {
                write!(f, "snapshot {id}: delta does not apply to its base")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

#[derive(Debug)]
enum Entry {
    Full(HwSnapshot),
    Delta { base: SnapId, delta: SnapshotDelta },
}

impl Entry {
    fn byte_size(&self) -> usize {
        match self {
            Entry::Full(s) => s.byte_size(),
            Entry::Delta { delta, .. } => delta.byte_size(),
        }
    }
}

#[derive(Debug)]
struct Stored {
    entry: Entry,
    /// Live delta entries referencing this id as their base (pin count).
    refs: usize,
    /// Kept alive only by `refs` (no direct owner): either registered
    /// via [`SnapshotStore::insert_base`], or a deferred
    /// [`SnapshotStore::remove`].
    hidden: bool,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<SnapId, Stored>,
}

/// Always-on store activity counters (relaxed atomics — cheap enough to
/// keep unconditionally; the telemetry layer folds them into its
/// snapshot at the end of a run).
#[derive(Debug, Default)]
struct StoreCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    deferred: AtomicU64,
}

/// Point-in-time copy of the store's activity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that produced a snapshot.
    pub hits: u64,
    /// Lookups that failed (missing id or broken delta chain).
    pub misses: u64,
    /// Entries actually reclaimed by `remove`/`purge`.
    pub evictions: u64,
    /// `remove` calls deferred because live deltas pin the entry.
    pub deferred: u64,
}

#[derive(Debug)]
struct StoreInner {
    shards: ShardedRwLock<Shard>,
    next: AtomicU64,
    bytes: WatermarkCounter,
    counters: StoreCounters,
}

/// Thread-safe, lock-sharded snapshot store.
#[derive(Clone, Debug)]
pub struct SnapshotStore {
    inner: Arc<StoreInner>,
}

impl Default for SnapshotStore {
    fn default() -> Self {
        SnapshotStore {
            inner: Arc::new(StoreInner {
                shards: ShardedRwLock::new(SHARDS),
                next: AtomicU64::new(0),
                bytes: WatermarkCounter::new(),
                counters: StoreCounters::default(),
            }),
        }
    }
}

impl SnapshotStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SnapshotStore::default()
    }

    fn alloc_id(&self) -> SnapId {
        self.inner.next.fetch_add(1, Ordering::Relaxed)
    }

    fn install(&self, id: SnapId, entry: Entry, hidden: bool) {
        let sz = entry.byte_size();
        self.inner.shards.shard_for(id).write().entries.insert(
            id,
            Stored {
                entry,
                refs: 0,
                hidden,
            },
        );
        self.inner.bytes.add(sz);
    }

    /// Resolves `id` by walking its delta chain, locking one shard at a
    /// time (never two at once).
    fn try_resolve(&self, id: SnapId) -> Result<HwSnapshot, SnapshotError> {
        let mut chain: Vec<(SnapId, SnapshotDelta)> = Vec::new();
        let mut cur = id;
        let base_snap = loop {
            let shard = self.inner.shards.shard_for(cur);
            let g = shard.read();
            match g.entries.get(&cur) {
                None => {
                    return Err(match chain.last() {
                        None => SnapshotError::Missing(id),
                        Some(&(broken, _)) => SnapshotError::MissingBase {
                            id: broken,
                            base: cur,
                        },
                    });
                }
                Some(stored) => match &stored.entry {
                    Entry::Full(s) => break s.clone(),
                    Entry::Delta { base, delta } => {
                        let b = *base;
                        chain.push((cur, delta.clone()));
                        drop(g);
                        cur = b;
                    }
                },
            }
        };
        let mut snap = base_snap;
        for (eid, delta) in chain.iter().rev() {
            snap = delta
                .apply(&snap)
                .map_err(|_| SnapshotError::Corrupt { id: *eid })?;
        }
        Ok(snap)
    }

    /// Increments the pin count of `base`; false if `base` is gone.
    fn pin_base(&self, base: SnapId) -> bool {
        let shard = self.inner.shards.shard_for(base);
        let mut g = shard.write();
        match g.entries.get_mut(&base) {
            Some(stored) => {
                stored.refs += 1;
                true
            }
            None => false,
        }
    }

    /// Decrements the pin count of `base`, reclaiming hidden entries
    /// whose last dependent went away (iterating down chains).
    fn release_base(&self, mut base: SnapId) {
        loop {
            let shard = self.inner.shards.shard_for(base);
            let mut g = shard.write();
            let Some(stored) = g.entries.get_mut(&base) else {
                return;
            };
            stored.refs = stored.refs.saturating_sub(1);
            if stored.refs == 0 && stored.hidden {
                let stored = g.entries.remove(&base).expect("entry just seen");
                drop(g);
                self.inner.bytes.sub(stored.entry.byte_size());
                if let Entry::Delta { base: next, .. } = stored.entry {
                    base = next;
                    continue;
                }
            }
            return;
        }
    }

    /// Stores a full snapshot under a fresh id.
    pub fn insert(&self, snap: HwSnapshot) -> SnapId {
        let id = self.alloc_id();
        self.install(id, Entry::Full(snap), false);
        id
    }

    /// Stores `snap` as a delta against the (immutable) snapshot under
    /// `base`; falls back to full storage if the delta would not save
    /// space or the shapes differ. Pins `base` so it outlives its
    /// dependents.
    pub fn insert_delta(&self, base: SnapId, snap: HwSnapshot) -> SnapId {
        let id = self.alloc_id();
        let delta = self
            .try_resolve(base)
            .ok()
            .and_then(|b| SnapshotDelta::between(&b, &snap).ok())
            .filter(|d| d.byte_size() < snap.byte_size());
        let entry = match delta {
            // Pin before installing the dependent: a concurrent remove
            // of `base` then defers instead of breaking the chain.
            Some(delta) if self.pin_base(base) => Entry::Delta { base, delta },
            _ => Entry::Full(snap),
        };
        self.install(id, entry, false);
        id
    }

    /// Stores a delta the target emitted natively (already expressed
    /// against the snapshot under `base`) — no O(design) re-diff, the
    /// store cost is O(delta). Pins `base`; `None` if `base` is gone
    /// (the caller must fall back to materializing a full image).
    pub fn insert_delta_native(&self, base: SnapId, delta: SnapshotDelta) -> Option<SnapId> {
        if !self.pin_base(base) {
            return None;
        }
        let id = self.alloc_id();
        self.install(id, Entry::Delta { base, delta }, false);
        Some(id)
    }

    /// Overwrites the snapshot under `id` with a natively-emitted delta
    /// against `base` — the O(delta) counterpart of
    /// [`SnapshotStore::update`]. Pins the new base and releases the
    /// entry's previous base (if its old representation was a delta);
    /// false if `base` is gone and the caller must fall back.
    pub fn update_delta_native(&self, id: SnapId, base: SnapId, delta: SnapshotDelta) -> bool {
        if !self.pin_base(base) {
            return false;
        }
        let new_entry = Entry::Delta { base, delta };
        let new_sz = new_entry.byte_size();
        let (old_sz, released) = {
            let mut g = self.inner.shards.shard_for(id).write();
            match g.entries.get_mut(&id) {
                Some(stored) => {
                    let old = stored.entry.byte_size();
                    // The old representation's pin is dropped after the
                    // new pin is in place, so a same-base update nets
                    // out to one held pin.
                    let released = match &stored.entry {
                        Entry::Delta { base: b, .. } => Some(*b),
                        Entry::Full(_) => None,
                    };
                    stored.entry = new_entry;
                    (old, released)
                }
                None => {
                    g.entries.insert(
                        id,
                        Stored {
                            entry: new_entry,
                            refs: 0,
                            hidden: false,
                        },
                    );
                    (0, None)
                }
            }
        };
        self.inner.bytes.add(new_sz);
        self.inner.bytes.sub(old_sz);
        if let Some(b) = released {
            self.release_base(b);
        }
        true
    }

    /// Registers a snapshot that exists only to serve as a delta base
    /// (freed automatically when the last dependent goes away).
    pub fn insert_base(&self, snap: HwSnapshot) -> SnapId {
        let id = self.alloc_id();
        self.install(id, Entry::Full(snap), true);
        id
    }

    /// Size a delta of `snap` against the snapshot under `base` would
    /// take, or `None` when the shapes are incompatible. Lets callers
    /// decide whether an existing base is still a good anchor.
    pub fn delta_size_vs(&self, base: SnapId, snap: &HwSnapshot) -> Option<usize> {
        let b = self.try_resolve(base).ok()?;
        SnapshotDelta::between(&b, snap).ok().map(|d| d.byte_size())
    }

    /// Overwrites the snapshot under `id` (the paper's `UpdateState`),
    /// preserving the entry's representation (delta entries stay deltas
    /// against their base) and keeping the pin count intact.
    pub fn update(&self, id: SnapId, snap: HwSnapshot) {
        let repr_base = {
            let g = self.inner.shards.shard_for(id).read();
            match g.entries.get(&id) {
                Some(Stored {
                    entry: Entry::Delta { base, .. },
                    ..
                }) => Some(*base),
                _ => None,
            }
        };
        let (new_entry, released_base) = match repr_base {
            Some(base) => {
                let delta = self
                    .try_resolve(base)
                    .ok()
                    .and_then(|b| SnapshotDelta::between(&b, &snap).ok())
                    .filter(|d| d.byte_size() < snap.byte_size());
                match delta {
                    Some(delta) => (Entry::Delta { base, delta }, None),
                    None => (Entry::Full(snap), Some(base)),
                }
            }
            None => (Entry::Full(snap), None),
        };
        let new_sz = new_entry.byte_size();
        let old_sz = {
            let mut g = self.inner.shards.shard_for(id).write();
            match g.entries.get_mut(&id) {
                Some(stored) => {
                    let old = stored.entry.byte_size();
                    stored.entry = new_entry;
                    old
                }
                None => {
                    g.entries.insert(
                        id,
                        Stored {
                            entry: new_entry,
                            refs: 0,
                            hidden: false,
                        },
                    );
                    0
                }
            }
        };
        self.inner.bytes.add(new_sz);
        self.inner.bytes.sub(old_sz);
        if let Some(base) = released_base {
            self.release_base(base);
        }
    }

    /// Records a lookup outcome in the activity counters.
    fn note_lookup(&self, hit: bool) {
        let c = &self.inner.counters;
        if hit {
            c.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            c.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fetches a snapshot by id (reconstructing deltas transparently).
    pub fn get(&self, id: SnapId) -> Option<HwSnapshot> {
        let got = self.try_resolve(id).ok();
        self.note_lookup(got.is_some());
        got
    }

    /// Like [`SnapshotStore::get`], but reports *why* a snapshot cannot
    /// be produced: missing id, delta chain with an evicted base, or a
    /// delta that no longer applies.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] naming the broken link of the chain.
    pub fn try_get(&self, id: SnapId) -> Result<HwSnapshot, SnapshotError> {
        let got = self.try_resolve(id);
        self.note_lookup(got.is_ok());
        got
    }

    /// Drops a snapshot (state terminated); frees its delta base when it
    /// was the last dependent. Removal of an id that is itself a pinned
    /// delta base is **deferred**: the entry is hidden and reclaimed
    /// once its last dependent goes away, so the chain never breaks.
    pub fn remove(&self, id: SnapId) -> Option<HwSnapshot> {
        let resolved = self.try_resolve(id).ok();
        let freed_base = {
            let mut g = self.inner.shards.shard_for(id).write();
            let stored = g.entries.get_mut(&id)?;
            if stored.refs > 0 {
                // Deferred: live deltas still need this image.
                stored.hidden = true;
                drop(g);
                self.inner.counters.deferred.fetch_add(1, Ordering::Relaxed);
                return resolved;
            }
            let stored = g.entries.remove(&id).expect("entry just seen");
            drop(g);
            self.inner.bytes.sub(stored.entry.byte_size());
            self.inner
                .counters
                .evictions
                .fetch_add(1, Ordering::Relaxed);
            match stored.entry {
                Entry::Delta { base, .. } => Some(base),
                Entry::Full(_) => None,
            }
        };
        if let Some(base) = freed_base {
            self.release_base(base);
        }
        resolved
    }

    /// Unconditionally deletes `id`, **ignoring pins** — dependents are
    /// left with a broken chain (subsequent lookups report
    /// [`SnapshotError::MissingBase`]). This models external eviction
    /// or corruption of the backing storage; analyses never call it.
    pub fn purge(&self, id: SnapId) -> Option<HwSnapshot> {
        let resolved = self.try_resolve(id).ok();
        let freed_base = {
            let mut g = self.inner.shards.shard_for(id).write();
            let stored = g.entries.remove(&id)?;
            drop(g);
            self.inner.bytes.sub(stored.entry.byte_size());
            self.inner
                .counters
                .evictions
                .fetch_add(1, Ordering::Relaxed);
            match stored.entry {
                Entry::Delta { base, .. } => Some(base),
                Entry::Full(_) => None,
            }
        };
        if let Some(base) = freed_base {
            self.release_base(base);
        }
        resolved
    }

    /// Number of live entries (including hidden bases).
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().entries.len())
            .sum()
    }

    /// True if no snapshots are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current bytes of stored images (full + delta representations).
    pub fn total_bytes(&self) -> usize {
        self.inner.bytes.current()
    }

    /// High-water mark of [`SnapshotStore::total_bytes`].
    pub fn peak_bytes(&self) -> usize {
        self.inner.bytes.peak()
    }

    /// Point-in-time copy of the store's activity counters.
    pub fn stats(&self) -> StoreStats {
        let c = &self.inner.counters;
        StoreStats {
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            deferred: c.deferred.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardsnap_bus::RegImage;

    fn snap(v: u64) -> HwSnapshot {
        HwSnapshot {
            design: "d".into(),
            cycle: v,
            regs: (0..32)
                .map(|i| RegImage {
                    name: format!("r{i}"),
                    width: 32,
                    bits: i * 11 + v,
                })
                .collect(),
            mems: vec![],
        }
    }

    #[test]
    fn insert_get_update_remove() {
        let store = SnapshotStore::new();
        let a = store.insert(snap(1));
        let b = store.insert(snap(2));
        assert_ne!(a, b);
        assert_eq!(store.get(a).unwrap().reg("r0"), Some(1));
        store.update(a, snap(9));
        assert_eq!(store.get(a).unwrap().reg("r0"), Some(9));
        assert_eq!(store.len(), 2);
        assert!(store.remove(b).is_some());
        assert_eq!(store.len(), 1);
        assert!(store.get(b).is_none());
    }

    #[test]
    fn delta_entries_resolve_and_save_space() {
        let store = SnapshotStore::new();
        let base_snap = snap(5);
        let base = store.insert_base(base_snap.clone());
        let bytes_after_base = store.total_bytes();
        // A snapshot differing in one register.
        let mut child_snap = base_snap.clone();
        child_snap.regs[7].bits = 0xfeed;
        let child = store.insert_delta(base, child_snap.clone());
        assert_eq!(store.get(child).unwrap(), child_snap);
        assert!(
            store.total_bytes() - bytes_after_base < base_snap.byte_size() / 4,
            "delta must be small"
        );
    }

    #[test]
    fn hidden_base_freed_with_last_dependent() {
        let store = SnapshotStore::new();
        let base_snap = snap(5);
        let base = store.insert_base(base_snap.clone());
        let c1 = store.insert_delta(base, base_snap.clone());
        let c2 = store.insert_delta(base, base_snap.clone());
        assert_eq!(store.len(), 3);
        store.remove(c1);
        assert_eq!(store.len(), 2, "base still referenced by c2");
        store.remove(c2);
        assert_eq!(store.len(), 0, "hidden base freed with last dependent");
        assert_eq!(store.total_bytes(), 0);
    }

    #[test]
    fn update_of_delta_entry_stays_compact() {
        let store = SnapshotStore::new();
        let base_snap = snap(5);
        let base = store.insert_base(base_snap.clone());
        let mut v1 = base_snap.clone();
        v1.regs[0].bits = 1;
        let id = store.insert_delta(base, v1);
        let mut v2 = base_snap.clone();
        v2.regs[1].bits = 2;
        v2.regs[2].bits = 3;
        store.update(id, v2.clone());
        assert_eq!(store.get(id).unwrap(), v2);
        assert!(store.total_bytes() < 2 * base_snap.byte_size());
    }

    #[test]
    fn incompatible_delta_falls_back_to_full() {
        let store = SnapshotStore::new();
        let base = store.insert_base(snap(1));
        let mut other = snap(2);
        other.design = "different".into();
        let id = store.insert_delta(base, other.clone());
        assert_eq!(store.get(id).unwrap(), other);
    }

    #[test]
    fn byte_accounting_and_peak() {
        let store = SnapshotStore::new();
        let a = store.insert(snap(1));
        let peak1 = store.peak_bytes();
        assert!(peak1 > 0);
        store.remove(a);
        assert_eq!(store.total_bytes(), 0);
        assert_eq!(store.peak_bytes(), peak1, "peak is a high-water mark");
        assert!(store.is_empty());
    }

    #[test]
    fn store_stats_track_activity() {
        let store = SnapshotStore::new();
        let a = store.insert(snap(1));
        assert!(store.get(a).is_some());
        assert!(store.get(999).is_none());
        let b = store.insert(snap(2));
        let mut child = snap(2);
        child.regs[0].bits = 77;
        let c = store.insert_delta(b, child);
        store.remove(b); // deferred: c pins it
        store.remove(c); // evicts c, then reclaims hidden b
        store.remove(a);
        let s = store.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.deferred, 1);
        assert_eq!(s.evictions, 2, "c and a evicted via remove()");
    }

    #[test]
    fn remove_of_referenced_base_is_deferred_not_destructive() {
        // The pinning regression: a base with live dependents survives
        // "eviction pressure" (remove calls) until the last dependent
        // goes away — delta chains can never break via remove().
        let store = SnapshotStore::new();
        let base_snap = snap(5);
        let base = store.insert(base_snap.clone());
        let mut child_snap = base_snap.clone();
        child_snap.regs[3].bits = 0xBAD;
        let child = store.insert_delta(base, child_snap.clone());
        // Eviction pressure: repeated removes of the referenced base.
        for _ in 0..3 {
            store.remove(base);
        }
        assert_eq!(
            store.try_get(child).unwrap(),
            child_snap,
            "pinned base survives, chain intact"
        );
        assert!(
            store.get(base).is_some(),
            "base image still resolvable while pinned"
        );
        // The base is reclaimed with its last dependent.
        store.remove(child);
        assert_eq!(store.len(), 0);
        assert_eq!(store.total_bytes(), 0);
    }

    #[test]
    fn delta_with_purged_base_is_an_error_not_a_panic() {
        let store = SnapshotStore::new();
        let base_snap = snap(5);
        let base = store.insert(base_snap.clone());
        let mut child_snap = base_snap.clone();
        child_snap.regs[3].bits = 0xBAD;
        let child = store.insert_delta(base, child_snap.clone());
        assert_eq!(store.try_get(child).unwrap(), child_snap);
        // purge() bypasses pinning — the external-corruption model.
        store.purge(base);
        assert_eq!(store.get(child), None, "unrecoverable, but no panic");
        assert_eq!(
            store.try_get(child),
            Err(SnapshotError::MissingBase { id: child, base }),
        );
    }

    #[test]
    fn delta_chain_reports_first_broken_link() {
        let store = SnapshotStore::new();
        let s0 = snap(1);
        let a = store.insert(s0.clone());
        let mut s1 = s0.clone();
        s1.regs[0].bits = 11;
        let b = store.insert_delta(a, s1.clone());
        let mut s2 = s1.clone();
        s2.regs[1].bits = 22;
        let c = store.insert_delta(b, s2.clone());
        assert_eq!(store.try_get(c).unwrap(), s2);
        store.purge(a);
        // c -> b (alive delta) -> a (gone): the broken link is b's base.
        assert_eq!(
            store.try_get(c),
            Err(SnapshotError::MissingBase { id: b, base: a }),
        );
        assert_eq!(store.try_get(999), Err(SnapshotError::Missing(999)));
    }

    #[test]
    fn clones_share_the_store() {
        let store = SnapshotStore::new();
        let other = store.clone();
        let id = store.insert(snap(7));
        assert_eq!(other.get(id).unwrap().cycle, 7);
    }

    #[test]
    fn concurrent_workers_hammering_the_store_stay_consistent() {
        use hardsnap_util::sync::scope;
        let store = SnapshotStore::new();
        let base = store.insert_base(snap(0));
        scope(|s| {
            for w in 0..4u64 {
                let store = store.clone();
                s.spawn(move || {
                    for i in 0..50u64 {
                        let mut img = snap(0);
                        img.regs[(w as usize) % 32].bits = i;
                        let id = store.insert_delta(base, img.clone());
                        assert_eq!(store.get(id).unwrap(), img);
                        store.update(id, snap(w * 100 + i));
                        assert_eq!(store.get(id).unwrap().cycle, w * 100 + i);
                        store.remove(id);
                    }
                });
            }
        });
        // All workers' entries cleaned up; only the hidden base remains
        // (it had no dependents left), or was already reclaimed.
        assert!(store.len() <= 1);
    }
}
