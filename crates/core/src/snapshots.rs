//! The snapshotting controller's snapshot store (paper §III-C).
//!
//! Snapshots are "identified by a unique identifier"; the store is the
//! persistent side of the controller (the paper's checkpoint files /
//! snapshot SRAM). It is shared (`Arc` + lock) so diagnostic tooling can
//! inspect snapshots while an analysis runs.
//!
//! Two storage representations are supported:
//!
//! * **full** images — one complete [`HwSnapshot`] per id;
//! * **delta** images — a [`SnapshotDelta`] against an immutable base
//!   image. Fork-heavy analyses produce many snapshots that differ from
//!   their fork point by a handful of registers, so delta storage cuts
//!   the controller's memory footprint dramatically (measured by the
//!   `exp_ablation` harness).

use hardsnap_bus::{HwSnapshot, SnapshotDelta};
use hardsnap_util::sync::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A snapshot identifier.
pub type SnapId = u64;

/// Errors from snapshot lookup/reconstruction.
///
/// A delta entry is only usable while its base image is alive; if the
/// base was evicted (e.g. [`SnapshotStore::remove`] on a shared base id)
/// the dependent delta is unrecoverable and lookups report exactly
/// which link of the chain is broken instead of panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// No entry under this id.
    Missing(SnapId),
    /// A delta entry (somewhere along `id`'s chain) references a base
    /// that no longer exists.
    MissingBase {
        /// The id whose reconstruction failed.
        id: SnapId,
        /// The missing base id the chain references.
        base: SnapId,
    },
    /// The delta no longer applies to its base image (shape mismatch —
    /// indicates store corruption).
    Corrupt {
        /// The id whose delta failed to apply.
        id: SnapId,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Missing(id) => write!(f, "snapshot {id} does not exist"),
            SnapshotError::MissingBase { id, base } => {
                write!(f, "snapshot {id} is a delta against missing base {base}")
            }
            SnapshotError::Corrupt { id } => {
                write!(f, "snapshot {id}: delta does not apply to its base")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

#[derive(Debug)]
enum Entry {
    Full(HwSnapshot),
    Delta { base: SnapId, delta: SnapshotDelta },
}

impl Entry {
    fn byte_size(&self) -> usize {
        match self {
            Entry::Full(s) => s.byte_size(),
            Entry::Delta { delta, .. } => delta.byte_size(),
        }
    }
}

/// Thread-safe snapshot store.
#[derive(Clone, Debug, Default)]
pub struct SnapshotStore {
    inner: Arc<RwLock<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<SnapId, Entry>,
    /// Reference counts of ids used as delta bases; a base is freed when
    /// its count drops to zero and it has no direct owner.
    base_refs: HashMap<SnapId, usize>,
    /// Ids that exist only as delta bases (not owned by a state).
    hidden_bases: HashMap<SnapId, bool>,
    next: SnapId,
    bytes: usize,
    peak_bytes: usize,
}

impl Inner {
    fn resolve(&self, id: SnapId) -> Option<HwSnapshot> {
        self.try_resolve(id).ok()
    }

    fn try_resolve(&self, id: SnapId) -> Result<HwSnapshot, SnapshotError> {
        match self.entries.get(&id).ok_or(SnapshotError::Missing(id))? {
            Entry::Full(s) => Ok(s.clone()),
            Entry::Delta { base, delta } => {
                let base_snap = self.try_resolve(*base).map_err(|e| match e {
                    // The outermost id is what the caller asked for;
                    // point at it, naming the first broken base link.
                    SnapshotError::Missing(b) => SnapshotError::MissingBase { id, base: b },
                    other => other,
                })?;
                delta
                    .apply(&base_snap)
                    .map_err(|_| SnapshotError::Corrupt { id })
            }
        }
    }

    fn account(&mut self, delta_bytes: isize) {
        self.bytes = (self.bytes as isize + delta_bytes).max(0) as usize;
        self.peak_bytes = self.peak_bytes.max(self.bytes);
    }

    fn release_base(&mut self, base: SnapId) {
        if let Some(c) = self.base_refs.get_mut(&base) {
            *c -= 1;
            if *c == 0 {
                self.base_refs.remove(&base);
                if self.hidden_bases.remove(&base).is_some() {
                    if let Some(e) = self.entries.remove(&base) {
                        let sz = e.byte_size() as isize;
                        self.account(-sz);
                    }
                }
            }
        }
    }
}

impl SnapshotStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SnapshotStore::default()
    }

    /// Stores a full snapshot under a fresh id.
    pub fn insert(&self, snap: HwSnapshot) -> SnapId {
        let mut g = self.inner.write();
        let id = g.next;
        g.next += 1;
        let sz = snap.byte_size() as isize;
        g.entries.insert(id, Entry::Full(snap));
        g.account(sz);
        id
    }

    /// Stores `snap` as a delta against the (immutable) snapshot under
    /// `base`; falls back to full storage if the delta would not save
    /// space or the shapes differ. Marks `base` as referenced so it
    /// outlives its dependents.
    pub fn insert_delta(&self, base: SnapId, snap: HwSnapshot) -> SnapId {
        let mut g = self.inner.write();
        let id = g.next;
        g.next += 1;
        let entry = match g
            .resolve(base)
            .and_then(|b| SnapshotDelta::between(&b, &snap).ok())
        {
            Some(delta) if delta.byte_size() < snap.byte_size() => {
                *g.base_refs.entry(base).or_insert(0) += 1;
                Entry::Delta { base, delta }
            }
            _ => Entry::Full(snap),
        };
        let sz = entry.byte_size() as isize;
        g.entries.insert(id, entry);
        g.account(sz);
        id
    }

    /// Registers a snapshot that exists only to serve as a delta base
    /// (freed automatically when the last dependent goes away).
    pub fn insert_base(&self, snap: HwSnapshot) -> SnapId {
        let id = self.insert(snap);
        self.inner.write().hidden_bases.insert(id, true);
        id
    }

    /// Size a delta of `snap` against the snapshot under `base` would
    /// take, or `None` when the shapes are incompatible. Lets callers
    /// decide whether an existing base is still a good anchor.
    pub fn delta_size_vs(&self, base: SnapId, snap: &HwSnapshot) -> Option<usize> {
        let g = self.inner.read();
        let b = g.resolve(base)?;
        SnapshotDelta::between(&b, snap).ok().map(|d| d.byte_size())
    }

    /// Overwrites the snapshot under `id` (the paper's `UpdateState`),
    /// preserving the entry's representation (delta entries stay deltas
    /// against their base).
    pub fn update(&self, id: SnapId, snap: HwSnapshot) {
        let mut g = self.inner.write();
        let old_sz = g
            .entries
            .get(&id)
            .map(|e| e.byte_size() as isize)
            .unwrap_or(0);
        let new_entry = match g.entries.get(&id) {
            Some(Entry::Delta { base, .. }) => {
                let base = *base;
                match g
                    .resolve(base)
                    .and_then(|b| SnapshotDelta::between(&b, &snap).ok())
                {
                    Some(delta) if delta.byte_size() < snap.byte_size() => {
                        Entry::Delta { base, delta }
                    }
                    _ => {
                        g.release_base(base);
                        Entry::Full(snap)
                    }
                }
            }
            _ => Entry::Full(snap),
        };
        let new_sz = new_entry.byte_size() as isize;
        g.entries.insert(id, new_entry);
        g.account(new_sz - old_sz);
    }

    /// Fetches a snapshot by id (reconstructing deltas transparently).
    pub fn get(&self, id: SnapId) -> Option<HwSnapshot> {
        self.inner.read().resolve(id)
    }

    /// Like [`SnapshotStore::get`], but reports *why* a snapshot cannot
    /// be produced: missing id, delta chain with an evicted base, or a
    /// delta that no longer applies.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] naming the broken link of the chain.
    pub fn try_get(&self, id: SnapId) -> Result<HwSnapshot, SnapshotError> {
        self.inner.read().try_resolve(id)
    }

    /// Drops a snapshot (state terminated); frees its delta base when it
    /// was the last dependent.
    pub fn remove(&self, id: SnapId) -> Option<HwSnapshot> {
        let mut g = self.inner.write();
        let resolved = g.resolve(id);
        if let Some(e) = g.entries.remove(&id) {
            let sz = e.byte_size() as isize;
            g.account(-sz);
            if let Entry::Delta { base, .. } = e {
                g.release_base(base);
            }
        }
        resolved
    }

    /// Number of live entries (including hidden bases).
    pub fn len(&self) -> usize {
        self.inner.read().entries.len()
    }

    /// True if no snapshots are stored.
    pub fn is_empty(&self) -> bool {
        self.inner.read().entries.is_empty()
    }

    /// Current bytes of stored images (full + delta representations).
    pub fn total_bytes(&self) -> usize {
        self.inner.read().bytes
    }

    /// High-water mark of [`SnapshotStore::total_bytes`].
    pub fn peak_bytes(&self) -> usize {
        self.inner.read().peak_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardsnap_bus::RegImage;

    fn snap(v: u64) -> HwSnapshot {
        HwSnapshot {
            design: "d".into(),
            cycle: v,
            regs: (0..32)
                .map(|i| RegImage {
                    name: format!("r{i}"),
                    width: 32,
                    bits: i * 11 + v,
                })
                .collect(),
            mems: vec![],
        }
    }

    #[test]
    fn insert_get_update_remove() {
        let store = SnapshotStore::new();
        let a = store.insert(snap(1));
        let b = store.insert(snap(2));
        assert_ne!(a, b);
        assert_eq!(store.get(a).unwrap().reg("r0"), Some(1));
        store.update(a, snap(9));
        assert_eq!(store.get(a).unwrap().reg("r0"), Some(9));
        assert_eq!(store.len(), 2);
        assert!(store.remove(b).is_some());
        assert_eq!(store.len(), 1);
        assert!(store.get(b).is_none());
    }

    #[test]
    fn delta_entries_resolve_and_save_space() {
        let store = SnapshotStore::new();
        let base_snap = snap(5);
        let base = store.insert_base(base_snap.clone());
        let bytes_after_base = store.total_bytes();
        // A snapshot differing in one register.
        let mut child_snap = base_snap.clone();
        child_snap.regs[7].bits = 0xfeed;
        let child = store.insert_delta(base, child_snap.clone());
        assert_eq!(store.get(child).unwrap(), child_snap);
        assert!(
            store.total_bytes() - bytes_after_base < base_snap.byte_size() / 4,
            "delta must be small"
        );
    }

    #[test]
    fn hidden_base_freed_with_last_dependent() {
        let store = SnapshotStore::new();
        let base_snap = snap(5);
        let base = store.insert_base(base_snap.clone());
        let c1 = store.insert_delta(base, base_snap.clone());
        let c2 = store.insert_delta(base, base_snap.clone());
        assert_eq!(store.len(), 3);
        store.remove(c1);
        assert_eq!(store.len(), 2, "base still referenced by c2");
        store.remove(c2);
        assert_eq!(store.len(), 0, "hidden base freed with last dependent");
        assert_eq!(store.total_bytes(), 0);
    }

    #[test]
    fn update_of_delta_entry_stays_compact() {
        let store = SnapshotStore::new();
        let base_snap = snap(5);
        let base = store.insert_base(base_snap.clone());
        let mut v1 = base_snap.clone();
        v1.regs[0].bits = 1;
        let id = store.insert_delta(base, v1);
        let mut v2 = base_snap.clone();
        v2.regs[1].bits = 2;
        v2.regs[2].bits = 3;
        store.update(id, v2.clone());
        assert_eq!(store.get(id).unwrap(), v2);
        assert!(store.total_bytes() < 2 * base_snap.byte_size());
    }

    #[test]
    fn incompatible_delta_falls_back_to_full() {
        let store = SnapshotStore::new();
        let base = store.insert_base(snap(1));
        let mut other = snap(2);
        other.design = "different".into();
        let id = store.insert_delta(base, other.clone());
        assert_eq!(store.get(id).unwrap(), other);
    }

    #[test]
    fn byte_accounting_and_peak() {
        let store = SnapshotStore::new();
        let a = store.insert(snap(1));
        let peak1 = store.peak_bytes();
        assert!(peak1 > 0);
        store.remove(a);
        assert_eq!(store.total_bytes(), 0);
        assert_eq!(store.peak_bytes(), peak1, "peak is a high-water mark");
        assert!(store.is_empty());
    }

    #[test]
    fn delta_with_evicted_base_is_an_error_not_a_panic() {
        let store = SnapshotStore::new();
        let base_snap = snap(5);
        // A *visible* base (plain insert) can be removed while deltas
        // still reference it — the eviction scenario.
        let base = store.insert(base_snap.clone());
        let mut child_snap = base_snap.clone();
        child_snap.regs[3].bits = 0xBAD;
        let child = store.insert_delta(base, child_snap.clone());
        assert_eq!(store.try_get(child).unwrap(), child_snap);
        store.remove(base);
        assert_eq!(store.get(child), None, "unrecoverable, but no panic");
        assert_eq!(
            store.try_get(child),
            Err(SnapshotError::MissingBase { id: child, base }),
        );
    }

    #[test]
    fn delta_chain_reports_first_broken_link() {
        let store = SnapshotStore::new();
        let s0 = snap(1);
        let a = store.insert(s0.clone());
        let mut s1 = s0.clone();
        s1.regs[0].bits = 11;
        let b = store.insert_delta(a, s1.clone());
        let mut s2 = s1.clone();
        s2.regs[1].bits = 22;
        let c = store.insert_delta(b, s2.clone());
        assert_eq!(store.try_get(c).unwrap(), s2);
        store.remove(a);
        // c -> b (alive delta) -> a (gone): the broken link is b's base.
        assert_eq!(
            store.try_get(c),
            Err(SnapshotError::MissingBase { id: b, base: a }),
        );
        assert_eq!(store.try_get(999), Err(SnapshotError::Missing(999)));
    }

    #[test]
    fn clones_share_the_store() {
        let store = SnapshotStore::new();
        let other = store.clone();
        let id = store.insert(snap(7));
        assert_eq!(other.get(id).unwrap().cycle, 7);
    }
}
