//! The snapshotting controller's snapshot store (paper §III-C).
//!
//! Snapshots are "identified by a unique identifier"; the store is the
//! persistent side of the controller (the paper's checkpoint files /
//! snapshot SRAM). It is shared (`Arc` + locks) so diagnostic tooling
//! can inspect snapshots while an analysis runs.
//!
//! Two storage representations are supported:
//!
//! * **full** images — one complete [`HwSnapshot`] per id;
//! * **delta** images — a [`SnapshotDelta`] against an immutable base
//!   image. Fork-heavy analyses produce many snapshots that differ from
//!   their fork point by a handful of registers, so delta storage cuts
//!   the controller's memory footprint dramatically (measured by the
//!   `exp_ablation` harness).
//!
//! ## Tiering
//!
//! The store is additionally **RAM-budgeted**: when a resident-byte
//! budget is configured ([`SnapshotStore::set_mem_budget`], surfaced as
//! `EngineConfig::snapshot_mem_budget` / `analyze
//! --snapshot-mem-budget`), admitting a new image first spills the
//! least-recently-used cold entries to a spool directory — serialized in
//! the checksummed TLV container of `hardsnap_bus::persist` — until the
//! newcomer fits. Spilled entries are paged back in transparently on
//! lookup (`get`/`try_get`), so the budget bounds the *resident* high
//! water mark while the id space and delta-chain semantics stay exactly
//! as if everything were in RAM. Entries that are refcounted as delta
//! bases (or hidden bases) are never spill candidates, so a base can
//! never leave RAM out from under a delta mid-operation; spill/page I/O
//! failures are typed [`SnapshotError`]s (or soft-fail the spill,
//! leaving the entry resident), never panics.
//!
//! ## Concurrency
//!
//! The store is **lock-sharded**: ids map to `id % N` shards, each
//! behind its own `RwLock`, so the N workers of the parallel engine do
//! not serialize on one store-wide lock. No operation ever holds two
//! shard guards at once — delta chains are walked one locked hop at a
//! time, and spilling serializes the victim *outside* any lock and
//! re-checks (via a per-entry generation counter) before swapping —
//! which keeps the sharding deadlock-free by construction. Id
//! allocation and byte accounting are lock-free atomics; budget
//! admission serializes on one small gate mutex that is never held
//! across I/O or another lock.
//!
//! ## Pinning
//!
//! Delta bases are refcounted. [`SnapshotStore::remove`] on a base that
//! live deltas still reference is *deferred*: the entry is marked
//! hidden and reclaimed when the last dependent goes away, so normal
//! operation can never break a delta chain. The unconditional
//! [`SnapshotStore::purge`] models external corruption/eviction and is
//! what makes the [`SnapshotError::MissingBase`] path testable.

use hardsnap_bus::persist::{write_delta, write_full, PersistedImage};
use hardsnap_bus::{HwSnapshot, SnapshotDelta};
use hardsnap_util::sync::{Mutex, ShardedRwLock, WatermarkCounter};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A snapshot identifier.
pub type SnapId = u64;

/// Number of independently locked shards.
const SHARDS: usize = 16;

/// Errors from snapshot lookup/reconstruction.
///
/// A delta entry is only usable while its base image is alive; pinning
/// prevents the store itself from evicting a referenced base, but a
/// [`SnapshotStore::purge`] (the external-corruption model) can still
/// break a chain, and lookups then report exactly which link is broken
/// instead of panicking. Spilled entries add an I/O failure mode: a
/// spool file that cannot be read back (or fails its checksums) is
/// reported as [`SnapshotError::Spill`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// No entry under this id.
    Missing(SnapId),
    /// A delta entry (somewhere along `id`'s chain) references a base
    /// that no longer exists.
    MissingBase {
        /// The id whose reconstruction failed.
        id: SnapId,
        /// The missing base id the chain references.
        base: SnapId,
    },
    /// The delta no longer applies to its base image (shape mismatch —
    /// indicates store corruption).
    Corrupt {
        /// The id whose delta failed to apply.
        id: SnapId,
    },
    /// A spilled entry could not be paged back in from the spool
    /// directory (I/O failure, or the spool file failed its checksums).
    Spill {
        /// The id whose page-in failed.
        id: SnapId,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Missing(id) => write!(f, "snapshot {id} does not exist"),
            SnapshotError::MissingBase { id, base } => {
                write!(f, "snapshot {id} is a delta against missing base {base}")
            }
            SnapshotError::Corrupt { id } => {
                write!(f, "snapshot {id}: delta does not apply to its base")
            }
            SnapshotError::Spill { id, detail } => {
                write!(f, "snapshot {id}: page-in from spool failed: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

#[derive(Debug)]
enum Entry {
    Full(HwSnapshot),
    Delta {
        base: SnapId,
        delta: SnapshotDelta,
    },
    /// A full image spilled to the spool directory; `ram_bytes` is the
    /// resident size it returns to when paged back in.
    SpilledFull {
        path: PathBuf,
        ram_bytes: usize,
    },
    /// A delta spilled to the spool directory; keeps its base pinned
    /// (the pin taken at install time is not released by spilling).
    SpilledDelta {
        base: SnapId,
        path: PathBuf,
        ram_bytes: usize,
    },
}

impl Entry {
    /// Resident bytes: spilled entries cost no RAM.
    fn byte_size(&self) -> usize {
        match self {
            Entry::Full(s) => s.byte_size(),
            Entry::Delta { delta, .. } => delta.byte_size(),
            Entry::SpilledFull { .. } | Entry::SpilledDelta { .. } => 0,
        }
    }

    fn pinned_base(&self) -> Option<SnapId> {
        match self {
            Entry::Delta { base, .. } | Entry::SpilledDelta { base, .. } => Some(*base),
            _ => None,
        }
    }

    fn spill_path(&self) -> Option<&PathBuf> {
        match self {
            Entry::SpilledFull { path, .. } | Entry::SpilledDelta { path, .. } => Some(path),
            _ => None,
        }
    }
}

/// Resident payload handed back by [`SnapshotStore::page_in`]. Callers
/// consume this copy directly instead of re-reading the shard map:
/// under a tight memory budget a concurrent `reserve` can spill the
/// entry again the instant it lands, and a read-back retry loop then
/// livelocks with two threads ping-ponging each other's page-ins.
enum Paged {
    Full(HwSnapshot),
    Delta { base: SnapId, delta: SnapshotDelta },
}

#[derive(Debug)]
struct Stored {
    entry: Entry,
    /// Live delta entries referencing this id as their base (pin count).
    refs: usize,
    /// Kept alive only by `refs` (no direct owner): either registered
    /// via [`SnapshotStore::insert_base`], or a deferred
    /// [`SnapshotStore::remove`].
    hidden: bool,
    /// Logical LRU timestamp (global clock tick of the last use).
    touch: AtomicU64,
    /// Bumped on every content mutation; a spill aborts if the entry
    /// changed between serialization and the swap to the spilled repr.
    generation: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<SnapId, Stored>,
}

/// Always-on store activity counters (relaxed atomics — cheap enough to
/// keep unconditionally; the telemetry layer folds them into its
/// snapshot at the end of a run).
#[derive(Debug, Default)]
struct StoreCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    deferred: AtomicU64,
    spills: AtomicU64,
    page_ins: AtomicU64,
    spill_fails: AtomicU64,
}

/// The stored representation of one snapshot, as handed to a
/// serializer: either a self-contained full image or a delta plus the id
/// of the base it applies to. Campaign checkpointing uses this to write
/// delta chains to disk *as chains* instead of flattening every entry
/// to a full image.
#[derive(Clone, Debug)]
pub enum PersistEntry {
    /// Self-contained image.
    Full(HwSnapshot),
    /// Delta against the store entry `base`.
    Delta {
        /// Store id of the base image the delta applies to.
        base: SnapId,
        /// The delta itself.
        delta: SnapshotDelta,
    },
}

/// Point-in-time copy of the store's activity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that produced a snapshot.
    pub hits: u64,
    /// Lookups that failed (missing id or broken delta chain).
    pub misses: u64,
    /// Entries actually reclaimed by `remove`/`purge`.
    pub evictions: u64,
    /// `remove` calls deferred because live deltas pin the entry.
    pub deferred: u64,
    /// Entries written out to the spool directory under budget pressure.
    pub spills: u64,
    /// Spilled entries paged back into RAM on lookup.
    pub page_ins: u64,
    /// Spill attempts abandoned on I/O failure (entry stayed resident).
    pub spill_fails: u64,
}

#[derive(Debug)]
struct Spool {
    dir: Option<PathBuf>,
    /// True when the store invented a temp directory itself (removed on
    /// drop); caller-provided directories are left alone.
    owned: bool,
}

#[derive(Debug)]
struct StoreInner {
    shards: ShardedRwLock<Shard>,
    next: AtomicU64,
    bytes: WatermarkCounter,
    counters: StoreCounters,
    /// Resident-byte budget; `usize::MAX` means unbudgeted.
    budget: AtomicUsize,
    /// Serializes budget check + byte reservation (never held across
    /// I/O or another lock).
    gate: Mutex<()>,
    /// Logical clock for LRU touch stamps.
    clock: AtomicU64,
    spool: Mutex<Spool>,
}

impl Drop for StoreInner {
    fn drop(&mut self) {
        let spool = self.spool.lock();
        if spool.owned {
            if let Some(dir) = &spool.dir {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }
}

/// Sequence for unique store-owned spool directory names.
static SPOOL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Thread-safe, lock-sharded snapshot store.
#[derive(Clone, Debug)]
pub struct SnapshotStore {
    inner: Arc<StoreInner>,
}

impl Default for SnapshotStore {
    fn default() -> Self {
        SnapshotStore {
            inner: Arc::new(StoreInner {
                shards: ShardedRwLock::new(SHARDS),
                next: AtomicU64::new(0),
                bytes: WatermarkCounter::new(),
                counters: StoreCounters::default(),
                budget: AtomicUsize::new(usize::MAX),
                gate: Mutex::new(()),
                clock: AtomicU64::new(0),
                spool: Mutex::new(Spool {
                    dir: None,
                    owned: false,
                }),
            }),
        }
    }
}

impl SnapshotStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SnapshotStore::default()
    }

    /// Sets (or clears, with `None`) the resident-byte budget. While a
    /// budget is set, admitting new bytes spills LRU cold entries first,
    /// so [`SnapshotStore::peak_bytes`] stays at or under the budget as
    /// long as enough unpinned entries exist to spill.
    pub fn set_mem_budget(&self, budget: Option<usize>) {
        self.inner
            .budget
            .store(budget.unwrap_or(usize::MAX), Ordering::Relaxed);
    }

    /// Directs spill files to `dir` (created on first use) instead of a
    /// store-owned temp directory. Caller-provided directories are not
    /// deleted when the store drops.
    pub fn set_spool_dir(&self, dir: &Path) {
        let mut spool = self.inner.spool.lock();
        spool.dir = Some(dir.to_path_buf());
        spool.owned = false;
    }

    fn alloc_id(&self) -> SnapId {
        self.inner.next.fetch_add(1, Ordering::Relaxed)
    }

    fn tick(&self) -> u64 {
        self.inner.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the spool directory, inventing (and creating) a unique
    /// temp directory on first need.
    fn spool_dir(&self) -> Result<PathBuf, String> {
        let mut spool = self.inner.spool.lock();
        let dir = match &spool.dir {
            Some(dir) => dir.clone(),
            None => {
                let seq = SPOOL_SEQ.fetch_add(1, Ordering::Relaxed);
                let dir = std::env::temp_dir().join(format!(
                    "hardsnap-spool-{}-{}",
                    std::process::id(),
                    seq
                ));
                spool.dir = Some(dir.clone());
                spool.owned = true;
                dir
            }
        };
        std::fs::create_dir_all(&dir).map_err(|e| format!("create '{}': {e}", dir.display()))?;
        Ok(dir)
    }

    /// Reserves `incoming` resident bytes, spilling LRU cold entries
    /// first while over budget. Always succeeds — if nothing (more) can
    /// be spilled the bytes are admitted over budget, because refusing
    /// an image would break analysis correctness.
    fn reserve(&self, incoming: usize) {
        let budget = self.inner.budget.load(Ordering::Relaxed);
        if budget == usize::MAX {
            self.inner.bytes.add(incoming);
            return;
        }
        let mut attempts = 0usize;
        loop {
            {
                let _g = self.inner.gate.lock();
                if self.inner.bytes.current() + incoming <= budget {
                    self.inner.bytes.add(incoming);
                    return;
                }
            }
            // Over budget: spill the coldest eligible entry and retry.
            // The attempt cap bounds pathological races; at worst the
            // bytes are admitted over budget.
            attempts += 1;
            if attempts > self.len() + 8 || !self.spill_one() {
                self.inner.bytes.add(incoming);
                return;
            }
        }
    }

    /// Picks and spills the least-recently-used cold entry. Returns
    /// false when no eligible victim exists (everything resident is
    /// pinned, hidden, or already spilled).
    fn spill_one(&self) -> bool {
        let mut best: Option<(u64, SnapId)> = None;
        for shard in self.inner.shards.iter() {
            let g = shard.read();
            for (&id, s) in &g.entries {
                if s.refs == 0 && !s.hidden && s.entry.byte_size() > 0 {
                    let t = s.touch.load(Ordering::Relaxed);
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, id));
                    }
                }
            }
        }
        match best {
            Some((_, id)) => self.spill(id),
            None => false,
        }
    }

    /// Spills one entry to the spool directory. Serialization and file
    /// I/O happen with no locks held; the swap to the spilled
    /// representation re-checks the entry's generation so a concurrent
    /// update can never be clobbered by a stale file. On I/O failure the
    /// entry stays resident (soft failure — the store must keep working
    /// without a disk).
    fn spill(&self, id: SnapId) -> bool {
        enum Payload {
            Full(HwSnapshot),
            Delta(SnapId, SnapshotDelta),
        }
        let (generation, payload) = {
            let shard = self.inner.shards.shard_for(id);
            let g = shard.read();
            let Some(s) = g.entries.get(&id) else {
                return false;
            };
            if s.refs != 0 || s.hidden {
                return false;
            }
            match &s.entry {
                Entry::Full(snap) => (s.generation, Payload::Full(snap.clone())),
                Entry::Delta { base, delta } => {
                    (s.generation, Payload::Delta(*base, delta.clone()))
                }
                _ => return false,
            }
        };
        let image = match &payload {
            Payload::Full(snap) => write_full(snap),
            Payload::Delta(base, delta) => match self.try_resolve(*base) {
                Ok(base_snap) => write_delta(&base_snap, delta, &format!("snap:{base}")),
                Err(_) => return false,
            },
        };
        let written = self.spool_dir().and_then(|dir| {
            let path = dir.join(format!("snap-{id}.hsnap"));
            std::fs::write(&path, &image)
                .map_err(|e| format!("write '{}': {e}", path.display()))?;
            Ok(path)
        });
        let path = match written {
            Ok(p) => p,
            Err(_) => {
                self.inner
                    .counters
                    .spill_fails
                    .fetch_add(1, Ordering::Relaxed);
                // Re-stamp the victim so the next pick moves on instead
                // of hammering the same failing entry.
                let shard = self.inner.shards.shard_for(id);
                if let Some(s) = shard.read().entries.get(&id) {
                    s.touch.store(self.tick(), Ordering::Relaxed);
                }
                return false;
            }
        };
        let freed = {
            let shard = self.inner.shards.shard_for(id);
            let mut g = shard.write();
            let Some(s) = g.entries.get_mut(&id) else {
                drop(g);
                let _ = std::fs::remove_file(&path);
                return false;
            };
            let sz = s.entry.byte_size();
            if s.generation != generation || s.refs != 0 || s.hidden || sz == 0 {
                // A concurrent spill of the same id may have won the
                // race: both wrote the same spool path, so that path is
                // now the entry's *live* backing file. Deleting it here
                // would strand the entry pointing at nothing — every
                // future page-in would fail forever.
                let live = s.entry.spill_path() == Some(&path);
                drop(g);
                if !live {
                    let _ = std::fs::remove_file(&path);
                }
                return false;
            }
            s.entry = match payload {
                Payload::Full(_) => Entry::SpilledFull {
                    path,
                    ram_bytes: sz,
                },
                Payload::Delta(base, _) => Entry::SpilledDelta {
                    base,
                    path,
                    ram_bytes: sz,
                },
            };
            sz
        };
        self.inner.bytes.sub(freed);
        self.inner.counters.spills.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Pages a spilled entry back into RAM, verifying the spool file's
    /// checksums along the way, and returns the resident payload. The
    /// returned copy stays valid even if budget pressure immediately
    /// spills the entry again — callers must use it rather than
    /// re-reading the map (see [`Paged`]).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Spill`] on I/O or integrity failure (the entry
    /// stays spilled), [`SnapshotError::Missing`] if it raced removal.
    fn page_in(&self, id: SnapId) -> Result<Paged, SnapshotError> {
        let (path, ram_bytes) = {
            let shard = self.inner.shards.shard_for(id);
            let g = shard.read();
            match g.entries.get(&id) {
                None => return Err(SnapshotError::Missing(id)),
                Some(s) => match &s.entry {
                    Entry::SpilledFull { path, ram_bytes }
                    | Entry::SpilledDelta {
                        path, ram_bytes, ..
                    } => (path.clone(), *ram_bytes),
                    // Raced: another thread already paged it in.
                    Entry::Full(snap) => return Ok(Paged::Full(snap.clone())),
                    Entry::Delta { base, delta } => {
                        return Ok(Paged::Delta {
                            base: *base,
                            delta: delta.clone(),
                        })
                    }
                },
            }
        };
        self.reserve(ram_bytes);
        let spill_err = |detail: String| SnapshotError::Spill { id, detail };
        let loaded = std::fs::read(&path)
            .map_err(|e| spill_err(format!("read '{}': {e}", path.display())))
            .and_then(|data| {
                PersistedImage::from_bytes(&data).map_err(|e| spill_err(e.to_string()))
            })
            .and_then(|img| match img {
                PersistedImage::Full(snap) => Ok(Entry::Full(snap)),
                PersistedImage::Delta {
                    base_ref, delta, ..
                } => base_ref
                    .strip_prefix("snap:")
                    .and_then(|s| s.parse::<SnapId>().ok())
                    .map(|base| Entry::Delta { base, delta })
                    .ok_or_else(|| spill_err(format!("bad base reference '{base_ref}'"))),
            });
        let entry = match loaded {
            Ok(e) => e,
            Err(e) => {
                self.inner.bytes.sub(ram_bytes);
                // A concurrent page-in may have swapped the entry
                // resident and unlinked the spool file between our
                // path read and the file read — that is a win, not an
                // error: hand back the resident payload.
                let shard = self.inner.shards.shard_for(id);
                let g = shard.read();
                match g.entries.get(&id).map(|s| &s.entry) {
                    Some(Entry::Full(snap)) => return Ok(Paged::Full(snap.clone())),
                    Some(Entry::Delta { base, delta }) => {
                        return Ok(Paged::Delta {
                            base: *base,
                            delta: delta.clone(),
                        })
                    }
                    _ => return Err(e),
                }
            }
        };
        let paged = match &entry {
            Entry::Full(snap) => Paged::Full(snap.clone()),
            Entry::Delta { base, delta } => Paged::Delta {
                base: *base,
                delta: delta.clone(),
            },
            _ => unreachable!("spool files only persist full or delta images"),
        };
        let actual = entry.byte_size();
        let swapped = {
            let shard = self.inner.shards.shard_for(id);
            let mut g = shard.write();
            match g.entries.get_mut(&id) {
                None => false,
                Some(s) => match &s.entry {
                    Entry::SpilledFull { .. } | Entry::SpilledDelta { .. } => {
                        s.entry = entry;
                        s.touch.store(self.tick(), Ordering::Relaxed);
                        true
                    }
                    _ => false,
                },
            }
        };
        if !swapped {
            // Raced a concurrent page-in or removal: undo the
            // reservation, keep whatever state won the race. The copy
            // we loaded is still the entry's content, so hand it back.
            self.inner.bytes.sub(ram_bytes);
            return Ok(paged);
        }
        if actual > ram_bytes {
            self.inner.bytes.add(actual - ram_bytes);
        } else {
            self.inner.bytes.sub(ram_bytes - actual);
        }
        let _ = std::fs::remove_file(&path);
        self.inner.counters.page_ins.fetch_add(1, Ordering::Relaxed);
        Ok(paged)
    }

    fn install(&self, id: SnapId, entry: Entry, hidden: bool) {
        let sz = entry.byte_size();
        self.reserve(sz);
        self.inner.shards.shard_for(id).write().entries.insert(
            id,
            Stored {
                entry,
                refs: 0,
                hidden,
                touch: AtomicU64::new(self.tick()),
                generation: 0,
            },
        );
    }

    /// Resolves `id` by walking its delta chain, locking one shard at a
    /// time (never two at once); spilled links page back in on the way.
    fn try_resolve(&self, id: SnapId) -> Result<HwSnapshot, SnapshotError> {
        let mut chain: Vec<(SnapId, SnapshotDelta)> = Vec::new();
        let mut cur = id;
        let base_snap = loop {
            let shard = self.inner.shards.shard_for(cur);
            let g = shard.read();
            match g.entries.get(&cur) {
                None => {
                    return Err(match chain.last() {
                        None => SnapshotError::Missing(id),
                        Some(&(broken, _)) => SnapshotError::MissingBase {
                            id: broken,
                            base: cur,
                        },
                    });
                }
                Some(stored) => {
                    stored.touch.store(self.tick(), Ordering::Relaxed);
                    match &stored.entry {
                        Entry::Full(s) => break s.clone(),
                        Entry::Delta { base, delta } => {
                            let b = *base;
                            chain.push((cur, delta.clone()));
                            drop(g);
                            cur = b;
                        }
                        Entry::SpilledFull { .. } | Entry::SpilledDelta { .. } => {
                            drop(g);
                            // Use the paged-in payload directly: budget
                            // pressure may spill `cur` again before a
                            // re-read, and retrying would livelock.
                            match self.page_in(cur)? {
                                Paged::Full(s) => break s,
                                Paged::Delta { base, delta } => {
                                    chain.push((cur, delta));
                                    cur = base;
                                }
                            }
                        }
                    }
                }
            }
        };
        let mut snap = base_snap;
        for (eid, delta) in chain.iter().rev() {
            snap = delta
                .apply(&snap)
                .map_err(|_| SnapshotError::Corrupt { id: *eid })?;
        }
        Ok(snap)
    }

    /// Increments the pin count of `base`; false if `base` is gone.
    fn pin_base(&self, base: SnapId) -> bool {
        let shard = self.inner.shards.shard_for(base);
        let mut g = shard.write();
        match g.entries.get_mut(&base) {
            Some(stored) => {
                stored.refs += 1;
                true
            }
            None => false,
        }
    }

    /// Decrements the pin count of `base`, reclaiming hidden entries
    /// whose last dependent went away (iterating down chains).
    fn release_base(&self, mut base: SnapId) {
        loop {
            let shard = self.inner.shards.shard_for(base);
            let mut g = shard.write();
            let Some(stored) = g.entries.get_mut(&base) else {
                return;
            };
            stored.refs = stored.refs.saturating_sub(1);
            if stored.refs == 0 && stored.hidden {
                if let Some(stored) = g.entries.remove(&base) {
                    drop(g);
                    self.discard(&stored);
                    if let Some(next) = stored.entry.pinned_base() {
                        base = next;
                        continue;
                    }
                }
            }
            return;
        }
    }

    /// Accounting + spool cleanup for an entry detached from the map.
    fn discard(&self, stored: &Stored) {
        self.inner.bytes.sub(stored.entry.byte_size());
        if let Some(path) = stored.entry.spill_path() {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Stores a full snapshot under a fresh id.
    pub fn insert(&self, snap: HwSnapshot) -> SnapId {
        let id = self.alloc_id();
        self.install(id, Entry::Full(snap), false);
        id
    }

    /// Stores `snap` as a delta against the (immutable) snapshot under
    /// `base`; falls back to full storage if the delta would not save
    /// space or the shapes differ. Pins `base` so it outlives its
    /// dependents.
    pub fn insert_delta(&self, base: SnapId, snap: HwSnapshot) -> SnapId {
        let id = self.alloc_id();
        let delta = self
            .try_resolve(base)
            .ok()
            .and_then(|b| SnapshotDelta::between(&b, &snap).ok())
            .filter(|d| d.byte_size() < snap.byte_size());
        let entry = match delta {
            // Pin before installing the dependent: a concurrent remove
            // of `base` then defers instead of breaking the chain.
            Some(delta) if self.pin_base(base) => Entry::Delta { base, delta },
            _ => Entry::Full(snap),
        };
        self.install(id, entry, false);
        id
    }

    /// Stores a delta the target emitted natively (already expressed
    /// against the snapshot under `base`) — no O(design) re-diff, the
    /// store cost is O(delta). Pins `base`; `None` if `base` is gone
    /// (the caller must fall back to materializing a full image).
    pub fn insert_delta_native(&self, base: SnapId, delta: SnapshotDelta) -> Option<SnapId> {
        if !self.pin_base(base) {
            return None;
        }
        let id = self.alloc_id();
        self.install(id, Entry::Delta { base, delta }, false);
        Some(id)
    }

    /// Overwrites the snapshot under `id` with a natively-emitted delta
    /// against `base` — the O(delta) counterpart of
    /// [`SnapshotStore::update`]. Pins the new base and releases the
    /// entry's previous base (if its old representation was a delta);
    /// false if `base` is gone and the caller must fall back.
    pub fn update_delta_native(&self, id: SnapId, base: SnapId, delta: SnapshotDelta) -> bool {
        if !self.pin_base(base) {
            return false;
        }
        let new_entry = Entry::Delta { base, delta };
        let new_sz = new_entry.byte_size();
        self.reserve(new_sz);
        let (old_sz, released, stale_file) = {
            let mut g = self.inner.shards.shard_for(id).write();
            match g.entries.get_mut(&id) {
                Some(stored) => {
                    let old = stored.entry.byte_size();
                    // The old representation's pin is dropped after the
                    // new pin is in place, so a same-base update nets
                    // out to one held pin.
                    let released = stored.entry.pinned_base();
                    let stale = stored.entry.spill_path().cloned();
                    stored.entry = new_entry;
                    stored.generation += 1;
                    stored.touch.store(self.tick(), Ordering::Relaxed);
                    (old, released, stale)
                }
                None => {
                    g.entries.insert(
                        id,
                        Stored {
                            entry: new_entry,
                            refs: 0,
                            hidden: false,
                            touch: AtomicU64::new(self.tick()),
                            generation: 0,
                        },
                    );
                    (0, None, None)
                }
            }
        };
        self.inner.bytes.sub(old_sz);
        if let Some(path) = stale_file {
            let _ = std::fs::remove_file(path);
        }
        if let Some(b) = released {
            self.release_base(b);
        }
        true
    }

    /// Registers a snapshot that exists only to serve as a delta base
    /// (freed automatically when the last dependent goes away).
    pub fn insert_base(&self, snap: HwSnapshot) -> SnapId {
        let id = self.alloc_id();
        self.install(id, Entry::Full(snap), true);
        id
    }

    /// Size a delta of `snap` against the snapshot under `base` would
    /// take, or `None` when the shapes are incompatible. Lets callers
    /// decide whether an existing base is still a good anchor.
    pub fn delta_size_vs(&self, base: SnapId, snap: &HwSnapshot) -> Option<usize> {
        let b = self.try_resolve(base).ok()?;
        SnapshotDelta::between(&b, snap).ok().map(|d| d.byte_size())
    }

    /// Overwrites the snapshot under `id` (the paper's `UpdateState`),
    /// preserving the entry's representation (delta entries stay deltas
    /// against their base) and keeping the pin count intact.
    pub fn update(&self, id: SnapId, snap: HwSnapshot) {
        let repr_base = {
            let g = self.inner.shards.shard_for(id).read();
            g.entries.get(&id).and_then(|s| s.entry.pinned_base())
        };
        let (new_entry, released_base) = match repr_base {
            Some(base) => {
                let delta = self
                    .try_resolve(base)
                    .ok()
                    .and_then(|b| SnapshotDelta::between(&b, &snap).ok())
                    .filter(|d| d.byte_size() < snap.byte_size());
                match delta {
                    Some(delta) => (Entry::Delta { base, delta }, None),
                    None => (Entry::Full(snap), Some(base)),
                }
            }
            None => (Entry::Full(snap), None),
        };
        let new_sz = new_entry.byte_size();
        self.reserve(new_sz);
        let (old_sz, stale_file) = {
            let mut g = self.inner.shards.shard_for(id).write();
            match g.entries.get_mut(&id) {
                Some(stored) => {
                    let old = stored.entry.byte_size();
                    let stale = stored.entry.spill_path().cloned();
                    stored.entry = new_entry;
                    stored.generation += 1;
                    stored.touch.store(self.tick(), Ordering::Relaxed);
                    (old, stale)
                }
                None => {
                    g.entries.insert(
                        id,
                        Stored {
                            entry: new_entry,
                            refs: 0,
                            hidden: false,
                            touch: AtomicU64::new(self.tick()),
                            generation: 0,
                        },
                    );
                    (0, None)
                }
            }
        };
        self.inner.bytes.sub(old_sz);
        if let Some(path) = stale_file {
            let _ = std::fs::remove_file(path);
        }
        if let Some(base) = released_base {
            self.release_base(base);
        }
    }

    /// Records a lookup outcome in the activity counters.
    fn note_lookup(&self, hit: bool) {
        let c = &self.inner.counters;
        if hit {
            c.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            c.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fetches a snapshot by id (reconstructing deltas and paging in
    /// spilled entries transparently).
    pub fn get(&self, id: SnapId) -> Option<HwSnapshot> {
        let got = self.try_resolve(id).ok();
        self.note_lookup(got.is_some());
        got
    }

    /// Like [`SnapshotStore::get`], but reports *why* a snapshot cannot
    /// be produced: missing id, delta chain with an evicted base, a
    /// delta that no longer applies, or a spool page-in failure.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] naming the broken link of the chain.
    pub fn try_get(&self, id: SnapId) -> Result<HwSnapshot, SnapshotError> {
        let got = self.try_resolve(id);
        self.note_lookup(got.is_ok());
        got
    }

    /// Drops a snapshot (state terminated); frees its delta base when it
    /// was the last dependent. Removal of an id that is itself a pinned
    /// delta base is **deferred**: the entry is hidden and reclaimed
    /// once its last dependent goes away, so the chain never breaks.
    pub fn remove(&self, id: SnapId) -> Option<HwSnapshot> {
        let resolved = self.try_resolve(id).ok();
        let freed_base = {
            let mut g = self.inner.shards.shard_for(id).write();
            let defer = match g.entries.get_mut(&id) {
                None => return None,
                Some(stored) if stored.refs > 0 => {
                    // Deferred: live deltas still need this image.
                    stored.hidden = true;
                    true
                }
                Some(_) => false,
            };
            if defer {
                drop(g);
                self.inner.counters.deferred.fetch_add(1, Ordering::Relaxed);
                return resolved;
            }
            let Some(stored) = g.entries.remove(&id) else {
                return resolved;
            };
            drop(g);
            self.discard(&stored);
            self.inner
                .counters
                .evictions
                .fetch_add(1, Ordering::Relaxed);
            stored.entry.pinned_base()
        };
        if let Some(base) = freed_base {
            self.release_base(base);
        }
        resolved
    }

    /// Unconditionally deletes `id`, **ignoring pins** — dependents are
    /// left with a broken chain (subsequent lookups report
    /// [`SnapshotError::MissingBase`]). This models external eviction
    /// or corruption of the backing storage; analyses never call it.
    pub fn purge(&self, id: SnapId) -> Option<HwSnapshot> {
        let resolved = self.try_resolve(id).ok();
        let freed_base = {
            let mut g = self.inner.shards.shard_for(id).write();
            let stored = g.entries.remove(&id)?;
            drop(g);
            self.discard(&stored);
            self.inner
                .counters
                .evictions
                .fetch_add(1, Ordering::Relaxed);
            stored.entry.pinned_base()
        };
        if let Some(base) = freed_base {
            self.release_base(base);
        }
        resolved
    }

    /// Number of live entries (including hidden bases and spilled
    /// entries).
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().entries.len())
            .sum()
    }

    /// True if no snapshots are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current *resident* bytes of stored images (full + delta
    /// representations; spilled entries cost nothing here).
    pub fn total_bytes(&self) -> usize {
        self.inner.bytes.current()
    }

    /// High-water mark of [`SnapshotStore::total_bytes`] — the number
    /// the `--snapshot-mem-budget` cap bounds.
    pub fn peak_bytes(&self) -> usize {
        self.inner.bytes.peak()
    }

    /// Returns the entry's *stored representation* for serialization —
    /// a delta entry comes back as `(base, delta)` rather than a
    /// flattened image, so an on-disk campaign preserves the chain.
    /// Spilled entries are paged back in first.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Missing`] for an unknown id,
    /// [`SnapshotError::Spill`] if a spilled entry cannot be paged in.
    pub fn export_entry(&self, id: SnapId) -> Result<PersistEntry, SnapshotError> {
        {
            let shard = self.inner.shards.shard_for(id);
            let g = shard.read();
            match g.entries.get(&id) {
                None => return Err(SnapshotError::Missing(id)),
                Some(stored) => {
                    stored.touch.store(self.tick(), Ordering::Relaxed);
                    match &stored.entry {
                        Entry::Full(s) => return Ok(PersistEntry::Full(s.clone())),
                        Entry::Delta { base, delta } => {
                            return Ok(PersistEntry::Delta {
                                base: *base,
                                delta: delta.clone(),
                            })
                        }
                        Entry::SpilledFull { .. } | Entry::SpilledDelta { .. } => {}
                    }
                }
            }
        }
        // Spilled: page it back in and export the returned payload
        // directly — a map re-read could livelock under a tight budget
        // if a concurrent reserve spills the entry straight back out.
        match self.page_in(id)? {
            Paged::Full(s) => Ok(PersistEntry::Full(s)),
            Paged::Delta { base, delta } => Ok(PersistEntry::Delta { base, delta }),
        }
    }

    /// Point-in-time copy of the store's activity counters.
    pub fn stats(&self) -> StoreStats {
        let c = &self.inner.counters;
        StoreStats {
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            deferred: c.deferred.load(Ordering::Relaxed),
            spills: c.spills.load(Ordering::Relaxed),
            page_ins: c.page_ins.load(Ordering::Relaxed),
            spill_fails: c.spill_fails.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardsnap_bus::RegImage;

    fn snap(v: u64) -> HwSnapshot {
        HwSnapshot {
            design: "d".into(),
            cycle: v,
            regs: (0..32)
                .map(|i| RegImage {
                    name: format!("r{i}"),
                    width: 32,
                    bits: i * 11 + v,
                })
                .collect(),
            mems: vec![],
        }
    }

    #[test]
    fn insert_get_update_remove() {
        let store = SnapshotStore::new();
        let a = store.insert(snap(1));
        let b = store.insert(snap(2));
        assert_ne!(a, b);
        assert_eq!(store.get(a).unwrap().reg("r0"), Some(1));
        store.update(a, snap(9));
        assert_eq!(store.get(a).unwrap().reg("r0"), Some(9));
        assert_eq!(store.len(), 2);
        assert!(store.remove(b).is_some());
        assert_eq!(store.len(), 1);
        assert!(store.get(b).is_none());
    }

    #[test]
    fn delta_entries_resolve_and_save_space() {
        let store = SnapshotStore::new();
        let base_snap = snap(5);
        let base = store.insert_base(base_snap.clone());
        let bytes_after_base = store.total_bytes();
        // A snapshot differing in one register.
        let mut child_snap = base_snap.clone();
        child_snap.regs[7].bits = 0xfeed;
        let child = store.insert_delta(base, child_snap.clone());
        assert_eq!(store.get(child).unwrap(), child_snap);
        assert!(
            store.total_bytes() - bytes_after_base < base_snap.byte_size() / 4,
            "delta must be small"
        );
    }

    #[test]
    fn hidden_base_freed_with_last_dependent() {
        let store = SnapshotStore::new();
        let base_snap = snap(5);
        let base = store.insert_base(base_snap.clone());
        let c1 = store.insert_delta(base, base_snap.clone());
        let c2 = store.insert_delta(base, base_snap.clone());
        assert_eq!(store.len(), 3);
        store.remove(c1);
        assert_eq!(store.len(), 2, "base still referenced by c2");
        store.remove(c2);
        assert_eq!(store.len(), 0, "hidden base freed with last dependent");
        assert_eq!(store.total_bytes(), 0);
    }

    #[test]
    fn update_of_delta_entry_stays_compact() {
        let store = SnapshotStore::new();
        let base_snap = snap(5);
        let base = store.insert_base(base_snap.clone());
        let mut v1 = base_snap.clone();
        v1.regs[0].bits = 1;
        let id = store.insert_delta(base, v1);
        let mut v2 = base_snap.clone();
        v2.regs[1].bits = 2;
        v2.regs[2].bits = 3;
        store.update(id, v2.clone());
        assert_eq!(store.get(id).unwrap(), v2);
        assert!(store.total_bytes() < 2 * base_snap.byte_size());
    }

    #[test]
    fn incompatible_delta_falls_back_to_full() {
        let store = SnapshotStore::new();
        let base = store.insert_base(snap(1));
        let mut other = snap(2);
        other.design = "different".into();
        let id = store.insert_delta(base, other.clone());
        assert_eq!(store.get(id).unwrap(), other);
    }

    #[test]
    fn byte_accounting_and_peak() {
        let store = SnapshotStore::new();
        let a = store.insert(snap(1));
        let peak1 = store.peak_bytes();
        assert!(peak1 > 0);
        store.remove(a);
        assert_eq!(store.total_bytes(), 0);
        assert_eq!(store.peak_bytes(), peak1, "peak is a high-water mark");
        assert!(store.is_empty());
    }

    #[test]
    fn store_stats_track_activity() {
        let store = SnapshotStore::new();
        let a = store.insert(snap(1));
        assert!(store.get(a).is_some());
        assert!(store.get(999).is_none());
        let b = store.insert(snap(2));
        let mut child = snap(2);
        child.regs[0].bits = 77;
        let c = store.insert_delta(b, child);
        store.remove(b); // deferred: c pins it
        store.remove(c); // evicts c, then reclaims hidden b
        store.remove(a);
        let s = store.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.deferred, 1);
        assert_eq!(s.evictions, 2, "c and a evicted via remove()");
    }

    #[test]
    fn remove_of_referenced_base_is_deferred_not_destructive() {
        // The pinning regression: a base with live dependents survives
        // "eviction pressure" (remove calls) until the last dependent
        // goes away — delta chains can never break via remove().
        let store = SnapshotStore::new();
        let base_snap = snap(5);
        let base = store.insert(base_snap.clone());
        let mut child_snap = base_snap.clone();
        child_snap.regs[3].bits = 0xBAD;
        let child = store.insert_delta(base, child_snap.clone());
        // Eviction pressure: repeated removes of the referenced base.
        for _ in 0..3 {
            store.remove(base);
        }
        assert_eq!(
            store.try_get(child).unwrap(),
            child_snap,
            "pinned base survives, chain intact"
        );
        assert!(
            store.get(base).is_some(),
            "base image still resolvable while pinned"
        );
        // The base is reclaimed with its last dependent.
        store.remove(child);
        assert_eq!(store.len(), 0);
        assert_eq!(store.total_bytes(), 0);
    }

    #[test]
    fn delta_with_purged_base_is_an_error_not_a_panic() {
        let store = SnapshotStore::new();
        let base_snap = snap(5);
        let base = store.insert(base_snap.clone());
        let mut child_snap = base_snap.clone();
        child_snap.regs[3].bits = 0xBAD;
        let child = store.insert_delta(base, child_snap.clone());
        assert_eq!(store.try_get(child).unwrap(), child_snap);
        // purge() bypasses pinning — the external-corruption model.
        store.purge(base);
        assert_eq!(store.get(child), None, "unrecoverable, but no panic");
        assert_eq!(
            store.try_get(child),
            Err(SnapshotError::MissingBase { id: child, base }),
        );
    }

    #[test]
    fn delta_chain_reports_first_broken_link() {
        let store = SnapshotStore::new();
        let s0 = snap(1);
        let a = store.insert(s0.clone());
        let mut s1 = s0.clone();
        s1.regs[0].bits = 11;
        let b = store.insert_delta(a, s1.clone());
        let mut s2 = s1.clone();
        s2.regs[1].bits = 22;
        let c = store.insert_delta(b, s2.clone());
        assert_eq!(store.try_get(c).unwrap(), s2);
        store.purge(a);
        // c -> b (alive delta) -> a (gone): the broken link is b's base.
        assert_eq!(
            store.try_get(c),
            Err(SnapshotError::MissingBase { id: b, base: a }),
        );
        assert_eq!(store.try_get(999), Err(SnapshotError::Missing(999)));
    }

    #[test]
    fn clones_share_the_store() {
        let store = SnapshotStore::new();
        let other = store.clone();
        let id = store.insert(snap(7));
        assert_eq!(other.get(id).unwrap().cycle, 7);
    }

    #[test]
    fn concurrent_workers_hammering_the_store_stay_consistent() {
        use hardsnap_util::sync::scope;
        let store = SnapshotStore::new();
        let base = store.insert_base(snap(0));
        scope(|s| {
            for w in 0..4u64 {
                let store = store.clone();
                s.spawn(move || {
                    for i in 0..50u64 {
                        let mut img = snap(0);
                        img.regs[(w as usize) % 32].bits = i;
                        let id = store.insert_delta(base, img.clone());
                        assert_eq!(store.get(id).unwrap(), img);
                        store.update(id, snap(w * 100 + i));
                        assert_eq!(store.get(id).unwrap().cycle, w * 100 + i);
                        store.remove(id);
                    }
                });
            }
        });
        // All workers' entries cleaned up; only the hidden base remains
        // (it had no dependents left), or was already reclaimed.
        assert!(store.len() <= 1);
    }

    fn test_spool(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hardsnap-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn budget_spills_lru_and_pages_back_in() {
        let spool = test_spool("spill-basic");
        let store = SnapshotStore::new();
        store.set_spool_dir(&spool);
        let one = snap(0).byte_size();
        // Room for ~3 images; insert 6.
        store.set_mem_budget(Some(3 * one + one / 2));
        let ids: Vec<_> = (0..6).map(|v| store.insert(snap(v))).collect();
        assert!(
            store.peak_bytes() <= 3 * one + one / 2,
            "resident peak {} must stay under the budget",
            store.peak_bytes()
        );
        let s = store.stats();
        assert!(s.spills >= 3, "expected spills, got {s:?}");
        // Every snapshot still resolves bit-exactly, paging in on demand.
        for (v, &id) in ids.iter().enumerate() {
            assert_eq!(store.try_get(id).unwrap(), snap(v as u64));
        }
        assert!(store.stats().page_ins >= 3);
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn pinned_bases_never_spill_under_pressure() {
        let spool = test_spool("spill-pinned");
        let store = SnapshotStore::new();
        store.set_spool_dir(&spool);
        let base_snap = snap(1);
        let base = store.insert_base(base_snap.clone());
        let mut child_snap = base_snap.clone();
        child_snap.regs[0].bits = 0xAA;
        let child = store.insert_delta(base, child_snap.clone());
        // Budget far below one image: everything eligible spills, but
        // the pinned base must stay resident and the chain intact.
        store.set_mem_budget(Some(64));
        for v in 10..16 {
            store.insert(snap(v));
        }
        assert_eq!(store.try_get(child).unwrap(), child_snap);
        assert_eq!(store.try_get(base).unwrap(), base_snap);
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn delta_entries_spill_and_chain_survives_serialization() {
        let spool = test_spool("spill-delta");
        let store = SnapshotStore::new();
        store.set_spool_dir(&spool);
        let base_snap = snap(1);
        let base = store.insert_base(base_snap.clone());
        let mut child_snap = base_snap.clone();
        child_snap.regs[3].bits = 0x77;
        let child = store.insert_delta(base, child_snap.clone());
        // Make the delta cold, then pressure the budget so it spills.
        store.set_mem_budget(Some(base_snap.byte_size() + 64));
        let hot = store.insert(snap(9));
        assert_eq!(store.get(hot).unwrap(), snap(9));
        let s = store.stats();
        assert!(s.spills >= 1, "delta should have spilled: {s:?}");
        // Paged back in, the delta still applies to its pinned base.
        assert_eq!(store.try_get(child).unwrap(), child_snap);
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn spill_io_failure_is_soft_never_a_panic() {
        // Point the spool at a path that cannot be a directory.
        let blocker = std::env::temp_dir().join(format!(
            "hardsnap-test-spool-blocker-{}",
            std::process::id()
        ));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let store = SnapshotStore::new();
        store.set_spool_dir(&blocker.join("sub"));
        store.set_mem_budget(Some(64));
        let ids: Vec<_> = (0..4).map(|v| store.insert(snap(v))).collect();
        // Nothing spilled (I/O fails), but the store still works and
        // the failures are counted, not panicked.
        for (v, &id) in ids.iter().enumerate() {
            assert_eq!(store.try_get(id).unwrap(), snap(v as u64));
        }
        assert!(store.stats().spill_fails > 0);
        assert_eq!(store.stats().spills, 0);
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn corrupted_spool_file_is_a_typed_error() {
        let spool = test_spool("spill-corrupt");
        let store = SnapshotStore::new();
        store.set_spool_dir(&spool);
        store.set_mem_budget(Some(snap(0).byte_size() + 64));
        let cold = store.insert(snap(1));
        let _hot = store.insert(snap(2)); // forces `cold` out
        assert!(store.stats().spills >= 1);
        // Corrupt the spilled file on disk.
        let path = spool.join(format!("snap-{cold}.hsnap"));
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x20;
        std::fs::write(&path, &data).unwrap();
        match store.try_get(cold) {
            Err(SnapshotError::Spill { id, .. }) => assert_eq!(id, cold),
            other => panic!("expected Spill error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn removing_a_spilled_entry_cleans_its_spool_file() {
        let spool = test_spool("spill-remove");
        let store = SnapshotStore::new();
        store.set_spool_dir(&spool);
        store.set_mem_budget(Some(snap(0).byte_size() + 64));
        let cold = store.insert(snap(1));
        let _hot = store.insert(snap(2));
        let path = spool.join(format!("snap-{cold}.hsnap"));
        assert!(path.exists(), "cold entry should be on disk");
        // remove() resolves (paging in) and deletes; the file goes away
        // on page-in already.
        assert_eq!(store.remove(cold).unwrap(), snap(1));
        assert!(!path.exists(), "spool file cleaned up");
        let _ = std::fs::remove_dir_all(&spool);
    }
}
