//! # hardsnap
//!
//! The core of the HardSnap reproduction (DSN 2020, Corteggiani &
//! Francillon): hardware/software co-testing with **hardware
//! snapshotting**.
//!
//! This crate ties the substrates together:
//!
//! * a combined HW/SW state: each [`hardsnap_symex::SymState`] owns a
//!   private hardware snapshot in the [`SnapshotStore`];
//! * the analysis [`Engine`] implementing the paper's Algorithm 1 —
//!   state selection, hardware context switching (`UpdateState` /
//!   `RestoreState`), atomic interrupt delivery, fork snapshots;
//! * the two baselines of Fig. 1 ([`ConsistencyMode::NaiveConsistent`]
//!   reboot-and-replay, [`ConsistencyMode::NaiveInconsistent`] shared
//!   hardware) used throughout the evaluation;
//! * multi-target orchestration ([`Engine::switch_target`]) between the
//!   simulator and FPGA platforms;
//! * the synthetic firmware workloads of the evaluation ([`firmware`]).
//!
//! ## Quickstart
//!
//! ```
//! use hardsnap::{Engine, EngineConfig};
//! use hardsnap_sim::SimTarget;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Hardware: the 4-peripheral SoC on the simulator target.
//! let soc = hardsnap_periph::soc().unwrap();
//! let target = Box::new(SimTarget::new(soc)?);
//!
//! // Firmware: 2^3 paths, each talking to the timer.
//! let prog = hardsnap_isa::assemble(&hardsnap::firmware::branching_firmware(3)).unwrap();
//!
//! let mut engine = Engine::new(target, EngineConfig::default());
//! engine.load_firmware(&prog);
//! let result = engine.run();
//! assert_eq!(result.metrics.paths_completed, 8);
//! assert!(result.bugs.is_empty(), "consistent execution has no false alarms");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod engine;
pub mod firmware;
pub mod parallel;
pub mod replica;
pub mod snapshots;
pub mod supervise;

pub use campaign::{
    load_campaign, resume_parallel, resume_sequential, save_campaign, snapshot_parallel,
    snapshot_sequential, CampaignError, Checkpoint,
};
pub use engine::{
    CancelToken, ConsistencyMode, Engine, EngineConfig, EngineMetrics, HwAssertion, IoOp,
    RunResult, Searcher, StopReason,
};
pub use parallel::ParallelEngine;
pub use replica::{arm_baseline, synthesize_baseline, ReplicaError};
pub use snapshots::{PersistEntry, SnapId, SnapshotStore, StoreStats};
pub use supervise::{FaultSummary, RetryPolicy, Supervisor};

// Re-export the pieces users compose with.
pub use hardsnap_bus::{
    transfer_state, FaultPlan, FaultyTarget, HwSnapshot, HwTarget, TargetCaps, TargetKind,
};
pub use hardsnap_symex::{BugKind, BugReport, Concretization};
pub use hardsnap_telemetry::{MetricsSnapshot, Recorder, TelemetryConfig};
