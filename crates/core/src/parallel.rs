//! Multi-worker Algorithm 1: parallel exploration over replicated
//! hardware targets.
//!
//! The sequential [`Engine`](crate::Engine) time-multiplexes one
//! hardware device between all symbolic states. Snapshots make that
//! sound, but the device is still a serial bottleneck: only one state
//! makes progress at a time. [`ParallelEngine`] removes the bottleneck
//! by giving each of N worker threads a **private replica** of the
//! target ([`HwTarget::fork_clean`]) while sharing one lock-sharded
//! [`SnapshotStore`]. Workers pull `(state, snapshot)` work items from
//! a shared deque, perform their own `RestoreState`/`UpdateState`
//! context switches against their replica, and publish forked
//! successors back with fresh private snapshots.
//!
//! ## Determinism by merge order
//!
//! Scheduling is racy on purpose (work-sharing deque), but the paper's
//! context-switch discipline makes each state's execution a pure
//! function of `(state, its snapshot)`: a quantum starts by restoring
//! the state's private hardware image, so no worker ever observes
//! another state's device. When exploration runs to completion the
//! *set* of bugs, completed paths and covered PCs is therefore
//! schedule-independent; the engine merges them **ordered by state id**
//! (ids are themselves deterministic, derived from the fork tree — see
//! `SymState::next_fork_id`), not by arrival order, so a given seed
//! yields an identical [`RunResult`] regardless of worker count.
//! [`RunResult::canonical_digest`] is the bit-equality check used by
//! the regression tests. Budget truncation (`max_instructions`,
//! `max_paths`, `max_states`) is the one schedule-dependent edge: which
//! states are cut off depends on timing, so determinism is guaranteed
//! for runs that finish inside their budgets.

use crate::engine::{
    budget_stop, trace_io, ConsistencyMode, EngineConfig, EngineMetrics, RunResult, StopReason,
};
use crate::snapshots::{SnapId, SnapshotStore};
use crate::supervise::{FaultSummary, Supervisor};
use hardsnap_bus::{BusError, HwSnapshot, HwTarget, SnapshotCapture, SnapshotDelta, TargetError};
use hardsnap_symex::{BugReport, Executor, PortableState, StepOutcome, SymMmio, SymState};
use hardsnap_telemetry::{Counter, Metric, MetricsSnapshot, Recorder};
use hardsnap_util::sync::{scope, Mutex};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Condvar;

/// A schedulable unit: one symbolic state detached from any term pool,
/// plus its private hardware snapshot (`None` = power-on hardware).
///
/// A work item is re-runnable: a quantum is a pure function of
/// `(state, snapshot)` and publishes nothing until its last fallible
/// target operation has succeeded, so an attempt that dies to a
/// transport fault can simply be replayed — on the same replica after a
/// reset, or on a replacement after a quarantine — and produces
/// bit-identical successors (fork ids derive from the state's own fork
/// nonce, never from executor instance or timing).
struct WorkItem {
    state: PortableState,
    snap: Option<SnapId>,
    /// Failed attempts carried across quarantine re-queues, so a state
    /// whose quantum keeps dying counts toward `max_item_attempts` no
    /// matter how many fresh replicas pick it up. Without this, an item
    /// poisoned by a persistent fault (e.g. an unreadable snapshot)
    /// cycles re-queue → fail → quarantine → re-queue forever once no
    /// budget is left to trip.
    strikes: u32,
}

/// Queue state guarded by one mutex: the deque, the number of items
/// currently being processed (for termination detection) and the stop
/// flag raised on budget exhaustion.
struct QueueState {
    items: VecDeque<WorkItem>,
    inflight: usize,
    stopped: bool,
    dropped: u64,
    /// Why the stop flag was raised (first budget to trip, in the
    /// canonical priority order); `None` while running or when the
    /// queue drained normally.
    why: Option<StopReason>,
}

/// Everything the workers share.
struct Shared {
    q: Mutex<QueueState>,
    cv: Condvar,
    store: SnapshotStore,
    executed: AtomicU64,
    paths: AtomicU64,
    /// Hardware virtual time consumed across all workers (per-attempt
    /// deltas, including supervised-retry backoff), for the
    /// `max_vtime_ns` budget.
    vtime: AtomicU64,
    /// Scheduling quanta started across all workers, for the
    /// `max_quanta` budget.
    quanta: AtomicU64,
    /// Spare target taken by the first worker whose replica cannot
    /// rebuild itself (`fork_clean` unsupported) after a quarantine —
    /// typically a simulator standing in for a failed FPGA board.
    failover: Mutex<Option<Box<dyn HwTarget>>>,
}

/// One worker's private results, merged deterministically after join.
#[derive(Default)]
struct WorkerOutput {
    bugs: Vec<BugReport>,
    completed: Vec<PortableState>,
    covered: HashSet<u32>,
    metrics: EngineMetrics,
    vtime_ns: u64,
    /// Recovery counters: retries/recoveries from this worker's
    /// supervisor, quarantines it performed, faults injected across
    /// every replica it drove (including replaced ones).
    faults: FaultSummary,
    /// Unrecoverable-fault records, each naming the state it killed.
    fatal: Vec<String>,
    /// This worker's telemetry (its own trace track), `None` when
    /// telemetry is disabled.
    telemetry: Option<MetricsSnapshot>,
}

/// Per-attempt scratch: results a quantum produces before its success
/// is known. Merged into the worker's output only when the attempt
/// completes; an aborted attempt discards it (and un-counts its
/// instructions from the shared budget) so the replay cannot
/// double-report anything.
#[derive(Default)]
struct Attempt {
    bugs: Vec<BugReport>,
    completed: Vec<PortableState>,
    executed: u64,
}

/// MMIO proxy over a worker's private replica. Unlike the sequential
/// engine's proxy it keeps no I/O log: the parallel engine is
/// HardSnap-only, and replay logs exist for the reboot baseline.
///
/// Transient bus failures are retried by the supervisor; if one still
/// exhausts its retries the proxy raises `abort` so the quantum is torn
/// down and replayed, rather than letting a link fault masquerade as a
/// firmware bus bug. Deterministic `SlaveError`s pass through to the
/// executor exactly as on an honest transport.
struct ReplicaMmio<'a> {
    target: &'a mut dyn HwTarget,
    sup: &'a mut Supervisor,
    abort: Option<BusError>,
}

impl SymMmio for ReplicaMmio<'_> {
    fn mmio_read(&mut self, _state: &SymState, addr: u32) -> Result<u32, BusError> {
        let v = match self.sup.bus_read(self.target, addr) {
            Ok(v) => v,
            Err(e) => {
                if matches!(e, BusError::Timeout { .. } | BusError::NotReady) {
                    self.abort = Some(e.clone());
                }
                return Err(e);
            }
        };
        if trace_io() {
            eprintln!("par   R {addr:#010x} -> {v:#010x}");
        }
        Ok(v)
    }

    fn mmio_write(&mut self, _state: &SymState, addr: u32, data: u32) -> Result<(), BusError> {
        if let Err(e) = self.sup.bus_write(self.target, addr, data) {
            if matches!(e, BusError::Timeout { .. } | BusError::NotReady) {
                self.abort = Some(e.clone());
            }
            return Err(e);
        }
        if trace_io() {
            eprintln!("par   W {addr:#010x} <- {data:#010x}");
        }
        Ok(())
    }
}

/// The parallel HardSnap engine: N workers, N target replicas, one
/// shared snapshot store.
pub struct ParallelEngine {
    /// Merge-side executor: completed paths are imported into this pool
    /// (sorted by state id) so callers can inspect them exactly as with
    /// the sequential engine.
    pub executor: Executor,
    /// The shared, lock-sharded snapshot store.
    pub store: SnapshotStore,
    config: EngineConfig,
    replicas: Vec<Box<dyn HwTarget>>,
    /// Optional spare target handed to the first quarantining worker
    /// whose replica cannot rebuild itself (see
    /// [`ParallelEngine::set_failover`]).
    failover: Option<Box<dyn HwTarget>>,
    roots: Vec<WorkItem>,
    /// Work items still queued when the last run stopped on a budget:
    /// the schedulable frontier, preserved for campaign checkpointing.
    leftover: Vec<WorkItem>,
    /// Union of covered PCs across runs (campaign checkpointing
    /// persists the set itself; `RunResult` only carries its size).
    covered: HashSet<u32>,
    /// Results carried in from a saved campaign
    /// ([`ParallelEngine::seed_prior`]): folded into the next `run()`'s
    /// budgets and result so a save → resume split reports exactly what
    /// one uninterrupted run would have.
    carry_bugs: Vec<BugReport>,
    carry_completed: Vec<PortableState>,
    carry_instructions: u64,
    carry_paths: u64,
    carry_vtime_ns: u64,
    carry_quanta: u64,
    /// Merged metrics of the last run.
    pub metrics: EngineMetrics,
    /// Hardware virtual time accumulated by each worker's replica
    /// during the last run. The replicas run concurrently on real
    /// deployments, so the campaign's modeled wall clock is the *max*
    /// of these (while [`RunResult::hw_virtual_time_ns`] stays the
    /// schedule-invariant sum).
    pub worker_vtimes_ns: Vec<u64>,
}

impl ParallelEngine {
    /// Creates an engine with `workers` replicas forked from
    /// `prototype` (clamped to ≥ 1). The prototype itself is not
    /// driven; every worker gets a clean power-on copy.
    ///
    /// # Errors
    ///
    /// [`TargetError::Unsupported`] when the configuration is not
    /// [`ConsistencyMode::HardSnap`] (the baselines intrinsically
    /// serialize on one shared device) or the target cannot replicate
    /// itself; any error from [`HwTarget::fork_clean`].
    pub fn new(
        prototype: &dyn HwTarget,
        workers: usize,
        config: EngineConfig,
    ) -> Result<Self, TargetError> {
        if config.mode != ConsistencyMode::HardSnap {
            return Err(TargetError::Unsupported(
                "parallel engine requires ConsistencyMode::HardSnap".into(),
            ));
        }
        let replicas = (0..workers.max(1))
            .map(|_| prototype.fork_clean())
            .collect::<Result<Vec<_>, _>>()?;
        let store = SnapshotStore::new();
        store.set_mem_budget(config.snapshot_mem_budget);
        Ok(ParallelEngine {
            executor: Executor::new(config.policy),
            store,
            config,
            replicas,
            failover: None,
            roots: Vec::new(),
            leftover: Vec::new(),
            covered: HashSet::new(),
            carry_bugs: Vec::new(),
            carry_completed: Vec::new(),
            carry_instructions: 0,
            carry_paths: 0,
            carry_vtime_ns: 0,
            carry_quanta: 0,
            metrics: EngineMetrics::default(),
            worker_vtimes_ns: Vec::new(),
        })
    }

    /// Number of worker threads / target replicas.
    pub fn workers(&self) -> usize {
        self.replicas.len()
    }

    /// Installs a spare target used for failover: when a quarantined
    /// replica cannot rebuild itself via [`HwTarget::fork_clean`], the
    /// first worker in that situation takes this spare instead of
    /// soldiering on with a reset of the faulty device. Snapshots are
    /// portable across targets sharing the canonical format (paper
    /// §III-B), so the spare may be a different platform — typically a
    /// simulator standing in for a failed FPGA board.
    pub fn set_failover(&mut self, target: Box<dyn HwTarget>) {
        self.failover = Some(target);
    }

    /// Enqueues the initial state of `program` (power-on hardware; each
    /// root is reset on the replica that first picks it up).
    pub fn load_firmware(&mut self, program: &hardsnap_isa::Program) {
        let s = self
            .executor
            .initial_state(program.image.clone(), program.entry);
        self.roots.push(WorkItem {
            state: PortableState::export(&self.executor.pool, &s),
            snap: None,
            strikes: 0,
        });
    }

    /// Runs the analysis to completion (or budget exhaustion) across
    /// all workers and merges the results in state-id order.
    pub fn run(&mut self) -> RunResult {
        let host_start = std::time::Instant::now();
        // A resumed campaign continues where the saved run stopped: the
        // shared budget counters start from the carried-in totals, and
        // if those already exhaust a budget the queue starts stopped so
        // the frontier survives untouched for the next checkpoint.
        let carry_instructions = std::mem::take(&mut self.carry_instructions);
        let carry_paths = std::mem::take(&mut self.carry_paths);
        let carry_vtime = std::mem::take(&mut self.carry_vtime_ns);
        let carry_quanta = std::mem::take(&mut self.carry_quanta);
        let exhausted = budget_stop(
            &self.config,
            carry_instructions,
            carry_paths,
            carry_vtime,
            carry_quanta,
        );
        let shared = Shared {
            q: Mutex::new(QueueState {
                items: self
                    .leftover
                    .drain(..)
                    .chain(self.roots.drain(..))
                    .collect(),
                inflight: 0,
                stopped: exhausted.is_some(),
                dropped: 0,
                why: exhausted,
            }),
            cv: Condvar::new(),
            store: self.store.clone(),
            executed: AtomicU64::new(carry_instructions),
            paths: AtomicU64::new(carry_paths),
            vtime: AtomicU64::new(carry_vtime),
            quanta: AtomicU64::new(carry_quanta),
            failover: Mutex::new(self.failover.take()),
        };
        let config = self.config.clone();
        let mut outputs: Vec<WorkerOutput> = {
            let shared = &shared;
            let config = &config;
            scope(|scp| {
                let handles: Vec<_> = self
                    .replicas
                    .iter_mut()
                    .enumerate()
                    .map(|(w, t)| scp.spawn(move || run_worker(shared, w, t, config)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
        };
        // Unused spare survives for the next run.
        self.failover = shared.failover.lock().take();
        // Whatever the stop flag stranded in the queue is the
        // still-schedulable frontier: keep it (and its snapshots) for
        // campaign checkpointing instead of dropping it on the floor.
        self.leftover = shared.q.lock().items.drain(..).collect();

        // Deterministic merge: order by state id, never by arrival.
        // Carried-in results from a resumed campaign merge exactly like
        // another worker's output.
        let mut bugs: Vec<BugReport> = outputs.iter_mut().flat_map(|o| o.bugs.drain(..)).collect();
        bugs.append(&mut self.carry_bugs);
        bugs.sort_by(|a, b| {
            (a.state_id.0, a.pc, kind_rank(a.kind), &a.description).cmp(&(
                b.state_id.0,
                b.pc,
                kind_rank(b.kind),
                &b.description,
            ))
        });
        let mut completed_port: Vec<PortableState> = outputs
            .iter_mut()
            .flat_map(|o| o.completed.drain(..))
            .collect();
        completed_port.append(&mut self.carry_completed);
        completed_port.sort_by_key(|s| s.id.0);
        completed_port.truncate(self.config.max_paths);
        let completed: Vec<SymState> = completed_port
            .iter()
            .map(|p| p.import(&mut self.executor.pool))
            .collect();
        let mut metrics = EngineMetrics::default();
        let mut vtime: u64 = 0;
        let mut faults = FaultSummary::default();
        let mut fault_log: Vec<String> = Vec::new();
        // Telemetry merges in replica order (outputs are joined in spawn
        // order), so track ids and labels are stable across runs.
        let mut telemetry: Option<MetricsSnapshot> = None;
        self.worker_vtimes_ns.clear();
        for o in &mut outputs {
            self.covered.extend(o.covered.iter().copied());
            merge_metrics(&mut metrics, o.metrics);
            vtime += o.vtime_ns;
            self.worker_vtimes_ns.push(o.vtime_ns);
            faults.merge(&o.faults);
            fault_log.append(&mut o.fatal);
            if let Some(t) = o.telemetry.take() {
                match &mut telemetry {
                    Some(acc) => acc.merge(t),
                    None => telemetry = Some(t),
                }
            }
        }
        if let Some(t) = &mut telemetry {
            let st = self.store.stats();
            t.add_counter("store_hits", st.hits);
            t.add_counter("store_misses", st.misses);
            t.add_counter("store_evictions", st.evictions);
            t.add_counter("store_deferred", st.deferred);
            t.add_counter("store_spills", st.spills);
            t.add_counter("store_page_ins", st.page_ins);
            t.add_counter("store_resident_bytes_hwm", self.store.peak_bytes() as u64);
        }
        let stop = {
            let g = shared.q.lock();
            metrics.states_dropped += g.dropped;
            if g.stopped {
                g.why.unwrap_or(StopReason::Instructions)
            } else {
                StopReason::Complete
            }
        };
        metrics.paths_completed += carry_paths;
        metrics.quanta += carry_quanta;
        self.metrics = metrics;

        RunResult {
            sample_console: completed
                .first()
                .map(|s| s.console.clone())
                .unwrap_or_default(),
            bugs,
            completed,
            metrics,
            hw_virtual_time_ns: vtime + carry_vtime,
            host_time: host_start.elapsed(),
            instructions: shared.executed.load(Ordering::Relaxed),
            covered_pcs: self.covered.len(),
            faults,
            fault_log,
            telemetry,
            stop,
        }
    }

    /// The set of distinct firmware PCs covered so far (campaign
    /// checkpointing persists the set itself; `RunResult` only carries
    /// its size).
    pub fn covered_set(&self) -> &HashSet<u32> {
        &self.covered
    }

    /// Drains the schedulable frontier for campaign checkpointing:
    /// every work item stranded by a budget stop (plus any never-run
    /// roots) leaves as a portable state plus the id of its private
    /// snapshot in [`ParallelEngine::store`] (`None` for a power-on
    /// root). Sorted by state id so the checkpoint is byte-stable
    /// regardless of which worker last touched the queue.
    pub fn take_frontier(&mut self) -> Vec<(PortableState, Option<SnapId>)> {
        let mut out: Vec<(PortableState, Option<SnapId>)> = self
            .leftover
            .drain(..)
            .chain(self.roots.drain(..))
            .map(|it| (it.state, it.snap))
            .collect();
        out.sort_by_key(|(s, _)| s.id.0);
        out
    }

    /// Enqueues a frontier exported by a previous engine's
    /// `take_frontier` (with snapshot ids re-mapped to this engine's
    /// store by the campaign loader).
    pub fn resume_frontier(&mut self, frontier: Vec<(PortableState, Option<SnapId>)>) {
        for (state, snap) in frontier {
            self.roots.push(WorkItem {
                state,
                snap,
                strikes: 0,
            });
        }
    }

    /// Seeds the engine with the results of the run that produced a
    /// saved campaign, so the next [`ParallelEngine::run`] folds them
    /// into its budgets (instruction and path caps continue where the
    /// saved run stopped) and into its `RunResult` — making
    /// save → resume report exactly what one uninterrupted run would
    /// have.
    pub fn seed_prior(
        &mut self,
        instructions: u64,
        paths_completed: u64,
        vtime_ns: u64,
        quanta: u64,
        covered: impl IntoIterator<Item = u32>,
        bugs: Vec<BugReport>,
        completed: Vec<PortableState>,
    ) {
        self.carry_instructions = instructions;
        self.carry_paths = paths_completed;
        self.carry_vtime_ns = vtime_ns;
        self.carry_quanta = quanta;
        self.covered.extend(covered);
        self.carry_bugs = bugs;
        self.carry_completed = completed;
    }
}

/// Stable ordering rank for [`hardsnap_symex::BugKind`] (merge + digest
/// sort key).
pub(crate) fn kind_rank(kind: hardsnap_symex::BugKind) -> u8 {
    use hardsnap_symex::BugKind::*;
    match kind {
        AssertFailed => 0,
        FailHit => 1,
        Unmapped => 2,
        Unaligned => 3,
        IllegalInstruction => 4,
        Bus => 5,
        MmioByteAccess => 6,
    }
}

fn merge_metrics(into: &mut EngineMetrics, m: EngineMetrics) {
    into.context_switches += m.context_switches;
    into.snapshots_saved += m.snapshots_saved;
    into.snapshots_restored += m.snapshots_restored;
    into.reboots += m.reboots;
    into.replayed_ios += m.replayed_ios;
    into.paths_completed += m.paths_completed;
    into.states_dropped += m.states_dropped;
    into.irqs_delivered += m.irqs_delivered;
    into.quanta += m.quanta;
}

/// A capture resolved into its store-ready form: either a native delta
/// against a base already registered in the shared store, or a full
/// image (anchor mismatch, or delta mode off).
enum Stored {
    Native(SnapId, SnapshotDelta, Arc<HwSnapshot>),
    Full(HwSnapshot),
}

/// Resolves a target capture against the worker-local base anchor,
/// registering fresh full captures as shared bases. A delta whose base
/// `Arc` is not the anchored one (target rebased without the worker
/// seeing the full image) is materialized once and stored full.
fn resolve_capture(
    store: &SnapshotStore,
    anchor: &mut Option<(SnapId, Arc<HwSnapshot>)>,
    cap: SnapshotCapture,
) -> Result<Stored, TargetError> {
    match cap {
        SnapshotCapture::Full(arc) => {
            let bid = store.insert_base((*arc).clone());
            *anchor = Some((bid, arc.clone()));
            let empty = SnapshotDelta {
                regs: Vec::new(),
                mem_words: Vec::new(),
                cycle: arc.cycle,
            };
            Ok(Stored::Native(bid, empty, arc))
        }
        SnapshotCapture::Delta { base, delta } => match anchor {
            Some((bid, tracked)) if Arc::ptr_eq(tracked, &base) => {
                Ok(Stored::Native(*bid, delta, base))
            }
            _ => match delta.apply(&base) {
                Ok(full) => Ok(Stored::Full(full)),
                Err(e) => Err(TargetError::CorruptSnapshot(format!(
                    "native delta unusable: {e}"
                ))),
            },
        },
    }
}

/// Installs a resolved capture into the shared store, updating
/// `existing` in place when the state already owns a snapshot id.
/// Native installs are O(delta); if the anchored base vanished from the
/// store (all dependents retired), falls back to a one-time full
/// materialization rather than losing the snapshot.
///
/// # Errors
///
/// [`TargetError::CorruptSnapshot`] when the fallback materialization
/// fails — the target handed back a delta that no longer applies to
/// the base it was captured against, so the snapshot content is gone
/// and the attempt must be torn down and replayed.
fn install_stored(
    store: &SnapshotStore,
    stored: &Stored,
    existing: Option<SnapId>,
) -> Result<SnapId, TargetError> {
    let materialize = |delta: &SnapshotDelta, base: &Arc<HwSnapshot>| {
        delta.apply(base).map_err(|e| {
            TargetError::CorruptSnapshot(format!(
                "capture delta no longer applies to its base: {e}"
            ))
        })
    };
    Ok(match stored {
        Stored::Native(bid, delta, base) => match existing {
            Some(sid) => {
                if !store.update_delta_native(sid, *bid, delta.clone()) {
                    store.update(sid, materialize(delta, base)?);
                }
                sid
            }
            None => match store.insert_delta_native(*bid, delta.clone()) {
                Some(sid) => sid,
                None => store.insert(materialize(delta, base)?),
            },
        },
        Stored::Full(full) => match existing {
            Some(sid) => {
                store.update(sid, full.clone());
                sid
            }
            None => store.insert(full.clone()),
        },
    })
}

/// Raises the stop flag (recording why) when a budget has tripped.
/// Called at every quantum boundary — item hand-out and item retire —
/// so cancellation and deadlines are honoured within one quantum per
/// worker without any mid-quantum interruption.
fn check_budgets(shared: &Shared, g: &mut QueueState, config: &EngineConfig) {
    if g.stopped {
        return;
    }
    if let Some(why) = budget_stop(
        config,
        shared.executed.load(Ordering::Relaxed),
        shared.paths.load(Ordering::Relaxed),
        shared.vtime.load(Ordering::Relaxed),
        shared.quanta.load(Ordering::Relaxed),
    ) {
        g.stopped = true;
        g.why = Some(why);
    }
}

/// Blocks until a work item is available; returns `None` on
/// termination (queue drained with nothing in flight, or stop flag).
fn next_item(shared: &Shared, config: &EngineConfig) -> Option<WorkItem> {
    let mut g = shared.q.lock();
    loop {
        check_budgets(shared, &mut g, config);
        if g.stopped {
            shared.cv.notify_all();
            return None;
        }
        if let Some(it) = g.items.pop_front() {
            g.inflight += 1;
            return Some(it);
        }
        if g.inflight == 0 {
            shared.cv.notify_all();
            return None;
        }
        g = shared
            .cv
            .wait(g)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
    }
}

/// Publishes `successors` and retires the in-flight slot, raising the
/// stop flag when a budget is exhausted and dropping successors beyond
/// the fork-bomb guard.
fn finish_item(shared: &Shared, successors: Vec<WorkItem>, config: &EngineConfig) {
    let mut g = shared.q.lock();
    g.inflight -= 1;
    for s in successors {
        if g.items.len() + g.inflight >= config.max_states {
            g.dropped += 1;
            if let Some(sid) = s.snap {
                shared.store.remove(sid);
            }
            continue;
        }
        g.items.push_back(s);
    }
    check_budgets(shared, &mut g, config);
    drop(g);
    shared.cv.notify_all();
}

/// One worker: a private executor (term pool + solver) and a private
/// target replica, looping over shared work items.
///
/// Each item runs as an **attempt**: a quantum that publishes nothing
/// until every fallible target operation has succeeded. When an attempt
/// dies to a transport fault the worker un-counts its instructions,
/// resets the replica and replays the item — deterministically, since a
/// quantum is a pure function of `(state, snapshot)`. A replica that
/// burns through its fault budget is quarantined: the worker rebuilds a
/// fresh replica ([`HwTarget::fork_clean`], falling back to the shared
/// failover spare) and re-queues the item, so in-flight work survives a
/// dead board. Only after `max_item_attempts` total failures is the
/// state abandoned (and named in the fault log).
fn run_worker(
    shared: &Shared,
    widx: usize,
    replica: &mut Box<dyn HwTarget>,
    config: &EngineConfig,
) -> WorkerOutput {
    let mut ex = Executor::new(config.policy);
    let mut out = WorkerOutput::default();
    let mut sup = Supervisor::new(config.retry);
    // One trace track per worker replica; all workers share the process
    // epoch, so their tracks line up on one timeline.
    let rec = Recorder::from_config(&config.telemetry, widx as u32, format!("worker-{widx}"));
    replica.attach_recorder(&rec);
    if config.delta_snapshots {
        replica.set_delta_snapshots(true);
    }
    sup.recorder = rec.clone();
    // Virtual time accumulates across replica replacements: the base
    // resets whenever a fresh replica (with a fresh clock) is installed.
    let mut vtime_accum: u64 = 0;
    let mut vtime_base = replica.virtual_time_ns();
    // Terminal quantum failures since this replica was (re)built.
    let mut health_faults: u32 = 0;
    // Worker-local delta anchor (delta-snapshot mode): the replica's
    // live base `Arc` mapped to its shared-store id, so native deltas
    // install in O(delta). The anchor choice only affects storage
    // representation, never snapshot content, so worker-local anchors
    // do not perturb determinism.
    let mut anchor: Option<(SnapId, Arc<HwSnapshot>)> = None;
    'items: while let Some(mut item) = next_item(shared, config) {
        // Resume the strike count a quarantine re-queue carried over:
        // `max_item_attempts` bounds an item's *total* failures, not
        // failures per pickup.
        let mut attempts: u32 = item.strikes;
        loop {
            attempts += 1;
            let mut scratch = Attempt::default();
            // Per-attempt virtual-time delta, charged to the shared
            // `max_vtime_ns` budget. Aborted attempts still consumed
            // real device time, so their cost stays charged (unlike
            // their instructions, which the replay re-counts).
            let vt0 = replica.virtual_time_ns() + sup.extra_vtime_ns;
            let outcome = run_quantum(
                shared,
                &mut ex,
                replica.as_mut(),
                config,
                &item,
                &mut scratch,
                &mut out,
                &mut anchor,
                &mut sup,
                &rec,
            );
            let vt1 = replica.virtual_time_ns() + sup.extra_vtime_ns;
            shared
                .vtime
                .fetch_add(vt1.saturating_sub(vt0), Ordering::Relaxed);
            match outcome {
                Ok(successors) => {
                    rec.observe(Metric::QuantumInstructions, scratch.executed);
                    out.bugs.append(&mut scratch.bugs);
                    out.completed.append(&mut scratch.completed);
                    finish_item(shared, successors, config);
                    continue 'items;
                }
                Err(e) => {
                    // Make the aborted attempt invisible: the replay
                    // re-counts these instructions (they feed the
                    // canonical digest and the stop condition).
                    shared
                        .executed
                        .fetch_sub(scratch.executed, Ordering::Relaxed);
                    health_faults += 1;
                    if attempts >= config.retry.max_item_attempts {
                        out.fatal.push(format!(
                            "state {:?} killed after {attempts} attempts: {e}",
                            item.state.id
                        ));
                        out.metrics.states_dropped += 1;
                        if let Some(sid) = item.snap {
                            shared.store.remove(sid);
                        }
                        finish_item(shared, Vec::new(), config);
                        continue 'items;
                    }
                    if health_faults > config.retry.replica_fault_budget {
                        // Quarantine: this replica has exceeded its
                        // fault budget. Rebuild a clean replacement and
                        // re-queue the item — another (healthy) worker
                        // may pick it up first. Re-queuing cannot trip
                        // the fork-bomb drop guard: finish_item frees
                        // this item's in-flight slot before re-adding
                        // it, so the total never grows.
                        out.faults.quarantined += 1;
                        rec.count(Counter::Quarantines);
                        rec.instant("fault", "quarantine", u64::from(attempts));
                        let fresh = match replica.fork_clean() {
                            Ok(t) => Some(t),
                            Err(_) => shared.failover.lock().take(),
                        };
                        match fresh {
                            Some(t) => {
                                // Retire the old replica's books before
                                // it is dropped.
                                if let Some(stats) = replica.fault_stats() {
                                    out.faults.injected += stats.injected();
                                }
                                vtime_accum += replica.virtual_time_ns().saturating_sub(vtime_base);
                                *replica = t;
                                replica.attach_recorder(&rec);
                                if config.delta_snapshots {
                                    replica.set_delta_snapshots(true);
                                }
                                // The replacement has no live base; its
                                // first capture re-anchors.
                                anchor = None;
                                vtime_base = replica.virtual_time_ns();
                            }
                            None => {
                                // No way to rebuild: keep the device,
                                // full reset, hope for the best.
                                replica.reset();
                            }
                        }
                        health_faults = 0;
                        item.strikes = attempts;
                        finish_item(shared, vec![item], config);
                        continue 'items;
                    }
                    // Within budget: reset the wedged replica and replay
                    // the item locally.
                    replica.reset();
                }
            }
        }
    }
    out.vtime_ns =
        vtime_accum + replica.virtual_time_ns().saturating_sub(vtime_base) + sup.extra_vtime_ns;
    out.faults.retried = sup.retried;
    out.faults.recovered = sup.recovered;
    out.faults.injected += replica.fault_stats().map(|s| s.injected()).unwrap_or(0);
    out.telemetry = rec.snapshot();
    out
}

/// Runs one work item for up to one quantum on the worker's replica:
/// `RestoreState`, step/fork/halt, `UpdateState`. Returns the work
/// items to publish back.
///
/// **Abort safety:** every path through this function mutates the
/// shared store only *after* its last fallible target operation, and
/// buffers bugs/completed paths in `scratch`. An `Err` return therefore
/// leaves the store exactly as the attempt found it, and replaying the
/// same `(state, snapshot)` item reproduces the identical outcome —
/// including fork ids, which derive from the state's own fork nonce.
#[allow(clippy::too_many_arguments)]
fn run_quantum(
    shared: &Shared,
    ex: &mut Executor,
    target: &mut dyn HwTarget,
    config: &EngineConfig,
    item: &WorkItem,
    scratch: &mut Attempt,
    out: &mut WorkerOutput,
    anchor: &mut Option<(SnapId, Arc<HwSnapshot>)>,
    sup: &mut Supervisor,
    rec: &Recorder,
) -> Result<Vec<WorkItem>, TargetError> {
    let mut state = item.state.import(&mut ex.pool);
    let _qspan = rec.span("engine", "quantum");
    rec.count(Counter::Quanta);
    out.metrics.quanta += 1;
    shared.quanta.fetch_add(1, Ordering::Relaxed);
    // RestoreState: the item's private snapshot, or power-on hardware
    // for a root state.
    out.metrics.context_switches += 1;
    rec.count(Counter::ContextSwitches);
    match item.snap {
        Some(sid) => {
            let snap = shared
                .store
                .try_get(sid)
                .map_err(|e| TargetError::CorruptSnapshot(format!("state {:?}: {e}", state.id)))?;
            sup.restore_snapshot(target, &snap)?;
            out.metrics.snapshots_restored += 1;
        }
        None => target.reset(),
    }

    // UpdateState for a surviving continuation: save the live context
    // into the state's private snapshot and requeue. The store mutation
    // happens only after the supervised save has succeeded.
    let save_continuation = |ex: &Executor,
                             target: &mut dyn HwTarget,
                             out: &mut WorkerOutput,
                             anchor: &mut Option<(SnapId, Arc<HwSnapshot>)>,
                             sup: &mut Supervisor,
                             s: &SymState|
     -> Result<WorkItem, TargetError> {
        let sid = if config.delta_snapshots {
            let cap = sup.save_capture(target)?;
            out.metrics.snapshots_saved += 1;
            let stored = resolve_capture(&shared.store, anchor, cap)?;
            install_stored(&shared.store, &stored, item.snap)?
        } else {
            let snap = sup.save_snapshot(target)?;
            out.metrics.snapshots_saved += 1;
            match item.snap {
                Some(sid) => {
                    shared.store.update(sid, snap);
                    sid
                }
                None => shared.store.insert(snap),
            }
        };
        Ok(WorkItem {
            state: PortableState::export(&ex.pool, s),
            snap: Some(sid),
            strikes: 0,
        })
    };

    let mut remaining = config.quantum.max(1);
    loop {
        // ServePendingInterrupt: replica-local, so delivery depends
        // only on the restored hardware state. Supervised: a glitched
        // IRQ read is re-sampled until two consecutive reads agree, so
        // EMI on the interrupt net never changes which interrupt is
        // delivered (digest identity under `--fault-rate`).
        let lines = sup.irq_lines(&mut *target);
        if lines != 0 && ex.enter_irq(&mut state, lines).is_some() {
            out.metrics.irqs_delivered += 1;
            rec.count(Counter::IrqsDelivered);
        }

        let state_id = state.id;
        out.covered.insert(state.pc);
        let mut proxy = ReplicaMmio {
            target: &mut *target,
            sup: &mut *sup,
            abort: None,
        };
        let outcome = ex.step(state, &mut proxy);
        if let Some(e) = proxy.abort.take() {
            // A transient bus fault exhausted its retries mid-step. The
            // executor saw it as a bus error, but it is a transport
            // casualty, not a firmware bug: tear the attempt down
            // before it can publish anything.
            return Err(TargetError::Bus(e));
        }
        scratch.executed += 1;
        let now = shared.executed.fetch_add(1, Ordering::Relaxed) + 1;
        remaining -= 1;
        target.step(config.cycles_per_instruction);

        match outcome {
            StepOutcome::ContinueWith(s) => {
                if remaining == 0 || now >= config.max_instructions {
                    return Ok(vec![save_continuation(ex, target, out, anchor, sup, &s)?]);
                }
                state = s;
            }
            StepOutcome::Fork(succ) => {
                // Every forked state gets a private, non-shared
                // snapshot of the fork-point hardware. In delta mode
                // the target emits a native O(changed) capture and each
                // child becomes a copy-on-write delta entry against the
                // shared base.
                let stored = if config.delta_snapshots {
                    let cap = sup.save_capture(target)?;
                    out.metrics.snapshots_saved += 1;
                    resolve_capture(&shared.store, anchor, cap)?
                } else {
                    let snap = sup.save_snapshot(target)?;
                    out.metrics.snapshots_saved += 1;
                    Stored::Full(snap)
                };
                let mut items = Vec::with_capacity(succ.len());
                for s in succ {
                    let existing = if s.id == state_id { item.snap } else { None };
                    let sid = install_stored(&shared.store, &stored, existing)?;
                    items.push(WorkItem {
                        state: PortableState::export(&ex.pool, &s),
                        snap: Some(sid),
                        strikes: 0,
                    });
                }
                return Ok(items);
            }
            StepOutcome::Halted(s) => {
                // Success exit: no fallible op remains, so the shared
                // counters/store may be touched directly.
                shared.paths.fetch_add(1, Ordering::Relaxed);
                out.metrics.paths_completed += 1;
                scratch.completed.push(PortableState::export(&ex.pool, &s));
                if let Some(sid) = item.snap {
                    shared.store.remove(sid);
                }
                return Ok(Vec::new());
            }
            StepOutcome::Bug {
                report,
                continuation,
            } => {
                // Buffer the report: the continuation save below can
                // still fail, and the replay must not double-report.
                scratch.bugs.push(report);
                return match continuation {
                    Some(s) => Ok(vec![save_continuation(ex, target, out, anchor, sup, &s)?]),
                    None => {
                        shared.paths.fetch_add(1, Ordering::Relaxed);
                        out.metrics.paths_completed += 1;
                        if let Some(sid) = item.snap {
                            shared.store.remove(sid);
                        }
                        Ok(Vec::new())
                    }
                };
            }
        }
    }
}
