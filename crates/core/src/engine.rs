//! The HardSnap analysis engine: Algorithm 1 of the paper.
//!
//! The engine owns the symbolic executor, a hardware target and the
//! snapshot store, and schedules symbolic states with **hardware context
//! switching**: whenever the selected state is not the one whose
//! hardware context is live, the live context is saved (`UpdateState`)
//! and the selected state's private snapshot is restored
//! (`RestoreState`). Forked states receive fresh, non-shared hardware
//! snapshots.
//!
//! Two baseline modes reproduce the paper's Fig. 1 comparison:
//!
//! * [`ConsistencyMode::NaiveConsistent`] — reboot-and-replay: on every
//!   context switch the hardware is fully reset and the state's entire
//!   MMIO interaction log is replayed (slow but correct).
//! * [`ConsistencyMode::NaiveInconsistent`] — hardware-in-the-loop with
//!   no state management: all symbolic states share the live hardware
//!   (fast but wrong — the mode used by prior hardware-in-the-loop DSE).

use crate::snapshots::{SnapId, SnapshotStore};
use crate::supervise::{FaultSummary, RetryPolicy, Supervisor};
use hardsnap_bus::{BusError, HwSnapshot, HwTarget, SnapshotCapture, SnapshotDelta, TargetError};
use hardsnap_symex::{
    BugReport, Concretization, Executor, PortableState, StateId, StepOutcome, SymMmio, SymState,
};
use hardsnap_telemetry::{Counter, Metric, MetricsSnapshot, Recorder, TelemetryConfig};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Whether per-operation I/O tracing is on, sampled once per process
/// (it sits on the hottest path in the engine: every forwarded MMIO
/// operation and every replayed one). Controlled by the unified
/// `HARDSNAP_TELEMETRY=io` switch; the legacy `HARDSNAP_TRACE_IO`
/// variable keeps working (see [`hardsnap_telemetry::TelemetryConfig`]).
pub(crate) fn trace_io() -> bool {
    hardsnap_telemetry::global().trace_io
}

/// State-consistency strategy (the three scenarios of paper Fig. 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsistencyMode {
    /// Hardware snapshotting (the paper's contribution).
    HardSnap,
    /// Full reboot + I/O replay on every context switch.
    NaiveConsistent,
    /// Shared live hardware, no context management.
    NaiveInconsistent,
}

/// Cooperative cancellation handle shared between an engine run and an
/// outside controller (the serve daemon's watchdog, a signal handler, a
/// test harness). Cancelling is a *request*, honoured at the next
/// quantum boundary: the engine stops exactly as it does for a budget —
/// frontier intact, partial [`RunResult`] valid, campaign checkpoint
/// resumable — rather than being killed mid-quantum.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<std::sync::atomic::AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::Acquire)
    }
}

/// Why a run stopped. Carried on [`RunResult`] but deliberately
/// excluded from [`RunResult::canonical_digest`]: *where* a run was cut
/// is schedule, not semantics — a budget-exhausted run resumed to
/// completion must digest identically to an uninterrupted one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Frontier drained: every path ran to completion.
    Complete,
    /// Instruction budget (`max_instructions`) exhausted.
    Instructions,
    /// Path budget (`max_paths`) exhausted.
    Paths,
    /// Virtual-time budget (`max_vtime_ns`) exhausted.
    VirtualTime,
    /// Quantum budget (`max_quanta`) exhausted.
    Quanta,
    /// Wall-clock deadline (`wall_deadline`) passed.
    WallClock,
    /// Cancelled via [`CancelToken`].
    Cancelled,
}

impl StopReason {
    /// Stable wire name (serve protocol, JSON reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            StopReason::Complete => "complete",
            StopReason::Instructions => "instructions",
            StopReason::Paths => "paths",
            StopReason::VirtualTime => "vtime",
            StopReason::Quanta => "quanta",
            StopReason::WallClock => "wall-clock",
            StopReason::Cancelled => "cancelled",
        }
    }

    /// Parses a wire name back (serve protocol round-trips).
    pub fn parse(s: &str) -> Option<StopReason> {
        Some(match s {
            "complete" => StopReason::Complete,
            "instructions" => StopReason::Instructions,
            "paths" => StopReason::Paths,
            "vtime" => StopReason::VirtualTime,
            "quanta" => StopReason::Quanta,
            "wall-clock" => StopReason::WallClock,
            "cancelled" => StopReason::Cancelled,
            _ => return None,
        })
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// State-selection heuristic (`SelectNextState`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Searcher {
    /// Depth-first (fewest context switches).
    Dfs,
    /// Breadth-first (most context switches — stresses snapshotting).
    Bfs,
    /// Round-robin over active states.
    RoundRobin,
    /// Uniform random state selection (KLEE's random-state search),
    /// deterministic for a given seed.
    Random(u64),
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Consistency strategy.
    pub mode: ConsistencyMode,
    /// State-selection heuristic.
    pub searcher: Searcher,
    /// Concretization policy at the VM boundary.
    pub policy: Concretization,
    /// Stop after this many symbolically executed instructions.
    pub max_instructions: u64,
    /// Stop after this many completed (halted) paths.
    pub max_paths: usize,
    /// Cap on simultaneously active states (fork bomb guard).
    pub max_states: usize,
    /// Cycles the hardware advances per executed instruction (models the
    /// firmware clock; interrupts fire based on this).
    pub cycles_per_instruction: u64,
    /// Scheduling quantum: instructions a selected state runs before the
    /// scheduler re-selects (KLEE-style batching; bounds context-switch
    /// frequency).
    pub quantum: u64,
    /// Modeled cost of a full device reboot (naive-consistent baseline).
    /// Embedded-device restarts are "extremely slow" (paper §II, citing
    /// Muench et al.); 100 ms models a fast MCU power cycle + boot ROM.
    pub reboot_cost_ns: u64,
    /// Store fork snapshots as deltas against the fork-point image
    /// (storage ablation; see `SnapshotStore`).
    pub delta_snapshots: bool,
    /// Resident-byte budget for the snapshot store (`None` =
    /// unbudgeted). Under a budget the store spills least-recently-used
    /// cold snapshots to a spool directory and pages them back in on
    /// demand, bounding the analysis' snapshot RAM high-water mark
    /// without changing its semantic result. Surfaced as `analyze
    /// --snapshot-mem-budget BYTES`.
    pub snapshot_mem_budget: Option<usize>,
    /// Stop after this much hardware virtual time has been consumed
    /// (ns), including modeled reboot penalties and supervised-retry
    /// backoff. `u64::MAX` = unbudgeted.
    pub max_vtime_ns: u64,
    /// Stop after this many scheduling quanta. `u64::MAX` = unbudgeted.
    pub max_quanta: u64,
    /// Hard wall-clock deadline: the run stops at the first quantum
    /// boundary past this instant. `None` = no deadline. Checked, like
    /// all budgets, *between* quanta, so the partial result and any
    /// campaign checkpoint taken afterwards are always valid.
    pub wall_deadline: Option<std::time::Instant>,
    /// Cooperative cancellation: an outside controller (serve watchdog,
    /// signal handler) flips the token and the run stops at the next
    /// quantum boundary with [`StopReason::Cancelled`].
    pub cancel: CancelToken,
    /// Retry/backoff/quarantine policy for fallible target operations
    /// (see [`crate::supervise`]).
    pub retry: RetryPolicy,
    /// Telemetry switches (spans/counters/histograms + I/O tracing).
    /// Defaults to the process-wide `HARDSNAP_TELEMETRY` configuration;
    /// telemetry is observe-only and never perturbs the analysis.
    pub telemetry: TelemetryConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: ConsistencyMode::HardSnap,
            searcher: Searcher::RoundRobin,
            policy: Concretization::Minimal,
            max_instructions: 1_000_000,
            max_paths: 10_000,
            max_states: 10_000,
            cycles_per_instruction: 4,
            quantum: 32,
            reboot_cost_ns: 100_000_000,
            delta_snapshots: false,
            snapshot_mem_budget: None,
            max_vtime_ns: u64::MAX,
            max_quanta: u64::MAX,
            wall_deadline: None,
            cancel: CancelToken::new(),
            retry: RetryPolicy::default(),
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// One forwarded I/O operation (recorded for reboot-replay and
/// diagnostics).
///
/// `at_age` is the device age (cycles the owning state has experienced)
/// at which the operation was issued. Replay must reproduce not only the
/// operations but their timing — the paper calls record-and-replay
/// "error-prone as the number of interactions to replay may be
/// considerable and time sensitive" (§I) — so the reboot baseline steps
/// the device through the recorded idle gaps as well.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoOp {
    /// True for writes, false for reads.
    pub is_write: bool,
    /// Address.
    pub addr: u32,
    /// Value written (writes) or observed (reads).
    pub value: u32,
    /// Device age (state-local cycles) when issued.
    pub at_age: u64,
}

/// Engine metrics for the evaluation harnesses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Hardware context switches performed.
    pub context_switches: u64,
    /// Snapshots saved (UpdateState + fork snapshots).
    pub snapshots_saved: u64,
    /// Snapshots restored (RestoreState).
    pub snapshots_restored: u64,
    /// Full hardware reboots (naive-consistent mode).
    pub reboots: u64,
    /// I/O operations replayed after reboots.
    pub replayed_ios: u64,
    /// Completed (halted) paths.
    pub paths_completed: u64,
    /// States dropped by the fork-bomb guard.
    pub states_dropped: u64,
    /// Interrupts delivered.
    pub irqs_delivered: u64,
    /// Scheduling quanta executed (budget unit for `max_quanta`; a
    /// resumed campaign carries its consumed quanta forward so the
    /// combined run respects the original budget).
    pub quanta: u64,
}

/// Result of a finished analysis run.
#[derive(Debug)]
pub struct RunResult {
    /// Bugs found, in discovery order.
    pub bugs: Vec<BugReport>,
    /// Final states of completed (halted) paths, in completion order
    /// (inspect final memory, console output and path constraints).
    pub completed: Vec<SymState>,
    /// Engine metrics.
    pub metrics: EngineMetrics,
    /// Hardware virtual time consumed (ns).
    pub hw_virtual_time_ns: u64,
    /// Host wall-clock time of the run.
    pub host_time: std::time::Duration,
    /// Instructions symbolically executed.
    pub instructions: u64,
    /// Distinct firmware PCs covered across all explored paths.
    pub covered_pcs: usize,
    /// Console output of the first completed path (diagnostics).
    pub sample_console: Vec<u8>,
    /// Fault-injection / recovery summary (injected, retried,
    /// recovered, quarantined). Deliberately excluded from
    /// [`RunResult::canonical_digest`]: recovery must not change the
    /// semantic result.
    pub faults: FaultSummary,
    /// Human-readable records of unrecoverable target faults, each
    /// naming the symbolic state it killed. Empty on a clean run.
    pub fault_log: Vec<String>,
    /// Telemetry captured during the run (`None` when telemetry is
    /// disabled). Like `metrics`/timing, excluded from
    /// [`RunResult::canonical_digest`]: observation must never change
    /// the semantic result.
    pub telemetry: Option<MetricsSnapshot>,
    /// Why the run stopped. Excluded from
    /// [`RunResult::canonical_digest`] — where a run was cut is
    /// schedule, not semantics.
    pub stop: StopReason,
}

impl RunResult {
    /// Order-insensitive digest of the run's semantic payload: bugs,
    /// completed paths, coverage and instruction count — everything a
    /// schedule must not change. Timing (`host_time`,
    /// `hw_virtual_time_ns`) and bookkeeping (`metrics`) are excluded:
    /// the sequential and parallel engines legitimately differ there.
    ///
    /// All hashed fields are pool-independent (ids, PCs, console bytes,
    /// solver models), so digests compare across engines whose term
    /// pools interned in different orders. Sequential and parallel runs
    /// of the same seed must produce equal digests whenever the run
    /// completed inside its budgets; the determinism suite relies on
    /// exactly that.
    pub fn canonical_digest(&self) -> u64 {
        // Serialize each item to bytes, sort the serializations (an
        // order-insensitive canonical form), then FNV-1a the lot.
        fn push_u64(buf: &mut Vec<u8>, v: u64) {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let mut items: Vec<Vec<u8>> = Vec::new();
        for b in &self.bugs {
            let mut e = vec![b'B', crate::parallel::kind_rank(b.kind)];
            push_u64(&mut e, u64::from(b.pc));
            push_u64(&mut e, b.state_id.0);
            e.extend_from_slice(b.description.as_bytes());
            if let Some(model) = &b.testcase {
                let mut vars: Vec<(&str, u64)> = model.iter().collect();
                vars.sort_unstable();
                for (name, value) in vars {
                    e.push(0);
                    e.extend_from_slice(name.as_bytes());
                    push_u64(&mut e, value);
                }
            }
            items.push(e);
        }
        for s in &self.completed {
            let mut e = vec![b'P'];
            push_u64(&mut e, s.id.0);
            push_u64(&mut e, u64::from(s.pc));
            push_u64(&mut e, s.instret);
            push_u64(&mut e, u64::from(s.sym_count));
            push_u64(&mut e, s.constraints.len() as u64);
            e.extend_from_slice(&s.console);
            items.push(e);
        }
        items.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for e in &items {
            eat(e);
        }
        eat(&(self.covered_pcs as u64).to_le_bytes());
        eat(&self.instructions.to_le_bytes());
        h
    }
}

/// First exceeded budget in the canonical priority order
/// (cancel → wall-clock → instructions → paths → virtual time →
/// quanta), or `None` while every budget still has headroom. Shared by
/// the sequential and parallel engines so "which budget tripped" is
/// reported identically regardless of worker count.
pub(crate) fn budget_stop(
    config: &EngineConfig,
    executed: u64,
    paths: u64,
    vtime_ns: u64,
    quanta: u64,
) -> Option<StopReason> {
    if config.cancel.is_cancelled() {
        return Some(StopReason::Cancelled);
    }
    if let Some(deadline) = config.wall_deadline {
        if std::time::Instant::now() >= deadline {
            return Some(StopReason::WallClock);
        }
    }
    if executed >= config.max_instructions {
        return Some(StopReason::Instructions);
    }
    if paths >= config.max_paths as u64 {
        return Some(StopReason::Paths);
    }
    if vtime_ns >= config.max_vtime_ns {
        return Some(StopReason::VirtualTime);
    }
    if quanta >= config.max_quanta {
        return Some(StopReason::Quanta);
    }
    None
}

/// A hardware property checked against every snapshot the controller
/// takes (the paper's "assertions ... relevant for the detection of
/// peripherals misuse", applied at snapshot granularity).
pub struct HwAssertion {
    /// Name for reports.
    pub name: String,
    /// Returns false when violated.
    pub check: Box<dyn Fn(&HwSnapshot) -> bool>,
}

/// The HardSnap engine (Algorithm 1).
pub struct Engine {
    /// The symbolic executor (pool, solver, policy).
    pub executor: Executor,
    target: Box<dyn HwTarget>,
    /// Snapshot store shared with diagnostics.
    pub store: SnapshotStore,
    config: EngineConfig,
    active: VecDeque<SymState>,
    /// Which state's hardware context is currently live.
    current_owner: Option<StateId>,
    /// State id → its private snapshot id.
    snap_of: HashMap<StateId, SnapId>,
    /// State id → forwarded-I/O log (for reboot replay + diagnostics).
    io_logs: HashMap<StateId, Vec<IoOp>>,
    /// State id → device age (cycles of hardware time the state has
    /// experienced; drives timing-accurate replay).
    hw_age: HashMap<StateId, u64>,
    /// Metrics.
    pub metrics: EngineMetrics,
    /// Engine-side modeled time (reboot penalties) not visible to the
    /// target's own clock.
    extra_time_ns: u64,
    /// Deterministic RNG state for [`Searcher::Random`].
    rng_state: u64,
    /// Most recent shared delta base (delta-snapshot mode).
    last_base: Option<SnapId>,
    /// The target's live delta base mapped to its store id: native
    /// deltas whose base `Arc` matches are installed without re-diffing
    /// or materializing (delta-snapshot mode).
    target_base: Option<(SnapId, Arc<HwSnapshot>)>,
    /// Distinct firmware PCs executed across all states.
    covered_pcs: HashSet<u32>,
    /// Hardware property assertions.
    hw_assertions: Vec<HwAssertion>,
    /// Violations of hardware assertions: (assertion name, state id).
    pub hw_violations: Vec<(String, StateId)>,
    /// Retry supervision over the target's fallible operations.
    supervisor: Supervisor,
    /// Unrecoverable-fault records, each naming the state it killed.
    fault_log: Vec<String>,
    /// Results carried in from a saved campaign ([`Engine::seed_prior`]):
    /// folded into the next `run()`'s budgets and result so a
    /// save → resume split reports exactly what one uninterrupted run
    /// would have.
    carry_bugs: Vec<BugReport>,
    carry_completed: Vec<SymState>,
    carry_instructions: u64,
    carry_vtime_ns: u64,
    /// Telemetry sink (track 0, "engine"); shared with the supervisor
    /// and attached to the target. Disabled = a single `None` branch.
    recorder: Recorder,
}

/// MMIO proxy handed to the executor: forwards to the live target and
/// appends to the owning state's I/O log with device-age stamps.
struct TargetMmio<'a> {
    target: &'a mut dyn HwTarget,
    log: &'a mut Vec<IoOp>,
    /// Retry supervision: transient bus faults are absorbed here, so
    /// only deterministic design errors (or exhausted retries) reach
    /// the executor as bugs.
    sup: &'a mut Supervisor,
    /// The owning state's device age at window start.
    age_base: u64,
    /// The target's cycle counter at window start.
    cycle_base: u64,
}

impl TargetMmio<'_> {
    fn age_now(&self) -> u64 {
        self.age_base + (self.target.cycle() - self.cycle_base)
    }
}

impl SymMmio for TargetMmio<'_> {
    fn mmio_read(&mut self, _state: &SymState, addr: u32) -> Result<u32, BusError> {
        let at_age = self.age_now();
        let v = self.sup.bus_read(self.target, addr)?;
        if trace_io() {
            eprintln!("live  R {addr:#010x} -> {v:#010x} @age {at_age}");
        }
        self.log.push(IoOp {
            is_write: false,
            addr,
            value: v,
            at_age,
        });
        Ok(v)
    }

    fn mmio_write(&mut self, _state: &SymState, addr: u32, data: u32) -> Result<(), BusError> {
        let at_age = self.age_now();
        self.sup.bus_write(self.target, addr, data)?;
        if trace_io() {
            eprintln!("live  W {addr:#010x} <- {data:#010x} @age {at_age}");
        }
        self.log.push(IoOp {
            is_write: true,
            addr,
            value: data,
            at_age,
        });
        Ok(())
    }
}

impl Engine {
    /// Creates an engine over a hardware target.
    pub fn new(mut target: Box<dyn HwTarget>, config: EngineConfig) -> Self {
        let rng_state = match config.searcher {
            Searcher::Random(seed) => seed | 1,
            _ => 1,
        };
        let retry = config.retry;
        let recorder = Recorder::from_config(&config.telemetry, 0, "engine");
        target.attach_recorder(&recorder);
        if config.delta_snapshots {
            target.set_delta_snapshots(true);
        }
        let mut supervisor = Supervisor::new(retry);
        supervisor.recorder = recorder.clone();
        let store = SnapshotStore::new();
        store.set_mem_budget(config.snapshot_mem_budget);
        Engine {
            executor: Executor::new(config.policy),
            target,
            store,
            config,
            active: VecDeque::new(),
            current_owner: None,
            snap_of: HashMap::new(),
            io_logs: HashMap::new(),
            hw_age: HashMap::new(),
            metrics: EngineMetrics::default(),
            extra_time_ns: 0,
            rng_state,
            last_base: None,
            target_base: None,
            covered_pcs: HashSet::new(),
            hw_assertions: Vec::new(),
            hw_violations: Vec::new(),
            supervisor,
            fault_log: Vec::new(),
            carry_bugs: Vec::new(),
            carry_completed: Vec::new(),
            carry_instructions: 0,
            carry_vtime_ns: 0,
            recorder,
        }
    }

    /// Resets the hardware and enqueues the initial state of `program`.
    pub fn load_firmware(&mut self, program: &hardsnap_isa::Program) {
        self.target.reset();
        let s = self
            .executor
            .initial_state(program.image.clone(), program.entry);
        self.io_logs.insert(s.id, Vec::new());
        self.active.push_back(s);
    }

    /// Registers a hardware property checked on every snapshot taken.
    pub fn add_hw_assertion(
        &mut self,
        name: impl Into<String>,
        check: impl Fn(&HwSnapshot) -> bool + 'static,
    ) {
        self.hw_assertions.push(HwAssertion {
            name: name.into(),
            check: Box::new(check),
        });
    }

    /// The live hardware target.
    pub fn target(&self) -> &dyn HwTarget {
        self.target.as_ref()
    }

    /// Mutable access to the live hardware target (diagnosis).
    pub fn target_mut(&mut self) -> &mut dyn HwTarget {
        self.target.as_mut()
    }

    /// Number of active (schedulable) states.
    pub fn active_states(&self) -> usize {
        self.active.len()
    }

    /// The forwarded-I/O log of a state.
    pub fn io_log(&self, id: StateId) -> Option<&[IoOp]> {
        self.io_logs.get(&id).map(|v| v.as_slice())
    }

    /// Transfers the analysis to another hardware target mid-run — the
    /// paper's multi-target orchestration (§III-B). The live hardware
    /// state is moved onto the new target; stored snapshots remain valid
    /// because both targets share the canonical snapshot format. Both
    /// sides of the handoff run supervised (transient link faults are
    /// retried, the captured image is integrity-checked).
    ///
    /// # Errors
    ///
    /// Propagates snapshot/transfer failures; on error the old target is
    /// kept.
    pub fn switch_target(
        &mut self,
        mut new_target: Box<dyn HwTarget>,
    ) -> Result<(), hardsnap_bus::TargetError> {
        let _span = self.recorder.span("engine", "switch-target");
        let snap = self.supervisor.save_snapshot(self.target.as_mut())?;
        new_target.attach_recorder(&self.recorder);
        new_target.set_delta_snapshots(self.config.delta_snapshots);
        self.supervisor
            .restore_snapshot(new_target.as_mut(), &snap)?;
        self.metrics.snapshots_saved += 1;
        self.metrics.snapshots_restored += 1;
        self.recorder.count(Counter::ContextSwitches);
        self.target = new_target;
        // The new target starts with no delta base of its own; its next
        // capture ships a fresh full image.
        self.target_base = None;
        Ok(())
    }

    /// `SelectNextState` (paper line 4): heuristic selection.
    fn select_next_state(&mut self) -> Option<SymState> {
        match self.config.searcher {
            Searcher::Dfs => self.active.pop_back(),
            Searcher::Bfs | Searcher::RoundRobin => self.active.pop_front(),
            Searcher::Random(_) => {
                if self.active.is_empty() {
                    return None;
                }
                // xorshift64*: deterministic, no RNG dependency.
                self.rng_state ^= self.rng_state << 13;
                self.rng_state ^= self.rng_state >> 7;
                self.rng_state ^= self.rng_state << 17;
                let i = (self.rng_state % self.active.len() as u64) as usize;
                self.active.swap_remove_back(i)
            }
        }
    }

    /// Hardware context switch (paper lines 5-9): `UpdateState(prev)`
    /// then `RestoreState(next)`.
    ///
    /// Transient link faults are retried by the supervisor. If
    /// `UpdateState(prev)` still fails, `prev`'s context is lost past
    /// its last snapshot — the state is killed (named in the fault log)
    /// and serving `next` proceeds. If `RestoreState(next)` still
    /// fails, the error is returned so the caller can kill `next`.
    fn context_switch(&mut self, next: &SymState) -> Result<(), TargetError> {
        if self.current_owner == Some(next.id) {
            return Ok(());
        }
        self.metrics.context_switches += 1;
        self.recorder.count(Counter::ContextSwitches);
        let _span = self.recorder.span("engine", "context-switch");
        match self.config.mode {
            ConsistencyMode::HardSnap => {
                if let Some(prev) = self.current_owner {
                    let saved = if self.config.delta_snapshots {
                        self.supervisor
                            .save_capture(self.target.as_mut())
                            .map(|cap| {
                                // Materializing just for assertion checks
                                // would defeat O(changed): skip it when
                                // no assertions are registered.
                                if !self.hw_assertions.is_empty() {
                                    if let Ok(full) = cap.materialize() {
                                        self.check_hw_assertions(&full, prev);
                                    }
                                }
                                self.metrics.snapshots_saved += 1;
                                self.store_capture(prev, cap);
                            })
                    } else {
                        self.supervisor
                            .save_snapshot(self.target.as_mut())
                            .map(|snap| {
                                self.check_hw_assertions(&snap, prev);
                                self.metrics.snapshots_saved += 1;
                                self.store_full(prev, snap);
                            })
                    };
                    match saved {
                        Ok(()) => {}
                        Err(e) => {
                            // The live context advanced past prev's last
                            // snapshot; it cannot be reconstructed. Kill
                            // prev, keep serving next.
                            self.fault_log
                                .push(format!("state {prev:?} killed: UpdateState failed: {e}"));
                            self.metrics.states_dropped += 1;
                            self.active.retain(|s| s.id != prev);
                            self.current_owner = None;
                            self.retire_state(prev);
                            self.target.reset();
                        }
                    }
                }
                match self.snap_of.get(&next.id) {
                    Some(&sid) => {
                        // Engine-owned sids are never delta bases, so the
                        // chain cannot break; if the store is ever
                        // corrupted, fail with the precise broken link
                        // rather than a bare unwrap.
                        let snap = self.store.try_get(sid).map_err(|e| {
                            TargetError::CorruptSnapshot(format!("state {:?}: {e}", next.id))
                        })?;
                        self.supervisor
                            .restore_snapshot(self.target.as_mut(), &snap)?;
                        self.metrics.snapshots_restored += 1;
                    }
                    None => {
                        // Initial state: "no corresponding hardware
                        // snapshot" — power-on hardware.
                        self.target.reset();
                    }
                }
            }
            ConsistencyMode::NaiveConsistent => {
                // Reboot and replay the whole interaction history with
                // its original timing (ops AND idle gaps); otherwise
                // time-sensitive peripherals (a hash mid-computation, a
                // running timer) end up in the wrong phase.
                self.target.reset();
                self.metrics.reboots += 1;
                self.recorder.count(Counter::Reboots);
                self.extra_time_ns += self.config.reboot_cost_ns;
                let base = self.target.cycle();
                if let Some(log) = self.io_logs.get(&next.id).cloned() {
                    for op in log {
                        let age_now = self.target.cycle() - base;
                        if op.at_age > age_now {
                            self.target.step(op.at_age - age_now);
                        }
                        if trace_io() {
                            eprintln!(
                                "replay {} {:#010x} val {:#010x} @age {} (cycle_now {})",
                                if op.is_write { "W" } else { "R" },
                                op.addr,
                                op.value,
                                op.at_age,
                                self.target.cycle() - base
                            );
                        }
                        if op.is_write {
                            let _ = self.target.bus_write(op.addr, op.value);
                        } else {
                            let _ = self.target.bus_read(op.addr);
                        }
                        self.metrics.replayed_ios += 1;
                    }
                }
                // Advance to the state's current device age.
                let target_age = self.hw_age.get(&next.id).copied().unwrap_or(0);
                let age_now = self.target.cycle() - base;
                if target_age > age_now {
                    self.target.step(target_age - age_now);
                }
            }
            ConsistencyMode::NaiveInconsistent => {
                // Shared hardware: do nothing. This is the bug.
            }
        }
        self.current_owner = Some(next.id);
        Ok(())
    }

    fn check_hw_assertions(&mut self, snap: &HwSnapshot, owner: StateId) {
        for a in &self.hw_assertions {
            if !(a.check)(snap)
                && !self
                    .hw_violations
                    .iter()
                    .any(|(n, s)| *s == owner && n == &a.name)
            {
                self.hw_violations.push((a.name.clone(), owner));
            }
        }
    }

    /// Stores a full snapshot as `owner`'s private image (update in
    /// place when the state already has one).
    fn store_full(&mut self, owner: StateId, snap: HwSnapshot) {
        match self.snap_of.get(&owner) {
            Some(&sid) => self.store.update(sid, snap),
            None => {
                let sid = self.store.insert(snap);
                self.snap_of.insert(owner, sid);
            }
        }
    }

    /// Stores a delta against `bid` as `owner`'s private image without
    /// materializing; falls back to a full store only if the store
    /// refuses the native install (base vanished — cannot happen for
    /// engine-pinned bases, but never silently lose a snapshot).
    fn store_delta(
        &mut self,
        owner: StateId,
        bid: SnapId,
        delta: SnapshotDelta,
        base: &Arc<HwSnapshot>,
    ) {
        let installed = match self.snap_of.get(&owner) {
            Some(&sid) => self.store.update_delta_native(sid, bid, delta.clone()),
            None => match self.store.insert_delta_native(bid, delta.clone()) {
                Some(sid) => {
                    self.snap_of.insert(owner, sid);
                    true
                }
                None => false,
            },
        };
        if !installed {
            // The delta was produced against this exact base, so apply
            // can only fail on store corruption; record it loudly
            // instead of panicking (the owner keeps its previous image).
            match delta.apply(base) {
                Ok(full) => self.store_full(owner, full),
                Err(e) => self.fault_log.push(format!(
                    "state {owner:?}: delta unusable against its base: {e}"
                )),
            }
        }
    }

    /// Stores a target capture (full or native delta) as `owner`'s
    /// private image, maintaining the shared-base bookkeeping.
    fn store_capture(&mut self, owner: StateId, cap: SnapshotCapture) {
        match cap {
            SnapshotCapture::Full(arc) => {
                // Fresh base epoch: install the full image as the shared
                // base and record owner as an empty delta against it, so
                // the target's subsequent native deltas (expressed
                // against this exact Arc) install in O(delta).
                let bid = self.store.insert_base((*arc).clone());
                self.last_base = Some(bid);
                let empty = SnapshotDelta {
                    regs: Vec::new(),
                    mem_words: Vec::new(),
                    cycle: arc.cycle,
                };
                self.store_delta(owner, bid, empty, &arc);
                self.target_base = Some((bid, arc));
            }
            SnapshotCapture::Delta { base, delta } => {
                match &self.target_base {
                    Some((bid, tracked)) if Arc::ptr_eq(tracked, &base) => {
                        let bid = *bid;
                        self.store_delta(owner, bid, delta, &base);
                    }
                    _ => {
                        // The target rebased (or switched) without the
                        // engine seeing the new base as a Full capture;
                        // resolve once and store full.
                        match delta.apply(&base) {
                            Ok(full) => self.store_full(owner, full),
                            Err(e) => {
                                // Shape-checked by the supervisor; keep a
                                // loud record if it ever happens.
                                self.fault_log
                                    .push(format!("state {owner:?}: delta capture unusable: {e}"));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Gives every freshly forked state its own non-shared hardware
    /// snapshot (paper §IV-B last paragraph).
    ///
    /// The supervised save happens before any store mutation, so a
    /// terminal fault leaves the store untouched and the caller can
    /// kill the fork family cleanly.
    fn snapshot_forked(
        &mut self,
        parent: StateId,
        successors: &[SymState],
    ) -> Result<(), TargetError> {
        let age = self.hw_age.get(&parent).copied().unwrap_or(0);
        if self.config.mode != ConsistencyMode::HardSnap {
            // Baselines: children inherit the parent's I/O log and age.
            let log = self.io_logs.get(&parent).cloned().unwrap_or_default();
            for s in successors {
                self.io_logs.entry(s.id).or_insert_with(|| log.clone());
                self.hw_age.entry(s.id).or_insert(age);
            }
            return Ok(());
        }
        let log = self.io_logs.get(&parent).cloned().unwrap_or_default();
        // Delta mode: the target hands back a native capture — either a
        // fresh full base or an O(changed) delta against the shared
        // immutable base `Arc`. Children are stored as copy-on-write
        // deltas, so long analyses keep roughly one full image plus
        // per-state diffs in the store, with no post-hoc re-diffing.
        if self.config.delta_snapshots {
            let cap = self.supervisor.save_capture(self.target.as_mut())?;
            if !self.hw_assertions.is_empty() {
                if let Ok(full) = cap.materialize() {
                    self.check_hw_assertions(&full, parent);
                }
            }
            self.metrics.snapshots_saved += 1;
            enum Resolved {
                Native(SnapId, SnapshotDelta, Arc<HwSnapshot>),
                Full(HwSnapshot),
            }
            let resolved = match cap {
                SnapshotCapture::Full(arc) => {
                    let bid = self.store.insert_base((*arc).clone());
                    self.last_base = Some(bid);
                    self.target_base = Some((bid, arc.clone()));
                    let empty = SnapshotDelta {
                        regs: Vec::new(),
                        mem_words: Vec::new(),
                        cycle: arc.cycle,
                    };
                    Resolved::Native(bid, empty, arc)
                }
                SnapshotCapture::Delta { base, delta } => match &self.target_base {
                    Some((bid, tracked)) if Arc::ptr_eq(tracked, &base) => {
                        Resolved::Native(*bid, delta, base)
                    }
                    _ => match delta.apply(&base) {
                        Ok(full) => Resolved::Full(full),
                        Err(e) => {
                            return Err(TargetError::CorruptSnapshot(format!(
                                "fork capture for {parent:?}: {e}"
                            )))
                        }
                    },
                },
            };
            for s in successors {
                self.io_logs.entry(s.id).or_insert_with(|| log.clone());
                self.hw_age.entry(s.id).or_insert(age);
                match &resolved {
                    Resolved::Native(bid, delta, base) => {
                        self.store_delta(s.id, *bid, delta.clone(), base)
                    }
                    Resolved::Full(full) => self.store_full(s.id, full.clone()),
                }
            }
            return Ok(());
        }
        let snap = self.supervisor.save_snapshot(self.target.as_mut())?;
        self.check_hw_assertions(&snap, parent);
        self.metrics.snapshots_saved += 1;
        for s in successors {
            self.io_logs.entry(s.id).or_insert_with(|| log.clone());
            self.hw_age.entry(s.id).or_insert(age);
            self.store_full(s.id, snap.clone());
        }
        Ok(())
    }

    fn retire_state(&mut self, id: StateId) {
        // Final property check: when the terminating state owns the live
        // hardware, inspect its end-of-path hardware state.
        if !self.hw_assertions.is_empty()
            && self.current_owner == Some(id)
            && self.config.mode == ConsistencyMode::HardSnap
        {
            if let Ok(snap) = self.target.save_snapshot() {
                self.metrics.snapshots_saved += 1;
                self.check_hw_assertions(&snap, id);
            }
        }
        if let Some(sid) = self.snap_of.remove(&id) {
            self.store.remove(sid);
        }
        self.io_logs.remove(&id);
        self.hw_age.remove(&id);
        if self.current_owner == Some(id) {
            self.current_owner = None;
        }
    }

    /// Runs the analysis to completion (or budget exhaustion).
    pub fn run(&mut self) -> RunResult {
        let host_start = std::time::Instant::now();
        let hw_t0 = self.target.virtual_time_ns();
        let mut bugs = std::mem::take(&mut self.carry_bugs);
        let mut completed: Vec<SymState> = std::mem::take(&mut self.carry_completed);
        let mut sample_console = completed
            .first()
            .map(|s| s.console.clone())
            .unwrap_or_default();
        let mut executed: u64 = std::mem::take(&mut self.carry_instructions);
        let carry_vtime = std::mem::take(&mut self.carry_vtime_ns);

        let stop = loop {
            // Budgets are checked before popping, so a state selected at
            // the budget boundary stays in the frontier instead of
            // being silently dropped (a saved campaign must account for
            // every live state). Cancellation and the wall deadline win
            // over "also out of budget" ties (they are the serve
            // daemon's watchdog hooks).
            let consumed_vtime = (self.target.virtual_time_ns() - hw_t0)
                + self.extra_time_ns
                + self.supervisor.extra_vtime_ns
                + carry_vtime;
            if let Some(why) = budget_stop(
                &self.config,
                executed,
                self.metrics.paths_completed,
                consumed_vtime,
                self.metrics.quanta,
            ) {
                break why;
            }
            let Some(mut state) = self.select_next_state() else {
                break StopReason::Complete;
            };
            // Lines 5-9: hardware context switch when the schedule moves
            // to a different state.
            if let Err(e) = self.context_switch(&state) {
                // RestoreState(next) exhausted its retries: next's
                // hardware context is unreachable. Kill it, record the
                // casualty by name, and move on with healthy hardware.
                self.fault_log
                    .push(format!("state {:?} killed: {e}", state.id));
                self.metrics.states_dropped += 1;
                self.current_owner = None;
                self.retire_state(state.id);
                self.target.reset();
                continue;
            }

            // Run the selected state for up to one quantum (KLEE-style
            // batching keeps context switches bounded).
            let mut remaining = self.config.quantum.max(1);
            let quantum_budget = remaining;
            self.metrics.quanta += 1;
            self.recorder.count(Counter::Quanta);
            let mut qspan = self.recorder.span("engine", "quantum");
            let window_age = self.hw_age.get(&state.id).copied().unwrap_or(0);
            let window_cycle = self.target.cycle();
            // All in-quantum continuations keep the same state id, so
            // the window's cycles are attributed to the selected state.
            let window_owner = state.id;
            'quantum: loop {
                // Line 11: ServePendingInterrupt. Supervised: a glitched
                // IRQ read (EMI on the interrupt net) is re-sampled
                // until two consecutive reads agree, so spurious /
                // dropped / delayed lines never change which interrupt
                // the executor actually delivers.
                let lines = self.supervisor.irq_lines(self.target.as_mut());
                if lines != 0 && self.executor.enter_irq(&mut state, lines).is_some() {
                    self.metrics.irqs_delivered += 1;
                    self.recorder.count(Counter::IrqsDelivered);
                }

                // Lines 12-14: step and collect successors.
                let state_id = state.id;
                self.covered_pcs.insert(state.pc);
                let log = self.io_logs.entry(state_id).or_default();
                let mut proxy = TargetMmio {
                    target: self.target.as_mut(),
                    log,
                    sup: &mut self.supervisor,
                    age_base: window_age,
                    cycle_base: window_cycle,
                };
                let outcome = self.executor.step(state, &mut proxy);
                executed += 1;
                remaining -= 1;
                // Advance hardware time alongside firmware execution.
                self.target.step(self.config.cycles_per_instruction);

                match outcome {
                    StepOutcome::ContinueWith(s) => {
                        if remaining == 0 || executed >= self.config.max_instructions {
                            self.active.push_back(s);
                            break 'quantum;
                        }
                        state = s;
                    }
                    StepOutcome::Fork(successors) => {
                        if let Err(e) = self.snapshot_forked(state_id, &successors) {
                            // The fork-point snapshot is gone; neither
                            // the parent nor the children can ever be
                            // restored. Kill the whole fork family.
                            self.fault_log.push(format!(
                                "state {state_id:?} killed with {} fork children: \
                                 fork snapshot failed: {e}",
                                successors.len()
                            ));
                            self.metrics.states_dropped += successors.len() as u64;
                            for s in &successors {
                                self.retire_state(s.id);
                            }
                            self.retire_state(state_id);
                            self.current_owner = None;
                            self.target.reset();
                            break 'quantum;
                        }
                        for s in successors {
                            if self.active.len() >= self.config.max_states {
                                self.metrics.states_dropped += 1;
                                self.retire_state(s.id);
                                continue;
                            }
                            self.active.push_back(s);
                        }
                        break 'quantum;
                    }
                    StepOutcome::Halted(s) => {
                        self.metrics.paths_completed += 1;
                        if sample_console.is_empty() {
                            sample_console = s.console.clone();
                        }
                        self.retire_state(state_id);
                        if completed.len() < self.config.max_paths {
                            completed.push(s);
                        }
                        break 'quantum;
                    }
                    StepOutcome::Bug {
                        report,
                        continuation,
                    } => {
                        bugs.push(report);
                        match continuation {
                            Some(s) => {
                                if !self.io_logs.contains_key(&s.id) {
                                    let parent_log =
                                        self.io_logs.get(&state_id).cloned().unwrap_or_default();
                                    self.io_logs.insert(s.id, parent_log);
                                }
                                self.active.push_back(s);
                            }
                            None => {
                                self.metrics.paths_completed += 1;
                                self.retire_state(state_id);
                            }
                        }
                        break 'quantum;
                    }
                }
            }
            let ran = quantum_budget - remaining;
            qspan.set_arg(ran);
            drop(qspan);
            self.recorder.observe(Metric::QuantumInstructions, ran);
            let elapsed = self.target.cycle() - window_cycle;
            let entry = self.hw_age.entry(window_owner).or_insert(window_age);
            *entry = window_age + elapsed;
        };

        // The store's always-on counters are folded into the telemetry
        // snapshot only here, in the export side-channel.
        let telemetry = self.recorder.snapshot().map(|mut t| {
            let st = self.store.stats();
            t.add_counter("store_hits", st.hits);
            t.add_counter("store_misses", st.misses);
            t.add_counter("store_evictions", st.evictions);
            t.add_counter("store_deferred", st.deferred);
            t.add_counter("store_spills", st.spills);
            t.add_counter("store_page_ins", st.page_ins);
            t.add_counter("store_resident_bytes_hwm", self.store.peak_bytes() as u64);
            t
        });

        RunResult {
            bugs,
            completed,
            metrics: self.metrics,
            hw_virtual_time_ns: self.target.virtual_time_ns() - hw_t0
                + self.extra_time_ns
                + self.supervisor.extra_vtime_ns
                + carry_vtime,
            covered_pcs: self.covered_pcs.len(),
            host_time: host_start.elapsed(),
            instructions: executed,
            sample_console,
            faults: FaultSummary {
                injected: self.target.fault_stats().map(|s| s.injected()).unwrap_or(0),
                retried: self.supervisor.retried,
                recovered: self.supervisor.recovered,
                quarantined: 0,
            },
            fault_log: std::mem::take(&mut self.fault_log),
            telemetry,
            stop,
        }
    }

    /// The set of distinct firmware PCs covered so far (campaign
    /// checkpointing persists the set itself; `RunResult` only carries
    /// its size).
    pub fn covered_set(&self) -> &HashSet<u32> {
        &self.covered_pcs
    }

    /// Drains the active frontier for campaign checkpointing: every
    /// still-schedulable state leaves as a portable serialization plus
    /// the id of its private snapshot in [`Engine::store`] (`None` for a
    /// state that still runs from power-on hardware).
    ///
    /// The state owning the live hardware context is saved first —
    /// exactly the `UpdateState` half of a context switch — so no
    /// hardware state exists only on the target when the store is
    /// serialized. HardSnap mode only (the baselines keep their context
    /// in replay logs, which a fresh process cannot reconstruct).
    ///
    /// # Errors
    ///
    /// Propagates the supervised save failure for the live context; the
    /// frontier is left untouched in that case.
    pub fn take_frontier(&mut self) -> Result<Vec<(PortableState, Option<SnapId>)>, TargetError> {
        if self.config.mode != ConsistencyMode::HardSnap {
            return Err(TargetError::Unsupported(
                "campaign checkpointing requires HardSnap mode".into(),
            ));
        }
        if let Some(prev) = self.current_owner {
            if self.active.iter().any(|s| s.id == prev) {
                if self.config.delta_snapshots {
                    let cap = self.supervisor.save_capture(self.target.as_mut())?;
                    self.metrics.snapshots_saved += 1;
                    self.store_capture(prev, cap);
                } else {
                    let snap = self.supervisor.save_snapshot(self.target.as_mut())?;
                    self.metrics.snapshots_saved += 1;
                    self.store_full(prev, snap);
                }
            }
            self.current_owner = None;
        }
        let states: Vec<SymState> = self.active.drain(..).collect();
        let mut out = Vec::with_capacity(states.len());
        for s in states {
            let snap = self.snap_of.get(&s.id).copied();
            out.push((PortableState::export(&self.executor.pool, &s), snap));
        }
        Ok(out)
    }

    /// Enqueues a frontier exported by [`Engine::take_frontier`] (with
    /// snapshot ids re-mapped to this engine's store by the campaign
    /// loader), in order, after resetting the hardware to power-on.
    pub fn resume_frontier(&mut self, frontier: Vec<(PortableState, Option<SnapId>)>) {
        self.target.reset();
        for (ps, snap) in frontier {
            let s = ps.import(&mut self.executor.pool);
            self.io_logs.entry(s.id).or_default();
            if let Some(sid) = snap {
                self.snap_of.insert(s.id, sid);
            }
            self.active.push_back(s);
        }
    }

    /// Seeds the engine with the results of the run that produced a
    /// saved campaign, so the next [`Engine::run`] folds them into its
    /// budgets (instruction and path caps continue where the saved run
    /// stopped) and into its `RunResult` — making save → resume report
    /// exactly what one uninterrupted run would have.
    pub fn seed_prior(
        &mut self,
        instructions: u64,
        paths_completed: u64,
        vtime_ns: u64,
        quanta: u64,
        covered: impl IntoIterator<Item = u32>,
        bugs: Vec<BugReport>,
        completed: Vec<PortableState>,
    ) {
        self.carry_instructions = instructions;
        self.carry_vtime_ns = vtime_ns;
        self.metrics.quanta += quanta;
        self.metrics.paths_completed += paths_completed;
        self.covered_pcs.extend(covered);
        self.carry_bugs = bugs;
        self.carry_completed = completed
            .iter()
            .map(|p| p.import(&mut self.executor.pool))
            .collect();
    }
}
