//! Warm-replica arming: restore a target to a designated on-disk baseline
//! so a later job starts from pre-restored state instead of a cold boot.
//!
//! The paper's enabling observation is that hardware snapshot restore is
//! cheap enough to be the unit of scheduling; the serve daemon exploits
//! that by keeping a pool of *armed* replicas — targets whose expensive
//! construction (Verilog parse, elaboration, bytecode compile) already
//! happened and whose state sits at a designated baseline snapshot. This
//! module is the arming primitive shared by the pool and by tests:
//!
//! * [`arm_baseline`] — admission-check the baseline's shape against the
//!   live target (the 40-byte META read, no payloads), then reset and
//!   [`HwTarget::restore_snapshot_lazy`] it into place. Because restore
//!   is lazy, re-arming a replica that is already near the baseline
//!   loads only the sections that actually diverged — O(changed), the
//!   PR 6 property, applied to pool refill.
//! * [`synthesize_baseline`] — capture the target's post-reset state
//!   into a TLV image, for daemons started without an explicit
//!   `--baseline` (and for seeding archives that travel to other hosts).

use hardsnap_bus::persist::{write_full, PersistError, PersistMeta, SnapshotFile};
use hardsnap_bus::{HwTarget, LazyRestore, TargetError};
use std::fmt;
use std::path::Path;

/// Errors from arming or synthesizing a baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicaError {
    /// The target refused the snapshot (design mismatch, unsupported op,
    /// bus failure while driving the snapshot controller).
    Target(TargetError),
    /// The baseline image itself is unusable (bad shape, corrupt file).
    Persist(PersistError),
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::Target(e) => write!(f, "arming target failed: {e}"),
            ReplicaError::Persist(e) => write!(f, "baseline image unusable: {e}"),
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<TargetError> for ReplicaError {
    fn from(e: TargetError) -> Self {
        ReplicaError::Target(e)
    }
}

impl From<PersistError> for ReplicaError {
    fn from(e: PersistError) -> Self {
        ReplicaError::Persist(e)
    }
}

/// Arms `target` to the baseline in `file`: shape admission check first
/// (no payload I/O), then reset and lazy restore.
///
/// Returns the [`LazyRestore`] stats so callers can observe how much of
/// the image actually had to be loaded — a freshly forked replica is
/// already at power-on state, so re-arming it against a post-reset
/// baseline loads close to nothing.
///
/// # Errors
///
/// [`ReplicaError::Persist`] with [`PersistError::ShapeMismatch`] when
/// the baseline was captured from a different design shape than `target`
/// runs; any [`TargetError`] from the restore itself.
pub fn arm_baseline(
    target: &mut dyn HwTarget,
    file: &SnapshotFile,
) -> Result<LazyRestore, ReplicaError> {
    let meta = file.meta()?;
    meta.check_shape(target.snapshot_shape())?;
    target.reset();
    Ok(target.restore_snapshot_lazy(file)?)
}

/// Captures `target`'s post-reset state as a full TLV image at `path`.
///
/// This is the designated baseline a pool arms against when the operator
/// did not supply one: power-on state, which every cold-booted job also
/// starts from, so leasing an armed replica cannot change any job's
/// digest.
pub fn synthesize_baseline(
    target: &mut dyn HwTarget,
    path: &Path,
) -> Result<PersistMeta, ReplicaError> {
    target.reset();
    let snap = target.save_snapshot()?;
    let meta = PersistMeta {
        design: snap.design.clone(),
        cycle: snap.cycle,
        shape_hash: snap.shape_hash(),
        content_hash: snap.content_hash(),
        n_regs: snap.regs.len() as u32,
        n_mems: snap.mems.len() as u32,
        base_ref: String::new(),
    };
    let bytes = write_full(&snap);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| PersistError::io(parent, e))?;
    }
    std::fs::write(path, bytes).map_err(|e| PersistError::io(path, e))?;
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardsnap_sim::SimTarget;

    fn soc_target() -> Box<dyn HwTarget> {
        let soc = hardsnap_periph::soc().unwrap();
        Box::new(SimTarget::new(soc).unwrap())
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hardsnap-replica-{}-{name}", std::process::id()))
    }

    #[test]
    fn synthesize_then_arm_is_nearly_free() {
        let mut proto = soc_target();
        let path = tmp("baseline.hsnap");
        let meta = synthesize_baseline(proto.as_mut(), &path).unwrap();
        assert_eq!(meta.shape_hash, proto.snapshot_shape());

        let file = SnapshotFile::open(&path).unwrap();
        let mut replica = proto.fork_clean().unwrap();
        let stats = arm_baseline(replica.as_mut(), &file).unwrap();
        // A power-on fork already matches a post-reset baseline: the lazy
        // restore should skip (nearly) every section.
        assert_eq!(stats.sections_loaded, 0, "restore must be O(changed)");
        assert!(stats.sections_total > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shape_mismatch_is_refused_before_restore() {
        let mut proto = soc_target();
        let path = tmp("mismatch.hsnap");
        // Baseline from a *different* design: a lone counter peripheral.
        let small = hardsnap_periph::timer().unwrap();
        let mut other = Box::new(SimTarget::new(small).unwrap());
        synthesize_baseline(other.as_mut(), &path).unwrap();

        let file = SnapshotFile::open(&path).unwrap();
        let err = arm_baseline(proto.as_mut(), &file).unwrap_err();
        assert!(
            matches!(
                err,
                ReplicaError::Persist(PersistError::ShapeMismatch { .. })
            ),
            "got {err}"
        );
        let _ = std::fs::remove_file(&path);
    }
}
