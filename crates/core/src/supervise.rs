//! Retry/backoff supervision over fallible target operations.
//!
//! The engines drive their hardware targets through this layer instead
//! of calling [`HwTarget`] directly, so a transient transport fault
//! (injected by `hardsnap_bus::FaultyTarget`, or real on a physical
//! link) is absorbed before it can kill an analysis:
//!
//! * **Bus reads/writes** are retried under capped exponential backoff.
//!   Only *transient* failures ([`BusError::Timeout`],
//!   [`BusError::NotReady`]) are retried; a [`BusError::SlaveError`] is
//!   a deterministic property of the design (an unmapped address) and
//!   passes straight through to the symbolic executor, which reports it
//!   as a firmware bug exactly as on an honest transport.
//! * **Snapshot captures** are verified before acceptance: the image
//!   must pass [`HwSnapshot::validate`] (no bits outside any register's
//!   width — what a dropped scan cell produces) and, when the target
//!   can predict it, match [`HwTarget::snapshot_shape`] (catches
//!   truncated captures). A corrupt image triggers a re-capture —
//!   capture never disturbs design state, so the retry observes the
//!   same honest bits — and [`TargetError::CorruptSnapshot`] surfaces
//!   only after retries exhaust.
//! * **Snapshot restores** are idempotent (they overwrite the complete
//!   hardware state), so transient restore failures retry safely.
//!
//! Backoff charges **virtual time** ([`Supervisor::extra_vtime_ns`]),
//! never design cycles: a link retry leaves the device clock untouched,
//! which is one of the reasons recovery is invisible in the canonical
//! result digest.

use hardsnap_bus::{BusError, HwSnapshot, HwTarget, SnapshotCapture, TargetError};
use hardsnap_telemetry::{Counter, FaultClass, Metric, Recorder, SpanGuard};

/// Retry/backoff/quarantine policy knobs, carried in `EngineConfig`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per operation before the failure is terminal.
    pub max_attempts: u32,
    /// Backoff before retry `i` is `base * 2^(i-1)`, capped below.
    pub backoff_base_ns: u64,
    /// Upper bound on a single backoff interval.
    pub backoff_cap_ns: u64,
    /// Virtual-time deadline across one operation's retries: retrying
    /// stops once the backoff charged to the operation reaches this.
    pub op_deadline_ns: u64,
    /// Parallel engine: terminal quantum failures a replica may absorb
    /// before it is quarantined and replaced.
    pub replica_fault_budget: u32,
    /// Parallel engine: times one work item may be re-attempted (across
    /// replica resets/replacements) before its state is dropped.
    pub max_item_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            backoff_base_ns: 10_000,
            backoff_cap_ns: 1_000_000,
            op_deadline_ns: 10_000_000,
            replica_fault_budget: 3,
            max_item_attempts: 32,
        }
    }
}

/// Recovery counters reported in `RunResult::faults`: what the
/// supervision layer observed and absorbed. `injected` counts what a
/// wrapped fault injector actually fired (0 on honest transports);
/// `retried`/`recovered` count supervised retries and operations that
/// eventually succeeded after at least one failure; `quarantined`
/// counts replicas the parallel engine replaced. None of these feed
/// `RunResult::canonical_digest` — recovery must be semantically
/// invisible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Faults injected by the transport (from `HwTarget::fault_stats`).
    pub injected: u64,
    /// Individual operation retries performed.
    pub retried: u64,
    /// Operations that succeeded after at least one failed attempt.
    pub recovered: u64,
    /// Replicas quarantined and replaced by the parallel engine.
    pub quarantined: u64,
}

impl FaultSummary {
    /// Component-wise sum (merging per-worker summaries).
    pub fn merge(&mut self, other: &FaultSummary) {
        self.injected += other.injected;
        self.retried += other.retried;
        self.recovered += other.recovered;
        self.quarantined += other.quarantined;
    }
}

/// Retrying wrapper around a target's fallible operations. One lives in
/// the sequential engine and one per parallel worker; they accumulate
/// the retry counters and the backoff virtual time for the run report.
#[derive(Clone, Debug, Default)]
pub struct Supervisor {
    /// Active policy.
    pub policy: RetryPolicy,
    /// Retries performed so far.
    pub retried: u64,
    /// Operations recovered (succeeded after ≥ 1 failure) so far.
    pub recovered: u64,
    /// Virtual nanoseconds of backoff charged so far (added to the
    /// run's `hw_virtual_time_ns`, never to the design clock).
    pub extra_vtime_ns: u64,
    /// Telemetry sink: retry spans plus per-fault-class recovery
    /// histograms (attempts × charged vtime). Disabled by default;
    /// the owning engine installs its worker's recorder.
    pub recorder: Recorder,
}

/// Whether a bus failure is transient (link-level, worth retrying) as
/// opposed to a deterministic property of the design.
fn transient_bus(e: &BusError) -> bool {
    matches!(e, BusError::Timeout { .. } | BusError::NotReady)
}

/// Telemetry class for a transient bus failure.
fn classify_bus(e: &BusError) -> FaultClass {
    match e {
        BusError::Timeout { .. } => FaultClass::BusTimeout,
        _ => FaultClass::NotReady,
    }
}

impl Supervisor {
    /// Creates a supervisor with the given policy and zeroed counters.
    pub fn new(policy: RetryPolicy) -> Supervisor {
        Supervisor {
            policy,
            ..Supervisor::default()
        }
    }

    /// Backoff interval before retry `attempt` (1-based), capped.
    fn backoff_ns(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(63);
        self.policy
            .backoff_base_ns
            .saturating_mul(1u64 << shift)
            .min(self.policy.backoff_cap_ns)
    }

    /// Generic retry loop: `op` runs up to `max_attempts` times as long
    /// as `retryable` says the failure is worth another try and the
    /// per-op backoff budget (`op_deadline_ns`) is not exhausted.
    ///
    /// `classify` buckets a *transient* failure for the per-fault-class
    /// recovery histograms; it is only consulted for retryable errors,
    /// and the class of an operation's recovery is the class of its
    /// first transient failure. The clean path records nothing.
    fn with_retries<T, E>(
        &mut self,
        mut op: impl FnMut() -> Result<T, E>,
        retryable: impl Fn(&E) -> bool,
        classify: impl Fn(&E) -> FaultClass,
    ) -> Result<T, E> {
        let mut attempt: u32 = 0;
        let mut charged: u64 = 0;
        let mut fault: Option<(FaultClass, SpanGuard)> = None;
        loop {
            match op() {
                Ok(v) => {
                    if attempt > 0 {
                        self.recovered += 1;
                        self.recorder.count(Counter::Recovered);
                        self.finish_recovery(fault.take(), attempt, charged);
                    }
                    return Ok(v);
                }
                Err(e) => {
                    attempt += 1;
                    let transient = retryable(&e);
                    if transient && fault.is_none() {
                        let class = classify(&e);
                        fault = Some((class, self.recorder.span("fault", class.span_name())));
                    }
                    if attempt >= self.policy.max_attempts
                        || charged >= self.policy.op_deadline_ns
                        || !transient
                    {
                        self.finish_recovery(fault.take(), attempt, charged);
                        return Err(e);
                    }
                    let pause = self.backoff_ns(attempt);
                    charged += pause;
                    self.extra_vtime_ns += pause;
                    self.retried += 1;
                    self.recorder.count(Counter::Retries);
                    self.recorder.observe(Metric::BackoffNs, pause);
                }
            }
        }
    }

    /// Closes out one operation's recovery episode: the retry span gets
    /// its attempt count, and the per-class histograms record attempts
    /// and the *virtual-time* latency the episode charged.
    fn finish_recovery(
        &self,
        fault: Option<(FaultClass, SpanGuard)>,
        attempts: u32,
        charged_ns: u64,
    ) {
        if let Some((class, mut span)) = fault {
            span.set_arg(u64::from(attempts));
            self.recorder
                .observe(class.retries_metric(), u64::from(attempts));
            self.recorder.observe(class.latency_metric(), charged_ns);
        }
    }

    /// Supervised AXI read.
    ///
    /// # Errors
    ///
    /// The last failure once retries exhaust, or immediately for a
    /// non-transient [`BusError::SlaveError`].
    pub fn bus_read(&mut self, target: &mut dyn HwTarget, addr: u32) -> Result<u32, BusError> {
        self.with_retries(|| target.bus_read(addr), transient_bus, classify_bus)
    }

    /// Supervised AXI write.
    ///
    /// # Errors
    ///
    /// As [`Supervisor::bus_read`].
    pub fn bus_write(
        &mut self,
        target: &mut dyn HwTarget,
        addr: u32,
        data: u32,
    ) -> Result<(), BusError> {
        self.with_retries(|| target.bus_write(addr, data), transient_bus, classify_bus)
    }

    /// Supervised snapshot capture: the image is accepted only when it
    /// passes structural validation and (when the target predicts its
    /// shape) matches the design's shape hash; otherwise it is
    /// re-captured. Capture does not disturb design state, so the retry
    /// observes the same honest bits.
    ///
    /// # Errors
    ///
    /// [`TargetError::CorruptSnapshot`] (or the transport's own error)
    /// once retries exhaust.
    pub fn save_snapshot(&mut self, target: &mut dyn HwTarget) -> Result<HwSnapshot, TargetError> {
        let shape = target.snapshot_shape();
        self.with_retries(
            || {
                let snap = target.save_snapshot()?;
                snap.validate().map_err(TargetError::CorruptSnapshot)?;
                if shape != 0 && snap.shape_hash() != shape {
                    return Err(TargetError::CorruptSnapshot(
                        "captured image does not match the design's snapshot shape".into(),
                    ));
                }
                // A partial readback keeps the shape (the driver pads
                // the missing tail with zeros) — only the checksum
                // trailer the scan controller computed over the full
                // chain exposes it.
                let trailer = target.capture_checksum();
                if trailer != 0 && snap.content_hash() != trailer {
                    return Err(TargetError::CorruptSnapshot(
                        "captured image does not match the scan controller's checksum trailer \
                         (partial readback)"
                            .into(),
                    ));
                }
                Ok(snap)
            },
            |e| match e {
                TargetError::CorruptSnapshot(_) => true,
                TargetError::Bus(b) => transient_bus(b),
                _ => false,
            },
            |e| match e {
                TargetError::CorruptSnapshot(_) => FaultClass::CorruptCapture,
                TargetError::Bus(b) => classify_bus(b),
                _ => FaultClass::CorruptCapture,
            },
        )
    }

    /// Supervised delta-aware snapshot capture: the activity-
    /// proportional sibling of [`Supervisor::save_snapshot`]. A full
    /// capture is validated exactly as there; a delta capture is
    /// validated in O(delta) against its own base (index ranges, width
    /// fits) plus the base's shape hash — no materialization on the hot
    /// path. Corrupt images are re-captured.
    ///
    /// # Errors
    ///
    /// As [`Supervisor::save_snapshot`].
    pub fn save_capture(
        &mut self,
        target: &mut dyn HwTarget,
    ) -> Result<SnapshotCapture, TargetError> {
        let shape = target.snapshot_shape();
        self.with_retries(
            || {
                let cap = target.save_snapshot_delta()?;
                cap.validate().map_err(TargetError::CorruptSnapshot)?;
                if shape != 0 && cap.shape_hash() != shape {
                    return Err(TargetError::CorruptSnapshot(
                        "captured image does not match the design's snapshot shape".into(),
                    ));
                }
                // Full captures travel the full-chain scan path and so
                // carry the controller's checksum trailer; a delta
                // travels the differential protocol and is covered by
                // its own O(delta) validation above.
                if let SnapshotCapture::Full(img) = &cap {
                    let trailer = target.capture_checksum();
                    if trailer != 0 && img.content_hash() != trailer {
                        return Err(TargetError::CorruptSnapshot(
                            "captured image does not match the scan controller's checksum \
                             trailer (partial readback)"
                                .into(),
                        ));
                    }
                }
                Ok(cap)
            },
            |e| match e {
                TargetError::CorruptSnapshot(_) => true,
                TargetError::Bus(b) => transient_bus(b),
                _ => false,
            },
            |e| match e {
                TargetError::CorruptSnapshot(_) => FaultClass::CorruptCapture,
                TargetError::Bus(b) => classify_bus(b),
                _ => FaultClass::CorruptCapture,
            },
        )
    }

    /// Supervised snapshot restore. Restores overwrite the complete
    /// hardware state, so transient failures retry safely.
    ///
    /// # Errors
    ///
    /// The last failure once retries exhaust; non-transient failures
    /// (design mismatch, a genuinely corrupt stored image) immediately.
    pub fn restore_snapshot(
        &mut self,
        target: &mut dyn HwTarget,
        snap: &HwSnapshot,
    ) -> Result<(), TargetError> {
        self.with_retries(
            || target.restore_snapshot(snap),
            |e| match e {
                TargetError::Bus(b) => transient_bus(b),
                _ => false,
            },
            // Everything retried during a restore is a restore-path
            // fault, except an explicit "not ready" handshake which
            // keeps its own class across operations.
            |e| match e {
                TargetError::Bus(BusError::NotReady) => FaultClass::NotReady,
                _ => FaultClass::Restore,
            },
        )
    }

    /// Supervised IRQ-line poll: samples the lines until two
    /// consecutive samples agree, which converges on the honest bitmask
    /// through glitched reads (a glitched sample is always followed by
    /// at least two honest ones — see
    /// `hardsnap_bus::FaultPlan::irq_fault_rate`, and an honest line is
    /// stable within one poll). Extra samples count as retries and
    /// charge backoff virtual time. If the line somehow never settles
    /// within the retry budget the last sample wins: IRQ polls are
    /// level-triggered and re-observed every quantum, so a rare wrong
    /// sample delays delivery by one quantum rather than corrupting
    /// state.
    pub fn irq_lines(&mut self, target: &mut dyn HwTarget) -> u32 {
        let first = target.irq_lines();
        let mut prev = target.irq_lines();
        if first == prev {
            return prev;
        }
        let mut span = self
            .recorder
            .span("fault", FaultClass::IrqGlitch.span_name());
        let mut charged = 0u64;
        for attempt in 1..=self.policy.max_attempts {
            let next = target.irq_lines();
            let pause = self.backoff_ns(attempt);
            charged += pause;
            self.extra_vtime_ns += pause;
            self.retried += 1;
            self.recorder.count(Counter::Retries);
            self.recorder.observe(Metric::BackoffNs, pause);
            if next == prev {
                self.recovered += 1;
                self.recorder.count(Counter::Recovered);
                span.set_arg(u64::from(attempt));
                let class = FaultClass::IrqGlitch;
                self.recorder
                    .observe(class.retries_metric(), u64::from(attempt));
                self.recorder.observe(class.latency_metric(), charged);
                return next;
            }
            prev = next;
        }
        prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardsnap_bus::{FaultPlan, FaultyTarget, RegImage, TargetCaps, TargetKind};

    struct Flaky {
        fail_next: u32,
        reg: u64,
    }

    impl HwTarget for Flaky {
        fn name(&self) -> &str {
            "flaky"
        }
        fn caps(&self) -> TargetCaps {
            TargetCaps {
                kind: TargetKind::Simulator,
                full_visibility: true,
                readback: false,
                clock_hz: 1_000_000,
            }
        }
        fn design_name(&self) -> &str {
            "flaky"
        }
        fn reset(&mut self) {
            self.reg = 0;
        }
        fn step(&mut self, _cycles: u64) {}
        fn cycle(&self) -> u64 {
            0
        }
        fn bus_read(&mut self, addr: u32) -> Result<u32, BusError> {
            if self.fail_next > 0 {
                self.fail_next -= 1;
                return Err(BusError::Timeout { addr, cycles: 1 });
            }
            Ok(0x55)
        }
        fn bus_write(&mut self, _addr: u32, data: u32) -> Result<(), BusError> {
            self.reg = data as u64;
            Ok(())
        }
        fn irq_lines(&mut self) -> u32 {
            0
        }
        fn save_snapshot(&mut self) -> Result<HwSnapshot, TargetError> {
            Ok(HwSnapshot {
                design: "flaky".into(),
                cycle: 0,
                regs: vec![RegImage {
                    name: "r".into(),
                    width: 8,
                    bits: self.reg & 0xff,
                }],
                mems: vec![],
            })
        }
        fn restore_snapshot(&mut self, snap: &HwSnapshot) -> Result<(), TargetError> {
            self.reg = snap.reg("r").unwrap_or(0);
            Ok(())
        }
        fn virtual_time_ns(&self) -> u64 {
            0
        }
    }

    #[test]
    fn transient_bus_errors_are_retried_and_recovered() {
        let mut t = Flaky {
            fail_next: 3,
            reg: 0,
        };
        let mut sup = Supervisor::new(RetryPolicy::default());
        assert_eq!(sup.bus_read(&mut t, 0).unwrap(), 0x55);
        assert_eq!(sup.retried, 3);
        assert_eq!(sup.recovered, 1);
        assert!(sup.extra_vtime_ns > 0, "backoff charges virtual time");
    }

    #[test]
    fn retries_exhaust_into_the_last_error() {
        let mut t = Flaky {
            fail_next: 100,
            reg: 0,
        };
        let mut sup = Supervisor::new(RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::default()
        });
        assert!(matches!(
            sup.bus_read(&mut t, 7),
            Err(BusError::Timeout { addr: 7, .. })
        ));
        assert_eq!(sup.retried, 3, "max_attempts=4 means 3 retries");
        assert_eq!(sup.recovered, 0);
    }

    #[test]
    fn slave_errors_pass_straight_through() {
        struct Unmapped;
        impl HwTarget for Unmapped {
            fn name(&self) -> &str {
                "u"
            }
            fn caps(&self) -> TargetCaps {
                TargetCaps {
                    kind: TargetKind::Simulator,
                    full_visibility: true,
                    readback: false,
                    clock_hz: 1,
                }
            }
            fn design_name(&self) -> &str {
                "u"
            }
            fn reset(&mut self) {}
            fn step(&mut self, _c: u64) {}
            fn cycle(&self) -> u64 {
                0
            }
            fn bus_read(&mut self, addr: u32) -> Result<u32, BusError> {
                Err(BusError::SlaveError { addr })
            }
            fn bus_write(&mut self, addr: u32, _d: u32) -> Result<(), BusError> {
                Err(BusError::SlaveError { addr })
            }
            fn irq_lines(&mut self) -> u32 {
                0
            }
            fn save_snapshot(&mut self) -> Result<HwSnapshot, TargetError> {
                Ok(HwSnapshot::default())
            }
            fn restore_snapshot(&mut self, _s: &HwSnapshot) -> Result<(), TargetError> {
                Ok(())
            }
            fn virtual_time_ns(&self) -> u64 {
                0
            }
        }
        let mut t = Unmapped;
        let mut sup = Supervisor::new(RetryPolicy::default());
        assert!(sup.bus_read(&mut t, 1).is_err());
        assert_eq!(sup.retried, 0, "deterministic design errors never retry");
    }

    #[test]
    fn corrupt_captures_are_recaptured() {
        // A fault plan that flips a scan bit on (only) the first
        // capture: the supervisor must detect it via validate()/shape
        // and come back with the honest image.
        let plan = FaultPlan {
            seed: 3,
            scan_fault_rate: 0.6,
            ..FaultPlan::off()
        };
        let inner = Flaky {
            fail_next: 0,
            reg: 0x2a,
        };
        let mut t = FaultyTarget::new(inner, plan);
        let mut sup = Supervisor::new(RetryPolicy::default());
        for _ in 0..20 {
            let snap = sup.save_snapshot(&mut t).expect("capture recovers");
            assert!(snap.validate().is_ok());
            assert_eq!(snap.reg("r"), Some(0x2a));
        }
        assert!(
            t.stats().scan_flips > 0,
            "the 60% plan must have injected at least one flip in 20 captures"
        );
        assert!(sup.recovered > 0);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let sup = Supervisor::new(RetryPolicy {
            backoff_base_ns: 100,
            backoff_cap_ns: 1_000,
            ..RetryPolicy::default()
        });
        assert_eq!(sup.backoff_ns(1), 100);
        assert_eq!(sup.backoff_ns(2), 200);
        assert_eq!(sup.backoff_ns(3), 400);
        assert_eq!(sup.backoff_ns(5), 1_000, "capped");
        assert_eq!(sup.backoff_ns(60), 1_000, "still capped far out");
    }

    #[test]
    fn deadline_bounds_total_backoff() {
        let mut t = Flaky {
            fail_next: 1_000,
            reg: 0,
        };
        let mut sup = Supervisor::new(RetryPolicy {
            max_attempts: 1_000,
            backoff_base_ns: 1_000,
            backoff_cap_ns: 1_000,
            op_deadline_ns: 3_000,
            ..RetryPolicy::default()
        });
        assert!(sup.bus_read(&mut t, 0).is_err());
        assert!(
            sup.extra_vtime_ns <= 3_000,
            "deadline stops retrying: charged {}",
            sup.extra_vtime_ns
        );
    }

    #[test]
    fn summary_merges_componentwise() {
        let mut a = FaultSummary {
            injected: 1,
            retried: 2,
            recovered: 3,
            quarantined: 4,
        };
        a.merge(&FaultSummary {
            injected: 10,
            retried: 20,
            recovered: 30,
            quarantined: 40,
        });
        assert_eq!(
            a,
            FaultSummary {
                injected: 11,
                retried: 22,
                recovered: 33,
                quarantined: 44,
            }
        );
    }
}
