//! Campaign checkpointing: persist an analysis mid-flight and resume it
//! in a fresh process.
//!
//! A checkpoint is a directory containing one `campaign.hscamp`
//! manifest plus one `snap-<id>.hsnap` TLV image per frontier snapshot
//! (see [`hardsnap_bus::persist`]). The manifest records everything the
//! engine cannot rederive: accumulated budgets (instructions, completed
//! paths), the covered-PC set, bug reports with their testcases,
//! completed paths, and the schedulable frontier — each still-runnable
//! state serialized portably next to the file name of its private
//! hardware snapshot. Delta snapshots are saved as deltas: the shared
//! base image is written once and each child references it by file
//! name, so a fork-heavy frontier costs O(changed) on disk exactly as
//! it does in RAM.
//!
//! Save → resume is digest-transparent: seeding a fresh engine with a
//! checkpoint ([`resume_sequential`] / [`resume_parallel`]) and running
//! to completion yields the same [`RunResult::canonical_digest`] as one
//! uninterrupted run, because the split is just another schedule and
//! the digest only folds schedule-invariant facts.

use crate::engine::{Engine, RunResult};
use crate::parallel::{kind_rank, ParallelEngine};
use crate::snapshots::{PersistEntry, SnapId, SnapshotStore};
use hardsnap_bus::persist::{write_delta, write_full};
use hardsnap_bus::{HwSnapshot, PersistError, PersistedImage, TargetError};
use hardsnap_symex::{BugKind, BugReport, Model, PortableState, StateId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

/// Manifest file name inside a campaign directory.
pub const MANIFEST: &str = "campaign.hscamp";

/// Manifest magic: 8 bytes, version-suffixed like the snapshot TLV.
/// Version 2 added the consumed virtual-time and quantum budgets; older
/// manifests are refused with a version error rather than misread.
const MAGIC: &[u8; 8] = b"HSCAMP2\0";

/// The previous manifest version, recognized only to produce a clear
/// "too old" error instead of a generic bad-magic one.
const MAGIC_V1: &[u8; 8] = b"HSCAMP1\0";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Errors from saving or loading a campaign checkpoint.
#[derive(Debug)]
pub enum CampaignError {
    /// Filesystem failure, naming the path.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error, stringified.
        error: String,
    },
    /// The manifest is malformed (bad magic, truncation, checksum
    /// mismatch, or an impossible field).
    Corrupt(String),
    /// A frontier snapshot image failed to load or verify.
    Persist(PersistError),
    /// A named snapshot file in the campaign directory is truncated or
    /// corrupt — the typed face of "the manifest points at a snapshot
    /// that did not survive the crash". `--resume` surfaces this with
    /// the offending file name; it must never panic.
    Snapshot {
        /// The offending snapshot file (relative to the campaign dir).
        file: String,
        /// What was wrong with it.
        error: PersistError,
    },
    /// An engine-side failure while draining or restoring state.
    Target(TargetError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io { path, error } => {
                write!(f, "campaign I/O at '{}': {error}", path.display())
            }
            CampaignError::Corrupt(m) => write!(f, "corrupt campaign manifest: {m}"),
            CampaignError::Persist(e) => write!(f, "campaign snapshot image: {e}"),
            CampaignError::Snapshot { file, error } => {
                write!(f, "campaign snapshot '{file}': {error}")
            }
            CampaignError::Target(e) => write!(f, "campaign target operation: {e}"),
        }
    }
}

impl Error for CampaignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CampaignError::Persist(e) => Some(e),
            CampaignError::Snapshot { error, .. } => Some(error),
            CampaignError::Target(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for CampaignError {
    fn from(e: PersistError) -> Self {
        CampaignError::Persist(e)
    }
}

impl From<TargetError> for CampaignError {
    fn from(e: TargetError) -> Self {
        CampaignError::Target(e)
    }
}

fn io_err(path: &Path, e: impl fmt::Display) -> CampaignError {
    CampaignError::Io {
        path: path.to_path_buf(),
        error: e.to_string(),
    }
}

/// Everything a checkpoint persists, in engine-neutral form. Produced
/// by [`checkpoint_sequential`] / [`checkpoint_parallel`] and by
/// [`load_campaign`]; the frontier's snapshot ids refer to whichever
/// store the checkpoint was drained from (on save) or loaded into (on
/// load).
pub struct Checkpoint {
    /// Instructions executed by the saved run (its digest counter).
    pub instructions: u64,
    /// Paths completed by the saved run.
    pub paths_completed: u64,
    /// Hardware virtual time consumed by the saved run (ns), carried
    /// forward so a resumed run keeps honouring the original
    /// `max_vtime_ns` budget.
    pub vtime_ns: u64,
    /// Scheduling quanta consumed by the saved run (`max_quanta`
    /// budget).
    pub quanta: u64,
    /// Covered PCs, sorted ascending.
    pub covered: Vec<u32>,
    /// Bug reports, in the saved run's merge order.
    pub bugs: Vec<BugReport>,
    /// Completed paths, portable.
    pub completed: Vec<PortableState>,
    /// Still-schedulable states with their private snapshot ids
    /// (`None` = power-on root).
    pub frontier: Vec<(PortableState, Option<SnapId>)>,
}

// ---------------------------------------------------------------------
// Manifest encoding
// ---------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CampaignError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| {
                CampaignError::Corrupt(format!("truncated at offset {} (need {n})", self.pos))
            })?;
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CampaignError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CampaignError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CampaignError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Result<&'a [u8], CampaignError> {
        let n = self.u32()? as usize;
        self.take(n)
    }
    fn str(&mut self) -> Result<String, CampaignError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| CampaignError::Corrupt("non-UTF-8 string field".into()))
    }
}

fn kind_from_rank(rank: u8) -> Option<BugKind> {
    Some(match rank {
        0 => BugKind::AssertFailed,
        1 => BugKind::FailHit,
        2 => BugKind::Unmapped,
        3 => BugKind::Unaligned,
        4 => BugKind::IllegalInstruction,
        5 => BugKind::Bus,
        6 => BugKind::MmioByteAccess,
        _ => return None,
    })
}

fn encode_manifest(cp: &Checkpoint, snap_files: &HashMap<SnapId, String>) -> Vec<u8> {
    let mut w = Writer {
        buf: MAGIC.to_vec(),
    };
    w.u64(cp.instructions);
    w.u64(cp.paths_completed);
    w.u64(cp.vtime_ns);
    w.u64(cp.quanta);
    w.u32(cp.covered.len() as u32);
    for &pc in &cp.covered {
        w.u32(pc);
    }
    w.u32(cp.bugs.len() as u32);
    for b in &cp.bugs {
        w.u8(kind_rank(b.kind));
        w.u32(b.pc);
        w.u64(b.state_id.0);
        w.str(&b.description);
        match &b.testcase {
            None => w.u8(0),
            Some(model) => {
                w.u8(1);
                let mut vars: Vec<(&str, u64)> = model.iter().collect();
                vars.sort_by(|a, b| a.0.cmp(b.0));
                w.u32(vars.len() as u32);
                for (name, value) in vars {
                    w.str(name);
                    w.u64(value);
                }
            }
        }
    }
    w.u32(cp.completed.len() as u32);
    for s in &cp.completed {
        w.bytes(&s.to_bytes());
    }
    w.u32(cp.frontier.len() as u32);
    for (s, snap) in &cp.frontier {
        w.bytes(&s.to_bytes());
        match snap {
            Some(sid) => w.str(&snap_files[sid]),
            None => w.str(""),
        }
    }
    let sum = fnv1a(&w.buf, FNV_OFFSET);
    w.u64(sum);
    w.buf
}

/// Decoded manifest: the checkpoint with frontier snapshots still as
/// file names (resolved against the store by [`load_campaign`]).
fn decode_manifest(data: &[u8]) -> Result<(Checkpoint, Vec<Option<String>>), CampaignError> {
    if data.len() < MAGIC.len() + 8 {
        return Err(CampaignError::Corrupt(format!(
            "file too short ({} bytes)",
            data.len()
        )));
    }
    if &data[..MAGIC.len()] != MAGIC {
        if &data[..MAGIC_V1.len()] == MAGIC_V1 {
            return Err(CampaignError::Corrupt(
                "manifest version HSCAMP1 is too old (budget fields missing); \
                 re-save the campaign with this version"
                    .into(),
            ));
        }
        return Err(CampaignError::Corrupt("bad magic".into()));
    }
    let (body, tail) = data.split_at(data.len() - 8);
    let want = u64::from_le_bytes(tail.try_into().unwrap());
    let got = fnv1a(body, FNV_OFFSET);
    if want != got {
        return Err(CampaignError::Corrupt(format!(
            "checksum mismatch: manifest says {want:#018x}, content hashes to {got:#018x}"
        )));
    }
    let mut r = Reader {
        data: body,
        pos: MAGIC.len(),
    };
    let instructions = r.u64()?;
    let paths_completed = r.u64()?;
    let vtime_ns = r.u64()?;
    let quanta = r.u64()?;
    let n = r.u32()? as usize;
    let mut covered = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        covered.push(r.u32()?);
    }
    let n = r.u32()? as usize;
    let mut bugs = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let rank = r.u8()?;
        let kind = kind_from_rank(rank)
            .ok_or_else(|| CampaignError::Corrupt(format!("unknown bug kind rank {rank}")))?;
        let pc = r.u32()?;
        let state_id = StateId(r.u64()?);
        let description = r.str()?;
        let testcase = match r.u8()? {
            0 => None,
            1 => {
                let vars = r.u32()? as usize;
                let mut values: HashMap<String, u64> = HashMap::with_capacity(vars.min(1 << 16));
                for _ in 0..vars {
                    let name = r.str()?;
                    let value = r.u64()?;
                    values.insert(name, value);
                }
                Some(Model::from(values))
            }
            other => {
                return Err(CampaignError::Corrupt(format!(
                    "bad testcase presence flag {other}"
                )))
            }
        };
        bugs.push(BugReport {
            kind,
            pc,
            state_id,
            testcase,
            description,
        });
    }
    let n = r.u32()? as usize;
    let mut completed = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let bytes = r.bytes()?;
        completed.push(
            PortableState::from_bytes(bytes)
                .map_err(|e| CampaignError::Corrupt(format!("completed state: {e}")))?,
        );
    }
    let n = r.u32()? as usize;
    let mut frontier = Vec::with_capacity(n.min(1 << 16));
    let mut files = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let bytes = r.bytes()?;
        let state = PortableState::from_bytes(bytes)
            .map_err(|e| CampaignError::Corrupt(format!("frontier state: {e}")))?;
        let file = r.str()?;
        frontier.push((state, None));
        files.push(if file.is_empty() { None } else { Some(file) });
    }
    if r.pos != body.len() {
        return Err(CampaignError::Corrupt(format!(
            "{} trailing bytes after the frontier",
            body.len() - r.pos
        )));
    }
    Ok((
        Checkpoint {
            instructions,
            paths_completed,
            vtime_ns,
            quanta,
            covered,
            bugs,
            completed,
            frontier,
        },
        files,
    ))
}

// ---------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------

/// Writes `bytes` to `path` crash-atomically: the content goes to a
/// `.tmp` sibling first, is fsynced, renamed over `path`, and the
/// directory entry is fsynced last. A crash at any instant leaves
/// either the old file or the complete new one — never a truncated
/// hybrid — so a manifest can never point at a half-written snapshot
/// from the *same* save (snapshots are committed before the manifest
/// rename, which is the checkpoint's single commit point).
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CampaignError> {
    use std::io::Write as _;
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    if let Some(dir) = path.parent() {
        // Persist the rename itself; failure to fsync a directory is
        // not worth failing the save over (the data is already safe on
        // any crash that doesn't also lose the rename).
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Writes `cp` (frontier snapshot ids referring to `store`) into `dir`,
/// creating it if needed. Snapshots stored as deltas are persisted as
/// deltas: the shared base image is written once as its own file and
/// referenced by name, so the on-disk checkpoint stays O(changed).
///
/// # Errors
///
/// I/O failures and store lookup failures (a frontier id that no longer
/// resolves).
pub fn save_campaign(
    dir: &Path,
    store: &SnapshotStore,
    cp: &Checkpoint,
) -> Result<(), CampaignError> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let mut snap_files: HashMap<SnapId, String> = HashMap::new();
    for (_, snap) in &cp.frontier {
        if let Some(sid) = snap {
            write_snapshot_file(dir, store, *sid, &mut snap_files)?;
        }
    }
    let manifest = encode_manifest(cp, &snap_files);
    let path = dir.join(MANIFEST);
    write_atomic(&path, &manifest)?;
    Ok(())
}

/// Persists snapshot `sid` into `dir` (memoized via `files`), writing
/// its base first when the store holds it as a delta. Returns the file
/// name.
fn write_snapshot_file(
    dir: &Path,
    store: &SnapshotStore,
    sid: SnapId,
    files: &mut HashMap<SnapId, String>,
) -> Result<String, CampaignError> {
    if let Some(name) = files.get(&sid) {
        return Ok(name.clone());
    }
    let name = format!("snap-{sid}.hsnap");
    let image = match store
        .export_entry(sid)
        .map_err(|e| CampaignError::Corrupt(format!("frontier snapshot {sid}: {e}")))?
    {
        PersistEntry::Full(snap) => write_full(&snap),
        PersistEntry::Delta { base, delta } => {
            let base_name = write_snapshot_file(dir, store, base, files)?;
            let base_snap = match store
                .export_entry(base)
                .map_err(|e| CampaignError::Corrupt(format!("delta base {base}: {e}")))?
            {
                PersistEntry::Full(s) => s,
                PersistEntry::Delta { .. } => {
                    return Err(CampaignError::Corrupt(format!(
                        "snapshot {sid}'s base {base} is itself a delta"
                    )))
                }
            };
            write_delta(&base_snap, &delta, &base_name)
        }
    };
    let path = dir.join(&name);
    write_atomic(&path, &image)?;
    files.insert(sid, name.clone());
    Ok(name)
}

// ---------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------

/// Reads a checkpoint from `dir`, loading every referenced snapshot
/// image into `store` and rewriting the frontier's snapshot ids to the
/// freshly inserted entries. Delta images are verified against their
/// base (shape and content hash pinned at write time) and installed as
/// native delta entries, so a resumed fork-heavy frontier is O(changed)
/// in RAM exactly as the saved one was.
///
/// # Errors
///
/// I/O failures, a corrupt manifest, and any snapshot-image problem.
pub fn load_campaign(dir: &Path, store: &SnapshotStore) -> Result<Checkpoint, CampaignError> {
    let path = dir.join(MANIFEST);
    let data = std::fs::read(&path).map_err(|e| io_err(&path, e))?;
    let (mut cp, files) = decode_manifest(&data)?;
    // Base images are shared between sibling deltas: load each file
    // once, memoized by name.
    let mut loaded_bases: HashMap<String, (SnapId, HwSnapshot)> = HashMap::new();
    for ((_, slot), file) in cp.frontier.iter_mut().zip(files) {
        let Some(name) = file else { continue };
        *slot = Some(load_snapshot_file(dir, store, &name, &mut loaded_bases)?);
    }
    Ok(cp)
}

/// Reads one snapshot image, converting every persistence failure
/// (truncation, checksum mismatch, bad TLV) into
/// [`CampaignError::Snapshot`] so the caller's error names the exact
/// file that did not survive.
fn read_snapshot_image(path: &Path, name: &str) -> Result<PersistedImage, CampaignError> {
    PersistedImage::read(path).map_err(|error| CampaignError::Snapshot {
        file: name.to_string(),
        error,
    })
}

fn load_base(
    dir: &Path,
    store: &SnapshotStore,
    name: &str,
    bases: &mut HashMap<String, (SnapId, HwSnapshot)>,
) -> Result<(SnapId, HwSnapshot), CampaignError> {
    if let Some((sid, snap)) = bases.get(name) {
        return Ok((*sid, snap.clone()));
    }
    let path = dir.join(name);
    match read_snapshot_image(&path, name)? {
        PersistedImage::Full(snap) => {
            let sid = store.insert_base(snap.clone());
            bases.insert(name.to_string(), (sid, snap.clone()));
            Ok((sid, snap))
        }
        PersistedImage::Delta { .. } => Err(CampaignError::Corrupt(format!(
            "base image '{name}' is itself a delta"
        ))),
    }
}

fn load_snapshot_file(
    dir: &Path,
    store: &SnapshotStore,
    name: &str,
    bases: &mut HashMap<String, (SnapId, HwSnapshot)>,
) -> Result<SnapId, CampaignError> {
    let path = dir.join(name);
    match read_snapshot_image(&path, name)? {
        PersistedImage::Full(snap) => Ok(store.insert(snap)),
        PersistedImage::Delta {
            base_ref,
            base_shape_hash,
            base_content_hash,
            delta,
        } => {
            let (base_id, base_snap) = load_base(dir, store, &base_ref, bases)?;
            if base_snap.shape_hash() != base_shape_hash {
                return Err(CampaignError::Corrupt(format!(
                    "delta '{name}' pins base shape {base_shape_hash:#018x} but '{base_ref}' has {:#018x}",
                    base_snap.shape_hash()
                )));
            }
            if base_snap.content_hash() != base_content_hash {
                return Err(CampaignError::Corrupt(format!(
                    "delta '{name}' pins base content {base_content_hash:#018x} but '{base_ref}' has {:#018x}",
                    base_snap.content_hash()
                )));
            }
            store.insert_delta_native(base_id, delta).ok_or_else(|| {
                CampaignError::Corrupt(format!("delta '{name}' rejected by the store"))
            })
        }
    }
}

// ---------------------------------------------------------------------
// Engine glue
// ---------------------------------------------------------------------

/// Drains a sequential [`Engine`] after a budget-stopped `run()` into a
/// [`Checkpoint`] ready for [`save_campaign`]. `result` must be the
/// `RunResult` that run returned — it carries the accumulated counters
/// and findings the manifest persists.
///
/// # Errors
///
/// Propagates [`Engine::take_frontier`] failures (non-HardSnap mode, or
/// a failed save of the live hardware context).
pub fn checkpoint_sequential(
    engine: &mut Engine,
    result: &RunResult,
) -> Result<Checkpoint, CampaignError> {
    let frontier = engine.take_frontier()?;
    let mut covered: Vec<u32> = engine.covered_set().iter().copied().collect();
    covered.sort_unstable();
    let completed = result
        .completed
        .iter()
        .map(|s| PortableState::export(&engine.executor.pool, s))
        .collect();
    Ok(Checkpoint {
        instructions: result.instructions,
        paths_completed: result.metrics.paths_completed,
        vtime_ns: result.hw_virtual_time_ns,
        quanta: result.metrics.quanta,
        covered,
        bugs: result.bugs.clone(),
        completed,
        frontier,
    })
}

/// Drains a [`ParallelEngine`] after a budget-stopped `run()` into a
/// [`Checkpoint`] ready for [`save_campaign`].
pub fn checkpoint_parallel(engine: &mut ParallelEngine, result: &RunResult) -> Checkpoint {
    let frontier = engine.take_frontier();
    let mut covered: Vec<u32> = engine.covered_set().iter().copied().collect();
    covered.sort_unstable();
    let completed = result
        .completed
        .iter()
        .map(|s| PortableState::export(&engine.executor.pool, s))
        .collect();
    Checkpoint {
        instructions: result.instructions,
        paths_completed: result.metrics.paths_completed,
        vtime_ns: result.hw_virtual_time_ns,
        quanta: result.metrics.quanta,
        covered,
        bugs: result.bugs.clone(),
        completed,
        frontier,
    }
}

/// Saves `engine`'s interrupted campaign into `dir` (sequential form).
///
/// # Errors
///
/// Any [`CampaignError`] from draining or writing.
pub fn snapshot_sequential(
    dir: &Path,
    engine: &mut Engine,
    result: &RunResult,
) -> Result<(), CampaignError> {
    let cp = checkpoint_sequential(engine, result)?;
    save_campaign(dir, &engine.store, &cp)
}

/// Saves `engine`'s interrupted campaign into `dir` (parallel form).
///
/// # Errors
///
/// Any [`CampaignError`] from writing.
pub fn snapshot_parallel(
    dir: &Path,
    engine: &mut ParallelEngine,
    result: &RunResult,
) -> Result<(), CampaignError> {
    let cp = checkpoint_parallel(engine, result);
    save_campaign(dir, &engine.store, &cp)
}

/// Loads the campaign in `dir` into a freshly built sequential
/// [`Engine`]: snapshots enter the engine's store, prior results seed
/// the budgets and the next `RunResult`, and the frontier is enqueued.
/// Do **not** also call `load_firmware` — the frontier carries the
/// program state.
///
/// # Errors
///
/// Any [`CampaignError`] from reading or restoring.
pub fn resume_sequential(dir: &Path, engine: &mut Engine) -> Result<(), CampaignError> {
    let cp = load_campaign(dir, &engine.store)?;
    engine.seed_prior(
        cp.instructions,
        cp.paths_completed,
        cp.vtime_ns,
        cp.quanta,
        cp.covered,
        cp.bugs,
        cp.completed,
    );
    engine.resume_frontier(cp.frontier);
    Ok(())
}

/// Loads the campaign in `dir` into a freshly built [`ParallelEngine`]
/// (see [`resume_sequential`]).
///
/// # Errors
///
/// Any [`CampaignError`] from reading or restoring.
pub fn resume_parallel(dir: &Path, engine: &mut ParallelEngine) -> Result<(), CampaignError> {
    let cp = load_campaign(dir, &engine.store)?;
    engine.seed_prior(
        cp.instructions,
        cp.paths_completed,
        cp.vtime_ns,
        cp.quanta,
        cp.covered,
        cp.bugs,
        cp.completed,
    );
    engine.resume_frontier(cp.frontier);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ConsistencyMode, EngineConfig};
    use crate::firmware;
    use hardsnap_sim::SimTarget;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hardsnap-campaign-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn soc_engine(config: EngineConfig) -> Engine {
        let soc = hardsnap_periph::soc().unwrap();
        let target = Box::new(SimTarget::new(soc).unwrap());
        Engine::new(target, config)
    }

    fn full_run_digest(config: &EngineConfig, prog: &hardsnap_isa::Program) -> (u64, RunResult) {
        let mut engine = soc_engine(config.clone());
        engine.load_firmware(prog);
        let r = engine.run();
        (r.canonical_digest(), r)
    }

    #[test]
    fn sequential_save_resume_digest_matches_uninterrupted_run() {
        let prog = hardsnap_isa::assemble(&firmware::branching_firmware(3)).unwrap();
        let config = EngineConfig {
            mode: ConsistencyMode::HardSnap,
            ..EngineConfig::default()
        };
        let (want, _) = full_run_digest(&config, &prog);

        // Interrupted run: stop early on an instruction budget.
        let dir = tmp("seq");
        {
            let mut cut = config.clone();
            cut.max_instructions = 40;
            let mut engine = soc_engine(cut);
            engine.load_firmware(&prog);
            let partial = engine.run();
            assert!(
                partial.metrics.paths_completed < 8,
                "cut must actually interrupt the run"
            );
            snapshot_sequential(&dir, &mut engine, &partial).unwrap();
        }

        // Fresh engine, full budget, resumed from disk.
        let mut engine = soc_engine(config);
        resume_sequential(&dir, &mut engine).unwrap();
        let resumed = engine.run();
        assert_eq!(resumed.metrics.paths_completed, 8);
        assert_eq!(resumed.canonical_digest(), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_save_resume_digest_matches_uninterrupted_run() {
        let prog = hardsnap_isa::assemble(&firmware::branching_firmware(3)).unwrap();
        let config = EngineConfig {
            mode: ConsistencyMode::HardSnap,
            delta_snapshots: true,
            ..EngineConfig::default()
        };
        let soc = hardsnap_periph::soc().unwrap();
        let proto = SimTarget::new(soc).unwrap();
        let want = {
            let mut engine = ParallelEngine::new(&proto, 2, config.clone()).unwrap();
            engine.load_firmware(&prog);
            engine.run().canonical_digest()
        };
        let dir = tmp("par");
        {
            let mut cut = config.clone();
            cut.max_instructions = 40;
            let mut engine = ParallelEngine::new(&proto, 2, cut).unwrap();
            engine.load_firmware(&prog);
            let partial = engine.run();
            snapshot_parallel(&dir, &mut engine, &partial).unwrap();
        }

        let mut engine = ParallelEngine::new(&proto, 2, config).unwrap();
        resume_parallel(&dir, &mut engine).unwrap();
        let resumed = engine.run();
        assert_eq!(resumed.metrics.paths_completed, 8);
        assert_eq!(resumed.canonical_digest(), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_snapshot_file_is_a_typed_error_naming_it() {
        // A crash between the snapshot writes and the manifest rename
        // cannot happen (the manifest commits last), but a snapshot
        // truncated *after* the save — torn disk, partial copy — must
        // surface on resume as a typed error naming the file, never a
        // panic.
        let prog = hardsnap_isa::assemble(&firmware::branching_firmware(3)).unwrap();
        let config = EngineConfig {
            mode: ConsistencyMode::HardSnap,
            max_instructions: 40,
            ..EngineConfig::default()
        };
        let dir = tmp("truncsnap");
        let mut engine = soc_engine(config);
        engine.load_firmware(&prog);
        let partial = engine.run();
        snapshot_sequential(&dir, &mut engine, &partial).unwrap();
        let snap_path = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| p.extension().is_some_and(|e| e == "hsnap"))
            .expect("an interrupted run must checkpoint at least one snapshot");
        let full = std::fs::read(&snap_path).unwrap();
        std::fs::write(&snap_path, &full[..full.len() / 2]).unwrap();

        let store = SnapshotStore::new();
        let err = match load_campaign(&dir, &store) {
            Ok(_) => panic!("truncated snapshot must fail the load"),
            Err(e) => e,
        };
        let name = snap_path.file_name().unwrap().to_str().unwrap();
        match &err {
            CampaignError::Snapshot { file, .. } => assert_eq!(file, name),
            other => panic!("expected CampaignError::Snapshot, got {other:?}"),
        }
        assert!(
            err.to_string().contains(name),
            "error must name the bad file: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_tmp_files_survive_a_save() {
        let prog = hardsnap_isa::assemble(&firmware::branching_firmware(2)).unwrap();
        let config = EngineConfig {
            mode: ConsistencyMode::HardSnap,
            max_instructions: 30,
            ..EngineConfig::default()
        };
        let dir = tmp("notmp");
        let mut engine = soc_engine(config);
        engine.load_firmware(&prog);
        let partial = engine.run();
        snapshot_sequential(&dir, &mut engine, &partial).unwrap();
        for entry in std::fs::read_dir(&dir).unwrap() {
            let p = entry.unwrap().path();
            assert!(
                p.extension().map(|e| e != "tmp").unwrap_or(true),
                "stray temp file after save: {}",
                p.display()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_flip_any_byte_is_a_typed_error() {
        let prog = hardsnap_isa::assemble(&firmware::branching_firmware(2)).unwrap();
        let config = EngineConfig {
            mode: ConsistencyMode::HardSnap,
            max_instructions: 30,
            ..EngineConfig::default()
        };
        let dir = tmp("flip");
        let mut engine = soc_engine(config);
        engine.load_firmware(&prog);
        let partial = engine.run();
        snapshot_sequential(&dir, &mut engine, &partial).unwrap();
        let path = dir.join(MANIFEST);
        let clean = std::fs::read(&path).unwrap();
        let store = SnapshotStore::new();
        // Every single-byte corruption must surface as CampaignError,
        // never a panic or a silently different checkpoint.
        for pos in 0..clean.len() {
            let mut bad = clean.clone();
            bad[pos] ^= 0x41;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                load_campaign(&dir, &store).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
