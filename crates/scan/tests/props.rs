//! Property tests for the scan-chain codec, including memory collars:
//! the bit-stream layout must round-trip arbitrary register values, and
//! shape mismatches (wrong value counts, wrong stream lengths) must be
//! reported as `ScanError`, never a panic — the FPGA side hands this
//! code raw shift-register captures.

use hardsnap_scan::{ChainMap, ChainSegment, MemCollar};
use hardsnap_util::prop::from_fn;
use hardsnap_util::prop_check;
use hardsnap_util::Rng;

fn mask(w: u32) -> u64 {
    if w == 64 {
        u64::MAX
    } else {
        (1 << w) - 1
    }
}

fn arb_chain(rng: &mut Rng) -> (ChainMap, Vec<u64>) {
    let mut cells = 0u64;
    let segments: Vec<ChainSegment> = (0..rng.gen_range(1usize..10))
        .map(|i| {
            let width = rng.gen_range(1u32..=64);
            let seg = ChainSegment {
                name: format!("r{i}"),
                width,
                msb_cell: cells,
            };
            cells += width as u64;
            seg
        })
        .collect();
    let mems = (0..rng.gen_range(0usize..3))
        .map(|i| MemCollar {
            name: format!("m{i}"),
            width: rng.gen_range(8u32..=32),
            depth: rng.gen_range(1u32..64),
            sel: i as u32,
        })
        .collect();
    let values = segments
        .iter()
        .map(|s| rng.next_u64() & mask(s.width))
        .collect();
    // Random lane count with the matching pad, as the pass would build.
    let lanes = rng.gen_range(1u32..=64);
    let pad_bits = (u64::from(lanes) - cells % u64::from(lanes)) % u64::from(lanes);
    (
        ChainMap {
            segments,
            mems,
            lanes,
            pad_bits,
        },
        values,
    )
}

#[test]
fn roundtrip_with_mem_collars_and_bit_accounting() {
    prop_check!(cases = 128, seed = 0x5CA4_B175, (cv in from_fn(arb_chain)) => {
        let (chain, values) = cv;
        let stream = chain.encode(&values).unwrap();
        assert_eq!(stream.len() as u64, chain.chain_bits());
        assert_eq!(
            chain.chain_bits(),
            chain.segments.iter().map(|s| s.width as u64).sum::<u64>()
        );
        assert_eq!(
            chain.mem_words(),
            chain.mems.iter().map(|m| m.depth as u64).sum::<u64>()
        );
        assert_eq!(chain.decode(&stream).unwrap(), values);
        // Word codec: one word per shift cycle, same values back, and
        // the cell accounting includes exactly the pad.
        let words = chain.encode_words(&values).unwrap();
        assert_eq!(words.len() as u64, chain.shift_cycles());
        assert_eq!(chain.total_cells(), chain.chain_bits() + chain.pad_bits);
        assert_eq!(chain.total_cells() % u64::from(chain.lanes()), 0);
        assert_eq!(chain.decode_words(&words).unwrap(), values);
    });
}

#[test]
fn single_lane_word_codec_matches_bit_codec() {
    prop_check!(cases = 64, seed = 0x1A4E_0001, (cv in from_fn(arb_chain)) => {
        let (mut chain, values) = cv;
        chain.lanes = 1;
        chain.pad_bits = 0;
        let bits = chain.encode(&values).unwrap();
        let words = chain.encode_words(&values).unwrap();
        assert_eq!(words.len(), bits.len());
        assert!(words.iter().zip(&bits).all(|(&w, &b)| w == u64::from(b)));
    });
}

#[test]
fn shape_mismatches_error_instead_of_panicking() {
    prop_check!(cases = 128, seed = 0x5AFE_E44, (cv in from_fn(arb_chain)) => {
        let (chain, values) = cv;
        // One value too many and one too few.
        let mut long = values.clone();
        long.push(0);
        assert!(chain.encode(&long).is_err());
        assert!(chain.encode(&values[..values.len() - 1]).is_err());
        // Wrong stream lengths.
        let stream = chain.encode(&values).unwrap();
        assert!(chain.decode(&stream[..stream.len() - 1]).is_err());
        let mut padded = stream.clone();
        padded.push(false);
        assert!(chain.decode(&padded).is_err());
    });
}

#[test]
fn segment_lookup_finds_every_register() {
    prop_check!(cases = 64, seed = 0x5E9_100C, (cv in from_fn(arb_chain)) => {
        let (chain, _) = cv;
        for seg in &chain.segments {
            let found = chain.segment(&seg.name).expect("own segment resolves");
            assert_eq!(found, seg);
        }
        assert!(chain.segment("no_such_register").is_none());
    });
}
