//! The scan-chain instrumentation pass (RTL-to-RTL).
//!
//! This is the paper's core enabling mechanism (§IV-A, Fig. 3 path B):
//! the pass takes Verilog-level RTL and inserts "an alternative path in
//! which all the hardware registers form a shift register", activated by
//! `scan_enable` and fed/drained through `scan_in`/`scan_out`. Because
//! the rewrite happens at the RTL level, the output is target-independent
//! — it can be re-emitted as Verilog for an FPGA flow or simulated
//! directly.
//!
//! Memories get a *memory access collar* instead of bit-serial shifting
//! (as production DFT does): extra ports through which the snapshot
//! controller reads/writes words directly while `scan_mem_en` suppresses
//! functional writes.
//!
//! A scope prefix can limit instrumentation to a sub-component of the
//! design (the paper's "user-defined parameters allow to limit the
//! instrumentation to a sub-component"); out-of-scope registers simply
//! hold their value during scan.

use crate::chain::{ChainMap, ChainSegment, MemCollar};
use crate::ScanError;
use hardsnap_rtl::{
    BinaryOp, ContAssign, Expr, LValue, MemId, Module, NetId, NetKind, PortDir, ProcessKind, Stmt,
};

/// Instrumentation port names inserted by the pass.
pub mod ports {
    /// Selects scan mode (suppresses functional updates, enables shift).
    pub const SCAN_ENABLE: &str = "scan_enable";
    /// Serial input of the chain.
    pub const SCAN_IN: &str = "scan_in";
    /// Serial output of the chain.
    pub const SCAN_OUT: &str = "scan_out";
    /// Memory-collar enable (suppresses functional memory writes).
    pub const MEM_EN: &str = "scan_mem_en";
    /// Memory-collar selector.
    pub const MEM_SEL: &str = "scan_mem_sel";
    /// Memory-collar word address.
    pub const MEM_ADDR: &str = "scan_mem_addr";
    /// Memory-collar write strobe.
    pub const MEM_WE: &str = "scan_mem_we";
    /// Memory-collar write data.
    pub const MEM_WDATA: &str = "scan_mem_wdata";
    /// Memory-collar read data.
    pub const MEM_RDATA: &str = "scan_mem_rdata";
}

/// Options controlling the instrumentation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanOptions {
    /// Only instrument registers/memories whose hierarchical name starts
    /// with this prefix (`None` = whole design).
    pub scope: Option<String>,
    /// Skip memory collars entirely (registers only).
    pub skip_memories: bool,
    /// Shift lanes: the width of `scan_in`/`scan_out`. Every scan cycle
    /// moves the whole chain by `width` cells, so a full save/restore
    /// pass takes `⌈N/width⌉` cycles instead of `N` (batched shifting;
    /// the snapshot controller streams whole words per cycle). Clamped
    /// to `1..=64`. Default `1` — the classic serial chain.
    pub width: u32,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            scope: None,
            skip_memories: false,
            width: 1,
        }
    }
}

/// Instruments `module` with a scan chain and memory collars.
///
/// Returns the rewritten module together with the [`ChainMap`] describing
/// the inserted access paths.
///
/// # Errors
///
/// * [`ScanError::NothingToInstrument`] — no clocked register matches the
///   scope.
/// * [`ScanError::Rtl`] — net-name collisions with the instrumentation
///   ports (the design already uses `scan_*` names).
pub fn instrument(module: &Module, opts: &ScanOptions) -> Result<(Module, ChainMap), ScanError> {
    let mut m = module.clone();
    let in_scope = |name: &str| match &opts.scope {
        Some(p) => name.starts_with(p.as_str()),
        None => true,
    };

    // Registers to chain, in deterministic clocked_regs order.
    let regs: Vec<NetId> = m
        .clocked_regs()
        .into_iter()
        .filter(|&id| in_scope(&m.net(id).name))
        .collect();
    if regs.is_empty() {
        return Err(ScanError::NothingToInstrument(
            opts.scope
                .clone()
                .unwrap_or_else(|| "<whole design>".into()),
        ));
    }
    let mems: Vec<MemId> = if opts.skip_memories {
        Vec::new()
    } else {
        m.iter_mems()
            .filter(|(_, mem)| in_scope(&mem.name))
            .map(|(id, _)| id)
            .collect()
    };

    // --- insert ports ------------------------------------------------------
    let lanes = opts.width.clamp(1, 64);
    let scan_enable = m.add_net(ports::SCAN_ENABLE, 1, NetKind::Wire, Some(PortDir::Input))?;
    let scan_in = m.add_net(ports::SCAN_IN, lanes, NetKind::Wire, Some(PortDir::Input))?;
    let scan_out = m.add_net(ports::SCAN_OUT, lanes, NetKind::Wire, Some(PortDir::Output))?;

    // --- build the chain map ------------------------------------------------
    let mut chain = ChainMap::default();
    let mut msb_cell = 0u64;
    for &id in &regs {
        let net = m.net(id);
        chain.segments.push(ChainSegment {
            name: net.name.clone(),
            width: net.width,
            msb_cell,
        });
        msb_cell += net.width as u64;
    }
    chain.lanes = lanes;
    chain.pad_bits = (u64::from(lanes) - msb_cell % u64::from(lanes)) % u64::from(lanes);
    // Zero-fill pad register occupying the last cells, so the chain is a
    // whole number of lanes. Not a chain segment: its content is
    // discarded, keeping snapshots interchangeable with unpadded
    // targets.
    let pad_net = if chain.pad_bits > 0 {
        Some(m.add_net("scan_pad", chain.pad_bits as u32, NetKind::Reg, None)?)
    } else {
        None
    };

    // cell index -> (owning net, bit within that net). Cell `base + k`
    // of a register is its bit `width-1-k`.
    let mut cell_owner: Vec<(NetId, u32)> = Vec::with_capacity(chain.total_cells() as usize);
    for &id in &regs {
        let w = m.net(id).width;
        for k in 0..w {
            cell_owner.push((id, w - 1 - k));
        }
    }
    if let Some(p) = pad_net {
        let w = chain.pad_bits as u32;
        for k in 0..w {
            cell_owner.push((p, w - 1 - k));
        }
    }
    // After one scan cycle, cell `i` holds: scan_in bit `lanes-1-i` for
    // the first `lanes` cells, else cell `i - lanes`.
    let src_of = |i: u64| -> (NetId, u32) {
        if i < u64::from(lanes) {
            (scan_in, lanes - 1 - i as u32)
        } else {
            cell_owner[(i - u64::from(lanes)) as usize]
        }
    };
    // MSB-first concatenation of per-cell sources, with consecutive
    // descending bit runs of one net coalesced into slices (and
    // full-width slices collapsed to the net itself).
    let build_rhs = |m: &Module, parts: &[(NetId, u32)]| -> Expr {
        let slice = |base: NetId, hi: u32, lo: u32| {
            if lo == 0 && hi + 1 == m.net(base).width {
                Expr::Net(base)
            } else {
                Expr::Slice { base, hi, lo }
            }
        };
        let mut exprs: Vec<Expr> = Vec::new();
        let mut run: Option<(NetId, u32, u32)> = None;
        for &(net, bit) in parts {
            run = Some(match run {
                Some((n, hi, lo)) if n == net && bit + 1 == lo => (n, hi, bit),
                Some((n, hi, lo)) => {
                    exprs.push(slice(n, hi, lo));
                    (net, bit, bit)
                }
                None => (net, bit, bit),
            });
        }
        if let Some((n, hi, lo)) = run {
            exprs.push(slice(n, hi, lo));
        }
        if exprs.len() == 1 {
            exprs.pop().expect("non-empty")
        } else {
            Expr::Concat(exprs)
        }
    };

    // scan_out = the last `lanes` cells (MSB = earliest cell).
    let out_parts: Vec<(NetId, u32)> = (chain.total_cells() - u64::from(lanes)
        ..chain.total_cells())
        .map(|i| cell_owner[i as usize])
        .collect();
    let scan_out_rhs = build_rhs(&m, &out_parts);
    m.assigns.push(ContAssign {
        lv: LValue::Net(scan_out),
        rhs: scan_out_rhs,
    });

    // --- memory collar ports -----------------------------------------------
    let mut mem_ctl = None;
    if !mems.is_empty() {
        let sel_width = (32 - (mems.len() as u32).saturating_sub(1).leading_zeros()).max(1);
        let max_width = mems.iter().map(|&id| m.memory(id).width).max().unwrap();
        let max_depth = mems.iter().map(|&id| m.memory(id).depth).max().unwrap();
        let addr_width = (32 - max_depth.saturating_sub(1).leading_zeros()).max(1);
        let en = m.add_net(ports::MEM_EN, 1, NetKind::Wire, Some(PortDir::Input))?;
        let sel = m.add_net(
            ports::MEM_SEL,
            sel_width,
            NetKind::Wire,
            Some(PortDir::Input),
        )?;
        let addr = m.add_net(
            ports::MEM_ADDR,
            addr_width,
            NetKind::Wire,
            Some(PortDir::Input),
        )?;
        let we = m.add_net(ports::MEM_WE, 1, NetKind::Wire, Some(PortDir::Input))?;
        let wdata = m.add_net(
            ports::MEM_WDATA,
            max_width,
            NetKind::Wire,
            Some(PortDir::Input),
        )?;
        let rdata = m.add_net(
            ports::MEM_RDATA,
            max_width,
            NetKind::Wire,
            Some(PortDir::Output),
        )?;

        // Combinational read mux across collared memories.
        let mut read_expr = Expr::constant(0, max_width);
        for (i, &id) in mems.iter().enumerate().rev() {
            let mem_read = Expr::MemRead {
                mem: id,
                addr: Box::new(Expr::Net(addr)),
            };
            read_expr = Expr::Cond {
                cond: Box::new(Expr::Binary {
                    op: BinaryOp::Eq,
                    lhs: Box::new(Expr::Net(sel)),
                    rhs: Box::new(Expr::constant(i as u64, sel_width)),
                }),
                then_e: Box::new(mem_read),
                else_e: Box::new(read_expr),
            };
            chain.mems.push(MemCollar {
                name: m.memory(id).name.clone(),
                width: m.memory(id).width,
                depth: m.memory(id).depth,
                sel: i as u32,
            });
        }
        chain.mems.reverse(); // iterate built them in reverse
        m.assigns.push(ContAssign {
            lv: LValue::Net(rdata),
            rhs: read_expr,
        });
        mem_ctl = Some((en, sel, addr, we, wdata));
    }

    // --- rewrite every clocked process ---------------------------------------
    // For process p: body' =
    //   if (scan_enable)       { shift stmts for its in-chain regs }
    //   else if (scan_mem_en)  { collar writes for its collared mems }
    //   else                   { original body }
    let chained: Vec<(NetId, u64, u32)> = chain
        .segments
        .iter()
        .zip(&regs)
        .map(|(seg, &id)| (id, seg.msb_cell, seg.width))
        .collect();
    // The pad shifts like any other register; its statement rides in the
    // first clocked process (single-clock designs) since the pad has no
    // owner of its own.
    let mut pad_stmt = pad_net.map(|p| {
        let parts: Vec<(NetId, u32)> = (msb_cell..chain.total_cells()).map(src_of).collect();
        Stmt::Assign {
            lv: LValue::Net(p),
            rhs: build_rhs(&m, &parts),
            blocking: false,
        }
    });

    for pi in 0..m.processes.len() {
        if !matches!(m.processes[pi].kind, ProcessKind::Clocked { .. }) {
            continue;
        }
        // Registers/memories owned by this process.
        let mut own_regs: Vec<NetId> = Vec::new();
        let mut own_mems: Vec<MemId> = Vec::new();
        for s in &m.processes[pi].body {
            s.for_each(&mut |s| {
                if let Stmt::Assign { lv, .. } = s {
                    if let Some(n) = lv.target_net() {
                        if !own_regs.contains(&n) {
                            own_regs.push(n);
                        }
                    }
                    if let Some(mid) = lv.target_mem() {
                        if !own_mems.contains(&mid) {
                            own_mems.push(mid);
                        }
                    }
                }
            });
        }

        let mut shift_stmts = Vec::new();
        for &(id, base_cell, w) in &chained {
            if !own_regs.contains(&id) {
                continue;
            }
            // New register content after one scan cycle: the sources of
            // its cells, MSB first.
            let parts: Vec<(NetId, u32)> =
                (base_cell..base_cell + u64::from(w)).map(src_of).collect();
            shift_stmts.push(Stmt::Assign {
                lv: LValue::Net(id),
                rhs: build_rhs(&m, &parts),
                blocking: false,
            });
        }
        if let Some(pad) = pad_stmt.take() {
            shift_stmts.push(pad);
        }

        let mut collar_stmts = Vec::new();
        if let Some((_, sel, addr, we, wdata)) = &mem_ctl {
            for mid in &own_mems {
                let Some(collar) = chain.mems.iter().find(|c| c.name == m.memory(*mid).name) else {
                    continue; // out of scope
                };
                let sel_w = m.net(*sel).width;
                collar_stmts.push(Stmt::If {
                    cond: Expr::Binary {
                        op: BinaryOp::LogicAnd,
                        lhs: Box::new(Expr::Net(*we)),
                        rhs: Box::new(Expr::Binary {
                            op: BinaryOp::Eq,
                            lhs: Box::new(Expr::Net(*sel)),
                            rhs: Box::new(Expr::constant(collar.sel as u64, sel_w)),
                        }),
                    },
                    then_s: vec![Stmt::Assign {
                        lv: LValue::Mem {
                            mem: *mid,
                            addr: Expr::Net(*addr),
                        },
                        rhs: Expr::Net(*wdata),
                        blocking: false,
                    }],
                    else_s: vec![],
                });
            }
        }

        let original = std::mem::take(&mut m.processes[pi].body);
        // Every clocked process must freeze during collar accesses, not
        // just the ones owning a collared memory — otherwise unrelated
        // registers keep advancing while the controller drains/fills
        // memories, corrupting the snapshot.
        let inner = match &mem_ctl {
            Some((en, ..)) => vec![Stmt::If {
                cond: Expr::Net(*en),
                then_s: collar_stmts,
                else_s: original,
            }],
            None => original,
        };
        let wrapped = if shift_stmts.is_empty() {
            // Out-of-scope (or memory-only) process: hold registers during
            // scan, but memory collar must still be reachable.
            vec![Stmt::If {
                cond: Expr::Net(scan_enable),
                then_s: vec![],
                else_s: inner,
            }]
        } else {
            vec![Stmt::If {
                cond: Expr::Net(scan_enable),
                then_s: shift_stmts,
                else_s: inner,
            }]
        };
        m.processes[pi].body = wrapped;
    }

    // Rename so the instrumented design is distinguishable.
    m.name = format!("{}_scan", module.name);
    Ok((m, chain))
}

/// Convenience: re-emit the instrumented module as Verilog via
/// `hardsnap-verilog` is done by callers; this helper only validates the
/// instrumented module (structural checks must still pass).
///
/// # Errors
///
/// Propagates [`hardsnap_rtl::RtlError`] from the checker.
pub fn validate_instrumented(m: &Module) -> Result<(), ScanError> {
    hardsnap_rtl::check_module(m)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardsnap_rtl::{EdgeKind, Process, Value};

    /// Builds a small two-process module with a memory, directly in IR.
    fn sample() -> Module {
        let mut m = Module::new("dut");
        let clk = m
            .add_net("clk", 1, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let d = m
            .add_net("d", 8, NetKind::Wire, Some(PortDir::Input))
            .unwrap();
        let q = m
            .add_net("q", 8, NetKind::Reg, Some(PortDir::Output))
            .unwrap();
        let flag = m.add_net("flag", 1, NetKind::Reg, None).unwrap();
        let ram = m.add_memory("ram", 16, 8).unwrap();
        m.processes.push(Process {
            kind: ProcessKind::Clocked {
                clock: clk,
                edge: EdgeKind::Pos,
            },
            body: vec![
                Stmt::Assign {
                    lv: LValue::Net(q),
                    rhs: Expr::Net(d),
                    blocking: false,
                },
                Stmt::Assign {
                    lv: LValue::Mem {
                        mem: ram,
                        addr: Expr::Slice {
                            base: d,
                            hi: 2,
                            lo: 0,
                        },
                    },
                    rhs: Expr::Concat(vec![Expr::Net(d), Expr::Net(q)]),
                    blocking: false,
                },
            ],
        });
        m.processes.push(Process {
            kind: ProcessKind::Clocked {
                clock: clk,
                edge: EdgeKind::Pos,
            },
            body: vec![Stmt::Assign {
                lv: LValue::Net(flag),
                rhs: Expr::Unary {
                    op: hardsnap_rtl::UnaryOp::RedXor,
                    arg: Box::new(Expr::Net(d)),
                },
                blocking: false,
            }],
        });
        m
    }

    #[test]
    fn instrument_adds_ports_and_chain() {
        let (m, chain) = instrument(&sample(), &ScanOptions::default()).unwrap();
        assert!(m.find_net(ports::SCAN_ENABLE).is_some());
        assert!(m.find_net(ports::SCAN_IN).is_some());
        assert!(m.find_net(ports::SCAN_OUT).is_some());
        assert_eq!(chain.chain_bits(), 9); // q (8) + flag (1)
        assert_eq!(chain.segments[0].name, "q");
        assert_eq!(chain.segments[1].name, "flag");
        assert_eq!(chain.mems.len(), 1);
        assert_eq!(chain.mems[0].depth, 8);
        validate_instrumented(&m).unwrap();
        assert_eq!(m.name, "dut_scan");
    }

    #[test]
    fn instrumented_state_grows_only_by_zero_regs() {
        // The pass adds no flip-flops, only muxing: state bits unchanged.
        let base = sample();
        let (m, _) = instrument(&base, &ScanOptions::default()).unwrap();
        assert_eq!(m.state_bits(), base.state_bits());
    }

    #[test]
    fn scope_filters_registers() {
        let (_, chain) = instrument(
            &sample(),
            &ScanOptions {
                scope: Some("q".into()),
                skip_memories: true,
                ..ScanOptions::default()
            },
        )
        .unwrap();
        assert_eq!(chain.segments.len(), 1);
        assert_eq!(chain.segments[0].name, "q");
        assert!(chain.mems.is_empty());
    }

    #[test]
    fn empty_scope_is_error() {
        let err = instrument(
            &sample(),
            &ScanOptions {
                scope: Some("nonexistent.".into()),
                skip_memories: false,
                ..ScanOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, ScanError::NothingToInstrument(_)));
    }

    #[test]
    fn name_collision_is_reported() {
        let mut m = sample();
        m.add_net("scan_enable", 1, NetKind::Wire, None).unwrap();
        assert!(matches!(
            instrument(&m, &ScanOptions::default()),
            Err(ScanError::Rtl(_))
        ));
    }

    #[test]
    fn shift_behaviour_via_ir_inspection() {
        // First register's scan source must be scan_in; second's must be
        // the first's LSB.
        let (m, chain) = instrument(&sample(), &ScanOptions::default()).unwrap();
        let scan_in = m.find_net(ports::SCAN_IN).unwrap();
        let q = m.find_net("q").unwrap();
        let mut found_first = false;
        let mut found_second = false;
        for p in &m.processes {
            for s in &p.body {
                s.for_each(&mut |s| {
                    if let Stmt::Assign {
                        lv: LValue::Net(n),
                        rhs,
                        ..
                    } = s
                    {
                        if m.net(*n).name == "q" {
                            if let Expr::Concat(parts) = rhs {
                                if parts.first() == Some(&Expr::Net(scan_in)) {
                                    found_first = true;
                                }
                            }
                        }
                        if m.net(*n).name == "flag"
                            && *rhs
                                == (Expr::Slice {
                                    base: q,
                                    hi: 0,
                                    lo: 0,
                                })
                        {
                            found_second = true;
                        }
                    }
                });
            }
        }
        assert!(found_first, "q must shift in from scan_in");
        assert!(found_second, "flag must shift in from q[0]");
        let _ = chain;
    }

    #[test]
    fn chain_encode_matches_segments() {
        let (_, chain) = instrument(&sample(), &ScanOptions::default()).unwrap();
        let vals = vec![Value::new(0xa5, 8).bits(), 1];
        let stream = chain.encode(&vals).unwrap();
        assert_eq!(chain.decode(&stream).unwrap(), vals);
    }
}
