//! # hardsnap-scan
//!
//! Scan-chain instrumentation toolchain and snapshot access-path model —
//! the reproduction of HardSnap's hardware-snapshotting instrumentation
//! (paper §III-A and §IV-A, Fig. 3 path B).
//!
//! The [`instrument`] pass rewrites RTL so that every flip-flop becomes
//! part of a serial shift register (`scan_enable`/`scan_in`/`scan_out`)
//! and every memory gets a word-access collar. The [`ChainMap`] records
//! the layout so the snapshot controller (in `hardsnap-fpga`) can convert
//! between serial bitstreams and named register values. The instrumented
//! module remains valid RTL: it can be printed back to Verilog with
//! `hardsnap-verilog` (for a real FPGA flow) or simulated directly.
//!
//! ## Example
//!
//! ```
//! use hardsnap_scan::{instrument, ScanOptions};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = hardsnap_verilog::parse_design(r#"
//!     module c (input wire clk, output reg [3:0] q);
//!         always @(posedge clk) q <= q + 4'd1;
//!     endmodule
//! "#)?;
//! let flat = hardsnap_rtl::elaborate(&design, "c")?;
//! let (instrumented, chain) = instrument(&flat, &ScanOptions::default())?;
//! assert_eq!(chain.chain_bits(), 4);
//! assert!(instrumented.find_net("scan_enable").is_some());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod chain;
pub mod pass;

pub use chain::{ChainMap, ChainSegment, MemCollar, ShiftPlan};
pub use pass::{instrument, ports, validate_instrumented, ScanOptions};

use std::error::Error;
use std::fmt;

/// Errors from the instrumentation pass and bitstream codecs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScanError {
    /// No register matched the requested scope.
    NothingToInstrument(String),
    /// Bitstream or value-vector length does not match the chain layout.
    ShapeMismatch(String),
    /// An underlying RTL operation failed (usually a `scan_*` name
    /// collision).
    Rtl(hardsnap_rtl::RtlError),
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::NothingToInstrument(scope) => {
                write!(f, "no clocked registers to instrument in scope '{scope}'")
            }
            ScanError::ShapeMismatch(m) => write!(f, "chain shape mismatch: {m}"),
            ScanError::Rtl(e) => write!(f, "rtl error during instrumentation: {e}"),
        }
    }
}

impl Error for ScanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScanError::Rtl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hardsnap_rtl::RtlError> for ScanError {
    fn from(e: hardsnap_rtl::RtlError) -> Self {
        ScanError::Rtl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(ScanError::NothingToInstrument("x.".into())
            .to_string()
            .contains("x."));
        assert!(ScanError::ShapeMismatch("10 vs 12".into())
            .to_string()
            .contains("10 vs 12"));
    }
}
