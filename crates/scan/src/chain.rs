//! Scan-chain layout and bitstream encoding.
//!
//! The instrumentation pass threads every flip-flop into one shift
//! register. The [`ChainMap`] records the resulting cell order so the
//! snapshot controller can convert between named register values (the
//! canonical `hardsnap_bus::HwSnapshot` form) and the serial bitstream
//! that actually travels through `scan_in`/`scan_out`.
//!
//! ## Cell order
//!
//! `scan_in` feeds the MSB of the first register; each register shifts
//! toward its LSB; a register's LSB feeds the next register's MSB; the
//! last register's LSB drives `scan_out`. Cell index 0 is therefore the
//! first register's MSB and cell `N-1` the last register's LSB.
//!
//! A bit fed on `scan_in` at shift cycle `t` comes to rest in cell
//! `N-1-t`; the bit observed on `scan_out` at cycle `t` is the original
//! content of cell `N-1-t`. Both streams are the reversed cell listing,
//! which [`ChainMap::encode`] / [`ChainMap::decode`] implement.
//!
//! ## Multi-lane chains
//!
//! With `W = lanes > 1` the instrumentation widens `scan_in`/`scan_out`
//! to `W` bits and every scan cycle moves the chain by `W` cells:
//! `new_cell[i] = old_cell[i-W]`, the first `W` cells load from
//! `scan_in` (MSB → cell 0), and `scan_out` exposes the last `W` cells
//! (MSB = cell `N'-W`). A zero-fill pad of [`ChainMap::pad_bits`] cells
//! after the last register makes the total `N'` a whole number of
//! lanes, so a full pass takes `N'/W` cycles ([`ChainMap::shift_cycles`])
//! instead of `N`. The word streams ([`ChainMap::encode_words`] /
//! [`ChainMap::decode_words`]) are the cell listing chopped into
//! `W`-cell rows with the row order reversed — for `W = 1` exactly the
//! classic bit streams.

use crate::ScanError;

/// One register's segment of the scan chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainSegment {
    /// Hierarchical register name.
    pub name: String,
    /// Register width in bits.
    pub width: u32,
    /// Cell index of this register's MSB (cells count from `scan_in`).
    pub msb_cell: u64,
}

/// One memory behind the generated access collar (memories are not
/// shifted bit-serially; the controller drains them word-by-word through
/// the collar, like a production DFT memory collar).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemCollar {
    /// Hierarchical memory name.
    pub name: String,
    /// Word width in bits.
    pub width: u32,
    /// Number of words.
    pub depth: u32,
    /// Value of the `scan_mem_sel` selector for this memory.
    pub sel: u32,
}

/// The complete layout of an instrumented design's snapshot access paths.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ChainMap {
    /// Register segments in chain order.
    pub segments: Vec<ChainSegment>,
    /// Memory collars in selector order.
    pub mems: Vec<MemCollar>,
    /// Shift lanes (`scan_in`/`scan_out` width). `0` means a legacy
    /// single-lane chain (same as `1`); use [`ChainMap::lanes`].
    pub lanes: u32,
    /// Zero-fill cells appended after the last register so the cell
    /// count is a whole number of lanes (excluded from
    /// [`ChainMap::segments`], so snapshots stay target-interchangeable).
    pub pad_bits: u64,
}

/// What one full scan pass over a chain costs, independent of the data
/// being shifted. Produced by [`ChainMap::shift_plan`]; the FPGA
/// backend stamps these numbers onto its scan-shift telemetry spans so
/// a trace shows *why* a capture took the cycles it did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShiftPlan {
    /// Shift lanes (normalized; never 0).
    pub lanes: u32,
    /// Scan cycles per full pass.
    pub cycles: u64,
    /// Total cells moved per pass (registers + pad).
    pub cells: u64,
    /// Memory words drained through collars per pass.
    pub mem_words: u64,
}

impl ChainMap {
    /// Total number of register scan cells (excluding pad).
    pub fn chain_bits(&self) -> u64 {
        self.segments.iter().map(|s| s.width as u64).sum()
    }

    /// Shift lanes, normalized (`0` → `1` for maps built before lanes
    /// existed, including `ChainMap::default()`).
    pub fn lanes(&self) -> u32 {
        self.lanes.max(1)
    }

    /// Total cells including the zero-fill pad.
    pub fn total_cells(&self) -> u64 {
        self.chain_bits() + self.pad_bits
    }

    /// Scan cycles per full save/restore pass: `total_cells / lanes`.
    pub fn shift_cycles(&self) -> u64 {
        self.total_cells().div_ceil(u64::from(self.lanes()))
    }

    /// Total memory words behind collars (= collar cycles per pass).
    pub fn mem_words(&self) -> u64 {
        self.mems.iter().map(|m| m.depth as u64).sum()
    }

    /// Scan cycles for a partial pass that shifts only the flagged
    /// segments (`dirty[i]` ↔ `segments[i]`). Models per-segment chain
    /// bypass: each dirty segment is shifted through its own slice of
    /// the lanes while clean segments hold via their bypass mux, so the
    /// cost is the sum of per-segment `width / lanes` rounds — no pad
    /// bits, and a fully-clean design costs zero cycles.
    ///
    /// Flags beyond `segments.len()` are ignored; missing flags mean
    /// clean.
    pub fn partial_shift_cycles(&self, dirty: &[bool]) -> u64 {
        let lanes = u64::from(self.lanes());
        self.segments
            .iter()
            .zip(dirty.iter().copied().chain(std::iter::repeat(false)))
            .filter(|&(_, d)| d)
            .map(|(s, _)| u64::from(s.width).div_ceil(lanes))
            .sum()
    }

    /// The fixed per-pass cost summary of this chain, for telemetry
    /// annotation and capacity planning. Pure layout arithmetic — a
    /// `ShiftPlan` never changes between passes of the same design.
    pub fn shift_plan(&self) -> ShiftPlan {
        ShiftPlan {
            lanes: self.lanes(),
            cycles: self.shift_cycles(),
            cells: self.total_cells(),
            mem_words: self.mem_words(),
        }
    }

    /// Encodes register values (in segment order) into the serial
    /// bitstream to feed `scan_in`, one bit per shift cycle.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::ShapeMismatch`] if `values` does not have one
    /// entry per segment.
    pub fn encode(&self, values: &[u64]) -> Result<Vec<bool>, ScanError> {
        if values.len() != self.segments.len() {
            return Err(ScanError::ShapeMismatch(format!(
                "{} values for {} chain segments",
                values.len(),
                self.segments.len()
            )));
        }
        // Cell listing: for each segment, MSB..=LSB.
        let mut cells = Vec::with_capacity(self.chain_bits() as usize);
        for (seg, &v) in self.segments.iter().zip(values) {
            for bit in (0..seg.width).rev() {
                cells.push((v >> bit) & 1 == 1);
            }
        }
        cells.reverse(); // feed order = reversed cell order
        Ok(cells)
    }

    /// Decodes the serial stream observed on `scan_out` (one bit per
    /// shift cycle) back into register values in segment order.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::ShapeMismatch`] on a wrong-length stream.
    pub fn decode(&self, stream: &[bool]) -> Result<Vec<u64>, ScanError> {
        if stream.len() as u64 != self.chain_bits() {
            return Err(ScanError::ShapeMismatch(format!(
                "stream of {} bits for a {}-bit chain",
                stream.len(),
                self.chain_bits()
            )));
        }
        let mut cells: Vec<bool> = stream.to_vec();
        cells.reverse();
        let mut out = Vec::with_capacity(self.segments.len());
        let mut idx = 0usize;
        for seg in &self.segments {
            let mut v = 0u64;
            for bit in (0..seg.width).rev() {
                if cells[idx] {
                    v |= 1 << bit;
                }
                idx += 1;
            }
            out.push(v);
        }
        Ok(out)
    }

    /// Cell listing (segment values MSB→LSB, then the zero pad).
    fn cell_listing(&self, values: &[u64]) -> Result<Vec<bool>, ScanError> {
        if values.len() != self.segments.len() {
            return Err(ScanError::ShapeMismatch(format!(
                "{} values for {} chain segments",
                values.len(),
                self.segments.len()
            )));
        }
        let mut cells = Vec::with_capacity(self.total_cells() as usize);
        for (seg, &v) in self.segments.iter().zip(values) {
            for bit in (0..seg.width).rev() {
                cells.push((v >> bit) & 1 == 1);
            }
        }
        cells.resize(self.total_cells() as usize, false);
        Ok(cells)
    }

    /// Encodes register values (in segment order) into the word stream
    /// to feed a `lanes`-bit `scan_in`, one word per shift cycle (low
    /// `lanes` bits used, first cell of the word at the MSB).
    ///
    /// # Errors
    ///
    /// [`ScanError::ShapeMismatch`] on a wrong-length value vector, or
    /// when [`ChainMap::pad_bits`] does not complete the last word.
    pub fn encode_words(&self, values: &[u64]) -> Result<Vec<u64>, ScanError> {
        let w = u64::from(self.lanes());
        let cells = self.cell_listing(values)?;
        if cells.len() as u64 % w != 0 {
            return Err(ScanError::ShapeMismatch(format!(
                "{} cells do not fill whole {w}-bit words",
                cells.len()
            )));
        }
        let rows = cells.len() as u64 / w;
        let mut words = Vec::with_capacity(rows as usize);
        for r in (0..rows).rev() {
            let mut word = 0u64;
            for j in 0..w {
                word = (word << 1) | u64::from(cells[(r * w + j) as usize]);
            }
            words.push(word);
        }
        Ok(words)
    }

    /// Decodes the word stream observed on a `lanes`-bit `scan_out`
    /// (one word per shift cycle) back into register values in segment
    /// order. Pad cells carry no register state but are still checked:
    /// they are zero-filled on every shift-in and zeroed by reset, so a
    /// `1` observed in a pad cell means the chain slipped a bit in
    /// transit — the decode refuses rather than silently returning
    /// misaligned register values.
    ///
    /// # Errors
    ///
    /// [`ScanError::ShapeMismatch`] on a wrong-length stream or a
    /// nonzero pad cell.
    pub fn decode_words(&self, stream: &[u64]) -> Result<Vec<u64>, ScanError> {
        let w = u64::from(self.lanes());
        if stream.len() as u64 != self.shift_cycles() || self.total_cells() % w != 0 {
            return Err(ScanError::ShapeMismatch(format!(
                "stream of {} words for a chain of {} {w}-bit shift cycles",
                stream.len(),
                self.shift_cycles()
            )));
        }
        let mut cells = vec![false; self.total_cells() as usize];
        for (t, &word) in stream.iter().enumerate() {
            let row = stream.len() - 1 - t;
            for j in 0..w as usize {
                cells[row * w as usize + j] = (word >> (w as usize - 1 - j)) & 1 == 1;
            }
        }
        if let Some(p) = cells[self.chain_bits() as usize..].iter().position(|&c| c) {
            return Err(ScanError::ShapeMismatch(format!(
                "nonzero pad cell {} on scan-out: chain misaligned in transit",
                self.chain_bits() + p as u64
            )));
        }
        let mut out = Vec::with_capacity(self.segments.len());
        let mut idx = 0usize;
        for seg in &self.segments {
            let mut v = 0u64;
            for bit in (0..seg.width).rev() {
                if cells[idx] {
                    v |= 1 << bit;
                }
                idx += 1;
            }
            out.push(v);
        }
        Ok(out)
    }

    /// Finds a segment by register name.
    pub fn segment(&self, name: &str) -> Option<&ChainSegment> {
        self.segments.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> ChainMap {
        ChainMap {
            segments: vec![
                ChainSegment {
                    name: "a".into(),
                    width: 4,
                    msb_cell: 0,
                },
                ChainSegment {
                    name: "b".into(),
                    width: 1,
                    msb_cell: 4,
                },
                ChainSegment {
                    name: "c".into(),
                    width: 8,
                    msb_cell: 5,
                },
            ],
            mems: vec![MemCollar {
                name: "ram".into(),
                width: 8,
                depth: 16,
                sel: 0,
            }],
            ..ChainMap::default()
        }
    }

    #[test]
    fn sizes() {
        let m = map();
        assert_eq!(m.chain_bits(), 13);
        assert_eq!(m.mem_words(), 16);
    }

    #[test]
    fn partial_shift_counts_only_dirty_segments() {
        let mut m = map();
        // Single lane: cost is just the dirty widths.
        assert_eq!(m.partial_shift_cycles(&[false, false, false]), 0);
        assert_eq!(m.partial_shift_cycles(&[true, false, false]), 4);
        assert_eq!(m.partial_shift_cycles(&[true, true, true]), 13);
        // Short or empty flag slices mean "rest is clean".
        assert_eq!(m.partial_shift_cycles(&[false, true]), 1);
        assert_eq!(m.partial_shift_cycles(&[]), 0);
        // Multi-lane: each segment rounds up to whole lane rounds, so a
        // full-dirty partial pass can exceed the padded full pass only
        // by per-segment rounding, never by pad bits.
        m.lanes = 4;
        assert_eq!(m.partial_shift_cycles(&[true, true, true]), 1 + 1 + 2);
        assert!(m.partial_shift_cycles(&[false, true, false]) <= m.shift_cycles());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = map();
        let values = vec![0xa, 0x1, 0x5c];
        let stream = m.encode(&values).unwrap();
        assert_eq!(stream.len(), 13);
        assert_eq!(m.decode(&stream).unwrap(), values);
    }

    #[test]
    fn stream_order_matches_shift_mechanics() {
        // Single 2-bit register with value 0b10: cells = [msb=1, lsb=0];
        // feed order reversed = [lsb, msb] = [false, true].
        let m = ChainMap {
            segments: vec![ChainSegment {
                name: "r".into(),
                width: 2,
                msb_cell: 0,
            }],
            mems: vec![],
            ..ChainMap::default()
        };
        let stream = m.encode(&[0b10]).unwrap();
        assert_eq!(stream, vec![false, true]);
    }

    #[test]
    fn shape_mismatch_errors() {
        let m = map();
        assert!(m.encode(&[1, 2]).is_err());
        assert!(m.decode(&[true; 12]).is_err());
    }

    #[test]
    fn values_wider_than_segment_are_masked_by_decode_roundtrip() {
        let m = ChainMap {
            segments: vec![ChainSegment {
                name: "r".into(),
                width: 3,
                msb_cell: 0,
            }],
            mems: vec![],
            ..ChainMap::default()
        };
        // encode only looks at the low `width` bits.
        let stream = m.encode(&[0xff]).unwrap();
        assert_eq!(m.decode(&stream).unwrap(), vec![0b111]);
    }

    #[test]
    fn nonzero_pad_cell_is_rejected() {
        // 13 chain bits over 4 lanes → 3 pad cells, 4 shift cycles.
        let m = ChainMap {
            lanes: 4,
            pad_bits: 3,
            ..map()
        };
        let mut stream = m.encode_words(&[0xa, 0x1, 0x5c]).unwrap();
        assert_eq!(m.decode_words(&stream).unwrap(), vec![0xa, 0x1, 0x5c]);
        // Pad cell 13 sits at row 3, lane 1 → word 0, bit 2.
        stream[0] |= 1 << 2;
        let err = m.decode_words(&stream).unwrap_err();
        assert!(err.to_string().contains("pad"), "{err}");
    }

    #[test]
    fn segment_lookup() {
        let m = map();
        assert_eq!(m.segment("c").unwrap().width, 8);
        assert!(m.segment("zz").is_none());
    }

    #[test]
    fn empty_chain() {
        let m = ChainMap::default();
        assert_eq!(m.chain_bits(), 0);
        assert_eq!(m.encode(&[]).unwrap(), Vec::<bool>::new());
        assert_eq!(m.decode(&[]).unwrap(), Vec::<u64>::new());
    }
}
