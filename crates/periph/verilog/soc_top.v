// Synthetic SoC top: the four corpus peripherals behind an AXI4-Lite
// interconnect, one IRQ line per peripheral.
//
// Address decode (matches hardsnap_bus::map::soc):
//   0x4000_0xxx  UART    irq[0]
//   0x4000_1xxx  TIMER   irq[1]
//   0x4000_2xxx  SHA-256 irq[2]
//   0x4000_3xxx  AES-128 irq[3]
//   anything else -> SLVERR responder
//
// The interconnect routes channels combinationally by the (stable)
// address inputs; this is protocol-correct for the single-outstanding
// masters used throughout this project (the VM-side bus drivers).
module soc_top (
    input wire clk,
    input wire rst,
    input wire s_axi_awvalid, input wire [31:0] s_axi_awaddr, output wire s_axi_awready,
    input wire s_axi_wvalid, input wire [31:0] s_axi_wdata, output wire s_axi_wready,
    output wire s_axi_bvalid, output wire [1:0] s_axi_bresp, input wire s_axi_bready,
    input wire s_axi_arvalid, input wire [31:0] s_axi_araddr, output wire s_axi_arready,
    output wire s_axi_rvalid, output wire [31:0] s_axi_rdata, output wire [1:0] s_axi_rresp,
    input wire s_axi_rready,
    input wire uart_rx,
    output wire uart_tx,
    output wire [3:0] irq
);
    // ---------------- decode ----------------
    wire w_in_window = s_axi_awaddr[31:16] == 16'h4000;
    wire r_in_window = s_axi_araddr[31:16] == 16'h4000;
    wire wsel0 = w_in_window && (s_axi_awaddr[15:12] == 4'd0);
    wire wsel1 = w_in_window && (s_axi_awaddr[15:12] == 4'd1);
    wire wsel2 = w_in_window && (s_axi_awaddr[15:12] == 4'd2);
    wire wsel3 = w_in_window && (s_axi_awaddr[15:12] == 4'd3);
    wire wbad = !(wsel0 || wsel1 || wsel2 || wsel3);
    wire rsel0 = r_in_window && (s_axi_araddr[15:12] == 4'd0);
    wire rsel1 = r_in_window && (s_axi_araddr[15:12] == 4'd1);
    wire rsel2 = r_in_window && (s_axi_araddr[15:12] == 4'd2);
    wire rsel3 = r_in_window && (s_axi_araddr[15:12] == 4'd3);
    wire rbad = !(rsel0 || rsel1 || rsel2 || rsel3);

    // ---------------- per-slave nets ----------------
    wire u_awready; wire u_wready; wire u_bvalid; wire [1:0] u_bresp;
    wire u_arready; wire u_rvalid; wire [31:0] u_rdata; wire [1:0] u_rresp;
    wire t_awready; wire t_wready; wire t_bvalid; wire [1:0] t_bresp;
    wire t_arready; wire t_rvalid; wire [31:0] t_rdata; wire [1:0] t_rresp;
    wire h_awready; wire h_wready; wire h_bvalid; wire [1:0] h_bresp;
    wire h_arready; wire h_rvalid; wire [31:0] h_rdata; wire [1:0] h_rresp;
    wire a_awready; wire a_wready; wire a_bvalid; wire [1:0] a_bresp;
    wire a_arready; wire a_rvalid; wire [31:0] a_rdata; wire [1:0] a_rresp;
    wire uart_irq; wire timer_irq; wire sha_irq; wire aes_irq;

    // ---------------- SLVERR responder for bad decode ----------------
    reg err_awready; reg err_wready; reg err_bvalid;
    reg err_aw_got; reg err_w_got;
    reg err_arready; reg err_rvalid;
    always @(posedge clk) begin
        if (rst) begin
            err_awready <= 1'b0; err_wready <= 1'b0; err_bvalid <= 1'b0;
            err_aw_got <= 1'b0; err_w_got <= 1'b0;
            err_arready <= 1'b0; err_rvalid <= 1'b0;
        end else begin
            err_awready <= 1'b0;
            err_wready <= 1'b0;
            if (wbad && s_axi_awvalid && !err_aw_got && !err_awready) begin
                err_awready <= 1'b1; err_aw_got <= 1'b1;
            end
            if (wbad && s_axi_wvalid && !err_w_got && !err_wready) begin
                err_wready <= 1'b1; err_w_got <= 1'b1;
            end
            if (err_aw_got && err_w_got && !err_bvalid) err_bvalid <= 1'b1;
            if (err_bvalid && s_axi_bready) begin
                err_bvalid <= 1'b0; err_aw_got <= 1'b0; err_w_got <= 1'b0;
            end
            err_arready <= 1'b0;
            if (rbad && s_axi_arvalid && !err_rvalid && !err_arready) begin
                err_arready <= 1'b1; err_rvalid <= 1'b1;
            end
            if (err_rvalid && s_axi_rready) err_rvalid <= 1'b0;
        end
    end

    // ---------------- instances ----------------
    uart u_uart (
        .clk(clk), .rst(rst),
        .s_axi_awvalid(s_axi_awvalid && wsel0), .s_axi_awaddr(s_axi_awaddr),
        .s_axi_awready(u_awready),
        .s_axi_wvalid(s_axi_wvalid && wsel0), .s_axi_wdata(s_axi_wdata),
        .s_axi_wready(u_wready),
        .s_axi_bvalid(u_bvalid), .s_axi_bresp(u_bresp), .s_axi_bready(s_axi_bready),
        .s_axi_arvalid(s_axi_arvalid && rsel0), .s_axi_araddr(s_axi_araddr),
        .s_axi_arready(u_arready),
        .s_axi_rvalid(u_rvalid), .s_axi_rdata(u_rdata), .s_axi_rresp(u_rresp),
        .s_axi_rready(s_axi_rready),
        .rx(uart_rx), .tx(uart_tx), .irq(uart_irq)
    );
    timer u_timer (
        .clk(clk), .rst(rst),
        .s_axi_awvalid(s_axi_awvalid && wsel1), .s_axi_awaddr(s_axi_awaddr),
        .s_axi_awready(t_awready),
        .s_axi_wvalid(s_axi_wvalid && wsel1), .s_axi_wdata(s_axi_wdata),
        .s_axi_wready(t_wready),
        .s_axi_bvalid(t_bvalid), .s_axi_bresp(t_bresp), .s_axi_bready(s_axi_bready),
        .s_axi_arvalid(s_axi_arvalid && rsel1), .s_axi_araddr(s_axi_araddr),
        .s_axi_arready(t_arready),
        .s_axi_rvalid(t_rvalid), .s_axi_rdata(t_rdata), .s_axi_rresp(t_rresp),
        .s_axi_rready(s_axi_rready),
        .irq(timer_irq)
    );
    sha256 u_sha (
        .clk(clk), .rst(rst),
        .s_axi_awvalid(s_axi_awvalid && wsel2), .s_axi_awaddr(s_axi_awaddr),
        .s_axi_awready(h_awready),
        .s_axi_wvalid(s_axi_wvalid && wsel2), .s_axi_wdata(s_axi_wdata),
        .s_axi_wready(h_wready),
        .s_axi_bvalid(h_bvalid), .s_axi_bresp(h_bresp), .s_axi_bready(s_axi_bready),
        .s_axi_arvalid(s_axi_arvalid && rsel2), .s_axi_araddr(s_axi_araddr),
        .s_axi_arready(h_arready),
        .s_axi_rvalid(h_rvalid), .s_axi_rdata(h_rdata), .s_axi_rresp(h_rresp),
        .s_axi_rready(s_axi_rready),
        .irq(sha_irq)
    );
    aes128 u_aes (
        .clk(clk), .rst(rst),
        .s_axi_awvalid(s_axi_awvalid && wsel3), .s_axi_awaddr(s_axi_awaddr),
        .s_axi_awready(a_awready),
        .s_axi_wvalid(s_axi_wvalid && wsel3), .s_axi_wdata(s_axi_wdata),
        .s_axi_wready(a_wready),
        .s_axi_bvalid(a_bvalid), .s_axi_bresp(a_bresp), .s_axi_bready(s_axi_bready),
        .s_axi_arvalid(s_axi_arvalid && rsel3), .s_axi_araddr(s_axi_araddr),
        .s_axi_arready(a_arready),
        .s_axi_rvalid(a_rvalid), .s_axi_rdata(a_rdata), .s_axi_rresp(a_rresp),
        .s_axi_rready(s_axi_rready),
        .irq(aes_irq)
    );

    // ---------------- response muxes ----------------
    assign s_axi_awready = wsel0 ? u_awready :
                           wsel1 ? t_awready :
                           wsel2 ? h_awready :
                           wsel3 ? a_awready : err_awready;
    assign s_axi_wready  = wsel0 ? u_wready :
                           wsel1 ? t_wready :
                           wsel2 ? h_wready :
                           wsel3 ? a_wready : err_wready;
    assign s_axi_bvalid  = wsel0 ? u_bvalid :
                           wsel1 ? t_bvalid :
                           wsel2 ? h_bvalid :
                           wsel3 ? a_bvalid : err_bvalid;
    assign s_axi_bresp   = wsel0 ? u_bresp :
                           wsel1 ? t_bresp :
                           wsel2 ? h_bresp :
                           wsel3 ? a_bresp : 2'd2;
    assign s_axi_arready = rsel0 ? u_arready :
                           rsel1 ? t_arready :
                           rsel2 ? h_arready :
                           rsel3 ? a_arready : err_arready;
    assign s_axi_rvalid  = rsel0 ? u_rvalid :
                           rsel1 ? t_rvalid :
                           rsel2 ? h_rvalid :
                           rsel3 ? a_rvalid : err_rvalid;
    assign s_axi_rdata   = rsel0 ? u_rdata :
                           rsel1 ? t_rdata :
                           rsel2 ? h_rdata :
                           rsel3 ? a_rdata : 32'd0;
    assign s_axi_rresp   = rsel0 ? u_rresp :
                           rsel1 ? t_rresp :
                           rsel2 ? h_rresp :
                           rsel3 ? a_rresp : 2'd2;

    assign irq = {aes_irq, sha_irq, timer_irq, uart_irq};
endmodule
