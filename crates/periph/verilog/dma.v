// DMA scratchpad engine (extension peripheral, not part of the default
// SoC): a 256-word local SRAM with a one-word-per-cycle copy engine —
// the accelerator-local-DMA class of peripheral the paper's motivation
// discusses. Its 8 KiB of memory state makes it the stress case for the
// snapshot-latency experiments.
//
// Register map:
//   0x000 CTRL   (W)  b0 start copy
//   0x004 STATUS (R/W1C) b0 ready, b1 done (write 1 to b1 to clear)
//   0x008 IRQEN  (RW) b0 completion-IRQ enable
//   0x00C SRC    (RW) source word index (8 bits used)
//   0x010 DST    (RW) destination word index
//   0x014 LEN    (RW) words to copy (9 bits used)
//   0x400-0x7FC  (RW) direct window into the 256-word SRAM
//
// irq = irq_en & done
module dma (
    input wire clk,
    input wire rst,
    input wire s_axi_awvalid, input wire [31:0] s_axi_awaddr, output reg s_axi_awready,
    input wire s_axi_wvalid, input wire [31:0] s_axi_wdata, output reg s_axi_wready,
    output reg s_axi_bvalid, output reg [1:0] s_axi_bresp, input wire s_axi_bready,
    input wire s_axi_arvalid, input wire [31:0] s_axi_araddr, output reg s_axi_arready,
    output reg s_axi_rvalid, output reg [31:0] s_axi_rdata, output reg [1:0] s_axi_rresp,
    input wire s_axi_rready,
    output wire irq
);
    reg [31:0] sram [0:255];
    reg [7:0] src;
    reg [7:0] dst;
    reg [8:0] len;
    reg [8:0] remaining;
    reg [7:0] cur_src;
    reg [7:0] cur_dst;
    reg busy;
    reg done;
    reg irq_en;

    reg aw_got; reg w_got; reg [31:0] waddr; reg [31:0] wdata_l;

    assign irq = irq_en && done;

    always @(posedge clk) begin
        if (rst) begin
            src <= 8'd0; dst <= 8'd0; len <= 9'd0;
            remaining <= 9'd0; cur_src <= 8'd0; cur_dst <= 8'd0;
            busy <= 1'b0; done <= 1'b0; irq_en <= 1'b0;
            s_axi_awready <= 1'b0; s_axi_wready <= 1'b0;
            s_axi_bvalid <= 1'b0; s_axi_bresp <= 2'd0;
            s_axi_arready <= 1'b0; s_axi_rvalid <= 1'b0;
            s_axi_rdata <= 32'd0; s_axi_rresp <= 2'd0;
            aw_got <= 1'b0; w_got <= 1'b0; waddr <= 32'd0; wdata_l <= 32'd0;
        end else begin
            // ---------------------------------------------- copy engine
            if (busy) begin
                if (remaining == 9'd0) begin
                    busy <= 1'b0;
                    done <= 1'b1;
                end else begin
                    sram[cur_dst] <= sram[cur_src];
                    cur_src <= cur_src + 8'd1;
                    cur_dst <= cur_dst + 8'd1;
                    remaining <= remaining - 9'd1;
                end
            end

            // ---------------------------------------------- AXI write
            s_axi_awready <= 1'b0;
            s_axi_wready <= 1'b0;
            if (s_axi_awvalid && !aw_got && !s_axi_awready) begin
                s_axi_awready <= 1'b1; waddr <= s_axi_awaddr; aw_got <= 1'b1;
            end
            if (s_axi_wvalid && !w_got && !s_axi_wready) begin
                s_axi_wready <= 1'b1; wdata_l <= s_axi_wdata; w_got <= 1'b1;
            end
            if (aw_got && w_got && !s_axi_bvalid) begin
                s_axi_bvalid <= 1'b1;
                s_axi_bresp <= 2'd0;
                if (waddr[10]) begin
                    sram[waddr[9:2]] <= wdata_l;
                end else begin
                    case (waddr[7:0])
                        8'h00: begin
                            if (!busy && wdata_l[0]) begin
                                cur_src <= src; cur_dst <= dst;
                                remaining <= len;
                                busy <= 1'b1; done <= 1'b0;
                            end
                        end
                        8'h04: begin
                            if (wdata_l[1]) done <= 1'b0;
                        end
                        8'h08: irq_en <= wdata_l[0];
                        8'h0c: src <= wdata_l[7:0];
                        8'h10: dst <= wdata_l[7:0];
                        8'h14: len <= wdata_l[8:0];
                        default: s_axi_bresp <= 2'd2;
                    endcase
                end
            end
            if (s_axi_bvalid && s_axi_bready) begin
                s_axi_bvalid <= 1'b0; aw_got <= 1'b0; w_got <= 1'b0;
            end

            // ---------------------------------------------- AXI read
            s_axi_arready <= 1'b0;
            if (s_axi_arvalid && !s_axi_rvalid && !s_axi_arready) begin
                s_axi_arready <= 1'b1;
                s_axi_rvalid <= 1'b1;
                s_axi_rresp <= 2'd0;
                if (s_axi_araddr[10]) begin
                    s_axi_rdata <= sram[s_axi_araddr[9:2]];
                end else begin
                    case (s_axi_araddr[7:0])
                        8'h04: s_axi_rdata <= {30'd0, done, !busy};
                        8'h08: s_axi_rdata <= {31'd0, irq_en};
                        8'h0c: s_axi_rdata <= {24'd0, src};
                        8'h10: s_axi_rdata <= {24'd0, dst};
                        8'h14: s_axi_rdata <= {23'd0, len};
                        default: begin
                            s_axi_rdata <= 32'd0;
                            s_axi_rresp <= 2'd2;
                        end
                    endcase
                end
            end
            if (s_axi_rvalid && s_axi_rready) s_axi_rvalid <= 1'b0;
        end
    end
endmodule
