// UART with 16-deep TX/RX FIFOs, programmable baud divisor, loopback
// mode, and IRQ generation — modeled after common open-source
// microcontroller UARTs (e.g. the OpenCores uart16550 family, reduced to
// the synthesizable subset used in this project).
//
// Register map (byte offsets from the peripheral base):
//   0x00 TXDATA  (W)  push byte into the TX FIFO
//   0x04 RXDATA  (R)  pop byte from the RX FIFO (0 when empty)
//   0x08 STATUS  (R)  b0 tx_empty, b1 tx_full, b2 rx_avail, b3 rx_full,
//                     b4 tx_busy
//   0x0C CTRL    (RW) b0 rx_irq_en, b1 tx_irq_en, b2 loopback,
//                     b3 rx_enable (receiver runs only when set; the
//                     line idles high on real hardware)
//   0x10 BAUDDIV (RW) 16-bit baud-rate divisor (clock cycles per bit)
//
// irq = (rx_irq_en & rx_avail) | (tx_irq_en & tx_empty & !tx_busy)
module uart (
    input wire clk,
    input wire rst,
    input wire s_axi_awvalid, input wire [31:0] s_axi_awaddr, output reg s_axi_awready,
    input wire s_axi_wvalid, input wire [31:0] s_axi_wdata, output reg s_axi_wready,
    output reg s_axi_bvalid, output reg [1:0] s_axi_bresp, input wire s_axi_bready,
    input wire s_axi_arvalid, input wire [31:0] s_axi_araddr, output reg s_axi_arready,
    output reg s_axi_rvalid, output reg [31:0] s_axi_rdata, output reg [1:0] s_axi_rresp,
    input wire s_axi_rready,
    input wire rx,
    output wire tx,
    output wire irq
);
    // ---- configuration and FIFOs -----------------------------------------
    reg [15:0] bauddiv;
    reg [3:0] ctrl;
    reg [7:0] txfifo [0:15];
    reg [7:0] rxfifo [0:15];
    reg [4:0] tx_head;
    reg [4:0] tx_tail;
    reg [4:0] rx_head;
    reg [4:0] rx_tail;

    wire tx_empty = tx_head == tx_tail;
    wire [4:0] tx_count = tx_head - tx_tail;
    wire tx_full = tx_count == 5'd16;
    wire rx_avail = rx_head != rx_tail;
    wire [4:0] rx_count = rx_head - rx_tail;
    wire rx_full = rx_count == 5'd16;

    // ---- TX serializer ----------------------------------------------------
    reg tx_busy;
    reg [9:0] tx_shift;
    reg [3:0] tx_bitcnt;
    reg [15:0] tx_baudcnt;
    reg tx_out;
    assign tx = tx_out;

    // ---- RX sampler ---------------------------------------------------------
    wire rx_in = ctrl[2] ? tx_out : rx;
    reg [1:0] rx_state;
    reg [7:0] rx_shift;
    reg [3:0] rx_bitcnt;
    reg [15:0] rx_baudcnt;

    // ---- AXI bookkeeping -----------------------------------------------------
    reg aw_got;
    reg w_got;
    reg [31:0] waddr;
    reg [31:0] wdata_l;

    assign irq = (ctrl[0] && rx_avail) || (ctrl[1] && tx_empty && !tx_busy);

    always @(posedge clk) begin
        if (rst) begin
            bauddiv <= 16'd8;
            ctrl <= 4'd0;
            tx_head <= 5'd0; tx_tail <= 5'd0;
            rx_head <= 5'd0; rx_tail <= 5'd0;
            tx_busy <= 1'b0; tx_shift <= 10'd0; tx_bitcnt <= 4'd0;
            tx_baudcnt <= 16'd0; tx_out <= 1'b1;
            rx_state <= 2'd0; rx_shift <= 8'd0; rx_bitcnt <= 4'd0; rx_baudcnt <= 16'd0;
            s_axi_awready <= 1'b0; s_axi_wready <= 1'b0;
            s_axi_bvalid <= 1'b0; s_axi_bresp <= 2'd0;
            s_axi_arready <= 1'b0; s_axi_rvalid <= 1'b0;
            s_axi_rdata <= 32'd0; s_axi_rresp <= 2'd0;
            aw_got <= 1'b0; w_got <= 1'b0; waddr <= 32'd0; wdata_l <= 32'd0;
        end else begin
            // ------------------------------------------------ TX engine
            if (tx_busy) begin
                if (tx_baudcnt == 16'd0) begin
                    if (tx_bitcnt == 4'd0) begin
                        tx_busy <= 1'b0;
                        tx_out <= 1'b1;
                    end else begin
                        tx_out <= tx_shift[0];
                        tx_shift <= {1'b1, tx_shift[9:1]};
                        tx_bitcnt <= tx_bitcnt - 4'd1;
                        tx_baudcnt <= bauddiv;
                    end
                end else begin
                    tx_baudcnt <= tx_baudcnt - 16'd1;
                end
            end else begin
                if (!tx_empty) begin
                    // frame: start(0), 8 data LSB-first, stop(1)
                    tx_shift <= {1'b1, txfifo[tx_tail[3:0]], 1'b0};
                    tx_tail <= tx_tail + 5'd1;
                    tx_busy <= 1'b1;
                    tx_bitcnt <= 4'd10;
                    tx_baudcnt <= 16'd0;
                end
            end

            // ------------------------------------------------ RX engine
            if (ctrl[3]) begin
            case (rx_state)
                2'd0: begin
                    if (rx_in == 1'b0) begin
                        rx_state <= 2'd1;
                        rx_baudcnt <= {1'b0, bauddiv[15:1]}; // half bit
                    end
                end
                2'd1: begin
                    if (rx_baudcnt == 16'd0) begin
                        if (rx_in == 1'b0) begin
                            rx_state <= 2'd2;
                            rx_bitcnt <= 4'd8;
                            rx_baudcnt <= bauddiv;
                            rx_shift <= 8'd0;
                        end else begin
                            rx_state <= 2'd0;
                        end
                    end else begin
                        rx_baudcnt <= rx_baudcnt - 16'd1;
                    end
                end
                2'd2: begin
                    if (rx_baudcnt == 16'd0) begin
                        rx_shift <= {rx_in, rx_shift[7:1]};
                        rx_baudcnt <= bauddiv;
                        if (rx_bitcnt == 4'd1) begin
                            rx_state <= 2'd3;
                        end
                        rx_bitcnt <= rx_bitcnt - 4'd1;
                    end else begin
                        rx_baudcnt <= rx_baudcnt - 16'd1;
                    end
                end
                default: begin
                    // wait for stop bit, then store
                    if (rx_baudcnt == 16'd0) begin
                        if (!rx_full) begin
                            rxfifo[rx_head[3:0]] <= rx_shift;
                            rx_head <= rx_head + 5'd1;
                        end
                        rx_state <= 2'd0;
                    end else begin
                        rx_baudcnt <= rx_baudcnt - 16'd1;
                    end
                end
            endcase
            end

            // ------------------------------------------------ AXI write
            s_axi_awready <= 1'b0;
            s_axi_wready <= 1'b0;
            if (s_axi_awvalid && !aw_got && !s_axi_awready) begin
                s_axi_awready <= 1'b1; waddr <= s_axi_awaddr; aw_got <= 1'b1;
            end
            if (s_axi_wvalid && !w_got && !s_axi_wready) begin
                s_axi_wready <= 1'b1; wdata_l <= s_axi_wdata; w_got <= 1'b1;
            end
            if (aw_got && w_got && !s_axi_bvalid) begin
                s_axi_bvalid <= 1'b1;
                s_axi_bresp <= 2'd0;
                case (waddr[7:0])
                    8'h00: begin
                        if (!tx_full) begin
                            txfifo[tx_head[3:0]] <= wdata_l[7:0];
                            tx_head <= tx_head + 5'd1;
                        end
                    end
                    8'h0c: ctrl <= wdata_l[3:0];
                    8'h10: bauddiv <= wdata_l[15:0];
                    default: s_axi_bresp <= 2'd2;
                endcase
            end
            if (s_axi_bvalid && s_axi_bready) begin
                s_axi_bvalid <= 1'b0; aw_got <= 1'b0; w_got <= 1'b0;
            end

            // ------------------------------------------------ AXI read
            s_axi_arready <= 1'b0;
            if (s_axi_arvalid && !s_axi_rvalid && !s_axi_arready) begin
                s_axi_arready <= 1'b1;
                s_axi_rvalid <= 1'b1;
                s_axi_rresp <= 2'd0;
                case (s_axi_araddr[7:0])
                    8'h04: begin
                        if (rx_avail) begin
                            s_axi_rdata <= {24'd0, rxfifo[rx_tail[3:0]]};
                            rx_tail <= rx_tail + 5'd1;
                        end else begin
                            s_axi_rdata <= 32'd0;
                        end
                    end
                    8'h08: s_axi_rdata <= {27'd0, tx_busy, rx_full, rx_avail, tx_full, tx_empty};
                    8'h0c: s_axi_rdata <= {28'd0, ctrl};
                    8'h10: s_axi_rdata <= {16'd0, bauddiv};
                    default: begin
                        s_axi_rdata <= 32'd0;
                        s_axi_rresp <= 2'd2;
                    end
                endcase
            end
            if (s_axi_rvalid && s_axi_rready) s_axi_rvalid <= 1'b0;
        end
    end
endmodule
