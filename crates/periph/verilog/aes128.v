// AES-128 encryption accelerator: iterative, one round per clock cycle,
// with on-the-fly key expansion — the classic open-source iterative AES
// core architecture, written in this project's synthesizable subset.
// The S-box is a combinational 256-entry lookup module instantiated 20
// times (16 for SubBytes, 4 for the key schedule), as a synthesized
// LUT-ROM would be.
//
// Register map:
//   0x00 CTRL   (W)  b0 start encryption of BLOCK under KEY
//   0x04 STATUS (R/W1C) b0 ready, b1 done (write 1 to b1 to clear)
//   0x08 IRQEN  (RW) b0 completion-IRQ enable
//   0x10-0x1C   (W)  key words 0..3 (big-endian)
//   0x20-0x2C   (W)  plaintext words 0..3
//   0x30-0x3C   (R)  ciphertext words 0..3
//
// irq = irq_en & done
module aes_sbox (
    input wire [7:0] a,
    output reg [7:0] y
);
    always @(*) begin
        case (a)

            8'h00: y = 8'h63;
            8'h01: y = 8'h7c;
            8'h02: y = 8'h77;
            8'h03: y = 8'h7b;
            8'h04: y = 8'hf2;
            8'h05: y = 8'h6b;
            8'h06: y = 8'h6f;
            8'h07: y = 8'hc5;
            8'h08: y = 8'h30;
            8'h09: y = 8'h01;
            8'h0a: y = 8'h67;
            8'h0b: y = 8'h2b;
            8'h0c: y = 8'hfe;
            8'h0d: y = 8'hd7;
            8'h0e: y = 8'hab;
            8'h0f: y = 8'h76;
            8'h10: y = 8'hca;
            8'h11: y = 8'h82;
            8'h12: y = 8'hc9;
            8'h13: y = 8'h7d;
            8'h14: y = 8'hfa;
            8'h15: y = 8'h59;
            8'h16: y = 8'h47;
            8'h17: y = 8'hf0;
            8'h18: y = 8'had;
            8'h19: y = 8'hd4;
            8'h1a: y = 8'ha2;
            8'h1b: y = 8'haf;
            8'h1c: y = 8'h9c;
            8'h1d: y = 8'ha4;
            8'h1e: y = 8'h72;
            8'h1f: y = 8'hc0;
            8'h20: y = 8'hb7;
            8'h21: y = 8'hfd;
            8'h22: y = 8'h93;
            8'h23: y = 8'h26;
            8'h24: y = 8'h36;
            8'h25: y = 8'h3f;
            8'h26: y = 8'hf7;
            8'h27: y = 8'hcc;
            8'h28: y = 8'h34;
            8'h29: y = 8'ha5;
            8'h2a: y = 8'he5;
            8'h2b: y = 8'hf1;
            8'h2c: y = 8'h71;
            8'h2d: y = 8'hd8;
            8'h2e: y = 8'h31;
            8'h2f: y = 8'h15;
            8'h30: y = 8'h04;
            8'h31: y = 8'hc7;
            8'h32: y = 8'h23;
            8'h33: y = 8'hc3;
            8'h34: y = 8'h18;
            8'h35: y = 8'h96;
            8'h36: y = 8'h05;
            8'h37: y = 8'h9a;
            8'h38: y = 8'h07;
            8'h39: y = 8'h12;
            8'h3a: y = 8'h80;
            8'h3b: y = 8'he2;
            8'h3c: y = 8'heb;
            8'h3d: y = 8'h27;
            8'h3e: y = 8'hb2;
            8'h3f: y = 8'h75;
            8'h40: y = 8'h09;
            8'h41: y = 8'h83;
            8'h42: y = 8'h2c;
            8'h43: y = 8'h1a;
            8'h44: y = 8'h1b;
            8'h45: y = 8'h6e;
            8'h46: y = 8'h5a;
            8'h47: y = 8'ha0;
            8'h48: y = 8'h52;
            8'h49: y = 8'h3b;
            8'h4a: y = 8'hd6;
            8'h4b: y = 8'hb3;
            8'h4c: y = 8'h29;
            8'h4d: y = 8'he3;
            8'h4e: y = 8'h2f;
            8'h4f: y = 8'h84;
            8'h50: y = 8'h53;
            8'h51: y = 8'hd1;
            8'h52: y = 8'h00;
            8'h53: y = 8'hed;
            8'h54: y = 8'h20;
            8'h55: y = 8'hfc;
            8'h56: y = 8'hb1;
            8'h57: y = 8'h5b;
            8'h58: y = 8'h6a;
            8'h59: y = 8'hcb;
            8'h5a: y = 8'hbe;
            8'h5b: y = 8'h39;
            8'h5c: y = 8'h4a;
            8'h5d: y = 8'h4c;
            8'h5e: y = 8'h58;
            8'h5f: y = 8'hcf;
            8'h60: y = 8'hd0;
            8'h61: y = 8'hef;
            8'h62: y = 8'haa;
            8'h63: y = 8'hfb;
            8'h64: y = 8'h43;
            8'h65: y = 8'h4d;
            8'h66: y = 8'h33;
            8'h67: y = 8'h85;
            8'h68: y = 8'h45;
            8'h69: y = 8'hf9;
            8'h6a: y = 8'h02;
            8'h6b: y = 8'h7f;
            8'h6c: y = 8'h50;
            8'h6d: y = 8'h3c;
            8'h6e: y = 8'h9f;
            8'h6f: y = 8'ha8;
            8'h70: y = 8'h51;
            8'h71: y = 8'ha3;
            8'h72: y = 8'h40;
            8'h73: y = 8'h8f;
            8'h74: y = 8'h92;
            8'h75: y = 8'h9d;
            8'h76: y = 8'h38;
            8'h77: y = 8'hf5;
            8'h78: y = 8'hbc;
            8'h79: y = 8'hb6;
            8'h7a: y = 8'hda;
            8'h7b: y = 8'h21;
            8'h7c: y = 8'h10;
            8'h7d: y = 8'hff;
            8'h7e: y = 8'hf3;
            8'h7f: y = 8'hd2;
            8'h80: y = 8'hcd;
            8'h81: y = 8'h0c;
            8'h82: y = 8'h13;
            8'h83: y = 8'hec;
            8'h84: y = 8'h5f;
            8'h85: y = 8'h97;
            8'h86: y = 8'h44;
            8'h87: y = 8'h17;
            8'h88: y = 8'hc4;
            8'h89: y = 8'ha7;
            8'h8a: y = 8'h7e;
            8'h8b: y = 8'h3d;
            8'h8c: y = 8'h64;
            8'h8d: y = 8'h5d;
            8'h8e: y = 8'h19;
            8'h8f: y = 8'h73;
            8'h90: y = 8'h60;
            8'h91: y = 8'h81;
            8'h92: y = 8'h4f;
            8'h93: y = 8'hdc;
            8'h94: y = 8'h22;
            8'h95: y = 8'h2a;
            8'h96: y = 8'h90;
            8'h97: y = 8'h88;
            8'h98: y = 8'h46;
            8'h99: y = 8'hee;
            8'h9a: y = 8'hb8;
            8'h9b: y = 8'h14;
            8'h9c: y = 8'hde;
            8'h9d: y = 8'h5e;
            8'h9e: y = 8'h0b;
            8'h9f: y = 8'hdb;
            8'ha0: y = 8'he0;
            8'ha1: y = 8'h32;
            8'ha2: y = 8'h3a;
            8'ha3: y = 8'h0a;
            8'ha4: y = 8'h49;
            8'ha5: y = 8'h06;
            8'ha6: y = 8'h24;
            8'ha7: y = 8'h5c;
            8'ha8: y = 8'hc2;
            8'ha9: y = 8'hd3;
            8'haa: y = 8'hac;
            8'hab: y = 8'h62;
            8'hac: y = 8'h91;
            8'had: y = 8'h95;
            8'hae: y = 8'he4;
            8'haf: y = 8'h79;
            8'hb0: y = 8'he7;
            8'hb1: y = 8'hc8;
            8'hb2: y = 8'h37;
            8'hb3: y = 8'h6d;
            8'hb4: y = 8'h8d;
            8'hb5: y = 8'hd5;
            8'hb6: y = 8'h4e;
            8'hb7: y = 8'ha9;
            8'hb8: y = 8'h6c;
            8'hb9: y = 8'h56;
            8'hba: y = 8'hf4;
            8'hbb: y = 8'hea;
            8'hbc: y = 8'h65;
            8'hbd: y = 8'h7a;
            8'hbe: y = 8'hae;
            8'hbf: y = 8'h08;
            8'hc0: y = 8'hba;
            8'hc1: y = 8'h78;
            8'hc2: y = 8'h25;
            8'hc3: y = 8'h2e;
            8'hc4: y = 8'h1c;
            8'hc5: y = 8'ha6;
            8'hc6: y = 8'hb4;
            8'hc7: y = 8'hc6;
            8'hc8: y = 8'he8;
            8'hc9: y = 8'hdd;
            8'hca: y = 8'h74;
            8'hcb: y = 8'h1f;
            8'hcc: y = 8'h4b;
            8'hcd: y = 8'hbd;
            8'hce: y = 8'h8b;
            8'hcf: y = 8'h8a;
            8'hd0: y = 8'h70;
            8'hd1: y = 8'h3e;
            8'hd2: y = 8'hb5;
            8'hd3: y = 8'h66;
            8'hd4: y = 8'h48;
            8'hd5: y = 8'h03;
            8'hd6: y = 8'hf6;
            8'hd7: y = 8'h0e;
            8'hd8: y = 8'h61;
            8'hd9: y = 8'h35;
            8'hda: y = 8'h57;
            8'hdb: y = 8'hb9;
            8'hdc: y = 8'h86;
            8'hdd: y = 8'hc1;
            8'hde: y = 8'h1d;
            8'hdf: y = 8'h9e;
            8'he0: y = 8'he1;
            8'he1: y = 8'hf8;
            8'he2: y = 8'h98;
            8'he3: y = 8'h11;
            8'he4: y = 8'h69;
            8'he5: y = 8'hd9;
            8'he6: y = 8'h8e;
            8'he7: y = 8'h94;
            8'he8: y = 8'h9b;
            8'he9: y = 8'h1e;
            8'hea: y = 8'h87;
            8'heb: y = 8'he9;
            8'hec: y = 8'hce;
            8'hed: y = 8'h55;
            8'hee: y = 8'h28;
            8'hef: y = 8'hdf;
            8'hf0: y = 8'h8c;
            8'hf1: y = 8'ha1;
            8'hf2: y = 8'h89;
            8'hf3: y = 8'h0d;
            8'hf4: y = 8'hbf;
            8'hf5: y = 8'he6;
            8'hf6: y = 8'h42;
            8'hf7: y = 8'h68;
            8'hf8: y = 8'h41;
            8'hf9: y = 8'h99;
            8'hfa: y = 8'h2d;
            8'hfb: y = 8'h0f;
            8'hfc: y = 8'hb0;
            8'hfd: y = 8'h54;
            8'hfe: y = 8'hbb;
            default: y = 8'h16;

        endcase
    end
endmodule

module aes128 (
    input wire clk,
    input wire rst,
    input wire s_axi_awvalid, input wire [31:0] s_axi_awaddr, output reg s_axi_awready,
    input wire s_axi_wvalid, input wire [31:0] s_axi_wdata, output reg s_axi_wready,
    output reg s_axi_bvalid, output reg [1:0] s_axi_bresp, input wire s_axi_bready,
    input wire s_axi_arvalid, input wire [31:0] s_axi_araddr, output reg s_axi_arready,
    output reg s_axi_rvalid, output reg [31:0] s_axi_rdata, output reg [1:0] s_axi_rresp,
    input wire s_axi_rready,
    output wire irq
);
    reg [31:0] key0; reg [31:0] key1; reg [31:0] key2; reg [31:0] key3;
    reg [31:0] blk0; reg [31:0] blk1; reg [31:0] blk2; reg [31:0] blk3;
    reg [31:0] s0; reg [31:0] s1; reg [31:0] s2; reg [31:0] s3;
    reg [31:0] rk0; reg [31:0] rk1; reg [31:0] rk2; reg [31:0] rk3;
    reg [7:0] rcon;
    reg [3:0] round;
    reg busy;
    reg done;
    reg irq_en;

    reg aw_got; reg w_got; reg [31:0] waddr; reg [31:0] wdata_l;

    assign irq = irq_en && done;

    wire [7:0] sb_0_0;
    aes_sbox u_sb_0_0 (.a(s0[31:24]), .y(sb_0_0));
    wire [7:0] sb_1_0;
    aes_sbox u_sb_1_0 (.a(s0[23:16]), .y(sb_1_0));
    wire [7:0] sb_2_0;
    aes_sbox u_sb_2_0 (.a(s0[15:8]), .y(sb_2_0));
    wire [7:0] sb_3_0;
    aes_sbox u_sb_3_0 (.a(s0[7:0]), .y(sb_3_0));
    wire [7:0] sb_0_1;
    aes_sbox u_sb_0_1 (.a(s1[31:24]), .y(sb_0_1));
    wire [7:0] sb_1_1;
    aes_sbox u_sb_1_1 (.a(s1[23:16]), .y(sb_1_1));
    wire [7:0] sb_2_1;
    aes_sbox u_sb_2_1 (.a(s1[15:8]), .y(sb_2_1));
    wire [7:0] sb_3_1;
    aes_sbox u_sb_3_1 (.a(s1[7:0]), .y(sb_3_1));
    wire [7:0] sb_0_2;
    aes_sbox u_sb_0_2 (.a(s2[31:24]), .y(sb_0_2));
    wire [7:0] sb_1_2;
    aes_sbox u_sb_1_2 (.a(s2[23:16]), .y(sb_1_2));
    wire [7:0] sb_2_2;
    aes_sbox u_sb_2_2 (.a(s2[15:8]), .y(sb_2_2));
    wire [7:0] sb_3_2;
    aes_sbox u_sb_3_2 (.a(s2[7:0]), .y(sb_3_2));
    wire [7:0] sb_0_3;
    aes_sbox u_sb_0_3 (.a(s3[31:24]), .y(sb_0_3));
    wire [7:0] sb_1_3;
    aes_sbox u_sb_1_3 (.a(s3[23:16]), .y(sb_1_3));
    wire [7:0] sb_2_3;
    aes_sbox u_sb_2_3 (.a(s3[15:8]), .y(sb_2_3));
    wire [7:0] sb_3_3;
    aes_sbox u_sb_3_3 (.a(s3[7:0]), .y(sb_3_3));
    wire [7:0] ksb_0;
    aes_sbox u_ksb_0 (.a(rk3[31:24]), .y(ksb_0));
    wire [7:0] ksb_1;
    aes_sbox u_ksb_1 (.a(rk3[23:16]), .y(ksb_1));
    wire [7:0] ksb_2;
    aes_sbox u_ksb_2 (.a(rk3[15:8]), .y(ksb_2));
    wire [7:0] ksb_3;
    aes_sbox u_ksb_3 (.a(rk3[7:0]), .y(ksb_3));
    wire [31:0] sr_0 = {sb_0_0, sb_1_1, sb_2_2, sb_3_3};
    wire [31:0] sr_1 = {sb_0_1, sb_1_2, sb_2_3, sb_3_0};
    wire [31:0] sr_2 = {sb_0_2, sb_1_3, sb_2_0, sb_3_1};
    wire [31:0] sr_3 = {sb_0_3, sb_1_0, sb_2_1, sb_3_2};
    wire [7:0] a_0_0 = sr_0[31:24];
    wire [7:0] a_1_0 = sr_0[23:16];
    wire [7:0] a_2_0 = sr_0[15:8];
    wire [7:0] a_3_0 = sr_0[7:0];
    wire [7:0] xt_0_0 = {a_0_0[6:0], 1'b0} ^ (a_0_0[7] ? 8'h1b : 8'h00);
    wire [7:0] xt_1_0 = {a_1_0[6:0], 1'b0} ^ (a_1_0[7] ? 8'h1b : 8'h00);
    wire [7:0] xt_2_0 = {a_2_0[6:0], 1'b0} ^ (a_2_0[7] ? 8'h1b : 8'h00);
    wire [7:0] xt_3_0 = {a_3_0[6:0], 1'b0} ^ (a_3_0[7] ? 8'h1b : 8'h00);
    wire [7:0] m_0_0 = xt_0_0 ^ xt_1_0 ^ a_1_0 ^ a_2_0 ^ a_3_0;
    wire [7:0] m_1_0 = a_0_0 ^ xt_1_0 ^ xt_2_0 ^ a_2_0 ^ a_3_0;
    wire [7:0] m_2_0 = a_0_0 ^ a_1_0 ^ xt_2_0 ^ xt_3_0 ^ a_3_0;
    wire [7:0] m_3_0 = xt_0_0 ^ a_0_0 ^ a_1_0 ^ a_2_0 ^ xt_3_0;
    wire [31:0] mix_0 = {m_0_0, m_1_0, m_2_0, m_3_0};
    wire [7:0] a_0_1 = sr_1[31:24];
    wire [7:0] a_1_1 = sr_1[23:16];
    wire [7:0] a_2_1 = sr_1[15:8];
    wire [7:0] a_3_1 = sr_1[7:0];
    wire [7:0] xt_0_1 = {a_0_1[6:0], 1'b0} ^ (a_0_1[7] ? 8'h1b : 8'h00);
    wire [7:0] xt_1_1 = {a_1_1[6:0], 1'b0} ^ (a_1_1[7] ? 8'h1b : 8'h00);
    wire [7:0] xt_2_1 = {a_2_1[6:0], 1'b0} ^ (a_2_1[7] ? 8'h1b : 8'h00);
    wire [7:0] xt_3_1 = {a_3_1[6:0], 1'b0} ^ (a_3_1[7] ? 8'h1b : 8'h00);
    wire [7:0] m_0_1 = xt_0_1 ^ xt_1_1 ^ a_1_1 ^ a_2_1 ^ a_3_1;
    wire [7:0] m_1_1 = a_0_1 ^ xt_1_1 ^ xt_2_1 ^ a_2_1 ^ a_3_1;
    wire [7:0] m_2_1 = a_0_1 ^ a_1_1 ^ xt_2_1 ^ xt_3_1 ^ a_3_1;
    wire [7:0] m_3_1 = xt_0_1 ^ a_0_1 ^ a_1_1 ^ a_2_1 ^ xt_3_1;
    wire [31:0] mix_1 = {m_0_1, m_1_1, m_2_1, m_3_1};
    wire [7:0] a_0_2 = sr_2[31:24];
    wire [7:0] a_1_2 = sr_2[23:16];
    wire [7:0] a_2_2 = sr_2[15:8];
    wire [7:0] a_3_2 = sr_2[7:0];
    wire [7:0] xt_0_2 = {a_0_2[6:0], 1'b0} ^ (a_0_2[7] ? 8'h1b : 8'h00);
    wire [7:0] xt_1_2 = {a_1_2[6:0], 1'b0} ^ (a_1_2[7] ? 8'h1b : 8'h00);
    wire [7:0] xt_2_2 = {a_2_2[6:0], 1'b0} ^ (a_2_2[7] ? 8'h1b : 8'h00);
    wire [7:0] xt_3_2 = {a_3_2[6:0], 1'b0} ^ (a_3_2[7] ? 8'h1b : 8'h00);
    wire [7:0] m_0_2 = xt_0_2 ^ xt_1_2 ^ a_1_2 ^ a_2_2 ^ a_3_2;
    wire [7:0] m_1_2 = a_0_2 ^ xt_1_2 ^ xt_2_2 ^ a_2_2 ^ a_3_2;
    wire [7:0] m_2_2 = a_0_2 ^ a_1_2 ^ xt_2_2 ^ xt_3_2 ^ a_3_2;
    wire [7:0] m_3_2 = xt_0_2 ^ a_0_2 ^ a_1_2 ^ a_2_2 ^ xt_3_2;
    wire [31:0] mix_2 = {m_0_2, m_1_2, m_2_2, m_3_2};
    wire [7:0] a_0_3 = sr_3[31:24];
    wire [7:0] a_1_3 = sr_3[23:16];
    wire [7:0] a_2_3 = sr_3[15:8];
    wire [7:0] a_3_3 = sr_3[7:0];
    wire [7:0] xt_0_3 = {a_0_3[6:0], 1'b0} ^ (a_0_3[7] ? 8'h1b : 8'h00);
    wire [7:0] xt_1_3 = {a_1_3[6:0], 1'b0} ^ (a_1_3[7] ? 8'h1b : 8'h00);
    wire [7:0] xt_2_3 = {a_2_3[6:0], 1'b0} ^ (a_2_3[7] ? 8'h1b : 8'h00);
    wire [7:0] xt_3_3 = {a_3_3[6:0], 1'b0} ^ (a_3_3[7] ? 8'h1b : 8'h00);
    wire [7:0] m_0_3 = xt_0_3 ^ xt_1_3 ^ a_1_3 ^ a_2_3 ^ a_3_3;
    wire [7:0] m_1_3 = a_0_3 ^ xt_1_3 ^ xt_2_3 ^ a_2_3 ^ a_3_3;
    wire [7:0] m_2_3 = a_0_3 ^ a_1_3 ^ xt_2_3 ^ xt_3_3 ^ a_3_3;
    wire [7:0] m_3_3 = xt_0_3 ^ a_0_3 ^ a_1_3 ^ a_2_3 ^ xt_3_3;
    wire [31:0] mix_3 = {m_0_3, m_1_3, m_2_3, m_3_3};
    wire [31:0] ktemp = {ksb_1, ksb_2, ksb_3, ksb_0} ^ {rcon, 24'd0};
    wire [31:0] nk0 = rk0 ^ ktemp;
    wire [31:0] nk1 = rk1 ^ nk0;
    wire [31:0] nk2 = rk2 ^ nk1;
    wire [31:0] nk3 = rk3 ^ nk2;
    wire [7:0] rcon_next = {rcon[6:0], 1'b0} ^ (rcon[7] ? 8'h1b : 8'h00);

    always @(posedge clk) begin
        if (rst) begin
            key0 <= 32'd0; key1 <= 32'd0; key2 <= 32'd0; key3 <= 32'd0;
            blk0 <= 32'd0; blk1 <= 32'd0; blk2 <= 32'd0; blk3 <= 32'd0;
            s0 <= 32'd0; s1 <= 32'd0; s2 <= 32'd0; s3 <= 32'd0;
            rk0 <= 32'd0; rk1 <= 32'd0; rk2 <= 32'd0; rk3 <= 32'd0;
            rcon <= 8'd0; round <= 4'd0; busy <= 1'b0; done <= 1'b0; irq_en <= 1'b0;
            s_axi_awready <= 1'b0; s_axi_wready <= 1'b0;
            s_axi_bvalid <= 1'b0; s_axi_bresp <= 2'd0;
            s_axi_arready <= 1'b0; s_axi_rvalid <= 1'b0;
            s_axi_rdata <= 32'd0; s_axi_rresp <= 2'd0;
            aw_got <= 1'b0; w_got <= 1'b0; waddr <= 32'd0; wdata_l <= 32'd0;
        end else begin
            if (busy) begin
                if (round == 4'd10) begin
                    s0 <= sr_0 ^ nk0; s1 <= sr_1 ^ nk1;
                    s2 <= sr_2 ^ nk2; s3 <= sr_3 ^ nk3;
                    busy <= 1'b0;
                    done <= 1'b1;
                end else begin
                    s0 <= mix_0 ^ nk0; s1 <= mix_1 ^ nk1;
                    s2 <= mix_2 ^ nk2; s3 <= mix_3 ^ nk3;
                    round <= round + 4'd1;
                end
                rk0 <= nk0; rk1 <= nk1; rk2 <= nk2; rk3 <= nk3;
                rcon <= rcon_next;
            end

            s_axi_awready <= 1'b0;
            s_axi_wready <= 1'b0;
            if (s_axi_awvalid && !aw_got && !s_axi_awready) begin
                s_axi_awready <= 1'b1; waddr <= s_axi_awaddr; aw_got <= 1'b1;
            end
            if (s_axi_wvalid && !w_got && !s_axi_wready) begin
                s_axi_wready <= 1'b1; wdata_l <= s_axi_wdata; w_got <= 1'b1;
            end
            if (aw_got && w_got && !s_axi_bvalid) begin
                s_axi_bvalid <= 1'b1;
                s_axi_bresp <= 2'd0;
                case (waddr[7:0])
                    8'h00: begin
                        if (!busy && wdata_l[0]) begin
                            s0 <= blk0 ^ key0; s1 <= blk1 ^ key1;
                            s2 <= blk2 ^ key2; s3 <= blk3 ^ key3;
                            rk0 <= key0; rk1 <= key1; rk2 <= key2; rk3 <= key3;
                            rcon <= 8'h01; round <= 4'd1;
                            busy <= 1'b1; done <= 1'b0;
                        end
                    end
                    8'h04: begin
                        if (wdata_l[1]) done <= 1'b0;
                    end
                    8'h08: irq_en <= wdata_l[0];
                    8'h10: key0 <= wdata_l;
                    8'h14: key1 <= wdata_l;
                    8'h18: key2 <= wdata_l;
                    8'h1c: key3 <= wdata_l;
                    8'h20: blk0 <= wdata_l;
                    8'h24: blk1 <= wdata_l;
                    8'h28: blk2 <= wdata_l;
                    8'h2c: blk3 <= wdata_l;
                    default: s_axi_bresp <= 2'd2;
                endcase
            end
            if (s_axi_bvalid && s_axi_bready) begin
                s_axi_bvalid <= 1'b0; aw_got <= 1'b0; w_got <= 1'b0;
            end

            s_axi_arready <= 1'b0;
            if (s_axi_arvalid && !s_axi_rvalid && !s_axi_arready) begin
                s_axi_arready <= 1'b1;
                s_axi_rvalid <= 1'b1;
                s_axi_rresp <= 2'd0;
                case (s_axi_araddr[7:0])
                    8'h04: s_axi_rdata <= {30'd0, done, !busy};
                    8'h08: s_axi_rdata <= {31'd0, irq_en};
                    8'h30: s_axi_rdata <= s0;
                    8'h34: s_axi_rdata <= s1;
                    8'h38: s_axi_rdata <= s2;
                    8'h3c: s_axi_rdata <= s3;
                    default: begin
                        s_axi_rdata <= 32'd0;
                        s_axi_rresp <= 2'd2;
                    end
                endcase
            end
            if (s_axi_rvalid && s_axi_rready) s_axi_rvalid <= 1'b0;
        end
    end
endmodule
