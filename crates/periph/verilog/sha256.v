// SHA-256 accelerator: one compression round per cycle with an on-the-fly
// message schedule held in a 16-word ring memory — the architecture of the
// widely used open-source secworks/sha256 core, rewritten in this
// project's synthesizable subset.
//
// Register map:
//   0x00 CTRL    (W)  b0 init (start digest of loaded block from the IV),
//                     b1 next (chain another block into the running digest)
//   0x04 STATUS  (R/W1C) b0 ready, b1 digest_valid (write 1 to b1 to clear)
//   0x08 IRQEN   (RW) b0 completion-IRQ enable
//   0x40-0x7C    (W)  message block words 0..15 (big-endian words)
//   0x80-0x9C    (R)  digest words 0..7
//
// irq = irq_en & digest_valid
module sha256 (
    input wire clk,
    input wire rst,
    input wire s_axi_awvalid, input wire [31:0] s_axi_awaddr, output reg s_axi_awready,
    input wire s_axi_wvalid, input wire [31:0] s_axi_wdata, output reg s_axi_wready,
    output reg s_axi_bvalid, output reg [1:0] s_axi_bresp, input wire s_axi_bready,
    input wire s_axi_arvalid, input wire [31:0] s_axi_araddr, output reg s_axi_arready,
    output reg s_axi_rvalid, output reg [31:0] s_axi_rdata, output reg [1:0] s_axi_rresp,
    input wire s_axi_rready,
    output wire irq
);
    reg [31:0] h0; reg [31:0] h1; reg [31:0] h2; reg [31:0] h3;
    reg [31:0] h4; reg [31:0] h5; reg [31:0] h6; reg [31:0] h7;
    reg [31:0] wa; reg [31:0] wb; reg [31:0] wc; reg [31:0] wd;
    reg [31:0] we; reg [31:0] wf; reg [31:0] wg; reg [31:0] wh;
    reg [31:0] w_mem [0:15];
    reg [6:0] t;
    reg busy;
    reg digest_valid;
    reg irq_en;

    reg aw_got; reg w_got; reg [31:0] waddr; reg [31:0] wdata_l;

    assign irq = irq_en && digest_valid;

    reg [31:0] k_rom;
    always @(*) begin
        case (t[5:0])
            6'd0: k_rom = 32'h428a2f98;
            6'd1: k_rom = 32'h71374491;
            6'd2: k_rom = 32'hb5c0fbcf;
            6'd3: k_rom = 32'he9b5dba5;
            6'd4: k_rom = 32'h3956c25b;
            6'd5: k_rom = 32'h59f111f1;
            6'd6: k_rom = 32'h923f82a4;
            6'd7: k_rom = 32'hab1c5ed5;
            6'd8: k_rom = 32'hd807aa98;
            6'd9: k_rom = 32'h12835b01;
            6'd10: k_rom = 32'h243185be;
            6'd11: k_rom = 32'h550c7dc3;
            6'd12: k_rom = 32'h72be5d74;
            6'd13: k_rom = 32'h80deb1fe;
            6'd14: k_rom = 32'h9bdc06a7;
            6'd15: k_rom = 32'hc19bf174;
            6'd16: k_rom = 32'he49b69c1;
            6'd17: k_rom = 32'hefbe4786;
            6'd18: k_rom = 32'h0fc19dc6;
            6'd19: k_rom = 32'h240ca1cc;
            6'd20: k_rom = 32'h2de92c6f;
            6'd21: k_rom = 32'h4a7484aa;
            6'd22: k_rom = 32'h5cb0a9dc;
            6'd23: k_rom = 32'h76f988da;
            6'd24: k_rom = 32'h983e5152;
            6'd25: k_rom = 32'ha831c66d;
            6'd26: k_rom = 32'hb00327c8;
            6'd27: k_rom = 32'hbf597fc7;
            6'd28: k_rom = 32'hc6e00bf3;
            6'd29: k_rom = 32'hd5a79147;
            6'd30: k_rom = 32'h06ca6351;
            6'd31: k_rom = 32'h14292967;
            6'd32: k_rom = 32'h27b70a85;
            6'd33: k_rom = 32'h2e1b2138;
            6'd34: k_rom = 32'h4d2c6dfc;
            6'd35: k_rom = 32'h53380d13;
            6'd36: k_rom = 32'h650a7354;
            6'd37: k_rom = 32'h766a0abb;
            6'd38: k_rom = 32'h81c2c92e;
            6'd39: k_rom = 32'h92722c85;
            6'd40: k_rom = 32'ha2bfe8a1;
            6'd41: k_rom = 32'ha81a664b;
            6'd42: k_rom = 32'hc24b8b70;
            6'd43: k_rom = 32'hc76c51a3;
            6'd44: k_rom = 32'hd192e819;
            6'd45: k_rom = 32'hd6990624;
            6'd46: k_rom = 32'hf40e3585;
            6'd47: k_rom = 32'h106aa070;
            6'd48: k_rom = 32'h19a4c116;
            6'd49: k_rom = 32'h1e376c08;
            6'd50: k_rom = 32'h2748774c;
            6'd51: k_rom = 32'h34b0bcb5;
            6'd52: k_rom = 32'h391c0cb3;
            6'd53: k_rom = 32'h4ed8aa4a;
            6'd54: k_rom = 32'h5b9cca4f;
            6'd55: k_rom = 32'h682e6ff3;
            6'd56: k_rom = 32'h748f82ee;
            6'd57: k_rom = 32'h78a5636f;
            6'd58: k_rom = 32'h84c87814;
            6'd59: k_rom = 32'h8cc70208;
            6'd60: k_rom = 32'h90befffa;
            6'd61: k_rom = 32'ha4506ceb;
            6'd62: k_rom = 32'hbef9a3f7;
            default: k_rom = 32'hc67178f2;
        endcase
    end

    wire [3:0] tm2 = t[3:0] - 4'd2;
    wire [3:0] tm7 = t[3:0] - 4'd7;
    wire [3:0] tm15 = t[3:0] - 4'd15;
    wire [31:0] wtm2 = w_mem[tm2];
    wire [31:0] wtm7 = w_mem[tm7];
    wire [31:0] wtm15 = w_mem[tm15];
    wire [31:0] wtm16 = w_mem[t[3:0]];
    wire [31:0] ssig0 = ((wtm15 >> 7) | (wtm15 << 25)) ^ ((wtm15 >> 18) | (wtm15 << 14)) ^ (wtm15 >> 3);
    wire [31:0] ssig1 = ((wtm2 >> 17) | (wtm2 << 15)) ^ ((wtm2 >> 19) | (wtm2 << 13)) ^ (wtm2 >> 10);
    wire [31:0] w_new = ssig1 + wtm7 + ssig0 + wtm16;
    wire [31:0] w_cur = (t < 7'd16) ? w_mem[t[3:0]] : w_new;

    wire [31:0] bsig0 = ((wa >> 2) | (wa << 30)) ^ ((wa >> 13) | (wa << 19)) ^ ((wa >> 22) | (wa << 10));
    wire [31:0] bsig1 = ((we >> 6) | (we << 26)) ^ ((we >> 11) | (we << 21)) ^ ((we >> 25) | (we << 7));
    wire [31:0] ch_efg = (we & wf) ^ ((~we) & wg);
    wire [31:0] maj_abc = (wa & wb) ^ (wa & wc) ^ (wb & wc);
    wire [31:0] t1 = wh + bsig1 + ch_efg + k_rom + w_cur;
    wire [31:0] t2 = bsig0 + maj_abc;

    always @(posedge clk) begin
        if (rst) begin
            h0 <= 32'd0; h1 <= 32'd0; h2 <= 32'd0; h3 <= 32'd0;
            h4 <= 32'd0; h5 <= 32'd0; h6 <= 32'd0; h7 <= 32'd0;
            wa <= 32'd0; wb <= 32'd0; wc <= 32'd0; wd <= 32'd0;
            we <= 32'd0; wf <= 32'd0; wg <= 32'd0; wh <= 32'd0;
            t <= 7'd0; busy <= 1'b0; digest_valid <= 1'b0; irq_en <= 1'b0;
            s_axi_awready <= 1'b0; s_axi_wready <= 1'b0;
            s_axi_bvalid <= 1'b0; s_axi_bresp <= 2'd0;
            s_axi_arready <= 1'b0; s_axi_rvalid <= 1'b0;
            s_axi_rdata <= 32'd0; s_axi_rresp <= 2'd0;
            aw_got <= 1'b0; w_got <= 1'b0; waddr <= 32'd0; wdata_l <= 32'd0;
        end else begin
            if (busy) begin
                if (t == 7'd64) begin
                    h0 <= h0 + wa; h1 <= h1 + wb; h2 <= h2 + wc; h3 <= h3 + wd;
                    h4 <= h4 + we; h5 <= h5 + wf; h6 <= h6 + wg; h7 <= h7 + wh;
                    busy <= 1'b0;
                    digest_valid <= 1'b1;
                end else begin
                    if (t >= 7'd16) w_mem[t[3:0]] <= w_new;
                    wh <= wg; wg <= wf; wf <= we; we <= wd + t1;
                    wd <= wc; wc <= wb; wb <= wa; wa <= t1 + t2;
                    t <= t + 7'd1;
                end
            end

            s_axi_awready <= 1'b0;
            s_axi_wready <= 1'b0;
            if (s_axi_awvalid && !aw_got && !s_axi_awready) begin
                s_axi_awready <= 1'b1; waddr <= s_axi_awaddr; aw_got <= 1'b1;
            end
            if (s_axi_wvalid && !w_got && !s_axi_wready) begin
                s_axi_wready <= 1'b1; wdata_l <= s_axi_wdata; w_got <= 1'b1;
            end
            if (aw_got && w_got && !s_axi_bvalid) begin
                s_axi_bvalid <= 1'b1;
                s_axi_bresp <= 2'd0;
                if (waddr[7:6] == 2'd1) begin
                    w_mem[waddr[5:2]] <= wdata_l;
                end else begin
                    case (waddr[7:0])
                        8'h00: begin
                            if (!busy && wdata_l[0]) begin
                                wa <= 32'h6a09e667;
                                wb <= 32'hbb67ae85;
                                wc <= 32'h3c6ef372;
                                wd <= 32'ha54ff53a;
                                we <= 32'h510e527f;
                                wf <= 32'h9b05688c;
                                wg <= 32'h1f83d9ab;
                                wh <= 32'h5be0cd19;
                                h0 <= 32'h6a09e667;
                                h1 <= 32'hbb67ae85;
                                h2 <= 32'h3c6ef372;
                                h3 <= 32'ha54ff53a;
                                h4 <= 32'h510e527f;
                                h5 <= 32'h9b05688c;
                                h6 <= 32'h1f83d9ab;
                                h7 <= 32'h5be0cd19;
                                t <= 7'd0; busy <= 1'b1; digest_valid <= 1'b0;
                            end
                            if (!busy && !wdata_l[0] && wdata_l[1]) begin
                                wa <= h0; wb <= h1; wc <= h2; wd <= h3;
                                we <= h4; wf <= h5; wg <= h6; wh <= h7;
                                t <= 7'd0; busy <= 1'b1; digest_valid <= 1'b0;
                            end
                        end
                        8'h04: begin
                            if (wdata_l[1]) digest_valid <= 1'b0;
                        end
                        8'h08: irq_en <= wdata_l[0];
                        default: s_axi_bresp <= 2'd2;
                    endcase
                end
            end
            if (s_axi_bvalid && s_axi_bready) begin
                s_axi_bvalid <= 1'b0; aw_got <= 1'b0; w_got <= 1'b0;
            end

            s_axi_arready <= 1'b0;
            if (s_axi_arvalid && !s_axi_rvalid && !s_axi_arready) begin
                s_axi_arready <= 1'b1;
                s_axi_rvalid <= 1'b1;
                s_axi_rresp <= 2'd0;
                if (s_axi_araddr[7:5] == 3'd4) begin
                    case (s_axi_araddr[4:2])
                        3'd0: s_axi_rdata <= h0;
                        3'd1: s_axi_rdata <= h1;
                        3'd2: s_axi_rdata <= h2;
                        3'd3: s_axi_rdata <= h3;
                        3'd4: s_axi_rdata <= h4;
                        3'd5: s_axi_rdata <= h5;
                        3'd6: s_axi_rdata <= h6;
                        default: s_axi_rdata <= h7;
                    endcase
                end else begin
                    case (s_axi_araddr[7:0])
                        8'h04: s_axi_rdata <= {30'd0, digest_valid, !busy};
                        8'h08: s_axi_rdata <= {31'd0, irq_en};
                        default: begin
                            s_axi_rdata <= 32'd0;
                            s_axi_rresp <= 2'd2;
                        end
                    endcase
                end
            end
            if (s_axi_rvalid && s_axi_rready) s_axi_rvalid <= 1'b0;
        end
    end
endmodule
