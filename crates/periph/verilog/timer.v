// Down-counting timer with prescaler, one-shot/periodic modes and IRQ —
// the "internal resource" class of peripheral (interrupt source) from
// the corpus.
//
// Register map:
//   0x00 CTRL      (RW) b0 enable, b1 irq_en, b2 oneshot
//   0x04 LOAD      (RW) 32-bit reload value
//   0x08 VALUE     (R)  current count
//   0x0C STATUS    (R/W1C) b0 expired (write 1 to clear)
//   0x10 PRESCALER (RW) 16-bit clock divider
//
// irq = irq_en & expired
module timer (
    input wire clk,
    input wire rst,
    input wire s_axi_awvalid, input wire [31:0] s_axi_awaddr, output reg s_axi_awready,
    input wire s_axi_wvalid, input wire [31:0] s_axi_wdata, output reg s_axi_wready,
    output reg s_axi_bvalid, output reg [1:0] s_axi_bresp, input wire s_axi_bready,
    input wire s_axi_arvalid, input wire [31:0] s_axi_araddr, output reg s_axi_arready,
    output reg s_axi_rvalid, output reg [31:0] s_axi_rdata, output reg [1:0] s_axi_rresp,
    input wire s_axi_rready,
    output wire irq
);
    reg [2:0] ctrl;
    reg [31:0] load;
    reg [31:0] value;
    reg [15:0] prescaler;
    reg [15:0] prescnt;
    reg expired;

    reg aw_got;
    reg w_got;
    reg [31:0] waddr;
    reg [31:0] wdata_l;

    assign irq = ctrl[1] && expired;

    always @(posedge clk) begin
        if (rst) begin
            ctrl <= 3'd0; load <= 32'd0; value <= 32'd0;
            prescaler <= 16'd0; prescnt <= 16'd0; expired <= 1'b0;
            s_axi_awready <= 1'b0; s_axi_wready <= 1'b0;
            s_axi_bvalid <= 1'b0; s_axi_bresp <= 2'd0;
            s_axi_arready <= 1'b0; s_axi_rvalid <= 1'b0;
            s_axi_rdata <= 32'd0; s_axi_rresp <= 2'd0;
            aw_got <= 1'b0; w_got <= 1'b0; waddr <= 32'd0; wdata_l <= 32'd0;
        end else begin
            // ---------------------------------------------- counting
            if (ctrl[0]) begin
                if (prescnt == 16'd0) begin
                    prescnt <= prescaler;
                    if (value == 32'd0) begin
                        expired <= 1'b1;
                        if (ctrl[2]) ctrl[0] <= 1'b0;  // oneshot: stop
                        else value <= load;            // periodic: reload
                    end else begin
                        value <= value - 32'd1;
                    end
                end else begin
                    prescnt <= prescnt - 16'd1;
                end
            end

            // ---------------------------------------------- AXI write
            s_axi_awready <= 1'b0;
            s_axi_wready <= 1'b0;
            if (s_axi_awvalid && !aw_got && !s_axi_awready) begin
                s_axi_awready <= 1'b1; waddr <= s_axi_awaddr; aw_got <= 1'b1;
            end
            if (s_axi_wvalid && !w_got && !s_axi_wready) begin
                s_axi_wready <= 1'b1; wdata_l <= s_axi_wdata; w_got <= 1'b1;
            end
            if (aw_got && w_got && !s_axi_bvalid) begin
                s_axi_bvalid <= 1'b1;
                s_axi_bresp <= 2'd0;
                case (waddr[7:0])
                    8'h00: ctrl <= wdata_l[2:0];
                    8'h04: begin load <= wdata_l; value <= wdata_l; end
                    8'h0c: begin
                        if (wdata_l[0]) expired <= 1'b0;
                    end
                    8'h10: prescaler <= wdata_l[15:0];
                    default: s_axi_bresp <= 2'd2;
                endcase
            end
            if (s_axi_bvalid && s_axi_bready) begin
                s_axi_bvalid <= 1'b0; aw_got <= 1'b0; w_got <= 1'b0;
            end

            // ---------------------------------------------- AXI read
            s_axi_arready <= 1'b0;
            if (s_axi_arvalid && !s_axi_rvalid && !s_axi_arready) begin
                s_axi_arready <= 1'b1;
                s_axi_rvalid <= 1'b1;
                s_axi_rresp <= 2'd0;
                case (s_axi_araddr[7:0])
                    8'h00: s_axi_rdata <= {29'd0, ctrl};
                    8'h04: s_axi_rdata <= load;
                    8'h08: s_axi_rdata <= value;
                    8'h0c: s_axi_rdata <= {31'd0, expired};
                    8'h10: s_axi_rdata <= {16'd0, prescaler};
                    default: begin
                        s_axi_rdata <= 32'd0;
                        s_axi_rresp <= 2'd2;
                    end
                endcase
            end
            if (s_axi_rvalid && s_axi_rready) s_axi_rvalid <= 1'b0;
        end
    end
endmodule
