//! Golden software reference models for the crypto accelerators.
//!
//! These are straightforward, well-tested Rust implementations of
//! SHA-256 and AES-128 used to differentially test the Verilog corpus:
//! the hardware (simulated RTL) and these models must agree bit-for-bit
//! on random stimulus.

/// SHA-256 round constants.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 initial hash value.
pub const SHA256_IV: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Runs one SHA-256 compression round set over `block` (16 big-endian
/// words), updating `state` in place — exactly what the accelerator's
/// `init`/`next` strobes do.
pub fn sha256_compress(state: &mut [u32; 8], block: &[u32; 16]) {
    let mut w = [0u32; 64];
    w[..16].copy_from_slice(block);
    for t in 16..64 {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = s1
            .wrapping_add(w[t - 7])
            .wrapping_add(s0)
            .wrapping_add(w[t - 16]);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for t in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[t])
            .wrapping_add(w[t]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Full SHA-256 of a byte message (padding included); returns the digest
/// as 8 big-endian words.
pub fn sha256(msg: &[u8]) -> [u32; 8] {
    let mut state = SHA256_IV;
    let bit_len = (msg.len() as u64) * 8;
    let mut data = msg.to_vec();
    data.push(0x80);
    while data.len() % 64 != 56 {
        data.push(0);
    }
    data.extend_from_slice(&bit_len.to_be_bytes());
    for chunk in data.chunks(64) {
        let mut block = [0u32; 16];
        for (i, w) in chunk.chunks(4).enumerate() {
            block[i] = u32::from_be_bytes(w.try_into().unwrap());
        }
        sha256_compress(&mut state, &block);
    }
    state
}

/// AES S-box.
pub const AES_SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

fn xtime(x: u8) -> u8 {
    (x << 1) ^ if x & 0x80 != 0 { 0x1b } else { 0 }
}

/// AES-128 block encryption. `key` and `block` are 16 bytes; the
/// accelerator's word registers are the big-endian packing of these
/// (word i = bytes `4i..4i+4`).
pub fn aes128_encrypt(key: &[u8; 16], block: &[u8; 16]) -> [u8; 16] {
    // Key schedule.
    let mut w = [[0u8; 4]; 44];
    for i in 0..4 {
        w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
    }
    let mut rcon: u8 = 1;
    for i in 4..44 {
        let mut temp = w[i - 1];
        if i % 4 == 0 {
            temp = [
                AES_SBOX[temp[1] as usize] ^ rcon,
                AES_SBOX[temp[2] as usize],
                AES_SBOX[temp[3] as usize],
                AES_SBOX[temp[0] as usize],
            ];
            rcon = xtime(rcon);
        }
        for (j, t) in temp.iter().enumerate() {
            w[i][j] = w[i - 4][j] ^ t;
        }
    }

    // State: s[r][c] = block[r + 4c].
    let mut s = [[0u8; 4]; 4];
    for (i, &b) in block.iter().enumerate() {
        s[i % 4][i / 4] = b;
    }
    let add_round_key = |s: &mut [[u8; 4]; 4], w: &[[u8; 4]], round: usize| {
        for c in 0..4 {
            for r in 0..4 {
                s[r][c] ^= w[4 * round + c][r];
            }
        }
    };
    add_round_key(&mut s, &w, 0);
    for round in 1..=10 {
        // SubBytes.
        for row in s.iter_mut() {
            for b in row.iter_mut() {
                *b = AES_SBOX[*b as usize];
            }
        }
        // ShiftRows.
        for (r, row) in s.iter_mut().enumerate() {
            row.rotate_left(r);
        }
        // MixColumns (skipped in the final round).
        if round != 10 {
            for c in 0..4 {
                let a: [u8; 4] = [s[0][c], s[1][c], s[2][c], s[3][c]];
                s[0][c] = xtime(a[0]) ^ xtime(a[1]) ^ a[1] ^ a[2] ^ a[3];
                s[1][c] = a[0] ^ xtime(a[1]) ^ xtime(a[2]) ^ a[2] ^ a[3];
                s[2][c] = a[0] ^ a[1] ^ xtime(a[2]) ^ xtime(a[3]) ^ a[3];
                s[3][c] = xtime(a[0]) ^ a[0] ^ a[1] ^ a[2] ^ xtime(a[3]);
            }
        }
        add_round_key(&mut s, &w, round);
    }
    let mut out = [0u8; 16];
    for (i, o) in out.iter_mut().enumerate() {
        *o = s[i % 4][i / 4];
    }
    out
}

/// Packs 16 bytes into 4 big-endian words (the accelerator register
/// layout).
pub fn words_from_bytes(b: &[u8; 16]) -> [u32; 4] {
    let mut w = [0u32; 4];
    for (i, wi) in w.iter_mut().enumerate() {
        *wi = u32::from_be_bytes(b[4 * i..4 * i + 4].try_into().unwrap());
    }
    w
}

/// Unpacks 4 big-endian words into 16 bytes.
pub fn bytes_from_words(w: &[u32; 4]) -> [u8; 16] {
    let mut b = [0u8; 16];
    for (i, wi) in w.iter().enumerate() {
        b[4 * i..4 * i + 4].copy_from_slice(&wi.to_be_bytes());
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_abc_matches_fips() {
        let d = sha256(b"abc");
        assert_eq!(
            d,
            [
                0xba7816bf, 0x8f01cfea, 0x414140de, 0x5dae2223, 0xb00361a3, 0x96177a9c, 0xb410ff61,
                0xf20015ad
            ]
        );
    }

    #[test]
    fn sha256_empty_matches_known() {
        let d = sha256(b"");
        assert_eq!(d[0], 0xe3b0c442);
        assert_eq!(d[7], 0x7852b855);
    }

    #[test]
    fn sha256_two_block_message() {
        let d = sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
        assert_eq!(d[0], 0x248d6a61);
        assert_eq!(d[7], 0x19db06c1);
    }

    #[test]
    fn aes128_fips197_vector() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let ct = aes128_encrypt(&key, &pt);
        assert_eq!(
            ct,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
    }

    #[test]
    fn aes128_all_zero_vector() {
        let ct = aes128_encrypt(&[0u8; 16], &[0u8; 16]);
        assert_eq!(ct[0], 0x66);
        assert_eq!(ct[15], 0x2e);
    }

    #[test]
    fn word_packing_roundtrips() {
        let b: [u8; 16] = *b"0123456789abcdef";
        assert_eq!(bytes_from_words(&words_from_bytes(&b)), b);
    }
}
