//! # hardsnap-periph
//!
//! The peripheral corpus of the HardSnap reproduction: four open-source
//! style peripherals written in real Verilog (parsed by
//! `hardsnap-verilog`), a synthetic SoC top combining them behind an
//! AXI4-Lite interconnect, register-map constants, and golden Rust
//! reference models used for differential testing.
//!
//! The corpus mirrors the paper's evaluation setup: peripherals that are
//! "common on embedded systems and have different design complexities" —
//! a communication interface (UART), an internal resource / interrupt
//! source (TIMER), and two cryptographic accelerators (SHA-256, AES-128)
//! spanning roughly two orders of magnitude in state bits.
//!
//! ## Example
//!
//! ```
//! // Elaborate the whole SoC and look at its size.
//! let soc = hardsnap_periph::soc().unwrap();
//! let stats = hardsnap_rtl::ModuleStats::of(&soc);
//! assert!(stats.state_bits > 1000);
//! ```

#![warn(missing_docs)]

pub mod golden;
pub mod regs;

use hardsnap_rtl::{Design, Module, RtlError};
use hardsnap_verilog::VerilogError;

/// Verilog source of the UART peripheral.
pub const UART_V: &str = include_str!("../verilog/uart.v");
/// Verilog source of the TIMER peripheral.
pub const TIMER_V: &str = include_str!("../verilog/timer.v");
/// Verilog source of the SHA-256 accelerator.
pub const SHA256_V: &str = include_str!("../verilog/sha256.v");
/// Verilog source of the AES-128 accelerator (includes `aes_sbox`).
pub const AES128_V: &str = include_str!("../verilog/aes128.v");
/// Verilog source of the SoC top (interconnect + instances).
pub const SOC_TOP_V: &str = include_str!("../verilog/soc_top.v");
/// Verilog source of the DMA scratchpad engine (extension peripheral,
/// standalone — not instantiated in the default SoC).
pub const DMA_V: &str = include_str!("../verilog/dma.v");

/// Errors from corpus construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CorpusError {
    /// A corpus source failed to parse (a bug in the shipped corpus).
    Parse(VerilogError),
    /// Elaboration of the corpus failed.
    Rtl(RtlError),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Parse(e) => write!(f, "corpus parse error: {e}"),
            CorpusError::Rtl(e) => write!(f, "corpus rtl error: {e}"),
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<VerilogError> for CorpusError {
    fn from(e: VerilogError) -> Self {
        CorpusError::Parse(e)
    }
}

impl From<RtlError> for CorpusError {
    fn from(e: RtlError) -> Self {
        CorpusError::Rtl(e)
    }
}

/// Parses the full corpus (all peripherals + SoC top) into one design.
///
/// # Errors
///
/// Returns [`CorpusError`] only if the shipped sources are broken.
pub fn design() -> Result<Design, CorpusError> {
    let mut d = Design::new();
    for src in [UART_V, TIMER_V, SHA256_V, AES128_V, SOC_TOP_V, DMA_V] {
        d.merge(hardsnap_verilog::parse_design(src)?)?;
    }
    Ok(d)
}

fn flat(top: &str) -> Result<Module, CorpusError> {
    let d = design()?;
    Ok(hardsnap_rtl::elaborate(&d, top)?)
}

/// The flattened SoC top (all four peripherals + interconnect).
///
/// # Errors
///
/// See [`design`].
pub fn soc() -> Result<Module, CorpusError> {
    flat("soc_top")
}

/// The flattened standalone UART.
///
/// # Errors
///
/// See [`design`].
pub fn uart() -> Result<Module, CorpusError> {
    flat("uart")
}

/// The flattened standalone TIMER.
///
/// # Errors
///
/// See [`design`].
pub fn timer() -> Result<Module, CorpusError> {
    flat("timer")
}

/// The flattened standalone SHA-256 accelerator.
///
/// # Errors
///
/// See [`design`].
pub fn sha256() -> Result<Module, CorpusError> {
    flat("sha256")
}

/// The flattened standalone AES-128 accelerator.
///
/// # Errors
///
/// See [`design`].
pub fn aes128() -> Result<Module, CorpusError> {
    flat("aes128")
}

/// The flattened standalone DMA scratchpad engine (extension
/// peripheral; its 8 KiB SRAM is the memory-heavy stress case for
/// snapshot experiments).
///
/// # Errors
///
/// See [`design`].
pub fn dma() -> Result<Module, CorpusError> {
    flat("dma")
}

/// Names and constructors of the 4-peripheral corpus in evaluation order
/// (used by the Table II and snapshot-latency harnesses).
pub fn corpus() -> Vec<(&'static str, fn() -> Result<Module, CorpusError>)> {
    vec![
        ("timer", timer as fn() -> _),
        ("uart", uart as fn() -> _),
        ("sha256", sha256 as fn() -> _),
        ("aes128", aes128 as fn() -> _),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses_and_elaborates() {
        let soc = soc().unwrap();
        assert!(soc.instances.is_empty());
        assert!(soc.find_net("u_aes.busy").is_some());
        assert!(soc.find_net("u_sha.digest_valid").is_some());
        hardsnap_rtl::check_module(&soc).unwrap();
    }

    #[test]
    fn corpus_complexity_spans_orders_of_magnitude() {
        let t = hardsnap_rtl::ModuleStats::of(&timer().unwrap());
        let a = hardsnap_rtl::ModuleStats::of(&aes128().unwrap());
        assert!(t.state_bits < 300, "timer: {}", t.state_bits);
        assert!(a.state_bits > 500, "aes: {}", a.state_bits);
    }

    #[test]
    fn every_peripheral_validates() {
        for (name, f) in corpus() {
            let m = f().unwrap();
            hardsnap_rtl::check_module(&m).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
