//! Register-map constants for the corpus peripherals.
//!
//! Offsets are relative to each peripheral's base address in
//! `hardsnap_bus::map::soc`; firmware and tests share these constants.

/// UART register offsets and bit positions.
pub mod uart {
    /// Write: push byte to the TX FIFO.
    pub const TXDATA: u32 = 0x00;
    /// Read: pop byte from the RX FIFO.
    pub const RXDATA: u32 = 0x04;
    /// Read: status flags.
    pub const STATUS: u32 = 0x08;
    /// Read/write: control flags.
    pub const CTRL: u32 = 0x0c;
    /// Read/write: 16-bit baud divisor.
    pub const BAUDDIV: u32 = 0x10;
    /// STATUS bit: TX FIFO empty.
    pub const ST_TX_EMPTY: u32 = 1 << 0;
    /// STATUS bit: TX FIFO full.
    pub const ST_TX_FULL: u32 = 1 << 1;
    /// STATUS bit: RX FIFO non-empty.
    pub const ST_RX_AVAIL: u32 = 1 << 2;
    /// STATUS bit: RX FIFO full.
    pub const ST_RX_FULL: u32 = 1 << 3;
    /// STATUS bit: transmitter shifting.
    pub const ST_TX_BUSY: u32 = 1 << 4;
    /// CTRL bit: IRQ when RX data available.
    pub const CTRL_RX_IRQ_EN: u32 = 1 << 0;
    /// CTRL bit: IRQ when TX idle.
    pub const CTRL_TX_IRQ_EN: u32 = 1 << 1;
    /// CTRL bit: internal loopback (tx feeds rx).
    pub const CTRL_LOOPBACK: u32 = 1 << 2;
    /// CTRL bit: receiver enable (the line idles high on real hardware,
    /// so reception is off until firmware turns it on).
    pub const CTRL_RX_EN: u32 = 1 << 3;
}

/// TIMER register offsets and bit positions.
pub mod timer {
    /// Read/write: control.
    pub const CTRL: u32 = 0x00;
    /// Read/write: reload value (writing also loads the counter).
    pub const LOAD: u32 = 0x04;
    /// Read: current counter value.
    pub const VALUE: u32 = 0x08;
    /// Read / write-1-to-clear: expiry flag.
    pub const STATUS: u32 = 0x0c;
    /// Read/write: 16-bit prescaler.
    pub const PRESCALER: u32 = 0x10;
    /// CTRL bit: counting enabled.
    pub const CTRL_ENABLE: u32 = 1 << 0;
    /// CTRL bit: IRQ on expiry.
    pub const CTRL_IRQ_EN: u32 = 1 << 1;
    /// CTRL bit: one-shot mode (stop on expiry).
    pub const CTRL_ONESHOT: u32 = 1 << 2;
    /// STATUS bit: timer expired.
    pub const ST_EXPIRED: u32 = 1 << 0;
}

/// SHA-256 register offsets and bit positions.
pub mod sha256 {
    /// Write: control strobes.
    pub const CTRL: u32 = 0x00;
    /// Read / write-1-to-clear(bit 1): status.
    pub const STATUS: u32 = 0x04;
    /// Read/write: IRQ enable.
    pub const IRQEN: u32 = 0x08;
    /// Write: first message-block word (16 words, 0x40..0x7C).
    pub const BLOCK0: u32 = 0x40;
    /// Read: first digest word (8 words, 0x80..0x9C).
    pub const DIGEST0: u32 = 0x80;
    /// CTRL bit: start a new digest from the IV.
    pub const CTRL_INIT: u32 = 1 << 0;
    /// CTRL bit: chain the loaded block into the running digest.
    pub const CTRL_NEXT: u32 = 1 << 1;
    /// STATUS bit: core idle.
    pub const ST_READY: u32 = 1 << 0;
    /// STATUS bit: digest complete (W1C).
    pub const ST_DIGEST_VALID: u32 = 1 << 1;
    /// Compression latency in cycles (64 rounds + finalize).
    pub const ROUNDS: u64 = 65;
}

/// AES-128 register offsets and bit positions.
pub mod aes128 {
    /// Write: control strobes.
    pub const CTRL: u32 = 0x00;
    /// Read / write-1-to-clear(bit 1): status.
    pub const STATUS: u32 = 0x04;
    /// Read/write: IRQ enable.
    pub const IRQEN: u32 = 0x08;
    /// Write: first key word (4 words, 0x10..0x1C).
    pub const KEY0: u32 = 0x10;
    /// Write: first plaintext word (4 words, 0x20..0x2C).
    pub const BLOCK0: u32 = 0x20;
    /// Read: first ciphertext word (4 words, 0x30..0x3C).
    pub const RESULT0: u32 = 0x30;
    /// CTRL bit: start encryption.
    pub const CTRL_START: u32 = 1 << 0;
    /// STATUS bit: core idle.
    pub const ST_READY: u32 = 1 << 0;
    /// STATUS bit: encryption complete (W1C).
    pub const ST_DONE: u32 = 1 << 1;
    /// Encryption latency in cycles (10 rounds).
    pub const ROUNDS: u64 = 10;
}

/// DMA scratchpad-engine register offsets and bit positions (extension
/// peripheral).
pub mod dma {
    /// Write: control strobes.
    pub const CTRL: u32 = 0x00;
    /// Read / write-1-to-clear(bit 1): status.
    pub const STATUS: u32 = 0x04;
    /// Read/write: IRQ enable.
    pub const IRQEN: u32 = 0x08;
    /// Read/write: source word index.
    pub const SRC: u32 = 0x0c;
    /// Read/write: destination word index.
    pub const DST: u32 = 0x10;
    /// Read/write: words to copy.
    pub const LEN: u32 = 0x14;
    /// Base of the direct SRAM window (word i at `SRAM + 4*i`).
    pub const SRAM: u32 = 0x400;
    /// CTRL bit: start the copy.
    pub const CTRL_START: u32 = 1 << 0;
    /// STATUS bit: engine idle.
    pub const ST_READY: u32 = 1 << 0;
    /// STATUS bit: copy complete (W1C).
    pub const ST_DONE: u32 = 1 << 1;
}
