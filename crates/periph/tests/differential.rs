//! Differential tests: the Verilog corpus (simulated RTL) against the
//! golden Rust models, via real AXI4-Lite bus transactions.

use hardsnap_bus::HwTarget;
use hardsnap_periph::golden;
use hardsnap_periph::regs;
use hardsnap_sim::SimTarget;

fn target(m: hardsnap_rtl::Module) -> SimTarget {
    let mut t = SimTarget::new(m).expect("target builds");
    t.reset();
    t
}

// ------------------------------------------------------------------ SHA-256

fn hw_sha256_block(t: &mut SimTarget, block: &[u32; 16], first: bool) -> [u32; 8] {
    for (i, w) in block.iter().enumerate() {
        t.bus_write(regs::sha256::BLOCK0 + 4 * i as u32, *w)
            .unwrap();
    }
    let strobe = if first {
        regs::sha256::CTRL_INIT
    } else {
        regs::sha256::CTRL_NEXT
    };
    t.bus_write(regs::sha256::CTRL, strobe).unwrap();
    // Wait for completion.
    for _ in 0..200 {
        let st = t.bus_read(regs::sha256::STATUS).unwrap();
        if st & regs::sha256::ST_DIGEST_VALID != 0 {
            break;
        }
        t.step(1);
    }
    let mut digest = [0u32; 8];
    for (i, d) in digest.iter_mut().enumerate() {
        *d = t.bus_read(regs::sha256::DIGEST0 + 4 * i as u32).unwrap();
    }
    digest
}

fn pad_one_block(msg: &[u8]) -> [u32; 16] {
    assert!(msg.len() <= 55);
    let mut data = msg.to_vec();
    data.push(0x80);
    while data.len() != 56 {
        data.push(0);
    }
    data.extend_from_slice(&((msg.len() as u64) * 8).to_be_bytes());
    let mut block = [0u32; 16];
    for (i, w) in data.chunks(4).enumerate() {
        block[i] = u32::from_be_bytes(w.try_into().unwrap());
    }
    block
}

#[test]
fn sha256_hw_matches_fips_abc() {
    let mut t = target(hardsnap_periph::sha256().unwrap());
    let digest = hw_sha256_block(&mut t, &pad_one_block(b"abc"), true);
    assert_eq!(digest, golden::sha256(b"abc"));
    assert_eq!(digest[0], 0xba7816bf);
}

#[test]
fn sha256_hw_multi_block_chaining() {
    let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"; // 56 bytes -> 2 blocks
    let mut data = msg.to_vec();
    data.push(0x80);
    while data.len() % 64 != 56 {
        data.push(0);
    }
    data.extend_from_slice(&((msg.len() as u64) * 8).to_be_bytes());
    let mut t = target(hardsnap_periph::sha256().unwrap());
    let mut digest = [0u32; 8];
    for (bi, chunk) in data.chunks(64).enumerate() {
        let mut block = [0u32; 16];
        for (i, w) in chunk.chunks(4).enumerate() {
            block[i] = u32::from_be_bytes(w.try_into().unwrap());
        }
        digest = hw_sha256_block(&mut t, &block, bi == 0);
        // Clear digest_valid between blocks (W1C).
        t.bus_write(regs::sha256::STATUS, regs::sha256::ST_DIGEST_VALID)
            .unwrap();
    }
    assert_eq!(digest, golden::sha256(msg));
}

#[test]
fn sha256_hw_random_blocks_match_golden_compress() {
    let mut rng = hardsnap_util::Rng::seed_from_u64(0xdecafbad);
    let mut t = target(hardsnap_periph::sha256().unwrap());
    for round in 0..4 {
        let block: [u32; 16] = std::array::from_fn(|_| rng.gen());
        let hw = hw_sha256_block(&mut t, &block, true);
        let mut sw = golden::SHA256_IV;
        golden::sha256_compress(&mut sw, &block);
        assert_eq!(hw, sw, "round {round}");
        t.bus_write(regs::sha256::STATUS, regs::sha256::ST_DIGEST_VALID)
            .unwrap();
    }
}

#[test]
fn sha256_irq_follows_enable_and_w1c() {
    let mut t = target(hardsnap_periph::sha256().unwrap());
    t.bus_write(regs::sha256::IRQEN, 1).unwrap();
    let _ = hw_sha256_block(&mut t, &pad_one_block(b"x"), true);
    assert_eq!(t.irq_lines() & 1, 1, "irq raised on completion");
    t.bus_write(regs::sha256::STATUS, regs::sha256::ST_DIGEST_VALID)
        .unwrap();
    assert_eq!(t.irq_lines() & 1, 0, "irq cleared by W1C");
}

// ------------------------------------------------------------------ AES-128

fn hw_aes_encrypt(t: &mut SimTarget, key: &[u8; 16], pt: &[u8; 16]) -> [u8; 16] {
    let kw = golden::words_from_bytes(key);
    let pw = golden::words_from_bytes(pt);
    for i in 0..4u32 {
        t.bus_write(regs::aes128::KEY0 + 4 * i, kw[i as usize])
            .unwrap();
        t.bus_write(regs::aes128::BLOCK0 + 4 * i, pw[i as usize])
            .unwrap();
    }
    t.bus_write(regs::aes128::CTRL, regs::aes128::CTRL_START)
        .unwrap();
    for _ in 0..50 {
        let st = t.bus_read(regs::aes128::STATUS).unwrap();
        if st & regs::aes128::ST_DONE != 0 {
            break;
        }
        t.step(1);
    }
    let mut cw = [0u32; 4];
    for (i, c) in cw.iter_mut().enumerate() {
        *c = t.bus_read(regs::aes128::RESULT0 + 4 * i as u32).unwrap();
    }
    golden::bytes_from_words(&cw)
}

#[test]
fn aes128_hw_matches_fips197() {
    let key: [u8; 16] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0xa, 0xb, 0xc, 0xd, 0xe, 0xf];
    let pt: [u8; 16] = [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee,
        0xff,
    ];
    let mut t = target(hardsnap_periph::aes128().unwrap());
    let ct = hw_aes_encrypt(&mut t, &key, &pt);
    assert_eq!(
        ct,
        [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a
        ]
    );
}

#[test]
fn aes128_hw_random_vectors_match_golden() {
    let mut rng = hardsnap_util::Rng::seed_from_u64(0xaeaeaeae);
    let mut t = target(hardsnap_periph::aes128().unwrap());
    for round in 0..4 {
        let key: [u8; 16] = rng.gen();
        let pt: [u8; 16] = rng.gen();
        let hw = hw_aes_encrypt(&mut t, &key, &pt);
        assert_eq!(hw, golden::aes128_encrypt(&key, &pt), "round {round}");
        t.bus_write(regs::aes128::STATUS, regs::aes128::ST_DONE)
            .unwrap();
    }
}

// --------------------------------------------------------------------- UART

#[test]
fn uart_loopback_roundtrips_bytes() {
    let mut t = target(hardsnap_periph::uart().unwrap());
    t.bus_write(regs::uart::BAUDDIV, 4).unwrap();
    t.bus_write(
        regs::uart::CTRL,
        regs::uart::CTRL_LOOPBACK | regs::uart::CTRL_RX_EN,
    )
    .unwrap();
    for &byte in &[0x55u32, 0x00, 0xff, 0xa7] {
        t.bus_write(regs::uart::TXDATA, byte).unwrap();
        // A frame is 10 bits; give it generous time at div 4 (+sync).
        t.step(150);
        let st = t.bus_read(regs::uart::STATUS).unwrap();
        assert_ne!(
            st & regs::uart::ST_RX_AVAIL,
            0,
            "byte {byte:#x} not received"
        );
        let rx = t.bus_read(regs::uart::RXDATA).unwrap();
        assert_eq!(rx, byte, "loopback corrupted the byte");
    }
}

#[test]
fn uart_fifo_flags_track_occupancy() {
    let mut t = target(hardsnap_periph::uart().unwrap());
    // Huge divisor: transmitter drains at most one entry during the test.
    t.bus_write(regs::uart::BAUDDIV, 0xff00).unwrap();
    let st = t.bus_read(regs::uart::STATUS).unwrap();
    assert_ne!(st & regs::uart::ST_TX_EMPTY, 0);
    for i in 0..17 {
        t.bus_write(regs::uart::TXDATA, i).unwrap();
    }
    let st = t.bus_read(regs::uart::STATUS).unwrap();
    assert_eq!(st & regs::uart::ST_TX_EMPTY, 0);
    assert_ne!(
        st & regs::uart::ST_TX_FULL,
        0,
        "16 queued (+1 shifting) must be full"
    );
}

#[test]
fn uart_rx_irq_fires_when_data_arrives() {
    let mut t = target(hardsnap_periph::uart().unwrap());
    t.bus_write(regs::uart::BAUDDIV, 4).unwrap();
    t.bus_write(
        regs::uart::CTRL,
        regs::uart::CTRL_LOOPBACK | regs::uart::CTRL_RX_EN | regs::uart::CTRL_RX_IRQ_EN,
    )
    .unwrap();
    assert_eq!(t.irq_lines() & 1, 0);
    t.bus_write(regs::uart::TXDATA, 0x42).unwrap();
    t.step(150);
    assert_eq!(t.irq_lines() & 1, 1);
    let _ = t.bus_read(regs::uart::RXDATA).unwrap();
    assert_eq!(t.irq_lines() & 1, 0, "draining RX clears the irq");
}

// -------------------------------------------------------------------- TIMER

#[test]
fn timer_oneshot_counts_down_and_stops() {
    let mut t = target(hardsnap_periph::timer().unwrap());
    t.bus_write(regs::timer::LOAD, 20).unwrap();
    t.bus_write(
        regs::timer::CTRL,
        regs::timer::CTRL_ENABLE | regs::timer::CTRL_IRQ_EN | regs::timer::CTRL_ONESHOT,
    )
    .unwrap();
    assert_eq!(t.irq_lines(), 0);
    t.step(30);
    assert_eq!(t.irq_lines(), 1);
    // One-shot: enable bit cleared itself.
    let ctrl = t.bus_read(regs::timer::CTRL).unwrap();
    assert_eq!(ctrl & regs::timer::CTRL_ENABLE, 0);
    // W1C clears the flag.
    t.bus_write(regs::timer::STATUS, regs::timer::ST_EXPIRED)
        .unwrap();
    assert_eq!(t.irq_lines(), 0);
}

#[test]
fn timer_periodic_reloads() {
    let mut t = target(hardsnap_periph::timer().unwrap());
    t.bus_write(regs::timer::LOAD, 10).unwrap();
    t.bus_write(regs::timer::CTRL, regs::timer::CTRL_ENABLE)
        .unwrap();
    t.step(15);
    let expired = t.bus_read(regs::timer::STATUS).unwrap();
    assert_ne!(expired & regs::timer::ST_EXPIRED, 0);
    // Still enabled and counting (periodic).
    let ctrl = t.bus_read(regs::timer::CTRL).unwrap();
    assert_ne!(ctrl & regs::timer::CTRL_ENABLE, 0);
    let v1 = t.bus_read(regs::timer::VALUE).unwrap();
    t.step(3);
    let v2 = t.bus_read(regs::timer::VALUE).unwrap();
    assert_ne!(v1, v2, "counter keeps moving");
}

#[test]
fn timer_prescaler_slows_counting() {
    let mut t = target(hardsnap_periph::timer().unwrap());
    t.bus_write(regs::timer::PRESCALER, 9).unwrap(); // 10 cycles per tick
    t.bus_write(regs::timer::LOAD, 100).unwrap();
    t.bus_write(regs::timer::CTRL, regs::timer::CTRL_ENABLE)
        .unwrap();
    let v0 = t.bus_read(regs::timer::VALUE).unwrap();
    t.step(50);
    let v1 = t.bus_read(regs::timer::VALUE).unwrap();
    let dropped = v0 - v1;
    assert!(
        (3..=8).contains(&dropped),
        "expected ~5 ticks in 50 cycles, got {dropped}"
    );
}

// ------------------------------------------------------------------ SoC top

#[test]
fn soc_routes_all_four_peripherals() {
    use hardsnap_bus::map::soc as m;
    let mut t = target(hardsnap_periph::soc().unwrap());
    // Timer through the interconnect.
    t.bus_write(m::TIMER_BASE + regs::timer::LOAD, 5).unwrap();
    assert_eq!(t.bus_read(m::TIMER_BASE + regs::timer::VALUE).unwrap(), 5);
    // UART status through the interconnect.
    let st = t.bus_read(m::UART_BASE + regs::uart::STATUS).unwrap();
    assert_ne!(st & regs::uart::ST_TX_EMPTY, 0);
    // SHA ready.
    let st = t.bus_read(m::SHA_BASE + regs::sha256::STATUS).unwrap();
    assert_ne!(st & regs::sha256::ST_READY, 0);
    // AES ready.
    let st = t.bus_read(m::AES_BASE + regs::aes128::STATUS).unwrap();
    assert_ne!(st & regs::aes128::ST_READY, 0);
}

#[test]
fn soc_bad_address_gets_slverr() {
    let mut t = target(hardsnap_periph::soc().unwrap());
    assert!(matches!(
        t.bus_read(0x4000_8000),
        Err(hardsnap_bus::BusError::SlaveError { .. })
    ));
    assert!(matches!(
        t.bus_write(0x5000_0000, 1),
        Err(hardsnap_bus::BusError::SlaveError { .. })
    ));
    // And the bus still works afterwards.
    let st = t
        .bus_read(hardsnap_bus::map::soc::UART_BASE + regs::uart::STATUS)
        .unwrap();
    assert_ne!(st & regs::uart::ST_TX_EMPTY, 0);
}

#[test]
fn soc_irq_lines_are_independent() {
    use hardsnap_bus::map::soc as m;
    let mut t = target(hardsnap_periph::soc().unwrap());
    assert_eq!(t.irq_lines(), 0);
    // Timer expiry on line 1.
    t.bus_write(m::TIMER_BASE + regs::timer::LOAD, 3).unwrap();
    t.bus_write(
        m::TIMER_BASE + regs::timer::CTRL,
        regs::timer::CTRL_ENABLE | regs::timer::CTRL_IRQ_EN | regs::timer::CTRL_ONESHOT,
    )
    .unwrap();
    t.step(10);
    assert_eq!(t.irq_lines(), 0b0010);
    // AES completion on line 3.
    t.bus_write(m::AES_BASE + hardsnap_periph::regs::aes128::IRQEN, 1)
        .unwrap();
    t.bus_write(m::AES_BASE + regs::aes128::CTRL, regs::aes128::CTRL_START)
        .unwrap();
    t.step(20);
    assert_eq!(t.irq_lines(), 0b1010);
}

#[test]
fn soc_aes_end_to_end_matches_golden() {
    use hardsnap_bus::map::soc as m;
    let mut t = target(hardsnap_periph::soc().unwrap());
    let key = [0x2bu8; 16];
    let pt = *b"attack at dawn!!";
    let kw = golden::words_from_bytes(&key);
    let pw = golden::words_from_bytes(&pt);
    for i in 0..4u32 {
        t.bus_write(m::AES_BASE + regs::aes128::KEY0 + 4 * i, kw[i as usize])
            .unwrap();
        t.bus_write(m::AES_BASE + regs::aes128::BLOCK0 + 4 * i, pw[i as usize])
            .unwrap();
    }
    t.bus_write(m::AES_BASE + regs::aes128::CTRL, regs::aes128::CTRL_START)
        .unwrap();
    t.step(15);
    let mut cw = [0u32; 4];
    for (i, c) in cw.iter_mut().enumerate() {
        *c = t
            .bus_read(m::AES_BASE + regs::aes128::RESULT0 + 4 * i as u32)
            .unwrap();
    }
    assert_eq!(
        golden::bytes_from_words(&cw),
        golden::aes128_encrypt(&key, &pt)
    );
}

// ------------------------------------------------------------ DMA engine

#[test]
fn dma_copies_words_and_raises_irq() {
    let mut t = target(hardsnap_periph::dma().unwrap());
    // Fill 8 source words through the SRAM window.
    for i in 0..8u32 {
        t.bus_write(regs::dma::SRAM + 4 * i, 0xD000_0000 + i)
            .unwrap();
    }
    t.bus_write(regs::dma::SRC, 0).unwrap();
    t.bus_write(regs::dma::DST, 100).unwrap();
    t.bus_write(regs::dma::LEN, 8).unwrap();
    t.bus_write(regs::dma::IRQEN, 1).unwrap();
    t.bus_write(regs::dma::CTRL, regs::dma::CTRL_START).unwrap();
    t.step(20);
    assert_eq!(t.irq_lines() & 1, 1, "completion irq");
    for i in 0..8u32 {
        let v = t.bus_read(regs::dma::SRAM + 4 * (100 + i)).unwrap();
        assert_eq!(v, 0xD000_0000 + i, "word {i}");
    }
    // W1C clears the irq.
    t.bus_write(regs::dma::STATUS, regs::dma::ST_DONE).unwrap();
    assert_eq!(t.irq_lines() & 1, 0);
}

#[test]
fn dma_overlapping_forward_copy_semantics() {
    // Overlapping src < dst forward copy: one-word-per-cycle engines
    // read the already-copied words (memmove this is not). The golden
    // semantics: word-by-word sequential copy.
    let mut t = target(hardsnap_periph::dma().unwrap());
    for i in 0..4u32 {
        t.bus_write(regs::dma::SRAM + 4 * i, i + 1).unwrap(); // 1,2,3,4
    }
    t.bus_write(regs::dma::SRC, 0).unwrap();
    t.bus_write(regs::dma::DST, 2).unwrap();
    t.bus_write(regs::dma::LEN, 4).unwrap();
    t.bus_write(regs::dma::CTRL, regs::dma::CTRL_START).unwrap();
    t.step(20);
    // Sequential semantics: sram[2]=sram[0]=1, sram[3]=sram[1]=2,
    // sram[4]=sram[2]=1 (already overwritten), sram[5]=sram[3]=2.
    let expect = [1u32, 2, 1, 2];
    for (i, e) in expect.iter().enumerate() {
        let v = t.bus_read(regs::dma::SRAM + 4 * (2 + i as u32)).unwrap();
        assert_eq!(v, *e, "word {i}");
    }
}

#[test]
fn dma_snapshot_covers_the_sram() {
    use hardsnap_fpga::{FpgaOptions, FpgaTarget};
    let mut t = FpgaTarget::new(hardsnap_periph::dma().unwrap(), &FpgaOptions::default()).unwrap();
    t.reset();
    for i in 0..16u32 {
        t.bus_write(regs::dma::SRAM + 4 * i, 0xCAFE_0000 + i)
            .unwrap();
    }
    let snap = t.save_snapshot().unwrap();
    let sram = snap.mem("sram").expect("sram collared");
    assert_eq!(sram.words.len(), 256);
    assert_eq!(sram.words[5], 0xCAFE_0005);
    // Trash the SRAM, restore, verify.
    for i in 0..16u32 {
        t.bus_write(regs::dma::SRAM + 4 * i, 0).unwrap();
    }
    t.restore_snapshot(&snap).unwrap();
    assert_eq!(t.bus_read(regs::dma::SRAM + 4 * 5).unwrap(), 0xCAFE_0005);
}
