//! `std::sync` wrappers with a `parking_lot`-shaped surface: infallible
//! `lock()`/`read()`/`write()` that recover from poisoning instead of
//! returning `Result`. A panic while holding one of these locks
//! poisons only the std inner lock; since every guarded structure in
//! this workspace is updated transactionally (field writes complete
//! before the guard drops), recovering the inner value is safe.
//!
//! `std::sync::mpsc` is re-exported as [`mpsc`] to replace `crossbeam`
//! channels, and [`scope`] re-exports `std::thread::scope` for scoped
//! worker fan-out (`crossbeam::thread::scope` replacement).

use std::sync::{self, LockResult};

pub use std::sync::mpsc;
pub use std::thread::scope;

/// A mutex whose `lock()` never returns `Err` (poisoning is recovered).
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// A reader-writer lock whose `read()`/`write()` never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

fn unpoison<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A fixed array of independently locked shards, selected by key.
///
/// Contention on one hot structure (e.g. the snapshot store under N
/// analysis workers) is split across `shards()` locks; operations that
/// touch a single key lock only that key's shard. Callers must never
/// hold two shard guards at once (lock-order freedom is what makes the
/// sharding deadlock-free).
#[derive(Debug)]
pub struct ShardedRwLock<T> {
    shards: Vec<RwLock<T>>,
}

impl<T: Default> ShardedRwLock<T> {
    /// Creates `n` default-initialized shards (`n` is clamped to ≥ 1).
    pub fn new(n: usize) -> Self {
        ShardedRwLock {
            shards: (0..n.max(1)).map(|_| RwLock::default()).collect(),
        }
    }
}

impl<T> ShardedRwLock<T> {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `key` (stable mapping: `key % shards`).
    pub fn shard_for(&self, key: u64) -> &RwLock<T> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Iterates all shards (for whole-structure scans; lock one at a
    /// time).
    pub fn iter(&self) -> impl Iterator<Item = &RwLock<T>> {
        self.shards.iter()
    }
}

/// A lock-free running total with a high-water mark (byte accounting
/// for the sharded snapshot store).
#[derive(Debug, Default)]
pub struct WatermarkCounter {
    current: sync::atomic::AtomicUsize,
    peak: sync::atomic::AtomicUsize,
}

impl WatermarkCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        WatermarkCounter::default()
    }

    /// Adds `n`, updating the high-water mark.
    pub fn add(&self, n: usize) {
        use sync::atomic::Ordering::Relaxed;
        let v = self.current.fetch_add(n, Relaxed) + n;
        self.peak.fetch_max(v, Relaxed);
    }

    /// Subtracts `n`, saturating at zero.
    pub fn sub(&self, n: usize) {
        use sync::atomic::Ordering::Relaxed;
        let mut cur = self.current.load(Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .current
                .compare_exchange_weak(cur, next, Relaxed, Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current total.
    pub fn current(&self) -> usize {
        self.current.load(sync::atomic::Ordering::Relaxed)
    }

    /// High-water mark of [`WatermarkCounter::current`].
    pub fn peak(&self) -> usize {
        self.peak.load(sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_poison_recovery() {
        let m = Arc::new(Mutex::new(0u32));
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        // Poison it from a panicking thread; lock() must still work.
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock after poisoning still returns the value");
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn sharded_lock_routes_keys_stably() {
        let l: ShardedRwLock<Vec<u64>> = ShardedRwLock::new(4);
        assert_eq!(l.shards(), 4);
        for k in 0..100u64 {
            l.shard_for(k).write().push(k);
        }
        // Same key always maps to the same shard.
        assert!(l.shard_for(7).read().contains(&7));
        let total: usize = l.iter().map(|s| s.read().len()).sum();
        assert_eq!(total, 100);
        // Zero shard count is clamped rather than panicking.
        let one: ShardedRwLock<u32> = ShardedRwLock::new(0);
        assert_eq!(one.shards(), 1);
    }

    #[test]
    fn watermark_counter_tracks_peak_and_saturates() {
        let c = WatermarkCounter::new();
        c.add(100);
        c.add(50);
        c.sub(120);
        assert_eq!(c.current(), 30);
        assert_eq!(c.peak(), 150);
        c.sub(1000);
        assert_eq!(c.current(), 0, "saturating at zero");
        assert_eq!(c.peak(), 150);
    }

    #[test]
    fn scoped_threads_and_channels() {
        let (tx, rx) = mpsc::channel();
        let total: u32 = scope(|s| {
            for i in 0..4u32 {
                let tx = tx.clone();
                s.spawn(move || tx.send(i * 10).unwrap());
            }
            drop(tx);
            rx.iter().sum()
        });
        assert_eq!(total, 60);
    }
}
