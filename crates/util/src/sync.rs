//! `std::sync` wrappers with a `parking_lot`-shaped surface: infallible
//! `lock()`/`read()`/`write()` that recover from poisoning instead of
//! returning `Result`. A panic while holding one of these locks
//! poisons only the std inner lock; since every guarded structure in
//! this workspace is updated transactionally (field writes complete
//! before the guard drops), recovering the inner value is safe.
//!
//! `std::sync::mpsc` is re-exported as [`mpsc`] to replace `crossbeam`
//! channels, and [`scope`] re-exports `std::thread::scope` for scoped
//! worker fan-out (`crossbeam::thread::scope` replacement).

use std::sync::{self, LockResult};

pub use std::sync::mpsc;
pub use std::thread::scope;

/// A mutex whose `lock()` never returns `Err` (poisoning is recovered).
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// A reader-writer lock whose `read()`/`write()` never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

fn unpoison<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_poison_recovery() {
        let m = Arc::new(Mutex::new(0u32));
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        // Poison it from a panicking thread; lock() must still work.
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock after poisoning still returns the value");
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn scoped_threads_and_channels() {
        let (tx, rx) = mpsc::channel();
        let total: u32 = scope(|s| {
            for i in 0..4u32 {
                let tx = tx.clone();
                s.spawn(move || tx.send(i * 10).unwrap());
            }
            drop(tx);
            rx.iter().sum()
        });
        assert_eq!(total, 60);
    }
}
