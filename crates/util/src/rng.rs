//! Seedable, deterministic PRNG: xoshiro256\*\* state initialized with
//! SplitMix64, exposing the subset of the `rand::Rng` surface the
//! workspace uses. Not cryptographically secure — this is test
//! stimulus, fuzz scheduling and benchmark input generation, where the
//! requirement is byte-for-byte reproducibility from a printed seed.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step; used to expand a 64-bit seed into PRNG state.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256\*\* PRNG (Blackman & Vigna) with a `rand`-like surface.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded, so
    /// similar seeds give uncorrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits (upper half of [`Rng::next_u64`]).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random value of any [`FromRng`] type (integers,
    /// `bool`, fixed-size arrays thereof) — the `rand::Rng::gen`
    /// analogue.
    #[inline]
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform value in `range` (`a..b` or `a..=b`); panics on an
    /// empty range, mirroring `rand`.
    #[inline]
    pub fn gen_range<T, R: UniformRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare against a 53-bit uniform in [0,1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }

    /// Uniform u64 in `[0, bound)` via Lemire-style widening multiply
    /// with rejection (unbiased).
    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection zone below `zone` keeps the multiply unbiased.
        let zone = bound.wrapping_neg() % bound;
        loop {
            let v = self.next_u64();
            let m = (v as u128) * (bound as u128);
            if (m as u64) >= zone || zone == 0 {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Types constructible from uniform random bits (the `gen::<T>()`
/// surface).
pub trait FromRng {
    /// Draws a uniformly random value.
    fn from_rng(rng: &mut Rng) -> Self;

    /// Candidate simpler values for shrinking a failing property-test
    /// input (see `hardsnap_util::prop`). Ordered simplest-first;
    /// empty means the type doesn't shrink.
    fn shrink_from(&self) -> Vec<Self>
    where
        Self: Sized,
    {
        Vec::new()
    }
}

macro_rules! impl_from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            #[inline]
            fn from_rng(rng: &mut Rng) -> Self {
                rng.next_u64() as $t
            }

            fn shrink_from(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                // Halving ladder toward zero: 0, v/2, 3v/4, ... so a
                // greedy shrinker converges like a binary search.
                let mut out = vec![0 as $t];
                let mut cand = v / 2;
                while cand != v && out.last() != Some(&cand) {
                    out.push(cand);
                    cand = cand + (v - cand) / 2;
                }
                out
            }
        }
    )*};
}

impl_from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    #[inline]
    fn from_rng(rng: &mut Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: FromRng, const N: usize> FromRng for [T; N] {
    fn from_rng(rng: &mut Rng) -> Self {
        std::array::from_fn(|_| T::from_rng(rng))
    }
}

/// Ranges that can be sampled uniformly (`a..b`, `a..=b`).
pub trait UniformRange<T> {
    /// Draws a uniform value from the range; panics if empty.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl UniformRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl UniformRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.bounded_u64(span) as i64) as $t
            }
        }
        impl UniformRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(rng.bounded_u64(span + 1) as i64) as $t
            }
        }
    )*};
}

impl_uniform_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let v = r.gen_range(1u64..=64);
            assert!((1..=64).contains(&v));
            let v = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let v = r.gen_range(0usize..1);
            assert_eq!(v, 0);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 6 values seen: {seen:?}");
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_and_arrays() {
        let mut r = Rng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let arr: [u8; 16] = r.gen();
        let arr2: [u8; 16] = r.gen();
        assert_ne!(arr, arr2);
        let words: [u32; 16] = r.gen();
        assert!(words.iter().any(|&w| w != 0));
    }

    #[test]
    fn choose_is_none_on_empty_and_uniformish() {
        let mut r = Rng::seed_from_u64(9);
        assert!(r.choose::<u8>(&[]).is_none());
        let items = [1, 2, 3];
        for _ in 0..50 {
            assert!(items.contains(r.choose(&items).unwrap()));
        }
    }

    #[test]
    fn known_vectors_pin_the_stream() {
        // Pin the exact output so refactors cannot silently change every
        // seeded test in the workspace.
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Rng::seed_from_u64(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        // SplitMix64 of 0 starts with 0xE220A8397B1DCDAF.
        let mut sm = 0u64;
        assert_eq!(splitmix64(&mut sm), 0xE220_A839_7B1D_CDAF);
    }
}
