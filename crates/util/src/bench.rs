//! `Instant`-based micro-bench timers replacing `criterion`.
//!
//! The API is deliberately criterion-shaped ([`Criterion`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`]) so the
//! bench files under `crates/bench/benches/` only change imports. The
//! measurement model is much simpler than criterion's: a warmup phase,
//! then `sample_size` timed samples of an adaptively chosen batch size,
//! reported as min / median / max nanoseconds per iteration. No
//! statistics engine, no plots, no external deps — deterministic enough
//! for the relative comparisons the HardSnap evaluation makes
//! (snapshot vs reboot, sim vs FPGA).

use std::time::{Duration, Instant};

/// Result of one benchmark: per-iteration latencies in nanoseconds.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark id.
    pub name: String,
    /// Fastest observed sample (ns/iter).
    pub min_ns: f64,
    /// Median sample (ns/iter) — the headline number.
    pub median_ns: f64,
    /// Slowest observed sample (ns/iter).
    pub max_ns: f64,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
}

/// Bench harness entry point (criterion-compatible shape).
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
    target_sample_time: Duration,
    /// Collected results, in run order.
    pub results: Vec<Sample>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            warmup: Duration::from_millis(200),
            target_sample_time: Duration::from_millis(20),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Sets the warmup duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Runs `f` (which drives a [`Bencher`]) as the benchmark `name`,
    /// printing min/median/max per iteration.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            warmup: self.warmup,
            target_sample_time: self.target_sample_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
            iters_per_sample: 1,
        };
        f(&mut b);
        let mut ns = b.samples_ns;
        ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let sample = Sample {
            name: name.to_string(),
            min_ns: ns.first().copied().unwrap_or(f64::NAN),
            median_ns: ns.get(ns.len() / 2).copied().unwrap_or(f64::NAN),
            max_ns: ns.last().copied().unwrap_or(f64::NAN),
            iters_per_sample: b.iters_per_sample,
        };
        println!(
            "bench {:<44} median {:>12} min {:>12} max {:>12}  ({} samples x {} iters)",
            sample.name,
            fmt_ns(sample.median_ns),
            fmt_ns(sample.min_ns),
            fmt_ns(sample.max_ns),
            ns.len(),
            sample.iters_per_sample,
        );
        self.results.push(sample);
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".into()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Drives the timed closure: warmup, batch-size calibration, then
/// `sample_size` timed samples.
pub struct Bencher {
    warmup: Duration,
    target_sample_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, keeping its return value alive via `black_box`.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup: run until the warmup budget elapses, counting
        // iterations to calibrate the batch size.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((self.target_sample_time.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);
        self.iters_per_sample = iters;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            self.samples_ns.push(dt.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Declares the benchmark runner function (criterion-compatible form):
///
/// ```text
/// criterion_group! {
///     name = benches;
///     config = Criterion::default().sample_size(20);
///     targets = bench_a, bench_b
/// }
/// criterion_main!(benches);
/// ```
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::bench::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::bench::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main()` running the given [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_ordered_stats() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("spin", |b| {
            b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()))
        });
        let s = &c.results[0];
        assert_eq!(s.name, "spin");
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert!(s.min_ns > 0.0);
    }

    #[test]
    fn group_and_main_macros_compile() {
        fn target(c: &mut Criterion) {
            let mut c2 = std::mem::take(&mut c.results);
            c2.clear();
        }
        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(3);
            targets = target
        }
        benches();
    }
}
