//! A minimal, zero-dependency property-testing harness.
//!
//! [`prop_check!`] runs a property over N generated cases from a fixed
//! seed. On failure it shrinks integer and vector inputs by halving,
//! then panics with the *case seed* so the exact failing input can be
//! reproduced by running the same property with `seed = <printed>` and
//! `cases = 1`.
//!
//! ```
//! use hardsnap_util::prop::{vec_of, Strategy};
//! use hardsnap_util::prop_check;
//!
//! prop_check!(cases = 64, seed = 0x5EED, (xs in vec_of(0u32..100, 0..8)) => {
//!     let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
//!     assert!(doubled.iter().all(|d| d % 2 == 0));
//! });
//! ```

use crate::rng::{FromRng, Rng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A value generator with optional shrinking.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + Debug;

    /// Generates one value from the deterministic stream.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Candidate simplifications of a failing value, simplest first.
    /// The default has no shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps the generated value through `f` (no shrinking across the
    /// map — shrink the source strategy instead where it matters).
    fn prop_map<U: Clone + Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Clone + Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy yielding a constant.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(self.start, *value)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(*self.start(), *value)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Halving ladder towards `low` (QuickCheck-style): `low`, then values
/// approaching `value` by successively halved gaps, ending at
/// `value - 1`. Greedy re-shrinking over this list converges like a
/// binary search for the failure boundary.
fn shrink_int<T>(low: T, value: T) -> Vec<T>
where
    T: Copy + PartialEq + ShrinkHalf,
{
    let mut out = Vec::new();
    if value == low {
        return out;
    }
    out.push(low);
    let mut cand = T::half_between(low, value);
    while cand != value && out.last() != Some(&cand) {
        out.push(cand);
        cand = T::half_between(cand, value);
    }
    out
}

/// Integer halving used by the shrinker.
pub trait ShrinkHalf: PartialEq + Sized {
    /// Midpoint between `low` and `v` (rounded toward `low`).
    fn half_between(low: Self, v: Self) -> Self;
}

macro_rules! impl_shrink_half_unsigned {
    ($($t:ty),*) => {$(
        impl ShrinkHalf for $t {
            fn half_between(low: Self, v: Self) -> Self {
                low + (v - low) / 2
            }
        }
    )*};
}

impl_shrink_half_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_shrink_half_signed {
    ($($t:ty),*) => {$(
        impl ShrinkHalf for $t {
            fn half_between(low: Self, v: Self) -> Self {
                // Difference computed widened so MIN..MAX spans don't
                // overflow.
                low.wrapping_add(((v as i128 - low as i128) / 2) as Self)
            }
        }
    )*};
}

impl_shrink_half_signed!(i8, i16, i32, i64, isize);

/// Full-domain strategy for any [`FromRng`] integer/array type.
pub fn any<T: FromRng + Clone + Debug>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: FromRng + Clone + Debug> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        rng.gen()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_from()
    }
}

/// `Vec` strategy: element strategy + length range. Shrinks by halving
/// the length (dropping the tail), then element-wise.
pub fn vec_of<S: Strategy>(element: S, len: Range<usize>) -> VecOf<S> {
    VecOf { element, len }
}

/// See [`vec_of`].
pub struct VecOf<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let min = self.len.start;
        // Halve the length while staying in bounds.
        if value.len() > min {
            out.push(value[..min.max(value.len() / 2)].to_vec());
            out.push(value[..value.len() - 1].to_vec());
        }
        // Shrink each element in place (first shrink candidate only, to
        // bound the search).
        for (i, v) in value.iter().enumerate() {
            for cand in self.element.shrink(v).into_iter().take(1) {
                let mut copy = value.clone();
                copy[i] = cand;
                out.push(copy);
            }
        }
        out
    }
}

/// Uniformly picks one of the given (cloneable) items.
pub fn select<T: Clone + Debug>(items: &[T]) -> Select<T> {
    assert!(!items.is_empty(), "select: empty choice set");
    Select {
        items: items.to_vec(),
    }
}

/// See [`select`].
#[derive(Clone, Debug)]
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        self.items[rng.gen_range(0..self.items.len())].clone()
    }
}

/// Ad-hoc strategy from a generation closure (no shrinking) — the
/// escape hatch for recursive or dependent generators.
pub fn from_fn<T: Clone + Debug, F: Fn(&mut Rng) -> T>(f: F) -> FromFn<F> {
    FromFn(f)
}

/// See [`from_fn`].
pub struct FromFn<F>(F);

impl<T: Clone + Debug, F: Fn(&mut Rng) -> T> Strategy for FromFn<F> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        (self.0)(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident/$idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut copy = value.clone();
                        copy.$idx = cand;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Outcome of running the property once.
enum CaseResult {
    Pass,
    Fail(String),
}

fn run_case<V>(prop: &impl Fn(&V), value: &V) -> CaseResult
where
    V: Clone + Debug,
{
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(()) => CaseResult::Pass,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".into());
            CaseResult::Fail(msg)
        }
    }
}

/// Runs `cases` generated inputs of `strategy` through `prop`, shrinking
/// and reporting the seed on failure. Used via [`prop_check!`]; callers
/// needing full control may invoke it directly.
///
/// # Panics
///
/// Panics (i.e. fails the enclosing test) when a case fails, after
/// shrinking, with the reproduction seed in the message.
pub fn check<S: Strategy>(
    name: &str,
    cases: u64,
    seed: u64,
    strategy: &S,
    prop: impl Fn(&S::Value),
) {
    // Silence the default panic hook while probing cases; restore it on
    // every exit path so failures in *other* tests still print.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = (0..cases).find_map(|case| {
        // Each case derives its own seed so it reproduces standalone:
        // case 0 uses the run seed directly, so re-running with the
        // printed case seed and `cases = 1` replays the exact input.
        let case_seed = if case == 0 {
            seed
        } else {
            let mut sm = seed.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            crate::rng::splitmix64(&mut sm)
        };
        let mut rng = Rng::seed_from_u64(case_seed);
        let value = strategy.generate(&mut rng);
        match run_case(&prop, &value) {
            CaseResult::Pass => None,
            CaseResult::Fail(msg) => Some((case, case_seed, value, msg)),
        }
    });
    let Some((case, case_seed, value, msg)) = outcome else {
        std::panic::set_hook(prev_hook);
        return;
    };

    // Shrink: greedily accept the first candidate that still fails.
    let mut best = value;
    let mut best_msg = msg;
    let mut budget = 200u32;
    'shrinking: while budget > 0 {
        for cand in strategy.shrink(&best) {
            budget -= 1;
            if let CaseResult::Fail(m) = run_case(&prop, &cand) {
                best = cand;
                best_msg = m;
                continue 'shrinking;
            }
            if budget == 0 {
                break;
            }
        }
        break;
    }
    std::panic::set_hook(prev_hook);
    panic!(
        "property '{name}' failed at case {case}/{cases}\n\
         reproduce with: seed = {case_seed:#x}, cases = 1\n\
         shrunk input: {best:?}\n\
         failure: {best_msg}"
    );
}

/// Declares and runs a property over generated inputs:
///
/// ```text
/// prop_check!(cases = 64, seed = 0xBEEF, (a in 0u32..10, b in any::<u16>()) => {
///     assert!(...);   // plain assertions; failures are caught & shrunk
/// });
/// ```
///
/// `cases`/`seed` may be omitted (defaults: 256 cases, seed
/// `0xHA5D_5EED`-derived constant). Bindings take any
/// [`prop::Strategy`](crate::prop::Strategy), including plain integer
/// ranges.
#[macro_export]
macro_rules! prop_check {
    (($($pat:pat in $strat:expr),+ $(,)?) => $body:block) => {
        $crate::prop_check!(cases = 256, seed = 0x4A5D_5EED_0BAD_CAFE, ($($pat in $strat),+) => $body)
    };
    (cases = $cases:expr, ($($pat:pat in $strat:expr),+ $(,)?) => $body:block) => {
        $crate::prop_check!(cases = $cases, seed = 0x4A5D_5EED_0BAD_CAFE, ($($pat in $strat),+) => $body)
    };
    (cases = $cases:expr, seed = $seed:expr, ($($pat:pat in $strat:expr),+ $(,)?) => $body:block) => {{
        let strategy = ($($strat,)+);
        $crate::prop::check(
            concat!(file!(), ":", line!()),
            $cases,
            $seed,
            &strategy,
            |value: &_| {
                let ($($pat,)+) = value.clone();
                $body
            },
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        prop_check!(cases = 64, seed = 1, (a in 0u32..100, b in 0u32..100) => {
            assert_eq!(a + b, b + a);
        });
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let result = catch_unwind(|| {
            prop_check!(cases = 256, seed = 2, (v in 0u32..1000) => {
                assert!(v < 500, "too big: {v}");
            });
        });
        let msg = match result {
            Err(p) => p.downcast_ref::<String>().cloned().unwrap(),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("reproduce with"), "{msg}");
        // Shrinking by halving lands close to the boundary (500), far
        // below the typical unshrunk failing value.
        let shrunk: u32 = msg
            .lines()
            .find(|l| l.contains("shrunk input"))
            .and_then(|l| l.split(['(', ',', ')']).nth(1))
            .and_then(|s| s.trim().parse().ok())
            .unwrap();
        assert!(
            (500..700).contains(&shrunk),
            "shrunk to {shrunk}; msg: {msg}"
        );
    }

    #[test]
    fn vec_strategy_shrinks_length() {
        let strat = vec_of(0u32..10, 0..20);
        let v = vec![1u32, 2, 3, 4, 5, 6, 7, 8];
        let shrunk = strat.shrink(&v);
        assert!(shrunk.iter().any(|s| s.len() <= v.len() / 2));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = (0u32..1000, vec_of(any::<u16>(), 0..8));
        let mut r1 = Rng::seed_from_u64(77);
        let mut r2 = Rng::seed_from_u64(77);
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }

    #[test]
    fn select_and_just_and_map() {
        let mut rng = Rng::seed_from_u64(3);
        let s = select(&[10u32, 20, 30]);
        for _ in 0..20 {
            assert!([10, 20, 30].contains(&s.generate(&mut rng)));
        }
        assert_eq!(Just(42u8).generate(&mut rng), 42);
        let doubled = (1u32..5).prop_map(|v| v * 2);
        let v = doubled.generate(&mut rng);
        assert!(v % 2 == 0 && (2..10).contains(&v));
    }
}
