//! # hardsnap-util
//!
//! Zero-dependency infrastructure shared by every HardSnap crate, so the
//! whole workspace builds and tests fully offline (`cargo build
//! --offline` with an empty registry cache).
//!
//! The paper's central claim is *reproducibility* of combined HW/SW
//! state; that property is only testable when the test stimulus itself
//! is reproducible. Everything here is deterministic and seedable:
//!
//! * [`rng`] — a SplitMix64-seeded xoshiro256\*\* PRNG with a
//!   `rand`-like surface (`next_u32`/`next_u64`, `gen`, `gen_range`,
//!   `gen_bool`, `fill_bytes`, `choose`);
//! * [`prop`] — a minimal property-testing harness ([`prop_check!`]):
//!   N seeded cases, shrink-by-halving on integer/vec inputs, failures
//!   reproduce from a printed seed;
//! * [`sync`] — `std::sync` wrappers with `parking_lot`-style
//!   infallible `lock()`/`read()`/`write()` plus `std::sync::mpsc`
//!   re-exports;
//! * [`bench`] — `Instant`-based micro-bench timers (warmup +
//!   median-of-k) with a criterion-shaped facade so bench files only
//!   change their imports;
//! * [`json`] — a minimal JSON reader/writer so tests and CI can
//!   validate the artifacts the workspace emits (Chrome traces,
//!   metrics dumps, `BENCH_*.json`) without `serde_json`.

#![warn(missing_docs)]

pub mod bench;
pub mod json;
pub mod prop;
pub mod rng;
pub mod sync;

pub use rng::Rng;
