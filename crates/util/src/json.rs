//! Minimal JSON reader/writer.
//!
//! The workspace builds fully offline, so there is no `serde_json`;
//! every experiment binary hand-formats its output. This module is the
//! *read* side: a small recursive-descent parser over the subset of
//! JSON the repo actually emits (objects, arrays, strings with escape
//! sequences, numbers, booleans, null), used by tests and `ci/check.sh`
//! (via `hardsnap-cli trace-check`) to validate that emitted artifacts
//! — Chrome trace files, metrics dumps, `BENCH_*.json` — round-trip.
//!
//! Numbers are held as `f64` (Chrome trace timestamps are fractional
//! microseconds, so this is the natural representation); integers up to
//! 2^53 survive exactly, which covers every counter the telemetry layer
//! emits into JSON.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string (escape sequences decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` on anything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize back to compact JSON (deterministic key order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(v) => {
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    e.write(out);
                }
                out.push(']');
            }
            Value::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escape a string into JSON form (with surrounding quotes).
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document. Trailing whitespace is allowed,
/// trailing garbage is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by any
                            // in-repo writer; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8:
                    // it came from a &str).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Value::Num(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn escapes() {
        let v = parse(r#""a\n\t\"\\A""#).unwrap();
        assert_eq!(v, Value::Str("a\n\t\"\\A".into()));
    }

    #[test]
    fn nested() {
        let v = parse(r#"{"a": [1, {"b": "c"}, null], "d": true}"#).unwrap();
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(arr[2], Value::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn roundtrip() {
        let src = r#"{"traceEvents":[{"dur":2.5,"name":"x","ph":"X","pid":1,"tid":0,"ts":1}],"z":"\"quoted\""}"#;
        let v = parse(src).unwrap();
        let re = parse(&v.to_json()).unwrap();
        assert_eq!(v, re);
        assert_eq!(v.to_json(), src);
    }

    #[test]
    fn u64_boundaries() {
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
