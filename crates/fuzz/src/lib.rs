//! # hardsnap-fuzz
//!
//! Coverage-guided fuzzing over HardSnap hardware targets — the fuzzing
//! side of the paper's motivation (§II, citing Muench et al.): "fuzzing
//! embedded systems requires to restart the target under test after each
//! fuzzing input", and hardware snapshotting replaces that reboot with a
//! fast restore.
//!
//! The fuzzer runs the concrete HS32 CPU against a live hardware target,
//! feeds each `sym` hypercall from the input tape, tracks PC coverage,
//! mutates interesting inputs, and resets between inputs using either:
//!
//! * [`ResetStrategy::Snapshot`] — restore a (software clone, hardware
//!   snapshot) pair taken once after startup;
//! * [`ResetStrategy::Reboot`] — reset the device (with its modeled
//!   reboot cost) and re-execute firmware from the entry point.
//!
//! ## Example
//!
//! ```
//! use hardsnap_fuzz::{Fuzzer, FuzzConfig, ResetStrategy};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let soc = hardsnap_periph::soc().unwrap();
//! let target = Box::new(hardsnap_sim::SimTarget::new(soc)?);
//! let prog = hardsnap_isa::assemble(&hardsnap::firmware::uart_parser_firmware()).unwrap();
//! let mut fuzzer = Fuzzer::new(target, &prog, FuzzConfig {
//!     max_inputs: 200,
//!     seed: 7,
//!     ..Default::default()
//! })?;
//! let report = fuzzer.run()?;
//! assert!(report.execs == 200);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use hardsnap::SnapshotStore;
use hardsnap_bus::{BusError, HwSnapshot, HwTarget};
use hardsnap_isa::{Cpu, CpuFault, Event, MmioBus, Program};
use hardsnap_util::Rng;
use std::collections::{HashSet, VecDeque};

/// Adapter: any [`HwTarget`] is an [`MmioBus`] for the concrete CPU.
pub struct TargetBus<'a>(
    /// The wrapped target.
    pub &'a mut dyn HwTarget,
);

impl MmioBus for TargetBus<'_> {
    fn mmio_read(&mut self, addr: u32) -> Result<u32, BusError> {
        self.0.bus_read(addr)
    }

    fn mmio_write(&mut self, addr: u32, data: u32) -> Result<(), BusError> {
        self.0.bus_write(addr, data)
    }
}

/// How the target is returned to a clean state between inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResetStrategy {
    /// Restore the post-startup hardware snapshot + CPU clone (HardSnap).
    Snapshot,
    /// Full device reboot with modeled cost, then concrete re-execution
    /// of the firmware from the entry point (the naive baseline).
    Reboot,
}

/// Fuzzer configuration.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Inputs to execute.
    pub max_inputs: u64,
    /// Instruction budget per input.
    pub max_instrs_per_input: u64,
    /// Reset strategy between inputs.
    pub reset: ResetStrategy,
    /// Modeled device reboot cost (ns of virtual time) for
    /// [`ResetStrategy::Reboot`].
    pub reboot_cost_ns: u64,
    /// Words per input tape.
    pub tape_len: usize,
    /// RNG seed (runs are deterministic).
    pub seed: u64,
    /// Capture/restore in O(changed state): the target tracks dirty
    /// state against the baseline and each per-input restore writes
    /// back only what the input touched (identical results either way;
    /// only the modeled restore cost drops).
    pub delta_snapshots: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            max_inputs: 1000,
            max_instrs_per_input: 2000,
            reset: ResetStrategy::Snapshot,
            reboot_cost_ns: 100_000_000,
            tape_len: 4,
            seed: 0xF0CC_5EED,
            delta_snapshots: false,
        }
    }
}

/// One crashing input.
#[derive(Clone, Debug)]
pub struct Crash {
    /// The fault detected.
    pub fault: CpuFault,
    /// The input tape that triggered it.
    pub input: Vec<u32>,
}

/// Fuzzing campaign report.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Inputs executed.
    pub execs: u64,
    /// Distinct PCs covered.
    pub coverage: usize,
    /// Crashes found (deduplicated by fault).
    pub crashes: Vec<Crash>,
    /// Virtual hardware time consumed, including reboot penalties (ns).
    pub hw_virtual_time_ns: u64,
    /// Host wall-clock duration.
    pub host_time: std::time::Duration,
    /// Virtual executions per second (execs / virtual seconds).
    pub virtual_execs_per_sec: f64,
}

/// A coverage-guided fuzzer bound to one hardware target.
pub struct Fuzzer {
    target: Box<dyn HwTarget>,
    program: Program,
    config: FuzzConfig,
    baseline_cpu: Cpu,
    baseline_hw: HwSnapshot,
    coverage: HashSet<u32>,
    corpus: Vec<Vec<u32>>,
    /// Corpus entries awaiting the deterministic byte-sweep stage
    /// (AFL-style: every byte position × every byte value).
    sweep_queue: VecDeque<Vec<u32>>,
    /// In-progress sweep: (base tape, word index, next byte value).
    sweep: Option<(Vec<u32>, usize, u32)>,
    rng: Rng,
    extra_time_ns: u64,
    /// Snapshot store (kept so campaign snapshots can be inspected).
    pub store: SnapshotStore,
}

impl Fuzzer {
    /// Prepares a campaign: resets the device, runs nothing yet, and
    /// captures the baseline (CPU at entry, hardware post-reset).
    ///
    /// # Errors
    ///
    /// Propagates snapshot errors from the target.
    pub fn new(
        mut target: Box<dyn HwTarget>,
        program: &Program,
        config: FuzzConfig,
    ) -> Result<Self, hardsnap_bus::TargetError> {
        target.reset();
        if config.delta_snapshots {
            // Enabled before the baseline capture so the target anchors
            // its dirty tracking on the baseline itself: every restore
            // afterwards is a diff against exactly what we restore to.
            target.set_delta_snapshots(true);
        }
        let baseline_cpu = Cpu::new(program);
        let baseline_hw = target.save_snapshot()?;
        let mut corpus = vec![vec![0u32; config.tape_len]];
        corpus.push(
            (0..config.tape_len as u32)
                .map(|i| i * 0x1111_1111)
                .collect(),
        );
        Ok(Fuzzer {
            target,
            program: program.clone(),
            config,
            baseline_cpu,
            baseline_hw,
            coverage: HashSet::new(),
            corpus,
            sweep_queue: VecDeque::new(),
            sweep: None,
            rng: Rng::seed_from_u64(config.seed),
            extra_time_ns: 0,
            store: SnapshotStore::new(),
        })
    }

    fn mutate(&mut self, base: &[u32]) -> Vec<u32> {
        let mut t = base.to_vec();
        if t.is_empty() {
            t.push(0);
        }
        for _ in 0..self.rng.gen_range(1..=3) {
            let i = self.rng.gen_range(0..t.len());
            match self.rng.gen_range(0u32..6) {
                0 => t[i] = self.rng.gen(),
                1 => t[i] ^= 1u32 << self.rng.gen_range(0u32..32),
                2 => {
                    t[i] = *[0u32, 1, 0xff, 0x7f, 0x80, 0xffff_ffff]
                        .get(self.rng.gen_range(0usize..6))
                        .unwrap()
                }
                // Byte-granular mutations: firmware protocols are
                // byte-oriented, so spend most of the budget there.
                3 | 4 => t[i] = self.rng.gen_range(0u32..256),
                _ => t[i] = t[i].wrapping_add(1),
            }
        }
        t
    }

    /// Prepares target + CPU for the next input per the reset strategy.
    ///
    /// # Errors
    ///
    /// Propagates a failed baseline restore — the device no longer
    /// accepts the snapshot it produced at startup, so the campaign
    /// cannot continue on consistent state.
    fn reset_for_input(&mut self) -> Result<Cpu, hardsnap_bus::TargetError> {
        match self.config.reset {
            ResetStrategy::Snapshot => {
                self.target.restore_snapshot(&self.baseline_hw)?;
                Ok(self.baseline_cpu.clone())
            }
            ResetStrategy::Reboot => {
                self.target.reset();
                self.extra_time_ns += self.config.reboot_cost_ns;
                Ok(Cpu::new(&self.program))
            }
        }
    }

    /// Runs one input; returns new-coverage flag and optional crash.
    ///
    /// # Errors
    ///
    /// Propagates a failed per-input reset (see
    /// [`Fuzzer::reset_for_input`]).
    fn run_one(
        &mut self,
        tape: &[u32],
    ) -> Result<(bool, Option<CpuFault>), hardsnap_bus::TargetError> {
        let mut cpu = self.reset_for_input()?;
        cpu.set_input_tape(tape.to_vec());
        let mut new_cov = false;
        let mut fault = None;
        for _ in 0..self.config.max_instrs_per_input {
            if self.coverage.insert(cpu.pc) {
                new_cov = true;
            }
            let lines = self.target.irq_lines();
            if lines != 0 {
                cpu.take_irq(lines);
            }
            let mut bus = TargetBus(self.target.as_mut());
            match cpu.step(&mut bus) {
                Ok(Event::Halted) => break,
                Ok(_) => {}
                Err(f) => {
                    fault = Some(f);
                    break;
                }
            }
            self.target.step(4);
        }
        Ok((new_cov, fault))
    }

    /// Produces the next input: deterministic byte sweep of fresh
    /// corpus entries first, then random mutations of the corpus.
    fn next_input(&mut self, execs: u64) -> Vec<u32> {
        if execs < self.corpus.len() as u64 {
            return self.corpus[execs as usize].clone();
        }
        loop {
            if let Some((base, idx, val)) = &mut self.sweep {
                let mut t = base.clone();
                t[*idx] = *val;
                *val += 1;
                if *val == 256 {
                    *val = 0;
                    *idx += 1;
                    if *idx == base.len() {
                        self.sweep = None;
                    }
                }
                return t;
            }
            if let Some(base) = self.sweep_queue.pop_front() {
                if !base.is_empty() {
                    self.sweep = Some((base, 0, 0));
                }
                continue;
            }
            let base = self.corpus[self.rng.gen_range(0..self.corpus.len())].clone();
            return self.mutate(&base);
        }
    }

    /// Runs the campaign.
    ///
    /// # Errors
    ///
    /// Propagates a failed per-input reset; everything else an input
    /// does wrong is a [`Crash`], not an error.
    pub fn run(&mut self) -> Result<FuzzReport, hardsnap_bus::TargetError> {
        let host_start = std::time::Instant::now();
        let hw_t0 = self.target.virtual_time_ns();
        let mut crashes: Vec<Crash> = Vec::new();
        let mut execs = 0u64;
        while execs < self.config.max_inputs {
            let tape = self.next_input(execs);
            let (new_cov, fault) = self.run_one(&tape)?;
            execs += 1;
            if new_cov {
                self.corpus.push(tape.clone());
                self.sweep_queue.push_back(tape.clone());
            }
            if let Some(f) = fault {
                if !crashes.iter().any(|c| c.fault == f) {
                    crashes.push(Crash {
                        fault: f,
                        input: tape,
                    });
                }
            }
        }
        let hw_ns = self.target.virtual_time_ns() - hw_t0 + self.extra_time_ns;
        Ok(FuzzReport {
            execs,
            coverage: self.coverage.len(),
            crashes,
            hw_virtual_time_ns: hw_ns,
            host_time: host_start.elapsed(),
            virtual_execs_per_sec: execs as f64 / (hw_ns as f64 / 1e9).max(1e-9),
        })
    }

    /// Current corpus size.
    pub fn corpus_len(&self) -> usize {
        self.corpus.len()
    }

    /// The covered program counters so far.
    pub fn coverage_set(&self) -> &HashSet<u32> {
        &self.coverage
    }
}

/// Runs `workers` independent fuzzing islands in parallel (each with its
/// own hardware target and a distinct seed) and merges their results:
/// united coverage, deduplicated crashes, summed executions. Virtual
/// hardware time is the maximum across islands (they run concurrently).
///
/// # Errors
///
/// Propagates the first island-construction failure.
pub fn parallel_campaign(
    make_target: impl Fn() -> Box<dyn HwTarget> + Sync,
    program: &Program,
    config: FuzzConfig,
    workers: usize,
) -> Result<FuzzReport, hardsnap_bus::TargetError> {
    assert!(workers >= 1);
    let host_start = std::time::Instant::now();
    let results = hardsnap_util::sync::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let make_target = &make_target;
            let cfg = FuzzConfig {
                seed: config
                    .seed
                    .wrapping_add((w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                max_inputs: config.max_inputs / workers as u64,
                ..config
            };
            handles.push(scope.spawn(move || {
                let mut f = Fuzzer::new(make_target(), program, cfg)?;
                let report = f.run()?;
                let coverage: HashSet<u32> = f.coverage_set().clone();
                Ok::<_, hardsnap_bus::TargetError>((report, coverage))
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("island panicked"))
            .collect::<Result<Vec<_>, _>>()
    })?;

    let mut coverage: HashSet<u32> = HashSet::new();
    let mut crashes: Vec<Crash> = Vec::new();
    let mut execs = 0;
    let mut hw_ns = 0;
    for (r, cov) in results {
        execs += r.execs;
        hw_ns = hw_ns.max(r.hw_virtual_time_ns);
        coverage.extend(cov);
        for c in r.crashes {
            if !crashes.iter().any(|k| k.fault == c.fault) {
                crashes.push(c);
            }
        }
    }
    Ok(FuzzReport {
        execs,
        coverage: coverage.len(),
        crashes,
        hw_virtual_time_ns: hw_ns,
        host_time: host_start.elapsed(),
        virtual_execs_per_sec: execs as f64 / (hw_ns as f64 / 1e9).max(1e-9),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardsnap::firmware;
    use hardsnap_sim::SimTarget;

    fn fuzzer(reset: ResetStrategy, max_inputs: u64) -> Fuzzer {
        let soc = hardsnap_periph::soc().unwrap();
        let target = Box::new(SimTarget::new(soc).unwrap());
        let prog = hardsnap_isa::assemble(&firmware::uart_parser_firmware()).unwrap();
        Fuzzer::new(
            target,
            &prog,
            FuzzConfig {
                max_inputs,
                reset,
                seed: 42,
                tape_len: 2,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn snapshot_fuzzing_finds_the_crash() {
        let mut f = fuzzer(ResetStrategy::Snapshot, 8000);
        let report = f.run().unwrap();
        assert_eq!(report.execs, 8000);
        assert!(report.coverage > 10);
        let crash = report
            .crashes
            .iter()
            .find(|c| matches!(c.fault, CpuFault::FailHit { .. }));
        // 'X' 0x42 is a 2^16 haystack with coverage guidance on the first
        // byte; 8000 seeded execs reliably find it with this seed.
        assert!(crash.is_some(), "crashes: {:?}", report.crashes);
        let crash = crash.unwrap();
        assert_eq!(crash.input[0] & 0xff, 0x58);
        assert_eq!(crash.input[1] & 0xff, 0x42);
    }

    #[test]
    fn snapshot_reset_beats_reboot_in_virtual_time() {
        let mut snap = fuzzer(ResetStrategy::Snapshot, 150);
        let r_snap = snap.run().unwrap();
        let mut reboot = fuzzer(ResetStrategy::Reboot, 150);
        let r_reboot = reboot.run().unwrap();
        assert!(
            r_snap.hw_virtual_time_ns < r_reboot.hw_virtual_time_ns,
            "snapshot {} ns must beat reboot {} ns",
            r_snap.hw_virtual_time_ns,
            r_reboot.hw_virtual_time_ns
        );
        assert!(r_snap.virtual_execs_per_sec > r_reboot.virtual_execs_per_sec);
    }

    #[test]
    fn delta_snapshots_same_results_cheaper_restores() {
        let mk = |delta: bool| {
            let soc = hardsnap_periph::soc().unwrap();
            let target = Box::new(SimTarget::new(soc).unwrap());
            let prog = hardsnap_isa::assemble(&firmware::uart_parser_firmware()).unwrap();
            Fuzzer::new(
                target,
                &prog,
                FuzzConfig {
                    max_inputs: 200,
                    seed: 42,
                    tape_len: 2,
                    delta_snapshots: delta,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let full = mk(false).run().unwrap();
        let delta = mk(true).run().unwrap();
        // Identical campaign, cheaper resets: only the modeled restore
        // cost may differ.
        assert_eq!(full.execs, delta.execs);
        assert_eq!(full.coverage, delta.coverage);
        assert_eq!(full.crashes.len(), delta.crashes.len());
        assert!(
            delta.hw_virtual_time_ns < full.hw_virtual_time_ns,
            "delta restores ({} ns) must undercut full restores ({} ns)",
            delta.hw_virtual_time_ns,
            full.hw_virtual_time_ns
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let r1 = fuzzer(ResetStrategy::Snapshot, 300).run().unwrap();
        let r2 = fuzzer(ResetStrategy::Snapshot, 300).run().unwrap();
        assert_eq!(r1.coverage, r2.coverage);
        assert_eq!(r1.crashes.len(), r2.crashes.len());
    }

    #[test]
    fn reset_restores_clean_state_between_inputs() {
        // A firmware whose crash depends on residual hardware state from
        // a previous input would be flaky; the uart parser writes TXDATA
        // on 'W' commands, so the FIFO fills up across inputs *unless*
        // reset works. Run many 'W' inputs then check STATUS via a fresh
        // input: if resets work, the FIFO never overflows.
        let soc = hardsnap_periph::soc().unwrap();
        let target = Box::new(SimTarget::new(soc).unwrap());
        let prog = hardsnap_isa::assemble(&firmware::uart_parser_firmware()).unwrap();
        let mut f = Fuzzer::new(
            target,
            &prog,
            FuzzConfig {
                max_inputs: 1,
                tape_len: 2,
                ..Default::default()
            },
        )
        .unwrap();
        for _ in 0..40 {
            let (_, fault) = f.run_one(&[0x57, 0xAA]).unwrap(); // 'W' 0xAA
            assert!(fault.is_none());
        }
        // After a restore, the TX fifo must not be full.
        let cpu = f.reset_for_input().unwrap();
        drop(cpu);
        let st = f
            .target
            .bus_read(hardsnap_bus::map::soc::UART_BASE + 0x08)
            .unwrap();
        assert_eq!(st & 0x2, 0, "tx full bit set: state leaked across inputs");
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use hardsnap::firmware;
    use hardsnap_sim::SimTarget;

    #[test]
    fn parallel_islands_merge_coverage_and_crashes() {
        let prog = hardsnap_isa::assemble(&firmware::uart_parser_firmware()).unwrap();
        let report = parallel_campaign(
            || Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap()),
            &prog,
            FuzzConfig {
                max_inputs: 12000,
                seed: 9,
                tape_len: 2,
                ..Default::default()
            },
            4,
        )
        .unwrap();
        assert_eq!(report.execs, 12000);
        assert!(report.coverage > 10);
        // Four islands with deterministic-sweep stages: the magic crash
        // falls out of at least one.
        assert!(
            report
                .crashes
                .iter()
                .any(|c| matches!(c.fault, CpuFault::FailHit { .. })),
            "{:?}",
            report.crashes
        );
    }

    #[test]
    fn parallel_speedup_in_host_time() {
        // Not a strict benchmark, but 4 islands of N/4 inputs should not
        // be slower than 1 island of N inputs.
        let prog = hardsnap_isa::assemble(&firmware::uart_parser_firmware()).unwrap();
        let mk = || -> Box<dyn HwTarget> {
            Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap())
        };
        let t0 = std::time::Instant::now();
        let _ = parallel_campaign(
            mk,
            &prog,
            FuzzConfig {
                max_inputs: 800,
                seed: 5,
                tape_len: 2,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        let serial = t0.elapsed();
        let t0 = std::time::Instant::now();
        let _ = parallel_campaign(
            mk,
            &prog,
            FuzzConfig {
                max_inputs: 800,
                seed: 5,
                tape_len: 2,
                ..Default::default()
            },
            4,
        )
        .unwrap();
        let parallel = t0.elapsed();
        assert!(
            parallel < serial * 2,
            "parallel {parallel:?} should not be much slower than serial {serial:?}"
        );
    }
}
