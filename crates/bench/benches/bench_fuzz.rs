//! Micro-benchmarks (hardsnap-util bench timers) for E8: fuzzing executions with snapshot vs
//! reboot reset (host time per small campaign).

use hardsnap::firmware;
use hardsnap_fuzz::{FuzzConfig, Fuzzer, ResetStrategy};
use hardsnap_sim::SimTarget;
use hardsnap_util::bench::Criterion;
use hardsnap_util::{criterion_group, criterion_main};

fn campaign(reset: ResetStrategy) -> usize {
    let prog = hardsnap_isa::assemble(&firmware::uart_parser_firmware()).unwrap();
    let target = Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap());
    let mut f = Fuzzer::new(
        target,
        &prog,
        FuzzConfig {
            max_inputs: 100,
            reset,
            seed: 7,
            tape_len: 2,
            ..Default::default()
        },
    )
    .unwrap();
    f.run().unwrap().coverage
}

fn bench_fuzz(c: &mut Criterion) {
    c.bench_function("fuzz_100_inputs_snapshot_reset", |b| {
        b.iter(|| std::hint::black_box(campaign(ResetStrategy::Snapshot)))
    });
    c.bench_function("fuzz_100_inputs_reboot_reset", |b| {
        b.iter(|| std::hint::black_box(campaign(ResetStrategy::Reboot)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fuzz
}
criterion_main!(benches);
