//! Micro-benchmarks (hardsnap-util bench timers) for E1: host-time cost of snapshot
//! save/restore on both targets over the full SoC.

use hardsnap_bus::HwTarget;
use hardsnap_fpga::{FpgaOptions, FpgaTarget};
use hardsnap_sim::SimTarget;
use hardsnap_util::bench::Criterion;
use hardsnap_util::{criterion_group, criterion_main};

fn bench_snapshot(c: &mut Criterion) {
    let mut sim = SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap();
    sim.reset();
    sim.step(100);
    let sim_snap = sim.save_snapshot().unwrap();
    c.bench_function("sim_save_snapshot_soc", |b| {
        b.iter(|| std::hint::black_box(sim.save_snapshot().unwrap()))
    });
    c.bench_function("sim_restore_snapshot_soc", |b| {
        b.iter(|| {
            sim.restore_snapshot(std::hint::black_box(&sim_snap))
                .unwrap()
        })
    });

    let mut fpga =
        FpgaTarget::new(hardsnap_periph::soc().unwrap(), &FpgaOptions::default()).unwrap();
    fpga.reset();
    fpga.step(100);
    let fpga_snap = fpga.save_snapshot().unwrap();
    c.bench_function("fpga_scan_save_snapshot_soc", |b| {
        b.iter(|| std::hint::black_box(fpga.save_snapshot().unwrap()))
    });
    c.bench_function("fpga_scan_restore_snapshot_soc", |b| {
        b.iter(|| {
            fpga.restore_snapshot(std::hint::black_box(&fpga_snap))
                .unwrap()
        })
    });

    c.bench_function("snapshot_serialize_roundtrip", |b| {
        b.iter(|| {
            let bytes = sim_snap.to_bytes();
            std::hint::black_box(hardsnap_bus::HwSnapshot::from_bytes(&bytes).unwrap())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_snapshot
}
criterion_main!(benches);
