//! Micro-benchmarks (hardsnap-util bench timers) for E3: end-to-end symbolic analysis under each
//! consistency mode (host time; the virtual-time comparison lives in
//! the exp_analysis_speed binary).

use hardsnap::firmware;
use hardsnap::{ConsistencyMode, Engine, EngineConfig, Searcher};
use hardsnap_sim::SimTarget;
use hardsnap_util::bench::Criterion;
use hardsnap_util::{criterion_group, criterion_main};

fn run_mode(mode: ConsistencyMode) -> u64 {
    let prog = hardsnap_isa::assemble(&firmware::branching_firmware(3)).unwrap();
    let config = EngineConfig {
        mode,
        searcher: Searcher::RoundRobin,
        quantum: 8,
        ..Default::default()
    };
    let mut engine = Engine::new(
        Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap()),
        config,
    );
    engine.load_firmware(&prog);
    let r = engine.run();
    assert_eq!(r.metrics.paths_completed, 8);
    r.instructions
}

fn bench_analysis(c: &mut Criterion) {
    c.bench_function("analysis_hardsnap_8_paths", |b| {
        b.iter(|| std::hint::black_box(run_mode(ConsistencyMode::HardSnap)))
    });
    c.bench_function("analysis_reboot_8_paths", |b| {
        b.iter(|| std::hint::black_box(run_mode(ConsistencyMode::NaiveConsistent)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_analysis
}
criterion_main!(benches);
