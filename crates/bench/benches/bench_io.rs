//! Micro-benchmarks (hardsnap-util bench timers) for E2: host-time cost of forwarded bus
//! transactions and raw stepping on both targets.

use hardsnap_bus::{map::soc, HwTarget};
use hardsnap_fpga::{FpgaOptions, FpgaTarget};
use hardsnap_periph::regs;
use hardsnap_sim::SimTarget;
use hardsnap_util::bench::Criterion;
use hardsnap_util::{criterion_group, criterion_main};

fn bench_io(c: &mut Criterion) {
    let mut sim = SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap();
    sim.reset();
    c.bench_function("sim_bus_write_read", |b| {
        b.iter(|| {
            sim.bus_write(soc::TIMER_BASE + regs::timer::LOAD, 7)
                .unwrap();
            std::hint::black_box(sim.bus_read(soc::TIMER_BASE + regs::timer::VALUE).unwrap())
        })
    });
    c.bench_function("sim_step_100_cycles", |b| b.iter(|| sim.step(100)));

    let mut fpga =
        FpgaTarget::new(hardsnap_periph::soc().unwrap(), &FpgaOptions::default()).unwrap();
    fpga.reset();
    c.bench_function("fpga_bus_write_read", |b| {
        b.iter(|| {
            fpga.bus_write(soc::TIMER_BASE + regs::timer::LOAD, 7)
                .unwrap();
            std::hint::black_box(fpga.bus_read(soc::TIMER_BASE + regs::timer::VALUE).unwrap())
        })
    });
    c.bench_function("fpga_step_100_cycles", |b| b.iter(|| fpga.step(100)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_io
}
criterion_main!(benches);
