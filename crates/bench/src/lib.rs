//! # hardsnap-bench
//!
//! Evaluation harness for the HardSnap reproduction: one `exp_*` binary
//! per table/figure of the paper (see `DESIGN.md` §5 for the index) plus
//! Criterion micro-benchmarks. This library holds the shared pieces:
//! synthetic design generation for the size sweeps, and small table
//! formatting helpers so every experiment prints in the same style.

#![warn(missing_docs)]

use hardsnap_rtl::Module;

/// Formats nanoseconds human-readably (ns/µs/ms/s).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str, expectation: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper expectation: {expectation}");
    println!("================================================================");
}

/// Prints a table row with fixed column widths.
pub fn row(cols: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{}", line.trim_end());
}

/// Generates a synthetic design with `n_regs` 64-bit shift registers
/// (state = 64 * n_regs bits) behind the standard AXI interface, for the
/// snapshot-latency size sweep (E1). The AXI slave answers reads of
/// offset 0 with the last register, so the design is externally
/// observable like a real peripheral.
pub fn synthetic_design(n_regs: u32) -> Module {
    assert!(n_regs >= 1);
    let mut decls = String::new();
    let mut shifts = String::new();
    let mut resets = String::new();
    for i in 0..n_regs {
        decls.push_str(&format!("    reg [63:0] s{i};\n"));
        resets.push_str(&format!("                s{i} <= 64'd0;\n"));
        if i == 0 {
            shifts.push_str("                s0 <= s0 + 64'd1;\n");
        } else {
            shifts.push_str(&format!("                s{i} <= s{};\n", i - 1));
        }
    }
    let last = n_regs - 1;
    let src = format!(
        "
module synth (
    input wire clk, input wire rst,
    input wire s_axi_awvalid, input wire [31:0] s_axi_awaddr, output reg s_axi_awready,
    input wire s_axi_wvalid, input wire [31:0] s_axi_wdata, output reg s_axi_wready,
    output reg s_axi_bvalid, output reg [1:0] s_axi_bresp, input wire s_axi_bready,
    input wire s_axi_arvalid, input wire [31:0] s_axi_araddr, output reg s_axi_arready,
    output reg s_axi_rvalid, output reg [31:0] s_axi_rdata, output reg [1:0] s_axi_rresp,
    input wire s_axi_rready,
    output wire irq
);
{decls}
    reg aw_got; reg w_got;
    assign irq = 1'b0;
    always @(posedge clk) begin
        if (rst) begin
{resets}
            s_axi_awready <= 1'b0; s_axi_wready <= 1'b0;
            s_axi_bvalid <= 1'b0; s_axi_bresp <= 2'd0;
            s_axi_arready <= 1'b0; s_axi_rvalid <= 1'b0;
            s_axi_rdata <= 32'd0; s_axi_rresp <= 2'd0;
            aw_got <= 1'b0; w_got <= 1'b0;
        end else begin
{shifts}
            s_axi_awready <= 1'b0; s_axi_wready <= 1'b0;
            if (s_axi_awvalid && !aw_got && !s_axi_awready) begin
                s_axi_awready <= 1'b1; aw_got <= 1'b1;
            end
            if (s_axi_wvalid && !w_got && !s_axi_wready) begin
                s_axi_wready <= 1'b1; w_got <= 1'b1;
            end
            if (aw_got && w_got && !s_axi_bvalid) s_axi_bvalid <= 1'b1;
            if (s_axi_bvalid && s_axi_bready) begin
                s_axi_bvalid <= 1'b0; aw_got <= 1'b0; w_got <= 1'b0;
            end
            s_axi_arready <= 1'b0;
            if (s_axi_arvalid && !s_axi_rvalid && !s_axi_arready) begin
                s_axi_arready <= 1'b1; s_axi_rvalid <= 1'b1;
                s_axi_rdata <= s{last}[31:0]; s_axi_rresp <= 2'd0;
            end
            if (s_axi_rvalid && s_axi_rready) s_axi_rvalid <= 1'b0;
        end
    end
endmodule
"
    );
    let d = hardsnap_verilog::parse_design(&src).expect("synthetic design parses");
    hardsnap_rtl::elaborate(&d, "synth").expect("synthetic design elaborates")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_design_scales() {
        let m = synthetic_design(4);
        // 4 * 64 data bits plus a handful of AXI handshake flops.
        let stats = hardsnap_rtl::ModuleStats::of(&m);
        assert!(
            stats.state_bits >= 256 && stats.state_bits < 400,
            "{}",
            stats.state_bits
        );
        let m = synthetic_design(16);
        assert!(hardsnap_rtl::ModuleStats::of(&m).state_bits >= 1024);
    }

    #[test]
    fn synthetic_design_simulates_and_snapshots() {
        use hardsnap_bus::HwTarget;
        let mut t = hardsnap_sim::SimTarget::new(synthetic_design(2)).unwrap();
        t.reset();
        t.step(10);
        let v = t.bus_read(0).unwrap();
        // s1 lags s0 by one; after 10+handshake cycles it is nonzero.
        assert!(v > 0);
        let snap = t.save_snapshot().unwrap();
        t.step(100);
        t.restore_snapshot(&snap).unwrap();
        assert_eq!(t.save_snapshot().unwrap().reg("s0"), snap.reg("s0"));
    }

    #[test]
    fn fmt_ns_ranges() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.5 us");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
