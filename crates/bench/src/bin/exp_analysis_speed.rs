//! E3 — "How beneficial is hardware snapshotting for firmware analysis?"
//!
//! Symbolic-execution throughput over branching firmware: HardSnap's
//! snapshot context switches vs the naive-and-consistent reboot+replay
//! baseline, sweeping the number of symbolic branches (paths = 2^k) and
//! the length of the device init sequence.

use hardsnap::firmware;
use hardsnap::{ConsistencyMode, Engine, EngineConfig, Searcher};
use hardsnap_bench::{banner, fmt_ns, row};
use hardsnap_bus::HwTarget;
use hardsnap_fpga::{FpgaOptions, FpgaTarget};
use hardsnap_sim::SimTarget;

fn target(fpga: bool) -> Box<dyn HwTarget> {
    let soc = hardsnap_periph::soc().unwrap();
    if fpga {
        Box::new(FpgaTarget::new(soc, &FpgaOptions::default()).unwrap())
    } else {
        Box::new(SimTarget::new(soc).unwrap())
    }
}

fn run(mode: ConsistencyMode, src: &str, fpga: bool) -> (u64, u64, u64) {
    let prog = hardsnap_isa::assemble(src).unwrap();
    let config = EngineConfig {
        mode,
        searcher: Searcher::RoundRobin,
        quantum: 8,
        max_instructions: 3_000_000,
        ..Default::default()
    };
    let mut engine = Engine::new(target(fpga), config);
    engine.load_firmware(&prog);
    let r = engine.run();
    assert!(r.bugs.is_empty(), "{mode:?}: {:?}", r.bugs);
    (
        r.metrics.paths_completed,
        r.hw_virtual_time_ns,
        r.metrics.context_switches,
    )
}

fn main() {
    banner(
        "E3",
        "Analysis speed: HardSnap vs naive-and-consistent reboots",
        "HardSnap avoids per-switch reboots; speedup grows with path count \
         and with init length (paper: snapshots amortize the INIT sequence)",
    );
    let widths = [9, 7, 15, 15, 9, 10];
    for fpga in [false, true] {
        println!();
        println!(
            "--- branching firmware (paths = 2^k) on the {} target ---",
            if fpga { "FPGA" } else { "simulator" }
        );
        row(
            &[
                "k",
                "paths",
                "hardsnap-time",
                "reboot-time",
                "speedup",
                "switches",
            ],
            &widths,
        );
        for k in [2u32, 3, 4, 5] {
            let src = firmware::branching_firmware(k);
            let (p_hs, t_hs, sw) = run(ConsistencyMode::HardSnap, &src, fpga);
            let (p_nc, t_nc, _) = run(ConsistencyMode::NaiveConsistent, &src, fpga);
            assert_eq!(p_hs, p_nc);
            row(
                &[
                    &k.to_string(),
                    &p_hs.to_string(),
                    &fmt_ns(t_hs),
                    &fmt_ns(t_nc),
                    &format!("{:.1}x", t_nc as f64 / t_hs as f64),
                    &sw.to_string(),
                ],
                &widths,
            );
        }
    }
    println!();
    println!("--- init-heavy firmware (k=3, sweeping init writes, simulator) ---");
    row(
        &[
            "init",
            "paths",
            "hardsnap-time",
            "reboot-time",
            "speedup",
            "switches",
        ],
        &widths,
    );
    for init in [10u32, 40, 160] {
        let src = firmware::init_heavy_firmware(init, 3);
        let (p_hs, t_hs, sw) = run(ConsistencyMode::HardSnap, &src, false);
        let (p_nc, t_nc, _) = run(ConsistencyMode::NaiveConsistent, &src, false);
        assert_eq!(p_hs, p_nc);
        row(
            &[
                &init.to_string(),
                &p_hs.to_string(),
                &fmt_ns(t_hs),
                &fmt_ns(t_nc),
                &format!("{:.1}x", t_nc as f64 / t_hs as f64),
                &sw.to_string(),
            ],
            &widths,
        );
    }
    println!();
    println!("note: on the simulator target the snapshot itself is CRIU-priced");
    println!("(~20 ms), so the advantage over a 100 ms reboot is a small factor;");
    println!("on the FPGA target the scan-chain snapshot costs ~70 us and the");
    println!("speedup is orders of magnitude — the shape the paper reports.");
}
