//! E3 — "How beneficial is hardware snapshotting for firmware analysis?"
//!
//! Symbolic-execution throughput over branching firmware: HardSnap's
//! snapshot context switches vs the naive-and-consistent reboot+replay
//! baseline, sweeping the number of symbolic branches (paths = 2^k) and
//! the length of the device init sequence. A second part sweeps the
//! `ParallelEngine` worker count over a fork-heavy workload and records
//! the scaling curve in `BENCH_analysis_speed.json`.
//!
//! Usage: `exp_analysis_speed [--workers 1,2,4,8] [--json PATH]`.
//! With an explicit `--workers` list only the parallel sweep runs
//! (the CI smoke mode); without arguments the full experiment runs.

use hardsnap::firmware;
use hardsnap::{ConsistencyMode, Engine, EngineConfig, ParallelEngine, Searcher, TelemetryConfig};
use hardsnap_bench::{banner, fmt_ns, row};
use hardsnap_bus::HwTarget;
use hardsnap_fpga::{FpgaOptions, FpgaTarget};
use hardsnap_sim::SimTarget;

fn target(fpga: bool) -> Box<dyn HwTarget> {
    let soc = hardsnap_periph::soc().unwrap();
    if fpga {
        Box::new(FpgaTarget::new(soc, &FpgaOptions::default()).unwrap())
    } else {
        Box::new(SimTarget::new(soc).unwrap())
    }
}

fn run(mode: ConsistencyMode, src: &str, fpga: bool) -> (u64, u64, u64) {
    let prog = hardsnap_isa::assemble(src).unwrap();
    let config = EngineConfig {
        mode,
        searcher: Searcher::RoundRobin,
        quantum: 8,
        max_instructions: 3_000_000,
        ..Default::default()
    };
    let mut engine = Engine::new(target(fpga), config);
    engine.load_firmware(&prog);
    let r = engine.run();
    assert!(r.bugs.is_empty(), "{mode:?}: {:?}", r.bugs);
    (
        r.metrics.paths_completed,
        r.hw_virtual_time_ns,
        r.metrics.context_switches,
    )
}

/// One row of the worker sweep.
struct ScalePoint {
    workers: usize,
    instructions: u64,
    paths: u64,
    campaign_vtime_ns: u64,
    sum_vtime_ns: u64,
    digest: u64,
    host_ms: u64,
    host_secs: f64,
}

/// Instructions per modeled second: the campaign clock is the slowest
/// replica (boards run concurrently in a real deployment).
fn throughput_ips(p: &ScalePoint) -> f64 {
    p.instructions as f64 / (p.campaign_vtime_ns as f64 / 1e9)
}

/// Runs the fork-heavy workload on `workers` replicas.
fn scale_point(asm: &str, workers: usize) -> ScalePoint {
    scale_point_telemetry(asm, workers, TelemetryConfig::OFF)
}

fn scale_point_telemetry(asm: &str, workers: usize, telemetry: TelemetryConfig) -> ScalePoint {
    let prog = hardsnap_isa::assemble(asm).unwrap();
    let config = EngineConfig {
        mode: ConsistencyMode::HardSnap,
        searcher: Searcher::RoundRobin,
        quantum: 4,
        max_instructions: 3_000_000,
        telemetry,
        ..Default::default()
    };
    let soc = hardsnap_periph::soc().unwrap();
    let proto = SimTarget::new(soc).unwrap();
    let mut engine = ParallelEngine::new(&proto, workers, config).unwrap();
    engine.load_firmware(&prog);
    let r = engine.run();
    assert!(r.bugs.is_empty(), "workers={workers}: {:?}", r.bugs);
    ScalePoint {
        workers,
        instructions: r.instructions,
        paths: r.metrics.paths_completed,
        campaign_vtime_ns: engine.worker_vtimes_ns.iter().copied().max().unwrap_or(0),
        sum_vtime_ns: r.hw_virtual_time_ns,
        digest: r.canonical_digest(),
        host_ms: r.host_time.as_millis() as u64,
        host_secs: r.host_time.as_secs_f64(),
    }
}

/// Runs the worker sweep, prints the table and writes the JSON record.
fn parallel_sweep(worker_counts: &[usize], json_path: &str) {
    const FORK_K: u32 = 7; // 2^7 = 128 paths: fork-heavy.
    println!();
    println!("--- parallel scaling: ParallelEngine over branching firmware (k={FORK_K}) ---");
    let widths = [8, 7, 13, 14, 14, 12, 9];
    row(
        &[
            "workers",
            "paths",
            "instructions",
            "campaign-time",
            "throughput",
            "speedup",
            "digest",
        ],
        &widths,
    );
    let asm = firmware::branching_firmware(FORK_K);
    let points: Vec<ScalePoint> = worker_counts
        .iter()
        .map(|&w| scale_point(&asm, w))
        .collect();
    let base = &points[0];
    for p in &points {
        assert_eq!(
            p.digest, base.digest,
            "workers={}: result diverged from workers={}",
            p.workers, base.workers
        );
        row(
            &[
                &p.workers.to_string(),
                &p.paths.to_string(),
                &p.instructions.to_string(),
                &fmt_ns(p.campaign_vtime_ns),
                &format!("{:.0} instr/s", throughput_ips(p)),
                &format!("{:.2}x", throughput_ips(p) / throughput_ips(base)),
                &format!("{:08x}", p.digest as u32),
            ],
            &widths,
        );
    }
    let mut entries = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"workers\": {}, \"paths\": {}, \"instructions\": {}, \
             \"campaign_vtime_ns\": {}, \"sum_vtime_ns\": {}, \
             \"throughput_instr_per_s\": {:.1}, \"speedup_vs_first\": {:.3}, \
             \"host_ms\": {}, \"digest\": \"{:016x}\"}}",
            p.workers,
            p.paths,
            p.instructions,
            p.campaign_vtime_ns,
            p.sum_vtime_ns,
            throughput_ips(p),
            throughput_ips(p) / throughput_ips(base),
            p.host_ms,
            p.digest,
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"analysis_speed_parallel_scaling\",\n  \
         \"workload\": \"branching_firmware({FORK_K}), quantum 4, HardSnap, RoundRobin\",\n  \
         \"metric\": \"instructions per modeled second; campaign time = max per-replica virtual time\",\n  \
         \"points\": [\n{entries}\n  ]\n}}\n"
    );
    std::fs::write(json_path, json).unwrap_or_else(|e| panic!("write {json_path}: {e}"));
    telemetry_overhead(&asm, *worker_counts.last().unwrap());
    println!();
    println!("recorded {json_path}");
    println!("note: throughput is instructions per modeled second (replicated");
    println!("boards run concurrently, so the campaign clock is the slowest");
    println!("replica's virtual time); host wall-clock additionally depends on");
    println!("how many host cores back the worker threads.");
}

/// Telemetry observer-effect check: the same workload with the
/// recorder disabled vs enabled must produce an identical canonical
/// digest, and the disabled path must cost nothing measurable (the
/// disabled recorder is one `None` branch per hook — the target is
/// ≤ 1% wall-clock delta; best-of-3 damps scheduler noise).
fn telemetry_overhead(asm: &str, workers: usize) {
    const REPS: usize = 5;
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let mut digest_off = 0u64;
    let mut digest_on = 0u64;
    for _ in 0..REPS {
        let p = scale_point_telemetry(asm, workers, TelemetryConfig::OFF);
        best_off = best_off.min(p.host_secs);
        digest_off = p.digest;
        let p = scale_point_telemetry(asm, workers, TelemetryConfig::ON);
        best_on = best_on.min(p.host_secs);
        digest_on = p.digest;
    }
    assert_eq!(
        digest_off, digest_on,
        "telemetry must not perturb the analysis result"
    );
    let delta = (best_on / best_off - 1.0) * 100.0;
    println!();
    println!(
        "telemetry overhead (workers={workers}, best of {REPS}): disabled {:.1} ms, \
         enabled {:.1} ms ({delta:+.1}%); digests identical",
        best_off * 1e3,
        best_on * 1e3,
    );
}

fn main() {
    // Minimal flag parsing: --workers 1,2,4,8 / --json PATH.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut worker_counts: Option<Vec<usize>> = None;
    let mut json_path = "BENCH_analysis_speed.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                i += 1;
                let list = args.get(i).expect("--workers needs a comma-separated list");
                worker_counts = Some(
                    list.split(',')
                        .map(|s| s.trim().parse().expect("worker count"))
                        .collect(),
                );
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).expect("--json needs a path").clone();
            }
            other => panic!("unknown argument {other:?} (try --workers 1,2,4,8)"),
        }
        i += 1;
    }
    if let Some(counts) = worker_counts {
        // Smoke mode: just the parallel sweep.
        banner(
            "E3p",
            "Parallel scaling sweep (smoke mode)",
            "worker count changes the campaign clock, never the result",
        );
        parallel_sweep(&counts, &json_path);
        return;
    }

    banner(
        "E3",
        "Analysis speed: HardSnap vs naive-and-consistent reboots",
        "HardSnap avoids per-switch reboots; speedup grows with path count \
         and with init length (paper: snapshots amortize the INIT sequence)",
    );
    let widths = [9, 7, 15, 15, 9, 10];
    for fpga in [false, true] {
        println!();
        println!(
            "--- branching firmware (paths = 2^k) on the {} target ---",
            if fpga { "FPGA" } else { "simulator" }
        );
        row(
            &[
                "k",
                "paths",
                "hardsnap-time",
                "reboot-time",
                "speedup",
                "switches",
            ],
            &widths,
        );
        for k in [2u32, 3, 4, 5] {
            let src = firmware::branching_firmware(k);
            let (p_hs, t_hs, sw) = run(ConsistencyMode::HardSnap, &src, fpga);
            let (p_nc, t_nc, _) = run(ConsistencyMode::NaiveConsistent, &src, fpga);
            assert_eq!(p_hs, p_nc);
            row(
                &[
                    &k.to_string(),
                    &p_hs.to_string(),
                    &fmt_ns(t_hs),
                    &fmt_ns(t_nc),
                    &format!("{:.1}x", t_nc as f64 / t_hs as f64),
                    &sw.to_string(),
                ],
                &widths,
            );
        }
    }
    println!();
    println!("--- init-heavy firmware (k=3, sweeping init writes, simulator) ---");
    row(
        &[
            "init",
            "paths",
            "hardsnap-time",
            "reboot-time",
            "speedup",
            "switches",
        ],
        &widths,
    );
    for init in [10u32, 40, 160] {
        let src = firmware::init_heavy_firmware(init, 3);
        let (p_hs, t_hs, sw) = run(ConsistencyMode::HardSnap, &src, false);
        let (p_nc, t_nc, _) = run(ConsistencyMode::NaiveConsistent, &src, false);
        assert_eq!(p_hs, p_nc);
        row(
            &[
                &init.to_string(),
                &p_hs.to_string(),
                &fmt_ns(t_hs),
                &fmt_ns(t_nc),
                &format!("{:.1}x", t_nc as f64 / t_hs as f64),
                &sw.to_string(),
            ],
            &widths,
        );
    }
    println!();
    println!("note: on the simulator target the snapshot itself is CRIU-priced");
    println!("(~20 ms), so the advantage over a 100 ms reboot is a small factor;");
    println!("on the FPGA target the scan-chain snapshot costs ~70 us and the");
    println!("speedup is orders of magnitude — the shape the paper reports.");

    parallel_sweep(&[1, 2, 4, 8], &json_path);
}
