//! E-snap — "Does snapshot cost scale with activity, not design size?"
//!
//! Full capture pays for every state bit on every save: the simulator
//! walks its whole process image (CRIU model), the FPGA shifts the
//! complete scan chain. Activity-proportional capture pays only for
//! what changed since the last snapshot: the simulator emits a delta
//! against a shared base image, the FPGA shifts only dirty scan
//! segments. This experiment sweeps the fraction of architectural
//! state touched between snapshots on the full SoC and records the
//! modeled capture and restore cost at each point, for both targets.
//!
//! Two invariants are asserted on every sweep point, and a digest
//! cross-check at the end proves the mode is invisible to analysis
//! results:
//!
//! * every delta capture materializes bit-identically to the live
//!   state it snapshots (content hash equality);
//! * the end-to-end canonical digest of an analysis run is identical
//!   with delta snapshots on and off, across RTL engines and worker
//!   counts.
//!
//! Usage: `exp_snapshot_overhead [--smoke] [--json PATH]`.

use hardsnap::{ConsistencyMode, Engine, EngineConfig, ParallelEngine, Searcher};
use hardsnap_bench::{banner, fmt_ns, row, synthetic_design};
use hardsnap_bus::{HwSnapshot, HwTarget, SnapshotCapture};
use hardsnap_fpga::{FpgaOptions, FpgaTarget};
use hardsnap_sim::{SimEngine, SimTarget};

/// Builds a fresh SoC target of the requested flavor.
fn make_target(fpga: bool) -> Box<dyn HwTarget> {
    let soc = hardsnap_periph::soc().expect("built-in SoC elaborates");
    if fpga {
        Box::new(FpgaTarget::new(soc, &FpgaOptions::default()).expect("fpga target"))
    } else {
        Box::new(SimTarget::new(soc).expect("sim target"))
    }
}

/// Returns a copy of `base` with `pct` percent of registers and memory
/// words flipped (bit 0 toggled — always inside the field's width).
/// Indices are strided so the touched state spreads across the design
/// rather than clustering in one scan segment.
fn perturb(base: &HwSnapshot, pct: u32) -> HwSnapshot {
    let mut snap = base.clone();
    let nregs = snap.regs.len();
    let k = nregs * pct as usize / 100;
    for i in 0..k {
        let idx = i * nregs / k.max(1);
        if snap.regs[idx].width > 0 {
            snap.regs[idx].bits ^= 1;
        }
    }
    let total_words: usize = snap.mems.iter().map(|m| m.words.len()).sum();
    let kw = total_words * pct as usize / 100;
    let mut flat: Vec<(usize, usize)> = Vec::with_capacity(total_words);
    for (mi, m) in snap.mems.iter().enumerate() {
        for wi in 0..m.words.len() {
            flat.push((mi, wi));
        }
    }
    for i in 0..kw {
        let (mi, wi) = flat[i * total_words / kw.max(1)];
        if snap.mems[mi].width > 0 {
            snap.mems[mi].words[wi] ^= 1;
        }
    }
    snap
}

struct Point {
    target: &'static str,
    pct: u32,
    restore_ns: u64,
    capture_ns: u64,
    capture_kind: &'static str,
    capture_bytes: usize,
}

/// One sweep point on a fresh target: establish a delta base, restore
/// a `pct`-perturbed image (dirtying exactly that much state), then
/// capture. Returns the modeled costs and verifies the capture
/// materializes to the exact live state.
fn sweep_point(fpga: bool, pct: u32) -> Point {
    let mut t = make_target(fpga);
    t.set_delta_snapshots(true);
    t.reset();
    t.step(50);
    let base = match t.save_snapshot_delta().expect("base capture") {
        SnapshotCapture::Full(arc) => arc,
        SnapshotCapture::Delta { .. } => unreachable!("first capture is the base"),
    };
    let want = perturb(&base, pct);
    let t0 = t.virtual_time_ns();
    t.restore_snapshot(&want).expect("perturbed restore");
    let t1 = t.virtual_time_ns();
    let cap = t.save_snapshot_delta().expect("delta capture");
    let t2 = t.virtual_time_ns();
    let materialized = cap.materialize().expect("capture materializes");
    assert_eq!(
        materialized.content_hash(),
        want.content_hash(),
        "{} pct={pct}: delta capture diverged from live state",
        if fpga { "fpga" } else { "sim" },
    );
    Point {
        target: if fpga { "fpga" } else { "sim" },
        pct,
        restore_ns: t1 - t0,
        capture_ns: t2 - t1,
        capture_kind: match cap {
            SnapshotCapture::Full(_) => "full(rebased)",
            SnapshotCapture::Delta { .. } => "delta",
        },
        capture_bytes: cap.byte_size(),
    }
}

/// Reference costs with delta mode off: one full save and one full
/// restore on a fresh target.
fn full_costs(fpga: bool) -> (u64, u64) {
    let mut t = make_target(fpga);
    t.reset();
    t.step(50);
    let t0 = t.virtual_time_ns();
    let snap = t.save_snapshot().expect("full save");
    let t1 = t.virtual_time_ns();
    t.restore_snapshot(&snap).expect("full restore");
    let t2 = t.virtual_time_ns();
    (t1 - t0, t2 - t1)
}

/// Quiescent capture: establish a base, run cycles with inputs held,
/// capture. Only spontaneous activity (free-running counters) is
/// dirty, so this is the floor of activity-proportional cost.
fn quiescent_capture(fpga: bool, cycles: u64) -> (u64, usize) {
    let mut t = make_target(fpga);
    t.set_delta_snapshots(true);
    t.reset();
    t.step(50);
    let _ = t.save_snapshot_delta().expect("base capture");
    t.step(cycles);
    let t0 = t.virtual_time_ns();
    let cap = t.save_snapshot_delta().expect("quiescent capture");
    (
        t.virtual_time_ns() - t0,
        match &cap {
            SnapshotCapture::Full(_) => usize::MAX,
            SnapshotCapture::Delta { .. } => cap.byte_size(),
        },
    )
}

/// FPGA partial-chain proportionality on a design big enough that
/// shifting the chain (not the per-transaction scan overhead)
/// dominates: full save vs. a capture with nothing dirty vs. a capture
/// with half the registers dirty. On `soc_top` the whole chain shifts
/// in ~1 us, so the fixed scan overhead hides the proportional term;
/// at tens of kilobits the chain dominates and partial shifting pays.
fn fpga_synth_proportionality(n_regs: u32) -> (u64, u64, u64) {
    let m = synthetic_design(n_regs);
    let mut t = FpgaTarget::new(m, &FpgaOptions::default()).expect("fpga target");
    t.set_delta_snapshots(true);
    t.reset();
    t.step(50);
    let t0 = t.virtual_time_ns();
    let base = match t.save_snapshot_delta().expect("base capture") {
        SnapshotCapture::Full(arc) => arc,
        SnapshotCapture::Delta { .. } => unreachable!("first capture is the base"),
    };
    let full_cost = t.virtual_time_ns() - t0;
    // No cycles stepped: nothing is dirty, so only the per-transaction
    // overhead remains.
    let t0 = t.virtual_time_ns();
    let quiet = t.save_snapshot_delta().expect("quiescent capture");
    let quiet_cost = t.virtual_time_ns() - t0;
    assert!(
        matches!(quiet, SnapshotCapture::Delta { .. }),
        "untouched state must capture as a delta"
    );
    // A quarter of the registers dirty (low enough that the rebase
    // heuristic keeps the capture a delta): a fresh target so the
    // previous captures cannot interfere.
    let m = synthetic_design(n_regs);
    let mut t = FpgaTarget::new(m, &FpgaOptions::default()).expect("fpga target");
    t.set_delta_snapshots(true);
    t.reset();
    t.step(50);
    let _ = t.save_snapshot_delta().expect("base capture");
    let want = perturb(&base, 25);
    t.restore_snapshot(&want).expect("perturbed restore");
    let t0 = t.virtual_time_ns();
    let _ = t.save_snapshot_delta().expect("quarter-dirty capture");
    let quarter_cost = t.virtual_time_ns() - t0;
    (full_cost, quiet_cost, quarter_cost)
}

/// End-to-end canonical digest of a demo analysis run.
fn analysis_digest(fpga: bool, engine: SimEngine, workers: usize, delta: bool) -> u64 {
    let program = hardsnap_isa::assemble(&hardsnap::firmware::branching_firmware(3))
        .expect("demo firmware assembles");
    let soc = hardsnap_periph::soc().expect("built-in SoC elaborates");
    let target: Box<dyn HwTarget> = if fpga {
        Box::new(FpgaTarget::new(soc, &FpgaOptions::default()).expect("fpga target"))
    } else {
        Box::new(SimTarget::with_engine(soc, engine).expect("sim target"))
    };
    let config = EngineConfig {
        mode: ConsistencyMode::HardSnap,
        searcher: Searcher::RoundRobin,
        delta_snapshots: delta,
        ..Default::default()
    };
    if workers > 1 {
        let mut e = ParallelEngine::new(target.as_ref(), workers, config).expect("parallel engine");
        e.load_firmware(&program);
        e.run().canonical_digest()
    } else {
        let mut e = Engine::new(target, config);
        e.load_firmware(&program);
        e.run().canonical_digest()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut json_path = "BENCH_snapshot_overhead.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                i += 1;
                json_path = args.get(i).expect("--json needs a path").clone();
            }
            other => panic!("unknown argument {other:?} (try --smoke / --json PATH)"),
        }
        i += 1;
    }

    banner(
        "E-snap",
        "Snapshot cost vs. fraction of state touched (soc_top)",
        "delta capture/restore cost grows with the state actually dirtied, \
         not with design size; a quiescent capture is >= 5x cheaper than a \
         full one on both targets, and the canonical digest is bit-identical \
         with delta snapshots on or off.",
    );

    let pcts: &[u32] = if smoke {
        &[0, 10, 100]
    } else {
        &[0, 1, 5, 10, 25, 50, 100]
    };

    let widths = [6, 6, 14, 14, 14, 12];
    row(
        &["target", "pct", "restore", "capture", "kind", "cap-bytes"],
        &widths,
    );
    let mut points = Vec::new();
    let mut refs = Vec::new();
    for fpga in [false, true] {
        let name = if fpga { "fpga" } else { "sim" };
        let (full_save, full_restore) = full_costs(fpga);
        row(
            &[
                name,
                "full",
                &fmt_ns(full_restore),
                &fmt_ns(full_save),
                "full",
                "-",
            ],
            &widths,
        );
        refs.push((name, full_save, full_restore));
        for &pct in pcts {
            let p = sweep_point(fpga, pct);
            row(
                &[
                    p.target,
                    &p.pct.to_string(),
                    &fmt_ns(p.restore_ns),
                    &fmt_ns(p.capture_ns),
                    p.capture_kind,
                    &p.capture_bytes.to_string(),
                ],
                &widths,
            );
            points.push(p);
        }
    }

    println!();
    let quiescent_cycles = if smoke { 50 } else { 200 };
    let mut quiescent = Vec::new();
    for fpga in [false, true] {
        let name = if fpga { "fpga" } else { "sim" };
        let (full_save, _) = full_costs(fpga);
        let (q_cost, q_bytes) = quiescent_capture(fpga, quiescent_cycles);
        println!(
            "{name}: quiescent capture {} vs full {} ({:.1}x cheaper, {q_bytes} delta bytes)",
            fmt_ns(q_cost),
            fmt_ns(full_save),
            full_save as f64 / q_cost.max(1) as f64,
        );
        // The >= 5x bar applies to the simulator (CRIU process-image
        // model, where full capture costs tens of ms). The SoC's scan
        // chain shifts in ~1 us, so the FPGA's cost is dominated by the
        // fixed per-transaction scan overhead either way — the
        // partial-chain win is asserted on the big synthetic design
        // below, where the chain dominates.
        if !smoke && !fpga {
            assert!(
                q_cost.saturating_mul(5) <= full_save,
                "{name}: quiescent capture {q_cost} ns is not >= 5x cheaper than full {full_save} ns"
            );
        }
        quiescent.push((name, q_cost, q_bytes, full_save));
    }

    println!();
    let synth_regs: u32 = if smoke { 256 } else { 1024 };
    let (synth_full, synth_quiet, synth_quarter) = fpga_synth_proportionality(synth_regs);
    println!(
        "fpga synth-{synth_regs} ({} state bits): full {} / 25% dirty {} / quiescent {} \
         ({:.1}x cheaper when untouched)",
        u64::from(synth_regs) * 64,
        fmt_ns(synth_full),
        fmt_ns(synth_quarter),
        fmt_ns(synth_quiet),
        synth_full as f64 / synth_quiet.max(1) as f64,
    );
    if !smoke {
        // The per-transaction scan overhead is fixed either way; the
        // partial-chain claim is about the *shift term* above it. With
        // 25% of segments dirty the shift term must shrink to roughly a
        // quarter (>= 3x smaller, allowing rounding to whole scan
        // cycles), and a quarter-dirty capture must undercut a full
        // scan outright.
        assert!(
            synth_quarter < synth_full,
            "fpga synth-{synth_regs}: quarter-dirty capture {synth_quarter} ns should undercut \
             a full scan ({synth_full} ns)"
        );
        let full_shift = synth_full - synth_quiet;
        let quarter_shift = synth_quarter - synth_quiet;
        assert!(
            full_shift >= quarter_shift.saturating_mul(3),
            "fpga synth-{synth_regs}: shift term not proportional to dirty fraction \
             (full {full_shift} ns vs 25% dirty {quarter_shift} ns)"
        );
    }

    println!();
    println!("--- digest invariance: delta {{off,on}} x engines x workers ---");
    let mut digest = None;
    let mut combos = 0u32;
    for delta in [false, true] {
        for engine in [SimEngine::Interpreter, SimEngine::Bytecode] {
            for workers in [1usize, 2] {
                let d = analysis_digest(false, engine, workers, delta);
                match digest {
                    None => digest = Some(d),
                    Some(want) => assert_eq!(
                        d, want,
                        "digest diverged: delta={delta} engine={engine:?} workers={workers}"
                    ),
                }
                combos += 1;
            }
        }
        let d = analysis_digest(true, SimEngine::Bytecode, 1, delta);
        assert_eq!(d, digest.unwrap(), "fpga digest diverged: delta={delta}");
        combos += 1;
    }
    println!("all {combos} combinations agree: {:#018x}", digest.unwrap());

    let mut entries = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"target\": \"{}\", \"pct_touched\": {}, \"restore_ns\": {}, \
             \"capture_ns\": {}, \"capture_kind\": \"{}\", \"capture_bytes\": {}}}",
            p.target, p.pct, p.restore_ns, p.capture_ns, p.capture_kind, p.capture_bytes,
        ));
    }
    let mut ref_entries = String::new();
    for (i, (name, save, restore)) in refs.iter().enumerate() {
        if i > 0 {
            ref_entries.push_str(",\n");
        }
        ref_entries.push_str(&format!(
            "    {{\"target\": \"{name}\", \"full_save_ns\": {save}, \"full_restore_ns\": {restore}}}"
        ));
    }
    let mut q_entries = String::new();
    for (i, (name, cost, bytes, full)) in quiescent.iter().enumerate() {
        if i > 0 {
            q_entries.push_str(",\n");
        }
        q_entries.push_str(&format!(
            "    {{\"target\": \"{name}\", \"quiescent_capture_ns\": {cost}, \
             \"delta_bytes\": {bytes}, \"full_save_ns\": {full}, \"speedup\": {:.1}}}",
            *full as f64 / (*cost).max(1) as f64
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"snapshot_overhead\",\n  \
         \"design\": \"soc_top\",\n  \
         \"metric\": \"modeled virtual-time ns per capture/restore vs. percent of state touched\",\n  \
         \"quiescent_cycles\": {quiescent_cycles},\n  \
         \"digest_invariant\": \"{:#018x}\",\n  \
         \"fpga_synth\": {{\"n_regs\": {synth_regs}, \"full_save_ns\": {synth_full}, \
         \"quarter_dirty_ns\": {synth_quarter}, \"quiescent_ns\": {synth_quiet}}},\n  \
         \"full_reference\": [\n{ref_entries}\n  ],\n  \
         \"quiescent\": [\n{q_entries}\n  ],\n  \
         \"points\": [\n{entries}\n  ]\n}}\n",
        digest.unwrap()
    );
    std::fs::write(&json_path, json).unwrap_or_else(|e| panic!("write {json_path}: {e}"));
    println!();
    println!("recorded {json_path}");
    println!("note: every sweep point's capture is materialized and content-hash");
    println!("checked against the live state before its cost is reported.");
}
