//! E2 — I/O forwarding latency and execution speed per target.
//!
//! The paper measures forwarding latency and raw execution speed of the
//! FPGA target vs the simulator target; the shapes to reproduce: the
//! FPGA executes orders of magnitude faster per cycle, but each
//! forwarded transaction pays the USB round-trip, while the simulator is
//! slow per cycle with a cheap shared-memory hop.

use hardsnap_bench::{banner, fmt_ns, row};
use hardsnap_bus::{map::soc, HwTarget};
use hardsnap_fpga::{FpgaOptions, FpgaTarget};
use hardsnap_periph::regs;
use hardsnap_sim::SimTarget;

fn measure(target: &mut dyn HwTarget, n: u32) -> (u64, u64, u64) {
    target.reset();
    // Forwarding latency: n write+read pairs against the timer.
    let t0 = target.virtual_time_ns();
    for i in 0..n {
        target
            .bus_write(soc::TIMER_BASE + regs::timer::LOAD, i)
            .unwrap();
        let v = target
            .bus_read(soc::TIMER_BASE + regs::timer::VALUE)
            .unwrap();
        assert_eq!(v, i);
    }
    let io_ns = (target.virtual_time_ns() - t0) / (2 * n as u64);
    // Execution speed: virtual ns per 100k cycles.
    let t1 = target.virtual_time_ns();
    target.step(100_000);
    let step_ns = target.virtual_time_ns() - t1;
    let hz = 100_000f64 / (step_ns as f64 / 1e9);
    (io_ns, step_ns, hz as u64)
}

fn main() {
    banner(
        "E2",
        "I/O forwarding latency and execution speed (FPGA vs simulator)",
        "FPGA: ~30 us/transaction (USB3), ~100 MHz execution; simulator: \
         ~2-20 us/transaction, ~0.5 MHz execution. Crossover: few \
         interactions + much computation favors FPGA.",
    );
    let widths = [11, 16, 18, 14];
    row(
        &["target", "ns/transaction", "ns/100k cycles", "eff. clock"],
        &widths,
    );
    let mut sim = SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap();
    let (io, st, hz) = measure(&mut sim, 100);
    row(
        &[
            "simulator",
            &fmt_ns(io),
            &fmt_ns(st),
            &format!("{:.2} MHz", hz as f64 / 1e6),
        ],
        &widths,
    );
    let mut fpga =
        FpgaTarget::new(hardsnap_periph::soc().unwrap(), &FpgaOptions::default()).unwrap();
    let (io, st, hz) = measure(&mut fpga, 100);
    row(
        &[
            "fpga",
            &fmt_ns(io),
            &fmt_ns(st),
            &format!("{:.2} MHz", hz as f64 / 1e6),
        ],
        &widths,
    );
}
