//! E6 — Multi-target orchestration: moving live hardware state between
//! the FPGA and the simulator mid-operation (paper §III-B).
//!
//! Starts an AES encryption on the FPGA, transfers the state to the
//! simulator in the middle of the 10-round pipeline, finishes there, and
//! verifies the ciphertext is bit-exact — plus the reverse direction and
//! the transfer costs.

use hardsnap_bench::{banner, fmt_ns, row};
use hardsnap_bus::{map::soc, transfer_state, HwTarget};
use hardsnap_fpga::{FpgaOptions, FpgaTarget};
use hardsnap_periph::{golden, regs};
use hardsnap_sim::SimTarget;

fn load_aes(t: &mut dyn HwTarget, key: &[u8; 16], pt: &[u8; 16]) {
    let kw = golden::words_from_bytes(key);
    let pw = golden::words_from_bytes(pt);
    for i in 0..4u32 {
        t.bus_write(soc::AES_BASE + regs::aes128::KEY0 + 4 * i, kw[i as usize])
            .unwrap();
        t.bus_write(soc::AES_BASE + regs::aes128::BLOCK0 + 4 * i, pw[i as usize])
            .unwrap();
    }
    t.bus_write(soc::AES_BASE + regs::aes128::CTRL, regs::aes128::CTRL_START)
        .unwrap();
}

fn read_result(t: &mut dyn HwTarget) -> [u8; 16] {
    let mut cw = [0u32; 4];
    for (i, c) in cw.iter_mut().enumerate() {
        *c = t
            .bus_read(soc::AES_BASE + regs::aes128::RESULT0 + 4 * i as u32)
            .unwrap();
    }
    golden::bytes_from_words(&cw)
}

fn main() {
    banner(
        "E6",
        "Multi-target state transfer (FPGA <-> simulator)",
        "state clones bit-exactly in both directions at any point; \
         transfer cost = one scan save + one restore",
    );
    let key = *b"sixteen byte key";
    let pt = *b"hardware in loop";
    let expected = golden::aes128_encrypt(&key, &pt);

    // FPGA -> simulator, mid-encryption.
    let mut fpga =
        FpgaTarget::new(hardsnap_periph::soc().unwrap(), &FpgaOptions::default()).unwrap();
    fpga.reset();
    load_aes(&mut fpga, &key, &pt);
    fpga.step(4); // a few rounds in, mid-pipeline
    let mut sim = SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap();
    sim.reset();
    let t0f = fpga.virtual_time_ns();
    let t0s = sim.virtual_time_ns();
    let snap = transfer_state(&mut fpga, &mut sim).unwrap();
    let cost_f = fpga.virtual_time_ns() - t0f;
    let cost_s = sim.virtual_time_ns() - t0s;
    sim.step(20); // finish the encryption on the simulator
    let ct = read_result(&mut sim);
    let widths = [24, 14, 40];
    row(&["direction", "cost", "result"], &widths);
    row(
        &[
            "fpga -> simulator",
            &fmt_ns(cost_f + cost_s),
            if ct == expected {
                "ciphertext bit-exact"
            } else {
                "MISMATCH"
            },
        ],
        &widths,
    );
    assert_eq!(ct, expected, "fpga->sim transfer corrupted the pipeline");

    // Simulator -> FPGA, mid-encryption.
    let mut sim2 = SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap();
    sim2.reset();
    load_aes(&mut sim2, &key, &pt);
    sim2.step(4);
    let mut fpga2 =
        FpgaTarget::new(hardsnap_periph::soc().unwrap(), &FpgaOptions::default()).unwrap();
    fpga2.reset();
    let t0 = sim2.virtual_time_ns() + fpga2.virtual_time_ns();
    transfer_state(&mut sim2, &mut fpga2).unwrap();
    let cost = sim2.virtual_time_ns() + fpga2.virtual_time_ns() - t0;
    fpga2.step(20);
    let ct2 = read_result(&mut fpga2);
    row(
        &[
            "simulator -> fpga",
            &fmt_ns(cost),
            if ct2 == expected {
                "ciphertext bit-exact"
            } else {
                "MISMATCH"
            },
        ],
        &widths,
    );
    assert_eq!(ct2, expected, "sim->fpga transfer corrupted the pipeline");
    println!();
    println!(
        "transferred snapshot: {} registers, {} memories, {} state bits",
        snap.regs.len(),
        snap.mems.len(),
        snap.state_bits()
    );
    println!("use case (paper): run fast on the FPGA, transfer to the simulator");
    println!("at the point of interest to obtain full traces (see take_trace()).");
}
