//! `hardsnap-cli` — command-line front door to the framework.
//!
//! ```text
//! hardsnap-cli stats <design.v> [--top NAME]
//! hardsnap-cli instrument <design.v> [--top NAME] [--scope PREFIX] -o <out.v>
//! hardsnap-cli sim <design.v> [--top NAME] --cycles N [--vcd out.vcd]
//! hardsnap-cli analyze <firmware.s> [--target sim|fpga] [--mode hardsnap|reboot|shared]
//!                      [--sim-engine bytecode|bytecode-full|interp]
//!                      [--fault-rate R [--fault-seed N]] [--workers N]
//!                      [--delta-snapshots on|off] [--max-instructions N]
//!                      [--snapshot-mem-budget BYTES]
//!                      [--save-snapshots DIR] [--resume DIR]
//!                      [--trace-out trace.json] [--metrics-out metrics.json]
//! hardsnap-cli trace-check <trace.json>
//! hardsnap-cli fuzz <firmware.s> [--inputs N] [--reset snapshot|reboot]
//!                   [--delta-snapshots on|off]
//! hardsnap-cli snapshot inspect <file.hsnap | archive.hspack>
//! hardsnap-cli snapshot validate [--deep] <file.hsnap>
//! hardsnap-cli snapshot pack <dir> -o <archive.hspack>
//! hardsnap-cli snapshot unpack <archive.hspack> <dest-dir> [--accept-any-shape]
//! hardsnap-cli soc-stats
//! ```
//!
//! The built-in SoC (UART + TIMER + SHA-256 + AES-128) is used as the
//! hardware for `analyze` and `fuzz`; `stats`/`instrument`/`sim` accept
//! any Verilog file in the supported subset.

use hardsnap::{
    resume_parallel, resume_sequential, snapshot_parallel, snapshot_sequential, ConsistencyMode,
    Engine, EngineConfig, ParallelEngine, RunResult, Searcher, StoreStats,
};
use hardsnap_bus::{FaultPlan, FaultyTarget, HwTarget, SnapshotFile};
use hardsnap_fpga::{FpgaOptions, FpgaTarget};
use hardsnap_fuzz::{FuzzConfig, Fuzzer, ResetStrategy};
use hardsnap_scan::{instrument, ScanOptions};
use hardsnap_sim::{SimEngine, SimTarget};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The campaign-service verbs carry CI-meaningful exit codes
    // (0 completed/stable, 1 error, 2 saturated, 3 flaky,
    // 4 cancelled/over-budget), so they dispatch before the plain
    // ok/fail commands.
    if let Some(
        cmd @ ("serve" | "submit" | "status" | "cancel" | "wait" | "metrics" | "subscribe"
        | "dump-flight" | "top"),
    ) = args.first().map(String::as_str)
    {
        return match cmd_serve_family(cmd, &args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                serve_error_code(&e)
            }
        };
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn run(args: &[String]) -> CliResult {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "stats" => cmd_stats(rest),
        "instrument" => cmd_instrument(rest),
        "sim" => cmd_sim(rest),
        "analyze" => cmd_analyze(rest),
        "trace-check" => cmd_trace_check(rest),
        "fuzz" => cmd_fuzz(rest),
        "snapshot" => cmd_snapshot(rest),
        "soc-stats" => cmd_soc_stats(),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'hardsnap-cli help')").into()),
    }
}

fn print_usage() {
    println!(
        "hardsnap — hardware/software co-testing with hardware snapshotting

USAGE:
  hardsnap-cli stats <design.v> [--top NAME]
      Parse + elaborate a Verilog design and print netlist statistics.
  hardsnap-cli instrument <design.v> [--top NAME] [--scope PREFIX] -o <out.v>
      Insert the scan chain + memory collars; write instrumented Verilog.
  hardsnap-cli sim <design.v> [--top NAME] --cycles N [--vcd out.vcd]
      Simulate a design for N cycles (inputs held at reset values).
  hardsnap-cli analyze <firmware.s> [--target sim|fpga] [--mode hardsnap|reboot|shared]
                       [--sim-engine bytecode|bytecode-full|interp] [--workers N]
                       [--delta-snapshots on|off] [--max-instructions N]
                       [--snapshot-mem-budget BYTES]
                       [--save-snapshots DIR] [--resume DIR]
                       [--trace-out trace.json] [--metrics-out metrics.json]
      Symbolically analyze HS32 firmware against the built-in SoC.
      --sim-engine selects the RTL evaluation backend (sim target only;
      all three produce bit-identical results — the digest proves it);
      --workers N > 1 runs the parallel engine (HardSnap mode only);
      --delta-snapshots on makes capture/restore O(changed state) with
      copy-on-write delta images (bit-identical digests either way);
      --snapshot-mem-budget caps resident snapshot bytes — cold entries
      spill to disk and page back in transparently;
      --save-snapshots checkpoints an interrupted campaign into DIR and
      --resume continues one in a fresh process (HardSnap mode only;
      the combined digest equals one uninterrupted run's);
      --trace-out / --metrics-out switch telemetry on and export a
      Chrome trace_event file (Perfetto / chrome://tracing) or a
      machine-readable metrics dump.
  hardsnap-cli trace-check <file>
      Validate an observability artifact, auto-detecting its format:
      a Chrome trace (monotonic per-track timestamps), a metrics
      snapshot (schema hardsnap-telemetry-v1), a flight-recorder dump
      (schema hardsnap-flight-v1), an NDJSON event stream (as captured
      by `subscribe`), or Prometheus text exposition.
  hardsnap-cli fuzz <firmware.s> [--inputs N] [--reset snapshot|reboot]
                    [--delta-snapshots on|off]
      Coverage-guided fuzzing of HS32 firmware against the built-in SoC.
  hardsnap-cli snapshot inspect <file.hsnap | archive.hspack>
      Print a snapshot image's metadata and section table, or a pack
      archive's manifest (design, shape hash, members).
  hardsnap-cli snapshot validate [--deep] <file.hsnap>
      Validate an image; --deep re-verifies every payload checksum.
  hardsnap-cli snapshot pack <dir> -o <archive.hspack>
      Pack a checkpoint/campaign directory into one archive whose
      manifest records the design, its shape hash and per-member
      content hashes — the transferable form of a warm-pool baseline.
  hardsnap-cli snapshot unpack <archive.hspack> <dest-dir> [--accept-any-shape]
      Unpack an archive. The receiver's design shape is checked against
      the manifest BEFORE any payload is extracted; a mismatched
      archive is refused (use --accept-any-shape to skip the gate).
  hardsnap-cli soc-stats
      Print statistics of the built-in 4-peripheral SoC.
  hardsnap-cli serve [--state-dir DIR] [--socket PATH] [--pool N] [--queue-max N]
                     [--warm-pool N] [--baseline FILE] [--sched fifo|lanes]
                     [--aging-ms MS]
      Run the campaign daemon: many concurrent jobs over a bounded pool
      of target replicas, with hard budgets, admission control and
      crash-safe resume (kill -9 + restart loses nothing).
      --warm-pool N keeps N pre-built replicas armed against a baseline
      snapshot (--baseline FILE, e.g. one unpacked from a pack archive;
      without it one is synthesized at start) so jobs skip the cold
      boot. --sched lanes (default) schedules by priority lane with
      aging and packing; --sched fifo is strict admission order.
  hardsnap-cli submit <firmware> [--socket PATH] [--name S] [--workers N]
                      [--priority 0..7] [--fault-rate R] [--fault-seed N]
                      [--repeat N] [--max-instructions N] [--max-vtime-ns N]
                      [--max-quanta N] [--wall-ms N]
                      [--snapshot-mem-budget BYTES]
                      [--delta-snapshots on|off] [--leg-instructions N]
                      [--wait SECS]
      Submit a job. With --wait SECS, block until the terminal verdict
      and exit with its code. Exit codes: 0 completed/stable, 1 error,
      2 saturated (rejected at admission), 3 flaky, 4 cancelled or
      over-budget. --repeat N re-executes a completed job N times total
      with re-seeded fault plans and reports stable vs flaky.
      --priority picks the scheduling lane (7 = most urgent, default 3);
      it affects when the job starts, never its digest.
  hardsnap-cli status [JOB-ID] [--socket PATH]
      Print one job (exits with its verdict code) or the whole table,
      headed by daemon occupancy (queue depth, pool busy/total, warm
      pool, subscribers, events published/dropped) and per-job
      budget-consumed, lane and warm/cold-provenance columns.
  hardsnap-cli metrics [--socket PATH] [--format json|prom]
      Fetch the daemon's aggregated telemetry snapshot — engine
      counters/histograms merged across all jobs plus serve-level
      counters and occupancy gauges — as schema'd JSON (default) or
      Prometheus text exposition.
  hardsnap-cli subscribe [--socket PATH] [--count N] [--timeout-secs S]
                         [--out PATH]
      Stream live job-lifecycle events as NDJSON (one event object per
      line) to stdout or --out; stops after N events, after S seconds
      (default 30), or when the daemon shuts down.
  hardsnap-cli dump-flight [--socket PATH] [--out PATH]
      Dump the daemon's in-memory flight recorder (the last N protocol
      and lifecycle events, schema hardsnap-flight-v1).
  hardsnap-cli top [--socket PATH] [--interval-ms N] [--frames N]
      Live ANSI dashboard over subscribe + metrics: job table with
      budget bars, lane and queue-age columns, pool and warm-pool
      occupancy, per-lane queue depths, instructions/s and events/s,
      plus the most recent lifecycle events. --frames 0 (default) runs
      until the daemon goes away or Ctrl-C.
  hardsnap-cli cancel <job-id | daemon> [--socket PATH]
      Cooperatively cancel a job (it stops at the next quantum boundary
      with a resumable checkpoint), or shut the daemon down.
  hardsnap-cli wait <job-id> [--timeout SECS] [--socket PATH]
      Block until a job is terminal; exit with its verdict code."
    );
}

/// Tiny flag parser: positional args plus `--flag value` pairs.
fn parse_flags(args: &[String]) -> Result<(Vec<&str>, Vec<(&str, &str)>), String> {
    let mut pos = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(name) = a.strip_prefix("--") {
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.push((name, v.as_str()));
            i += 2;
        } else if a == "-o" {
            let v = args.get(i + 1).ok_or("-o needs a value")?;
            flags.push(("out", v.as_str()));
            i += 2;
        } else {
            pos.push(a);
            i += 1;
        }
    }
    Ok((pos, flags))
}

fn flag<'a>(flags: &[(&'a str, &'a str)], name: &str) -> Option<&'a str> {
    flags.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
}

fn load_design(path: &str, top: Option<&str>) -> Result<hardsnap_rtl::Module, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let design = hardsnap_verilog::parse_design(&src).map_err(|e| format!("{path}:{e}"))?;
    let top = match top {
        Some(t) => t.to_string(),
        None => design
            .iter()
            .last()
            .map(|m| m.name.clone())
            .ok_or_else(|| format!("{path}: no modules"))?,
    };
    hardsnap_rtl::elaborate(&design, &top).map_err(|e| e.to_string())
}

fn cmd_stats(args: &[String]) -> CliResult {
    let (pos, flags) = parse_flags(args)?;
    let path = pos.first().ok_or("stats: missing <design.v>")?;
    let m = load_design(path, flag(&flags, "top"))?;
    let stats = hardsnap_rtl::ModuleStats::of(&m);
    println!("{stats}");
    let (_, chain) =
        instrument(&m, &ScanOptions::default()).map_err(|e| format!("instrumentation: {e}"))?;
    println!(
        "scan chain: {} bits, {} memory collar words",
        chain.chain_bits(),
        chain.mem_words()
    );
    Ok(())
}

fn cmd_instrument(args: &[String]) -> CliResult {
    let (pos, flags) = parse_flags(args)?;
    let path = pos.first().ok_or("instrument: missing <design.v>")?;
    let out = flag(&flags, "out").ok_or("instrument: missing -o <out.v>")?;
    let m = load_design(path, flag(&flags, "top"))?;
    let opts = ScanOptions {
        scope: flag(&flags, "scope").map(str::to_string),
        skip_memories: false,
        ..ScanOptions::default()
    };
    let (instrumented, chain) = instrument(&m, &opts)?;
    std::fs::write(out, hardsnap_verilog::print_module(&instrumented))?;
    println!(
        "wrote {out}: {} chain bits across {} registers, {} collared memories",
        chain.chain_bits(),
        chain.segments.len(),
        chain.mems.len()
    );
    Ok(())
}

fn cmd_sim(args: &[String]) -> CliResult {
    let (pos, flags) = parse_flags(args)?;
    let path = pos.first().ok_or("sim: missing <design.v>")?;
    let cycles: u64 = flag(&flags, "cycles")
        .ok_or("sim: missing --cycles N")?
        .parse()?;
    let m = load_design(path, flag(&flags, "top"))?;
    let mut sim = hardsnap_sim::Simulator::new(m)?;
    let mut trace = flag(&flags, "vcd").map(|_| hardsnap_sim::VcdTrace::new(&mut sim));
    if sim.module().find_net("rst").is_some() {
        sim.poke("rst", 1)?;
        sim.step(2);
        sim.poke("rst", 0)?;
    }
    for _ in 0..cycles {
        sim.step(1);
        if let Some(t) = &mut trace {
            t.sample(&mut sim);
        }
    }
    println!("simulated {cycles} cycles of '{}'", sim.module().name);
    if let (Some(t), Some(path)) = (trace, flag(&flags, "vcd")) {
        std::fs::write(path, t.into_string())?;
        println!("trace written to {path}");
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> CliResult {
    let (pos, flags) = parse_flags(args)?;
    let path = pos.first().ok_or("analyze: missing <firmware.s>")?;
    // `demo` / `demo:K` runs the built-in branching firmware (2^K
    // paths) — no firmware file needed, used by the CI telemetry gate.
    let src = match path.strip_prefix("demo") {
        Some("") => hardsnap::firmware::branching_firmware(3),
        Some(rest) => match rest.strip_prefix(':').map(str::parse) {
            Some(Ok(k)) => hardsnap::firmware::branching_firmware(k),
            _ => return Err(format!("bad demo firmware spec '{path}' (want demo[:K])").into()),
        },
        None => std::fs::read_to_string(path)?,
    };
    let program = hardsnap_isa::assemble(&src).map_err(|e| format!("{path}:{e}"))?;
    let soc = hardsnap_periph::soc()?;
    let sim_engine = match flag(&flags, "sim-engine") {
        Some(name) => SimEngine::from_name(name).ok_or_else(|| {
            format!("unknown --sim-engine '{name}' (want bytecode|bytecode-full|interp)")
        })?,
        None => SimEngine::Bytecode,
    };
    let target: Box<dyn HwTarget> = match flag(&flags, "target").unwrap_or("sim") {
        "sim" => Box::new(SimTarget::with_engine(soc, sim_engine)?),
        "fpga" if flag(&flags, "sim-engine").is_some() => {
            return Err("--sim-engine only applies to --target sim".into())
        }
        "fpga" => Box::new(FpgaTarget::new(soc, &FpgaOptions::default())?),
        other => return Err(format!("unknown target '{other}'").into()),
    };
    let mode = match flag(&flags, "mode").unwrap_or("hardsnap") {
        "hardsnap" => ConsistencyMode::HardSnap,
        "reboot" => ConsistencyMode::NaiveConsistent,
        "shared" => ConsistencyMode::NaiveInconsistent,
        other => return Err(format!("unknown mode '{other}'").into()),
    };
    // --fault-rate injects deterministic link faults (seeded by
    // --fault-seed) between the engine and the target; recovery stats
    // land in the summary below.
    let target: Box<dyn HwTarget> = match flag(&flags, "fault-rate") {
        Some(r) => {
            let rate: f64 = r.parse().map_err(|_| format!("bad --fault-rate '{r}'"))?;
            let seed: u64 = match flag(&flags, "fault-seed") {
                Some(s) => s.parse().map_err(|_| format!("bad --fault-seed '{s}'"))?,
                None => 1,
            };
            Box::new(FaultyTarget::new(target, FaultPlan::uniform(seed, rate)))
        }
        None => target,
    };
    let workers: usize = match flag(&flags, "workers") {
        Some(w) => w.parse().map_err(|_| format!("bad --workers '{w}'"))?,
        None => 1,
    };
    let delta_snapshots = match flag(&flags, "delta-snapshots") {
        Some("on") => true,
        Some("off") | None => false,
        Some(other) => return Err(format!("bad --delta-snapshots '{other}' (want on|off)").into()),
    };
    let trace_out = flag(&flags, "trace-out");
    let metrics_out = flag(&flags, "metrics-out");
    let save_dir = flag(&flags, "save-snapshots");
    let resume_dir = flag(&flags, "resume");
    if (save_dir.is_some() || resume_dir.is_some()) && mode != ConsistencyMode::HardSnap {
        return Err("--save-snapshots/--resume require --mode hardsnap".into());
    }
    let mut config = EngineConfig {
        mode,
        searcher: Searcher::RoundRobin,
        delta_snapshots,
        ..Default::default()
    };
    if let Some(n) = flag(&flags, "max-instructions") {
        config.max_instructions = n
            .parse()
            .map_err(|_| format!("bad --max-instructions '{n}'"))?;
    }
    if let Some(b) = flag(&flags, "snapshot-mem-budget") {
        let bytes: usize = b
            .parse()
            .map_err(|_| format!("bad --snapshot-mem-budget '{b}'"))?;
        config.snapshot_mem_budget = Some(bytes);
    }
    if trace_out.is_some() || metrics_out.is_some() {
        config.telemetry.enabled = true;
    }
    let (result, queries, store): (RunResult, Option<u64>, (StoreStats, usize)) = if workers > 1 {
        let mut engine = ParallelEngine::new(target.as_ref(), workers, config)?;
        match resume_dir {
            Some(dir) => resume_parallel(Path::new(dir), &mut engine)?,
            None => engine.load_firmware(&program),
        }
        let r = engine.run();
        if let Some(dir) = save_dir {
            snapshot_parallel(Path::new(dir), &mut engine, &r)?;
            println!("campaign saved to {dir}/");
        }
        let st = (engine.store.stats(), engine.store.peak_bytes());
        (r, None, st)
    } else {
        let mut engine = Engine::new(target, config);
        match resume_dir {
            Some(dir) => resume_sequential(Path::new(dir), &mut engine)?,
            None => engine.load_firmware(&program),
        }
        let r = engine.run();
        if let Some(dir) = save_dir {
            snapshot_sequential(Path::new(dir), &mut engine, &r)?;
            println!("campaign saved to {dir}/");
        }
        let q = engine.executor.solver.stats.queries;
        let st = (engine.store.stats(), engine.store.peak_bytes());
        (r, Some(q), st)
    };
    println!("paths completed : {}", result.metrics.paths_completed);
    println!("instructions    : {}", result.instructions);
    println!("context switches: {}", result.metrics.context_switches);
    println!("hw virtual time : {} us", result.hw_virtual_time_ns / 1000);
    println!(
        "host time       : {:.3} ms",
        result.host_time.as_secs_f64() * 1e3
    );
    println!("canonical digest: {:#018x}", result.canonical_digest());
    let (st, peak) = store;
    println!(
        "snapshot store  : spills {} / page-ins {} / resident peak {} bytes",
        st.spills, st.page_ins, peak
    );
    if let Some(q) = queries {
        println!("solver queries  : {q}");
    }
    println!(
        "faults          : injected {} / retried {} / recovered {} / quarantined {}",
        result.faults.injected,
        result.faults.retried,
        result.faults.recovered,
        result.faults.quarantined
    );
    for entry in &result.fault_log {
        println!("  fault: {entry}");
    }
    println!("bugs            : {}", result.bugs.len());
    for b in &result.bugs {
        println!(
            "  {:?} at pc {:#010x} ({}): {}",
            b.kind,
            b.pc,
            hardsnap_isa::disassemble_at(&program.image, b.pc),
            b.description
        );
        if let Some(tc) = &b.testcase {
            for (name, value) in tc.iter() {
                println!("    input {name} = {value:#x}");
            }
        }
    }
    if let Some(t) = &result.telemetry {
        println!();
        println!("{}", t.summary_table());
        let exec = t.counter("sim.ops_executed");
        let skip = t.counter("sim.ops_skipped");
        if exec + skip > 0 {
            println!(
                "dirty-cone hit rate: {:.1}% of comb ops skipped ({skip} skipped, {exec} executed)",
                100.0 * skip as f64 / (exec + skip) as f64
            );
        }
        if let Some(path) = trace_out {
            std::fs::write(path, t.chrome_trace_json())?;
            println!("chrome trace written to {path} (load in Perfetto / chrome://tracing)");
        }
        if let Some(path) = metrics_out {
            std::fs::write(path, t.metrics_json())?;
            println!("metrics written to {path}");
        }
    }
    Ok(())
}

/// Validates any observability artifact the toolchain emits, sniffing
/// the format: Chrome trace / metrics snapshot / flight dump (whole-file
/// JSON, discriminated by `traceEvents` or `schema`), an NDJSON event
/// stream captured from `subscribe`, or Prometheus text exposition.
fn cmd_trace_check(args: &[String]) -> CliResult {
    let (pos, _) = parse_flags(args)?;
    let path = pos.first().ok_or("trace-check: missing <file>")?;
    let src = std::fs::read_to_string(path)?;
    match hardsnap_util::json::parse(&src) {
        Ok(v) => {
            if v.get("traceEvents").is_some() {
                return check_chrome_trace(path, &v);
            }
            match v.get("schema").and_then(|s| s.as_str()) {
                Some("hardsnap-telemetry-v1") => {
                    hardsnap_telemetry::MetricsSnapshot::from_value(&v)
                        .map_err(|e| format!("{path}: {e}"))?;
                    println!("{path}: OK (metrics snapshot, schema hardsnap-telemetry-v1)");
                    Ok(())
                }
                Some("hardsnap-flight-v1") => {
                    hardsnap_telemetry::validate_flight_dump(&v)
                        .map_err(|e| format!("{path}: {e}"))?;
                    let n = v
                        .get("entries")
                        .and_then(|e| e.as_arr())
                        .map_or(0, <[_]>::len);
                    println!("{path}: OK (flight recorder dump, {n} entries)");
                    Ok(())
                }
                Some(other) => Err(format!("{path}: unknown schema '{other}'").into()),
                None => Err(format!(
                    "{path}: JSON, but neither a Chrome trace (traceEvents), a metrics \
                     snapshot, nor a flight dump (schema)"
                )
                .into()),
            }
        }
        // Not one JSON document: an NDJSON event stream or Prometheus
        // text exposition.
        Err(_) => check_event_stream_or_prometheus(path, &src),
    }
}

/// Validates an NDJSON event stream (every non-blank line a typed event
/// with strictly increasing `seq`), falling back to Prometheus text
/// exposition when the first line is not JSON.
fn check_event_stream_or_prometheus(path: &str, src: &str) -> CliResult {
    let lines: Vec<&str> = src.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return Err(format!("{path}: empty file").into());
    }
    if hardsnap_util::json::parse(lines[0]).is_ok() {
        let mut last_seq = None;
        for (i, line) in lines.iter().enumerate() {
            let v = hardsnap_util::json::parse(line)
                .map_err(|e| format!("{path}: line {}: {e}", i + 1))?;
            let ev = hardsnap_serve::Event::from_value(&v)
                .map_err(|e| format!("{path}: line {}: {e}", i + 1))?;
            if let Some(prev) = last_seq {
                if ev.seq <= prev {
                    return Err(format!(
                        "{path}: line {}: seq {} not increasing (prev {prev})",
                        i + 1,
                        ev.seq
                    )
                    .into());
                }
            }
            last_seq = Some(ev.seq);
        }
        println!("{path}: OK (event stream, {} events)", lines.len());
        return Ok(());
    }
    let families = hardsnap_telemetry::parse_prometheus(src).map_err(|e| format!("{path}: {e}"))?;
    hardsnap_telemetry::validate_exposition(&families).map_err(|e| format!("{path}: {e}"))?;
    let samples: usize = families.iter().map(|f| f.samples.len()).sum();
    println!(
        "{path}: OK (Prometheus exposition, {} families, {samples} samples)",
        families.len()
    );
    Ok(())
}

/// The original Chrome `trace_event` check: a non-empty `traceEvents`
/// array whose events carry the required keys, with timestamps
/// monotonically ordered within every track (`tid`).
fn check_chrome_trace(path: &str, v: &hardsnap_util::json::Value) -> CliResult {
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .ok_or("trace-check: missing traceEvents array")?;
    if events.is_empty() {
        return Err("trace-check: traceEvents is empty".into());
    }
    let mut last_ts: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    let mut checked = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|p| p.as_str())
            .ok_or_else(|| format!("trace-check: event {i} missing ph"))?;
        ev.get("name")
            .and_then(|n| n.as_str())
            .ok_or_else(|| format!("trace-check: event {i} missing name"))?;
        if ph == "M" {
            continue; // metadata (thread names) carries no timestamp
        }
        let tid = ev
            .get("tid")
            .and_then(hardsnap_util::json::Value::as_u64)
            .ok_or_else(|| format!("trace-check: event {i} missing tid"))?;
        let ts = ev
            .get("ts")
            .and_then(hardsnap_util::json::Value::as_f64)
            .ok_or_else(|| format!("trace-check: event {i} missing ts"))?;
        if let Some(&prev) = last_ts.get(&tid) {
            if ts < prev {
                return Err(format!(
                    "trace-check: event {i} on track {tid} goes back in time ({ts} < {prev})"
                )
                .into());
            }
        }
        last_ts.insert(tid, ts);
        checked += 1;
    }
    println!(
        "{path}: OK ({checked} events across {} tracks)",
        last_ts.len()
    );
    Ok(())
}

/// `snapshot inspect|validate|pack|unpack` — poke at persistent
/// snapshot images and pack archives.
fn cmd_snapshot(args: &[String]) -> CliResult {
    let sub = args
        .first()
        .ok_or("snapshot: missing subcommand (inspect|validate|pack|unpack)")?;
    // Parsed by hand: the boolean flags (--deep, --accept-any-shape)
    // are ones the generic flag parser (every --flag eats a value)
    // cannot express.
    let mut deep = false;
    let mut accept_any_shape = false;
    let mut pos: Vec<&str> = Vec::new();
    let mut out: Option<&str> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deep" => deep = true,
            "--accept-any-shape" => accept_any_shape = true,
            "-o" | "--out" => {
                out = Some(
                    it.next()
                        .map(String::as_str)
                        .ok_or(format!("snapshot {sub}: {a} needs a value"))?,
                );
            }
            other if !other.starts_with('-') => pos.push(other),
            other => return Err(format!("snapshot {sub}: unknown flag '{other}'").into()),
        }
    }
    match sub.as_str() {
        "pack" => {
            let dir = pos
                .first()
                .ok_or("snapshot pack: missing <dir> to archive")?;
            let out = out.ok_or("snapshot pack: missing -o <archive.hspack>")?;
            let manifest = hardsnap_bus::archive::pack_dir_to(Path::new(dir), Path::new(out))?;
            println!(
                "packed {dir} -> {out}: design '{}' shape {:#018x}, {} member(s), {} payload bytes",
                manifest.design,
                manifest.shape_hash,
                manifest.files.len(),
                manifest.payload_len()
            );
            return Ok(());
        }
        "unpack" => {
            let archive = pos
                .first()
                .ok_or("snapshot unpack: missing <archive.hspack>")?;
            let dest = pos.get(1).ok_or("snapshot unpack: missing <dest-dir>")?;
            // The admission gate: refuse an archive whose design shape
            // does not match the live built-in SoC, before extracting
            // a single payload byte.
            let live_shape = if accept_any_shape {
                0
            } else {
                SimTarget::new(hardsnap_periph::soc()?)?.snapshot_shape()
            };
            let manifest =
                hardsnap_bus::archive::unpack_to(Path::new(archive), Path::new(dest), live_shape)?;
            println!(
                "unpacked {archive} -> {dest}: design '{}' shape {:#018x}, {} member(s){}",
                manifest.design,
                manifest.shape_hash,
                manifest.files.len(),
                if accept_any_shape {
                    " (shape gate skipped)"
                } else {
                    " (shape verified)"
                }
            );
            return Ok(());
        }
        _ => {}
    }
    let file = *pos
        .first()
        .ok_or_else(|| format!("snapshot {sub}: missing <file>"))?;
    match sub.as_str() {
        "inspect" => {
            // A pack archive leads with its own magic; sniff it and
            // print the manifest instead of the snapshot section table.
            let head = std::fs::read(Path::new(file)).map_err(|e| format!("{file}: {e}"))?;
            if head.starts_with(hardsnap_bus::PACK_MAGIC) {
                let manifest = hardsnap_bus::archive::inspect(Path::new(file))?;
                println!("file         : {file} ({} bytes)", head.len());
                println!(
                    "kind         : pack archive ({})",
                    hardsnap_bus::PACK_SCHEMA
                );
                println!("design       : {}", manifest.design);
                println!("shape hash   : {:#018x}", manifest.shape_hash);
                println!("members      :");
                for m in &manifest.files {
                    println!("  {} ({} bytes, fnv {:#018x})", m.name, m.len, m.checksum);
                }
                return Ok(());
            }
            let f = SnapshotFile::open(Path::new(file))?;
            let meta = f.meta()?;
            println!("file         : {file} ({} bytes)", f.file_len());
            println!("kind         : {:?}", f.kind());
            println!("design       : {}", meta.design);
            println!("cycle        : {}", meta.cycle);
            println!("shape hash   : {:#018x}", meta.shape_hash);
            println!("content hash : {:#018x}", meta.content_hash);
            println!("regs / mems  : {} / {}", meta.n_regs, meta.n_mems);
            if !meta.base_ref.is_empty() {
                println!("base ref     : {}", meta.base_ref);
            }
            println!("sections     :");
            for s in f.sections() {
                println!(
                    "  {:?}[{}] offset {} len {} checksum {:#018x} content {:#018x}",
                    s.tag, s.index, s.offset, s.len, s.checksum, s.content_hash
                );
            }
            Ok(())
        }
        "validate" => {
            let f = SnapshotFile::open(Path::new(file))?;
            f.validate(deep)?;
            println!(
                "{file}: OK ({} validation, {} sections)",
                if deep { "deep" } else { "shallow" },
                f.sections().len()
            );
            Ok(())
        }
        other => Err(format!(
            "unknown snapshot subcommand '{other}' (want inspect|validate|pack|unpack)"
        )
        .into()),
    }
}

fn cmd_fuzz(args: &[String]) -> CliResult {
    let (pos, flags) = parse_flags(args)?;
    let path = pos.first().ok_or("fuzz: missing <firmware.s>")?;
    let src = std::fs::read_to_string(path)?;
    let program = hardsnap_isa::assemble(&src).map_err(|e| format!("{path}:{e}"))?;
    let inputs: u64 = flag(&flags, "inputs").unwrap_or("1000").parse()?;
    let reset = match flag(&flags, "reset").unwrap_or("snapshot") {
        "snapshot" => ResetStrategy::Snapshot,
        "reboot" => ResetStrategy::Reboot,
        other => return Err(format!("unknown reset strategy '{other}'").into()),
    };
    let delta_snapshots = match flag(&flags, "delta-snapshots") {
        Some("on") => true,
        Some("off") | None => false,
        Some(other) => return Err(format!("bad --delta-snapshots '{other}' (want on|off)").into()),
    };
    let target = Box::new(SimTarget::new(hardsnap_periph::soc()?)?);
    let mut fuzzer = Fuzzer::new(
        target,
        &program,
        FuzzConfig {
            max_inputs: inputs,
            reset,
            delta_snapshots,
            ..Default::default()
        },
    )?;
    let r = fuzzer.run()?;
    println!("executions      : {}", r.execs);
    println!("coverage (PCs)  : {}", r.coverage);
    println!("virtual hw time : {} ms", r.hw_virtual_time_ns / 1_000_000);
    println!("virtual execs/s : {:.1}", r.virtual_execs_per_sec);
    for c in &r.crashes {
        println!("crash: {} input {:#x?}", c.fault, c.input);
    }
    Ok(())
}

fn cmd_soc_stats() -> CliResult {
    let soc = hardsnap_periph::soc()?;
    println!("{}", hardsnap_rtl::ModuleStats::of(&soc));
    for (name, f) in hardsnap_periph::corpus() {
        let m = f()?;
        println!("  {}", hardsnap_rtl::ModuleStats::of(&m));
        let _ = name;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Campaign-service verbs (serve / submit / status / cancel / wait).
//
// These return real exit codes so CI can branch on the outcome:
//   0  completed / stable        3  flaky
//   1  error                     4  cancelled / over-budget
//   2  saturated (rejected at admission)

type ServeResult = Result<ExitCode, hardsnap_serve::ServeError>;

fn serve_error_code(e: &hardsnap_serve::ServeError) -> ExitCode {
    match e {
        hardsnap_serve::ServeError::Saturated { .. } => ExitCode::from(2),
        _ => ExitCode::FAILURE,
    }
}

fn cmd_serve_family(cmd: &str, args: &[String]) -> ServeResult {
    let proto = |m: String| hardsnap_serve::ServeError::Protocol(m);
    let (pos, flags) = parse_flags(args).map_err(|e| proto(format!("{cmd}: {e}")))?;
    match cmd {
        "serve" => cmd_serve(&flags),
        "submit" => cmd_submit(&pos, &flags),
        "status" => cmd_status(&pos, &flags),
        "cancel" => cmd_cancel(&pos, &flags),
        "wait" => cmd_wait(&pos, &flags),
        "metrics" => cmd_metrics(&flags),
        "subscribe" => cmd_subscribe(&flags),
        "dump-flight" => cmd_dump_flight(&flags),
        "top" => cmd_top(&flags),
        _ => unreachable!("dispatched in main"),
    }
}

fn serve_socket(flags: &[(&str, &str)]) -> std::path::PathBuf {
    std::path::PathBuf::from(flag(flags, "socket").unwrap_or("hardsnap-serve-state/serve.sock"))
}

fn connect(flags: &[(&str, &str)]) -> Result<hardsnap_serve::Client, hardsnap_serve::ServeError> {
    hardsnap_serve::Client::connect_retry(&serve_socket(flags), std::time::Duration::from_secs(5))
}

/// Runs the daemon in-process (same engine as the `hardsnap-serve`
/// binary): recover, watchdog, unix-socket loop until `shutdown`.
fn cmd_serve(flags: &[(&str, &str)]) -> ServeResult {
    use hardsnap_serve::{Daemon, DaemonConfig, SchedPolicy, ServeError};
    let bad = |m: String| ServeError::Protocol(m);
    let mut cfg = DaemonConfig::default();
    if let Some(d) = flag(flags, "state-dir") {
        cfg.state_dir = std::path::PathBuf::from(d);
    }
    if let Some(n) = flag(flags, "pool") {
        cfg.pool_replicas = n.parse().map_err(|_| bad(format!("bad --pool '{n}'")))?;
    }
    if let Some(n) = flag(flags, "queue-max") {
        cfg.queue_max = n
            .parse()
            .map_err(|_| bad(format!("bad --queue-max '{n}'")))?;
    }
    if let Some(n) = flag(flags, "warm-pool") {
        cfg.warm_pool = n
            .parse()
            .map_err(|_| bad(format!("bad --warm-pool '{n}'")))?;
    }
    if let Some(p) = flag(flags, "baseline") {
        cfg.baseline = Some(std::path::PathBuf::from(p));
    }
    if let Some(s) = flag(flags, "sched") {
        cfg.sched = SchedPolicy::parse(s)
            .ok_or_else(|| bad(format!("bad --sched '{s}' (want fifo|lanes)")))?;
    }
    if let Some(n) = flag(flags, "aging-ms") {
        cfg.aging_ms = n
            .parse()
            .map_err(|_| bad(format!("bad --aging-ms '{n}'")))?;
    }
    let socket = flag(flags, "socket")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| cfg.state_dir.join("serve.sock"));
    let daemon = Daemon::new(cfg)?;
    let resumed = daemon.recover()?;
    if resumed > 0 {
        eprintln!("serve: resumed {resumed} unfinished job(s)");
    }
    daemon.spawn_watchdog(std::time::Duration::from_millis(50));
    eprintln!("serve: listening on {}", socket.display());
    daemon.serve_unix(&socket)?;
    daemon.wait_idle(std::time::Duration::from_millis(500));
    Ok(ExitCode::SUCCESS)
}

fn parse_job_spec(
    pos: &[&str],
    flags: &[(&str, &str)],
) -> Result<hardsnap_serve::JobSpec, hardsnap_serve::ServeError> {
    let bad = |m: String| hardsnap_serve::ServeError::Protocol(m);
    let mut spec = hardsnap_serve::JobSpec {
        firmware: pos
            .first()
            .ok_or_else(|| bad("submit: missing <firmware> (e.g. demo:4)".into()))?
            .to_string(),
        ..hardsnap_serve::JobSpec::default()
    };
    if let Some(n) = flag(flags, "name") {
        spec.name = n.to_string();
    }
    let num = |name: &str, slot: &mut u64| -> Result<(), hardsnap_serve::ServeError> {
        if let Some(v) = flag(flags, name) {
            *slot = v.parse().map_err(|_| bad(format!("bad --{name} '{v}'")))?;
        }
        Ok(())
    };
    num("fault-seed", &mut spec.fault_seed)?;
    num("max-instructions", &mut spec.max_instructions)?;
    num("max-vtime-ns", &mut spec.max_vtime_ns)?;
    num("max-quanta", &mut spec.max_quanta)?;
    num("wall-ms", &mut spec.wall_ms)?;
    num("snapshot-mem-budget", &mut spec.snapshot_mem_budget)?;
    num("leg-instructions", &mut spec.leg_instructions)?;
    num("priority", &mut spec.priority)?;
    if let Some(v) = flag(flags, "workers") {
        spec.workers = v.parse().map_err(|_| bad(format!("bad --workers '{v}'")))?;
    }
    if let Some(v) = flag(flags, "fault-rate") {
        spec.fault_rate = v
            .parse()
            .map_err(|_| bad(format!("bad --fault-rate '{v}'")))?;
    }
    if let Some(v) = flag(flags, "repeat") {
        spec.repeat = v.parse().map_err(|_| bad(format!("bad --repeat '{v}'")))?;
    }
    match flag(flags, "delta-snapshots") {
        Some("on") => spec.delta_snapshots = true,
        Some("off") | None => {}
        Some(other) => {
            return Err(bad(format!(
                "bad --delta-snapshots '{other}' (want on|off)"
            )))
        }
    }
    Ok(spec)
}

fn print_summary(s: &hardsnap_serve::JobSummary) {
    let verdict = s
        .verdict
        .as_ref()
        .map(|v| v.as_str().to_string())
        .unwrap_or_else(|| "-".into());
    println!(
        "job {:>4}  {:<8}  L{}  {:<4}  {:<11}  bud {:>3}%  instr {:>9}  paths {:>5}  bugs {:>3}  wait {:>5} ms  run {:>6} ms  {}  {}",
        s.id,
        s.state.as_str(),
        s.lane,
        s.provenance.as_deref().unwrap_or("-"),
        verdict,
        s.budget_permille / 10,
        s.instructions,
        s.paths,
        s.bugs,
        s.queue_wait_ms,
        s.run_ms,
        s.digest.as_deref().unwrap_or("-"),
        s.name,
    );
}

/// One-line daemon occupancy header for `status` and `top`.
fn daemon_header(d: &hardsnap_serve::DaemonStats) -> String {
    let warm = if d.warm_target > 0 {
        format!(
            "  warm {}/{} ready (+{} arming)",
            d.warm_ready, d.warm_target, d.warm_arming
        )
    } else {
        String::new()
    };
    format!(
        "daemon: queue {}  pool {}/{} busy{}  subscribers {}  events {} published / {} dropped",
        d.queue_depth,
        d.pool_busy,
        d.pool_replicas,
        warm,
        d.subscribers,
        d.events_published,
        d.events_dropped
    )
}

fn summary_exit(s: &hardsnap_serve::JobSummary) -> ExitCode {
    match &s.verdict {
        Some(v) => ExitCode::from(v.exit_code()),
        None => ExitCode::SUCCESS, // still queued/running: status is informational
    }
}

fn cmd_submit(pos: &[&str], flags: &[(&str, &str)]) -> ServeResult {
    let spec = parse_job_spec(pos, flags)?;
    let mut client = connect(flags)?;
    let id = client.submit(&spec)?;
    println!("submitted job {id}");
    if let Some(secs) = flag(flags, "wait") {
        let timeout = std::time::Duration::from_secs(secs.parse().map_err(|_| {
            hardsnap_serve::ServeError::Protocol(format!("bad --wait '{secs}' (want seconds)"))
        })?);
        let s = client.wait(id, timeout)?;
        print_summary(&s);
        return Ok(summary_exit(&s));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_status(pos: &[&str], flags: &[(&str, &str)]) -> ServeResult {
    let bad = |m: String| hardsnap_serve::ServeError::Protocol(m);
    let id = match pos.first() {
        Some(s) => Some(s.parse().map_err(|_| bad(format!("bad job id '{s}'")))?),
        None => None,
    };
    let mut client = connect(flags)?;
    let (jobs, daemon) = client.status_full(id)?;
    if let Some(id) = id {
        if jobs.is_empty() {
            return Err(hardsnap_serve::ServeError::Job(format!("unknown job {id}")));
        }
    }
    // The whole-table view leads with daemon occupancy; the single-job
    // view stays a bare summary (scripts parse its exit code anyway).
    if id.is_none() {
        if let Some(d) = &daemon {
            println!("{}", daemon_header(d));
        }
    }
    for s in &jobs {
        print_summary(s);
    }
    match (id, jobs.first()) {
        (Some(_), Some(s)) => Ok(summary_exit(s)),
        _ => Ok(ExitCode::SUCCESS),
    }
}

fn cmd_cancel(pos: &[&str], flags: &[(&str, &str)]) -> ServeResult {
    let bad = |m: String| hardsnap_serve::ServeError::Protocol(m);
    let what = pos
        .first()
        .ok_or_else(|| bad("cancel: missing <job-id | daemon>".into()))?;
    let mut client = connect(flags)?;
    if *what == "daemon" {
        client.shutdown()?;
        println!("daemon shutdown requested");
        return Ok(ExitCode::SUCCESS);
    }
    let id: u64 = what.parse().map_err(|_| bad("cancel: bad job id".into()))?;
    client.cancel(id)?;
    println!("cancel requested for job {id}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_wait(pos: &[&str], flags: &[(&str, &str)]) -> ServeResult {
    let bad = |m: String| hardsnap_serve::ServeError::Protocol(m);
    let id: u64 = pos
        .first()
        .ok_or_else(|| bad("wait: missing <job-id>".into()))?
        .parse()
        .map_err(|_| bad("wait: bad job id".into()))?;
    let timeout = match flag(flags, "timeout") {
        Some(s) => std::time::Duration::from_secs(
            s.parse().map_err(|_| bad(format!("bad --timeout '{s}'")))?,
        ),
        None => std::time::Duration::from_secs(600),
    };
    let mut client = connect(flags)?;
    let s = client.wait(id, timeout)?;
    print_summary(&s);
    Ok(summary_exit(&s))
}

fn cmd_metrics(flags: &[(&str, &str)]) -> ServeResult {
    let bad = |m: String| hardsnap_serve::ServeError::Protocol(m);
    let mut client = connect(flags)?;
    let v = client.metrics()?;
    match flag(flags, "format").unwrap_or("json") {
        "json" => println!("{}", v.to_json()),
        "prom" => {
            let snap = hardsnap_telemetry::MetricsSnapshot::from_value(&v)
                .map_err(|e| bad(format!("metrics: {e}")))?;
            print!("{}", hardsnap_telemetry::prometheus_text(&snap));
        }
        other => return Err(bad(format!("bad --format '{other}' (want json|prom)"))),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_dump_flight(flags: &[(&str, &str)]) -> ServeResult {
    let mut client = connect(flags)?;
    let v = client.dump_flight()?;
    match flag(flags, "out") {
        Some(path) => {
            std::fs::write(path, v.to_json())
                .map_err(|e| hardsnap_serve::ServeError::Io(format!("write {path}: {e}")))?;
            eprintln!("flight recorder written to {path}");
        }
        None => println!("{}", v.to_json()),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_subscribe(flags: &[(&str, &str)]) -> ServeResult {
    use std::io::Write;
    let bad = |m: String| hardsnap_serve::ServeError::Protocol(m);
    let count: usize = match flag(flags, "count") {
        Some(n) => n.parse().map_err(|_| bad(format!("bad --count '{n}'")))?,
        None => 0, // unbounded
    };
    let timeout_secs: u64 = match flag(flags, "timeout-secs") {
        Some(s) => s
            .parse()
            .map_err(|_| bad(format!("bad --timeout-secs '{s}'")))?,
        None => 30,
    };
    let mut out: Box<dyn Write> = match flag(flags, "out") {
        Some(path) => Box::new(
            std::fs::File::create(path)
                .map_err(|e| hardsnap_serve::ServeError::Io(format!("create {path}: {e}")))?,
        ),
        None => Box::new(std::io::stdout()),
    };
    let mut stream = connect(flags)?.subscribe()?;
    // Belt and braces: the deadline bounds keep-alive-punctuated waits,
    // the socket timeout bounds a silent dead stream.
    stream.set_read_timeout(Some(std::time::Duration::from_millis(250)))?;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(timeout_secs);
    stream.set_deadline(Some(deadline));
    let mut seen = 0usize;
    while std::time::Instant::now() < deadline && (count == 0 || seen < count) {
        match stream.next_event() {
            Ok(Some(ev)) => {
                writeln!(out, "{}", ev.to_value().to_json())
                    .map_err(|e| hardsnap_serve::ServeError::Io(format!("write: {e}")))?;
                seen += 1;
            }
            Ok(None) => break,  // daemon shut down
            Err(_) => continue, // read timeout: re-check the deadline
        }
    }
    out.flush()
        .map_err(|e| hardsnap_serve::ServeError::Io(format!("flush: {e}")))?;
    eprintln!("captured {seen} event(s)");
    Ok(ExitCode::SUCCESS)
}

/// 20-cell budget/occupancy bar, e.g. `[########------------]`.
fn bar20(permille: u64) -> String {
    let filled = (permille.min(1000) as usize * 20) / 1000;
    format!("[{}{}]", "#".repeat(filled), "-".repeat(20 - filled))
}

fn cmd_top(flags: &[(&str, &str)]) -> ServeResult {
    use std::io::Write;
    let bad = |m: String| hardsnap_serve::ServeError::Protocol(m);
    let interval_ms: u64 = match flag(flags, "interval-ms") {
        Some(n) => n
            .parse()
            .map_err(|_| bad(format!("bad --interval-ms '{n}'")))?,
        None => 500,
    };
    let frames: u64 = match flag(flags, "frames") {
        Some(n) => n.parse().map_err(|_| bad(format!("bad --frames '{n}'")))?,
        None => 0, // until the daemon goes away
    };
    let mut client = connect(flags)?;
    let mut stream = connect(flags)?.subscribe()?;
    stream.set_read_timeout(Some(std::time::Duration::from_millis(25)))?;
    let mut recent: std::collections::VecDeque<String> = std::collections::VecDeque::new();
    let mut events_total: u64 = 0;
    let mut last: Option<(u64, std::time::Instant)> = None;
    let mut frame: u64 = 0;
    loop {
        // Drain whatever the event stream buffered since the last
        // frame (bounded, so a burst cannot starve rendering).
        let mut drained = 0;
        loop {
            match stream.next_event() {
                Ok(Some(ev)) => {
                    events_total += 1;
                    recent.push_back(format!(
                        "#{:<8} {:<16} job {}",
                        ev.seq,
                        ev.body.kind(),
                        ev.body.job_id()
                    ));
                    while recent.len() > 6 {
                        recent.pop_front();
                    }
                    drained += 1;
                    if drained >= 256 {
                        break;
                    }
                }
                Ok(None) | Err(_) => break,
            }
        }
        let Ok((jobs, daemon)) = client.status_full(None) else {
            println!("top: daemon went away");
            break;
        };
        let snap = client
            .metrics()
            .ok()
            .and_then(|v| hardsnap_telemetry::MetricsSnapshot::from_value(&v).ok());
        let now = std::time::Instant::now();
        let instr: u64 = jobs.iter().map(|j| j.instructions).sum();
        let rate = match last {
            Some((prev, t)) if now > t => {
                (instr.saturating_sub(prev) as f64 / now.duration_since(t).as_secs_f64()) as u64
            }
            _ => 0,
        };
        last = Some((instr, now));

        let mut screen = String::from("\x1b[2J\x1b[H");
        screen.push_str(&format!(
            "hardsnap top — {}  (frame {frame}, every {interval_ms} ms)\n",
            serve_socket(flags).display()
        ));
        if let Some(d) = &daemon {
            let occ = if d.pool_replicas > 0 {
                d.pool_busy as u64 * 1000 / d.pool_replicas as u64
            } else {
                0
            };
            screen.push_str(&format!("{}\n", daemon_header(d)));
            screen.push_str(&format!(
                "pool {} {:>3}%   instr/s {rate}   events seen {events_total}\n",
                bar20(occ),
                occ / 10
            ));
            if d.warm_target > 0 {
                let ready = d.warm_ready * 1000 / d.warm_target;
                screen.push_str(&format!(
                    "warm {} {:>3}%   {} ready / {} leased / {} arming of {}\n",
                    bar20(ready),
                    ready / 10,
                    d.warm_ready,
                    d.warm_leased,
                    d.warm_arming,
                    d.warm_target
                ));
            }
        }
        // Per-lane queue depth, from the queued jobs themselves.
        {
            let mut lanes = [0u64; 8];
            for j in &jobs {
                if j.state == hardsnap_serve::JobState::Queued {
                    lanes[(j.lane as usize).min(7)] += 1;
                }
            }
            if lanes.iter().any(|&n| n > 0) {
                screen.push_str("lanes ");
                for (i, n) in lanes.iter().enumerate() {
                    screen.push_str(&format!("L{i}:{n} "));
                }
                screen.push('\n');
            }
        }
        if let Some(s) = &snap {
            screen.push_str(&format!(
                "completed {}  cancelled {}  quanta {}  snapshots {}  scrapes {}\n",
                s.counter("serve.jobs_completed"),
                s.counter("serve.jobs_cancelled"),
                s.counter("quanta"),
                s.counter("snapshots_saved"),
                s.counter("serve.metrics_scrapes"),
            ));
        }
        screen.push('\n');
        screen.push_str(
            "  ID  STATE     LANE  SRC   AGE-MS  BUDGET                      INSTR      PATHS  BUGS  NAME\n",
        );
        for j in &jobs {
            screen.push_str(&format!(
                "{:>4}  {:<8}  L{}    {:<4}  {:>6}  {} {:>3}%  {:>9}  {:>5}  {:>4}  {}\n",
                j.id,
                j.state.as_str(),
                j.lane,
                j.provenance.as_deref().unwrap_or("-"),
                j.queue_wait_ms,
                bar20(j.budget_permille),
                j.budget_permille / 10,
                j.instructions,
                j.paths,
                j.bugs,
                j.name,
            ));
        }
        if !recent.is_empty() {
            screen.push_str("\nrecent events:\n");
            for line in &recent {
                screen.push_str("  ");
                screen.push_str(line);
                screen.push('\n');
            }
        }
        print!("{screen}");
        let _ = std::io::stdout().flush();

        frame += 1;
        if frames > 0 && frame >= frames {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
    Ok(ExitCode::SUCCESS)
}
