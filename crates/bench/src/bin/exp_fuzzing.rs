//! E8 — Fuzzing with snapshot reset vs reboot reset (paper §II
//! motivation, Muench et al.): executions/second and bug discovery.
//!
//! The third row runs the snapshot strategy with delta snapshots on:
//! the per-input restore writes back only what the input dirtied, so
//! the restore cost (and with it total virtual hardware time) drops
//! again while execs/coverage/crashes stay identical.

use hardsnap::firmware;
use hardsnap_bench::{banner, fmt_ns, row};
use hardsnap_fuzz::{FuzzConfig, Fuzzer, ResetStrategy};
use hardsnap_sim::SimTarget;

fn campaign(reset: ResetStrategy, delta: bool, inputs: u64) -> hardsnap_fuzz::FuzzReport {
    let prog = hardsnap_isa::assemble(&firmware::uart_parser_firmware()).unwrap();
    let target = Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap());
    let mut f = Fuzzer::new(
        target,
        &prog,
        FuzzConfig {
            max_inputs: inputs,
            reset,
            seed: 42,
            tape_len: 2,
            delta_snapshots: delta,
            ..Default::default()
        },
    )
    .unwrap();
    f.run().unwrap()
}

fn main() {
    banner(
        "E8",
        "Fuzzing: snapshot reset vs device reboot",
        "snapshot reset is orders of magnitude cheaper per execution, so \
         virtual execs/sec (and time-to-crash) improve accordingly; delta \
         snapshots cut the restore cost once more",
    );
    let widths = [14, 8, 10, 9, 14, 16];
    row(
        &[
            "reset",
            "execs",
            "coverage",
            "crashes",
            "hw-time",
            "virt execs/s",
        ],
        &widths,
    );
    let mut snap_full = None;
    let mut snap_delta = None;
    for (name, reset, delta) in [
        ("snapshot", ResetStrategy::Snapshot, false),
        ("snapshot+delta", ResetStrategy::Snapshot, true),
        ("reboot", ResetStrategy::Reboot, false),
    ] {
        let r = campaign(reset, delta, 2000);
        row(
            &[
                name,
                &r.execs.to_string(),
                &r.coverage.to_string(),
                &r.crashes.len().to_string(),
                &fmt_ns(r.hw_virtual_time_ns),
                &format!("{:.1}", r.virtual_execs_per_sec),
            ],
            &widths,
        );
        match (reset, delta) {
            (ResetStrategy::Snapshot, false) => snap_full = Some(r),
            (ResetStrategy::Snapshot, true) => snap_delta = Some(r),
            _ => {}
        }
    }
    let (full, delta) = (snap_full.unwrap(), snap_delta.unwrap());
    assert_eq!(
        full.coverage, delta.coverage,
        "delta must not change results"
    );
    assert_eq!(full.crashes.len(), delta.crashes.len());
    let per_input_full = full.hw_virtual_time_ns / full.execs;
    let per_input_delta = delta.hw_virtual_time_ns / delta.execs;
    println!(
        "\nrestore-cost drop: {} -> {} virtual ns per input ({:.1}x cheaper with delta snapshots)",
        per_input_full,
        per_input_delta,
        per_input_full as f64 / per_input_delta.max(1) as f64
    );
}
