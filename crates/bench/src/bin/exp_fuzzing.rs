//! E8 — Fuzzing with snapshot reset vs reboot reset (paper §II
//! motivation, Muench et al.): executions/second and bug discovery.

use hardsnap::firmware;
use hardsnap_bench::{banner, fmt_ns, row};
use hardsnap_fuzz::{FuzzConfig, Fuzzer, ResetStrategy};
use hardsnap_sim::SimTarget;

fn campaign(reset: ResetStrategy, inputs: u64) -> hardsnap_fuzz::FuzzReport {
    let prog = hardsnap_isa::assemble(&firmware::uart_parser_firmware()).unwrap();
    let target = Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap());
    let mut f = Fuzzer::new(
        target,
        &prog,
        FuzzConfig {
            max_inputs: inputs,
            reset,
            seed: 42,
            tape_len: 2,
            ..Default::default()
        },
    )
    .unwrap();
    f.run()
}

fn main() {
    banner(
        "E8",
        "Fuzzing: snapshot reset vs device reboot",
        "snapshot reset is orders of magnitude cheaper per execution, so \
         virtual execs/sec (and time-to-crash) improve accordingly",
    );
    let widths = [10, 8, 10, 9, 14, 16];
    row(
        &[
            "reset",
            "execs",
            "coverage",
            "crashes",
            "hw-time",
            "virt execs/s",
        ],
        &widths,
    );
    for (name, reset) in [
        ("snapshot", ResetStrategy::Snapshot),
        ("reboot", ResetStrategy::Reboot),
    ] {
        let r = campaign(reset, 2000);
        row(
            &[
                name,
                &r.execs.to_string(),
                &r.coverage.to_string(),
                &r.crashes.len().to_string(),
                &fmt_ns(r.hw_virtual_time_ns),
                &format!("{:.1}", r.virtual_execs_per_sec),
            ],
            &widths,
        );
    }
}
