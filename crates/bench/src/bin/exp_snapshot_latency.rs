//! E1 — "How long does it take to save/restore a hardware state?"
//!
//! Measures snapshot save+restore virtual time for the three methods of
//! the paper (simulator process image, FPGA scan chain, FPGA readback)
//! across the corpus and across a synthetic design-size sweep.

use hardsnap_bench::{banner, fmt_ns, row, synthetic_design};
use hardsnap_bus::HwTarget;
use hardsnap_fpga::{FpgaOptions, FpgaTarget};
use hardsnap_sim::SimTarget;

fn measure_sim(m: hardsnap_rtl::Module) -> (u64, u64) {
    let mut t = SimTarget::new(m).unwrap();
    t.reset();
    t.step(50);
    let t0 = t.virtual_time_ns();
    let snap = t.save_snapshot().unwrap();
    let t1 = t.virtual_time_ns();
    t.restore_snapshot(&snap).unwrap();
    let t2 = t.virtual_time_ns();
    (t1 - t0, t2 - t1)
}

fn measure_fpga(m: hardsnap_rtl::Module) -> (u64, u64, u64) {
    let mut t = FpgaTarget::new(
        m,
        &FpgaOptions {
            readback: true,
            ..Default::default()
        },
    )
    .unwrap();
    t.reset();
    t.step(50);
    let t0 = t.virtual_time_ns();
    let snap = t.save_snapshot().unwrap();
    let t1 = t.virtual_time_ns();
    t.restore_snapshot(&snap).unwrap();
    let t2 = t.virtual_time_ns();
    let _ = t.save_via_readback().unwrap();
    let t3 = t.virtual_time_ns();
    (t1 - t0, t2 - t1, t3 - t2)
}

fn main() {
    banner(
        "E1",
        "Hardware snapshot save/restore latency",
        "scan chain: microseconds, growing linearly with state bits; \
         readback: large & mostly flat; simulator (CRIU-style): tens of ms, \
         growing with image size. Scan wins for every corpus design.",
    );
    let widths = [12, 11, 12, 12, 12, 12, 13];
    row(
        &[
            "design",
            "state-bits",
            "sim-save",
            "sim-restore",
            "scan-save",
            "scan-restore",
            "readback-save",
        ],
        &widths,
    );
    let corpus: Vec<(String, hardsnap_rtl::Module)> = hardsnap_periph::corpus()
        .into_iter()
        .map(|(n, f)| (n.to_string(), f().unwrap()))
        .chain([
            ("dma".to_string(), hardsnap_periph::dma().unwrap()),
            ("soc_top".to_string(), hardsnap_periph::soc().unwrap()),
        ])
        .collect();
    for (name, m) in corpus {
        let bits = hardsnap_rtl::ModuleStats::of(&m).state_bits;
        let (ss, sr) = measure_sim(m.clone());
        let (fs, fr, rb) = measure_fpga(m);
        row(
            &[
                &name,
                &bits.to_string(),
                &fmt_ns(ss),
                &fmt_ns(sr),
                &fmt_ns(fs),
                &fmt_ns(fr),
                &fmt_ns(rb),
            ],
            &widths,
        );
    }
    println!();
    println!("--- synthetic size sweep (shift-register designs) ---");
    row(
        &[
            "design",
            "state-bits",
            "sim-save",
            "sim-restore",
            "scan-save",
            "scan-restore",
            "readback-save",
        ],
        &widths,
    );
    for n in [1u32, 4, 16, 64, 256] {
        let m = synthetic_design(n);
        let bits = hardsnap_rtl::ModuleStats::of(&m).state_bits;
        let (ss, sr) = measure_sim(m.clone());
        let (fs, fr, rb) = measure_fpga(m);
        row(
            &[
                &format!("synth-{n}"),
                &bits.to_string(),
                &fmt_ns(ss),
                &fmt_ns(sr),
                &fmt_ns(fs),
                &fmt_ns(fr),
                &fmt_ns(rb),
            ],
            &widths,
        );
    }
}
