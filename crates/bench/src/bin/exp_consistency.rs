//! E4 — Consistency: the paper's Fig. 1 scenario measured.
//!
//! Two paths request different computations (REQ A / REQ B) from the
//! shared SHA-256 accelerator. Each mode runs the same firmware; the
//! harness compares the digest each path observed against the golden
//! result and counts corrupted paths and false alarms.

use hardsnap::firmware::{self, FIG1_RESULT_A, FIG1_RESULT_B};
use hardsnap::{ConsistencyMode, Engine, EngineConfig, Searcher};
use hardsnap_bench::{banner, fmt_ns, row};
use hardsnap_periph::golden;
use hardsnap_sim::SimTarget;

fn golden_digest_w0(w0: u32) -> u32 {
    let mut state = golden::SHA256_IV;
    let mut block = [0u32; 16];
    block[0] = w0;
    golden::sha256_compress(&mut state, &block);
    state[0]
}

fn main() {
    banner(
        "E4",
        "HW/SW consistency under concurrent path exploration (Fig. 1)",
        "hardsnap & reboot: 0 corrupted paths; naive-inconsistent: corrupted \
         results and/or stuck paths because REQ A and REQ B share one device",
    );
    let exp_a = golden_digest_w0(0xAAAA_0001);
    let exp_b = golden_digest_w0(0xBBBB_0002);
    println!("golden digest[0]: path A = {exp_a:#010x}, path B = {exp_b:#010x}");
    let widths = [20, 7, 10, 10, 8, 12];
    row(
        &["mode", "paths", "correct", "corrupt", "alarms", "hw-time"],
        &widths,
    );

    for (name, mode) in [
        ("hardsnap", ConsistencyMode::HardSnap),
        ("naive-consistent", ConsistencyMode::NaiveConsistent),
        ("naive-inconsistent", ConsistencyMode::NaiveInconsistent),
    ] {
        let prog = hardsnap_isa::assemble(&firmware::fig1_firmware()).unwrap();
        let config = EngineConfig {
            mode,
            searcher: Searcher::RoundRobin,
            quantum: 4,
            max_instructions: 400_000,
            ..Default::default()
        };
        let mut engine = Engine::new(
            Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap()),
            config,
        );
        engine.load_firmware(&prog);
        let r = engine.run();
        let mut correct = 0;
        let mut corrupt = 0;
        for s in &r.completed {
            let ta = s.mem.load32(&mut engine.executor.pool, FIG1_RESULT_A);
            let tb = s.mem.load32(&mut engine.executor.pool, FIG1_RESULT_B);
            let a = engine.executor.pool.as_const(ta);
            let b = engine.executor.pool.as_const(tb);
            match (a, b) {
                (Some(a), _) if a as u32 == exp_a && a != 0 => correct += 1,
                (_, Some(b)) if b as u32 == exp_b && b != 0 => correct += 1,
                _ => corrupt += 1,
            }
        }
        // Paths that never completed within budget (stuck polling a
        // device someone else reset) also count as corrupted outcomes.
        let stuck = 2u64.saturating_sub(r.metrics.paths_completed);
        row(
            &[
                name,
                &format!("{}/2", r.metrics.paths_completed),
                &correct.to_string(),
                &(corrupt + stuck as usize).to_string(),
                &r.bugs.len().to_string(),
                &fmt_ns(r.hw_virtual_time_ns),
            ],
            &widths,
        );
    }
}
