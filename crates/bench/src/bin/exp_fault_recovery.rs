//! E-FR — "What does an unreliable target link cost, and does recovery
//! preserve the analysis result?"
//!
//! Sweeps a deterministic fault-injection rate over the transport
//! between the parallel engine and its target replicas (bus handshake
//! timeouts, scan-chain bit flips, truncated captures, restore
//! timeouts, full hangs — see `hardsnap_bus::FaultPlan`) and records
//! the recovery work (retries, re-captures, quarantines) plus the
//! virtual-time overhead. The hard invariant checked on every point:
//! the canonical result digest is **bit-identical to the fault-free
//! run** — recovery is semantically invisible.
//!
//! Usage: `exp_fault_recovery [--smoke] [--json PATH]`.

use hardsnap::firmware;
use hardsnap::{
    ConsistencyMode, EngineConfig, FaultPlan, FaultyTarget, MetricsSnapshot, ParallelEngine,
    Searcher, TelemetryConfig,
};
use hardsnap_bench::{banner, fmt_ns, row};
use hardsnap_sim::SimTarget;

const WORKERS: usize = 2;

fn config() -> EngineConfig {
    EngineConfig {
        mode: ConsistencyMode::HardSnap,
        searcher: Searcher::RoundRobin,
        quantum: 4,
        max_instructions: 3_000_000,
        // Telemetry on: the per-fault-class recovery histograms below
        // come from it, and running the digest invariant with telemetry
        // enabled doubles as an observer-effect regression test.
        telemetry: TelemetryConfig {
            enabled: true,
            trace_io: false,
        },
        ..Default::default()
    }
}

/// Per-fault-class recovery latency summary, extracted from the
/// telemetry histograms (`recovery_vtime_ns.<class>` ×
/// `recovery_retries.<class>`).
struct Recovery {
    class: String,
    episodes: u64,
    p50_vtime_ns: u64,
    p99_vtime_ns: u64,
    p99_retries: u64,
}

fn recovery_stats(t: Option<&MetricsSnapshot>) -> Vec<Recovery> {
    let Some(t) = t else { return Vec::new() };
    let mut out = Vec::new();
    for h in &t.hists {
        if let Some(class) = h.name.strip_prefix("recovery_vtime_ns.") {
            let retries = t.hist(&format!("recovery_retries.{class}"));
            out.push(Recovery {
                class: class.to_string(),
                episodes: h.count(),
                p50_vtime_ns: h.approx_quantile(0.5),
                p99_vtime_ns: h.approx_quantile(0.99),
                p99_retries: retries.map(|r| r.approx_quantile(0.99)).unwrap_or(0),
            });
        }
    }
    out
}

/// One fault-rate point of the sweep.
struct Point {
    rate: f64,
    injected: u64,
    retried: u64,
    recovered: u64,
    quarantined: u64,
    vtime_ns: u64,
    digest: u64,
    host_ms: u64,
    recovery: Vec<Recovery>,
}

fn run_point(asm: &str, rate: f64, config: &EngineConfig) -> Point {
    let prog = hardsnap_isa::assemble(asm).unwrap();
    let soc = hardsnap_periph::soc().unwrap();
    let sim = SimTarget::new(soc).unwrap();
    let r = if rate > 0.0 {
        let proto = FaultyTarget::new(sim, FaultPlan::uniform(0xE4_FA17, rate));
        let mut engine = ParallelEngine::new(&proto, WORKERS, config.clone()).unwrap();
        engine.load_firmware(&prog);
        engine.run()
    } else {
        let mut engine = ParallelEngine::new(&sim, WORKERS, config.clone()).unwrap();
        engine.load_firmware(&prog);
        engine.run()
    };
    assert!(
        r.fault_log.is_empty(),
        "rate {rate}: states died: {:?}",
        r.fault_log
    );
    Point {
        rate,
        injected: r.faults.injected,
        retried: r.faults.retried,
        recovered: r.faults.recovered,
        quarantined: r.faults.quarantined,
        vtime_ns: r.hw_virtual_time_ns,
        digest: r.canonical_digest(),
        host_ms: r.host_time.as_millis() as u64,
        recovery: recovery_stats(r.telemetry.as_ref()),
    }
}

/// Dedicated quarantine point: zero fault budget plus a hang-prone
/// link forces replica replacement on every wedge.
fn run_quarantine(asm: &str, config: &EngineConfig) -> Point {
    let mut config = config.clone();
    config.retry.replica_fault_budget = 0;
    let prog = hardsnap_isa::assemble(asm).unwrap();
    let soc = hardsnap_periph::soc().unwrap();
    let sim = SimTarget::new(soc).unwrap();
    let plan = FaultPlan {
        seed: 0x0AB5_EC07,
        hang_rate: 0.10,
        ..FaultPlan::off()
    };
    let proto = FaultyTarget::new(sim, plan);
    let mut engine = ParallelEngine::new(&proto, WORKERS, config.clone()).unwrap();
    engine.load_firmware(&prog);
    let r = engine.run();
    assert!(r.fault_log.is_empty(), "states died: {:?}", r.fault_log);
    Point {
        rate: 0.10,
        injected: r.faults.injected,
        retried: r.faults.retried,
        recovered: r.faults.recovered,
        quarantined: r.faults.quarantined,
        vtime_ns: r.hw_virtual_time_ns,
        digest: r.canonical_digest(),
        host_ms: r.host_time.as_millis() as u64,
        recovery: recovery_stats(r.telemetry.as_ref()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut json_path = "BENCH_fault_recovery.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                i += 1;
                json_path = args.get(i).expect("--json needs a path").clone();
            }
            other => panic!("unknown argument {other:?} (try --smoke / --json PATH)"),
        }
        i += 1;
    }
    let fork_k: u32 = if smoke { 3 } else { 5 };
    let rates: &[f64] = if smoke {
        &[0.0, 0.10]
    } else {
        &[0.0, 0.02, 0.05, 0.10]
    };

    banner(
        "E-FR",
        "Fault-injected transport: recovery cost and result integrity",
        "retry/re-capture/quarantine absorb link faults; the canonical \
         digest must stay bit-identical to the fault-free run",
    );
    println!();
    println!(
        "--- {WORKERS}-worker ParallelEngine over branching firmware (k={fork_k}), \
         uniform fault rate sweep ---"
    );
    let widths = [7, 9, 8, 10, 12, 13, 10, 9];
    row(
        &[
            "rate",
            "injected",
            "retried",
            "recovered",
            "quarantined",
            "hw-vtime",
            "overhead",
            "digest",
        ],
        &widths,
    );

    let asm = firmware::branching_firmware(fork_k);
    let config = config();
    let mut points: Vec<Point> = rates.iter().map(|&r| run_point(&asm, r, &config)).collect();
    points.push(run_quarantine(&asm, &config));
    let clean_vtime = points[0].vtime_ns;
    let clean_digest = points[0].digest;
    for (i, p) in points.iter().enumerate() {
        let quarantine_row = i == points.len() - 1;
        assert_eq!(
            p.digest, clean_digest,
            "rate {}: faults leaked into the result",
            p.rate
        );
        row(
            &[
                &if quarantine_row {
                    format!("q@{:.2}", p.rate)
                } else {
                    format!("{:.2}", p.rate)
                },
                &p.injected.to_string(),
                &p.retried.to_string(),
                &p.recovered.to_string(),
                &p.quarantined.to_string(),
                &fmt_ns(p.vtime_ns),
                &format!(
                    "{:+.1}%",
                    (p.vtime_ns as f64 / clean_vtime as f64 - 1.0) * 100.0
                ),
                &format!("{:08x}", p.digest as u32),
            ],
            &widths,
        );
    }
    let quarantine = points.last().unwrap();
    assert!(
        quarantine.quarantined >= 1,
        "the zero-budget hang plan must quarantine at least one replica"
    );

    println!();
    println!("--- per-fault-class recovery latency (telemetry histograms) ---");
    let rwidths = [7, 16, 9, 13, 13, 12];
    row(
        &[
            "rate",
            "class",
            "episodes",
            "p50 latency",
            "p99 latency",
            "p99 retries",
        ],
        &rwidths,
    );
    for (i, p) in points.iter().enumerate() {
        let tag = if i == points.len() - 1 {
            format!("q@{:.2}", p.rate)
        } else {
            format!("{:.2}", p.rate)
        };
        for rec in &p.recovery {
            row(
                &[
                    &tag,
                    &rec.class,
                    &rec.episodes.to_string(),
                    &fmt_ns(rec.p50_vtime_ns),
                    &fmt_ns(rec.p99_vtime_ns),
                    &rec.p99_retries.to_string(),
                ],
                &rwidths,
            );
        }
    }
    assert!(
        points
            .iter()
            .skip(1)
            .any(|p| p.recovery.iter().any(|r| r.episodes > 0)),
        "faulted points must produce per-class recovery histograms"
    );

    let mut entries = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        let recovery = p
            .recovery
            .iter()
            .map(|r| {
                format!(
                    "{{\"class\": \"{}\", \"episodes\": {}, \"p50_vtime_ns\": {}, \
                     \"p99_vtime_ns\": {}, \"p99_retries\": {}}}",
                    r.class, r.episodes, r.p50_vtime_ns, r.p99_vtime_ns, r.p99_retries
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        entries.push_str(&format!(
            "    {{\"rate\": {:.2}, \"zero_budget_quarantine\": {}, \"injected\": {}, \
             \"retried\": {}, \"recovered\": {}, \"quarantined\": {}, \
             \"hw_vtime_ns\": {}, \"overhead_vs_clean\": {:.4}, \
             \"host_ms\": {}, \"digest\": \"{:016x}\", \"recovery\": [{recovery}]}}",
            p.rate,
            i == points.len() - 1,
            p.injected,
            p.retried,
            p.recovered,
            p.quarantined,
            p.vtime_ns,
            p.vtime_ns as f64 / clean_vtime as f64 - 1.0,
            p.host_ms,
            p.digest,
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"fault_recovery\",\n  \
         \"workload\": \"branching_firmware({fork_k}), quantum 4, {WORKERS} workers, HardSnap\",\n  \
         \"invariant\": \"canonical digest bit-identical to fault-free at every point\",\n  \
         \"points\": [\n{entries}\n  ]\n}}\n"
    );
    std::fs::write(&json_path, json).unwrap_or_else(|e| panic!("write {json_path}: {e}"));
    println!();
    println!("recorded {json_path}");
    println!("note: every row's digest equals the fault-free row — retries,");
    println!("re-captures and replica quarantines cost only virtual time. The");
    println!("final row reruns the 10% hang plan with a zero fault budget, so");
    println!("each wedge is survived by quarantine + rebuild instead of reset.");
}
