//! E5 — Finding and diagnosing planted security bugs.
//!
//! Three planted bugs (buffer overflow by off-by-one, hardware-readback-
//! dependent magic command, IRQ-gated detonation) analyzed under each
//! consistency mode. HardSnap must find all three with reproducing test
//! cases and zero false alarms; the inconsistent baseline degrades.

use hardsnap::firmware::{vulnerable_firmware, PlantedBug};
use hardsnap::{BugKind, ConsistencyMode, Engine, EngineConfig, Searcher};
use hardsnap_bench::{banner, row};
use hardsnap_sim::SimTarget;

fn expected_kind(bug: PlantedBug) -> BugKind {
    match bug {
        PlantedBug::LengthOverflow => BugKind::Unmapped,
        PlantedBug::MagicCommand | PlantedBug::IrqGated => BugKind::FailHit,
    }
}

fn main() {
    banner(
        "E5",
        "Planted-bug detection and diagnosis",
        "hardsnap: 3/3 found, reproducing test case each, 0 false alarms; \
         inconsistent baseline: misses and/or false alarms",
    );
    let widths = [20, 17, 7, 9, 13, 24];
    row(
        &["mode", "bug", "found", "false+", "instrs", "testcase"],
        &widths,
    );
    for (mode_name, mode) in [
        ("hardsnap", ConsistencyMode::HardSnap),
        ("naive-consistent", ConsistencyMode::NaiveConsistent),
        ("naive-inconsistent", ConsistencyMode::NaiveInconsistent),
    ] {
        for bug in PlantedBug::all() {
            let prog = hardsnap_isa::assemble(&vulnerable_firmware(bug)).unwrap();
            let config = EngineConfig {
                mode,
                searcher: Searcher::RoundRobin,
                quantum: 4,
                max_instructions: 500_000,
                ..Default::default()
            };
            let mut engine = Engine::new(
                Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap()),
                config,
            );
            engine.load_firmware(&prog);
            let r = engine.run();
            let want = expected_kind(bug);
            let hit = r.bugs.iter().find(|b| b.kind == want);
            let false_pos = r.bugs.iter().filter(|b| b.kind != want).count();
            let tc = hit
                .and_then(|b| b.testcase.as_ref())
                .map(|m| {
                    m.iter()
                        .map(|(k, v)| format!("{k}={v:#x}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .unwrap_or_else(|| "-".into());
            row(
                &[
                    mode_name,
                    bug.name(),
                    if hit.is_some() { "yes" } else { "NO" },
                    &false_pos.to_string(),
                    &r.instructions.to_string(),
                    &tc,
                ],
                &widths,
            );
        }
        // Consistency-stress workload: 16 concurrently explored paths,
        // each asserting its own hardware readback. A correct engine
        // reports zero bugs here; shared-hardware analysis raises false
        // alarms (the false positives the paper warns about).
        let prog = hardsnap_isa::assemble(&hardsnap::firmware::branching_firmware(4)).unwrap();
        let config = EngineConfig {
            mode,
            searcher: Searcher::RoundRobin,
            quantum: 4,
            max_instructions: 500_000,
            ..Default::default()
        };
        let mut engine = Engine::new(
            Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap()),
            config,
        );
        engine.load_firmware(&prog);
        let r = engine.run();
        row(
            &[
                mode_name,
                "bug-free-16path",
                "-",
                &r.bugs.len().to_string(),
                &r.instructions.to_string(),
                if r.bugs.is_empty() {
                    "(clean)"
                } else {
                    "(false alarms!)"
                },
            ],
            &widths,
        );
    }
}
