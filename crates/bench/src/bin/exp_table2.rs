//! T2 — Peripheral corpus characteristics (the paper's corpus table):
//! Verilog size, flip-flops, state bits (= scan-chain length) and the
//! instrumentation overhead per peripheral.

use hardsnap_bench::{banner, row};
use hardsnap_rtl::ModuleStats;
use hardsnap_scan::{instrument, ScanOptions};

fn main() {
    banner(
        "T2",
        "Peripheral corpus characteristics",
        "4 peripherals of different complexity, spanning ~2 orders of \
         magnitude in state bits",
    );
    let widths = [10, 8, 7, 7, 9, 9, 11, 11, 9];
    row(
        &[
            "periph",
            "v-loc",
            "nets",
            "flops",
            "ff-bits",
            "mem-bits",
            "state-bits",
            "comb-cells",
            "scan+%",
        ],
        &widths,
    );
    let sources = [
        ("timer", hardsnap_periph::TIMER_V),
        ("uart", hardsnap_periph::UART_V),
        ("sha256", hardsnap_periph::SHA256_V),
        ("aes128", hardsnap_periph::AES128_V),
        ("dma", hardsnap_periph::DMA_V),
        ("soc_top", hardsnap_periph::SOC_TOP_V),
    ];
    for ((name, f), (_, src)) in hardsnap_periph::corpus()
        .into_iter()
        .chain([
            ("dma", hardsnap_periph::dma as fn() -> _),
            ("soc_top", hardsnap_periph::soc as fn() -> _),
        ])
        .zip(sources)
    {
        let m = f().unwrap();
        let stats = ModuleStats::of(&m);
        let (instrumented, chain) = instrument(&m, &ScanOptions::default()).unwrap();
        let istats = ModuleStats::of(&instrumented);
        let overhead =
            100.0 * (istats.comb_cells as f64 - stats.comb_cells as f64) / stats.comb_cells as f64;
        let loc = src.lines().filter(|l| !l.trim().is_empty()).count();
        row(
            &[
                name,
                &loc.to_string(),
                &stats.nets.to_string(),
                &stats.flops.to_string(),
                &stats.flop_bits.to_string(),
                &stats.mem_bits.to_string(),
                &format!(
                    "{} (={})",
                    stats.state_bits,
                    chain.chain_bits()
                        + chain
                            .mems
                            .iter()
                            .map(|c| c.width as u64 * c.depth as u64)
                            .sum::<u64>()
                ),
                &stats.comb_cells.to_string(),
                &format!("{overhead:+.1}%"),
            ],
            &widths,
        );
    }
    println!();
    println!("state-bits is the scan-chain length (registers) plus collar-accessed");
    println!("memory bits; scan+% is the combinational-cell overhead of the");
    println!("inserted scan chain and memory collar (experiment E7 details).");
}
