//! E-serve — "Can a bounded replica pool safely multiplex many budgeted
//! campaigns, and does `kill -9` lose anything?"
//!
//! Exercises the campaign service end to end and records the three
//! operational numbers that matter for a shared board farm: queue wait
//! under contention, admission-rejection behaviour at saturation, and
//! recovery latency after a hard daemon kill — plus the cost of
//! watching it all. Five phases:
//!
//! 1. **Contention**: more jobs than replicas; all must complete with
//!    one canonical digest, queue waits recorded.
//! 2. **Saturation**: pool 1, queue 1 — overflow submissions must be
//!    rejected with the *typed* `Saturated` error, never silently
//!    queued or dropped.
//! 3. **Over-budget**: a vtime-budgeted job is cancelled at a quantum
//!    boundary; its checkpoint resumes under a raised budget to the
//!    exact uninterrupted digest.
//! 4. **Crash**: a real `hardsnap-serve` subprocess is SIGKILLed
//!    mid-run (checkpoint present, job unfinished), restarted, and
//!    every job must finish with a digest **bit-identical** to the
//!    uninterrupted reference.
//! 5. **Observer effect**: the same fleet runs dark, then under full
//!    observation (live subscriber draining the event stream + a TCP
//!    scraper hammering the Prometheus endpoint); digests must stay
//!    bit-identical and the wall-clock overhead within a small bound.
//!
//! Usage: `exp_serve [--smoke] [--json PATH]`.

use hardsnap::{CancelToken, StopReason};
use hardsnap_bench::{banner, row};
use hardsnap_serve::{
    runner, Client, Daemon, DaemonConfig, EventBody, JobSpec, JobState, ServeError, Verdict,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("hardsnap-exp-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn demo_spec(name: &str, k: u32, leg: u64) -> JobSpec {
    JobSpec {
        name: name.into(),
        firmware: format!("demo:{k}"),
        leg_instructions: leg,
        ..JobSpec::default()
    }
}

/// Uninterrupted in-process reference run of a spec; returns its
/// canonical digest.
fn reference_digest(spec: &JobSpec, tag: &str) -> u64 {
    let dir = tmp(&format!("ref-{tag}"));
    let out = runner::run_job(spec, &dir, &CancelToken::new(), false, &mut |_| {})
        .expect("reference run");
    assert_eq!(out.verdict, Verdict::Completed, "reference must complete");
    let _ = std::fs::remove_dir_all(&dir);
    out.digest
}

struct Contention {
    jobs: usize,
    pool: usize,
    max_queue_wait_ms: u64,
    total_ms: u64,
}

fn phase_contention(k: u32, jobs: usize, reference: u64) -> Contention {
    let pool = 2;
    let d = Daemon::new(DaemonConfig {
        state_dir: tmp("contention"),
        pool_replicas: pool,
        queue_max: jobs,
        ..DaemonConfig::default()
    })
    .expect("daemon");
    let t0 = Instant::now();
    let ids: Vec<u64> = (0..jobs)
        .map(|i| {
            d.submit(demo_spec(&format!("c{i}"), k, 256))
                .expect("admit")
        })
        .collect();
    assert!(
        d.wait_idle(Duration::from_secs(600)),
        "contention phase hung"
    );
    let total_ms = t0.elapsed().as_millis() as u64;
    let mut max_wait = 0;
    for id in ids {
        let s = &d.status(Some(id))[0];
        assert_eq!(s.verdict, Some(Verdict::Completed));
        assert_eq!(
            s.digest.as_deref(),
            Some(format!("{reference:#018x}").as_str()),
            "job {id}: contention changed the digest"
        );
        max_wait = max_wait.max(s.queue_wait_ms);
    }
    Contention {
        jobs,
        pool,
        max_queue_wait_ms: max_wait,
        total_ms,
    }
}

struct Saturation {
    admitted: usize,
    rejected: usize,
}

fn phase_saturation(k: u32) -> Saturation {
    let d = Daemon::new(DaemonConfig {
        state_dir: tmp("saturation"),
        pool_replicas: 1,
        queue_max: 1,
        ..DaemonConfig::default()
    })
    .expect("daemon");
    // Burst-submit: with one replica and a one-slot queue, at most two
    // of these can be accepted before the first finishes.
    let mut admitted = 0;
    let mut rejected = 0;
    for i in 0..6 {
        match d.submit(demo_spec(&format!("s{i}"), k, 64)) {
            Ok(_) => admitted += 1,
            Err(ServeError::Saturated { .. }) => rejected += 1,
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    // A job wider than the pool must always be rejected, typed.
    let mut wide = demo_spec("wide", k, 64);
    wide.workers = 4;
    match d.submit(wide) {
        Err(ServeError::Saturated { reason }) => assert!(reason.contains("pool")),
        other => panic!("workers>pool must saturate, got {other:?}"),
    }
    rejected += 1;
    assert!(
        d.wait_idle(Duration::from_secs(600)),
        "saturation phase hung"
    );
    assert!(rejected >= 1, "burst never saturated a 1+1 daemon");
    Saturation { admitted, rejected }
}

struct OverBudget {
    stop: StopReason,
    partial_instructions: u64,
    resumed_matches: bool,
}

fn phase_over_budget(k: u32, reference: u64) -> OverBudget {
    let dir = tmp("over-budget");
    let mut spec = demo_spec("tight", k, 128);
    spec.max_vtime_ns = 50_000; // a handful of quanta
    let out = runner::run_job(&spec, &dir, &CancelToken::new(), false, &mut |_| {})
        .expect("budgeted run");
    let Verdict::OverBudget(stop) = out.verdict else {
        panic!("expected OverBudget, got {:?}", out.verdict);
    };
    // The cancelled-at-quantum-boundary checkpoint must resume under a
    // raised budget to the exact uninterrupted digest.
    spec.max_vtime_ns = 0;
    let resumed =
        runner::run_job(&spec, &dir, &CancelToken::new(), false, &mut |_| {}).expect("resumed run");
    assert_eq!(resumed.verdict, Verdict::Completed);
    let _ = std::fs::remove_dir_all(&dir);
    OverBudget {
        stop,
        partial_instructions: out.instructions,
        resumed_matches: resumed.digest == reference,
    }
}

struct Crash {
    jobs: usize,
    killed_after_ms: u64,
    recovery_ms: u64,
    resumed_jobs: usize,
    digests_match: bool,
}

fn serve_binary() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("exe dir");
    let candidate = dir.join("hardsnap-serve");
    assert!(
        candidate.exists(),
        "hardsnap-serve not found next to exp_serve ({}); build the workspace first",
        candidate.display()
    );
    candidate
}

fn spawn_daemon(state: &Path, socket: &Path) -> std::process::Child {
    std::process::Command::new(serve_binary())
        .arg("--state-dir")
        .arg(state)
        .arg("--socket")
        .arg(socket)
        .arg("--pool")
        .arg("2")
        .arg("--queue-max")
        .arg("8")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn hardsnap-serve")
}

fn phase_crash(k: u32, jobs: usize, reference: u64) -> Crash {
    let state = tmp("crash");
    std::fs::create_dir_all(&state).expect("state dir");
    let socket = state.join("serve.sock");
    let mut child = spawn_daemon(&state, &socket);
    let mut client = Client::connect_retry(&socket, Duration::from_secs(10)).expect("connect");
    let t0 = Instant::now();
    let ids: Vec<u64> = (0..jobs)
        .map(|i| {
            client
                .submit(&demo_spec(&format!("k{i}"), k, 64))
                .expect("admit")
        })
        .collect();
    // Kill only once the daemon is demonstrably mid-run: some job has
    // checkpointed at least one leg (a campaign manifest exists) while
    // its terminal result.json does not yet.
    let deadline = Instant::now() + Duration::from_secs(120);
    let killable = |id: u64| {
        let dir = state.join("jobs").join(id.to_string());
        dir.join("checkpoint").join("campaign.hscamp").exists() && !dir.join("result.json").exists()
    };
    while !ids.iter().copied().any(killable) {
        assert!(
            Instant::now() < deadline,
            "no mid-run checkpoint appeared before every job finished"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL daemon");
    let _ = child.wait();
    let killed_after_ms = t0.elapsed().as_millis() as u64;

    // Restart on the same state directory: the journal re-enqueues every
    // job without a terminal result, each resuming from its checkpoint.
    let t1 = Instant::now();
    let mut child2 = spawn_daemon(&state, &socket);
    let mut client = Client::connect_retry(&socket, Duration::from_secs(10)).expect("reconnect");
    let mut digests_match = true;
    let mut resumed_jobs = 0;
    for &id in &ids {
        let s = client.wait(id, Duration::from_secs(600)).expect("terminal");
        assert_eq!(s.state, JobState::Done);
        assert_eq!(
            s.verdict,
            Some(Verdict::Completed),
            "job {id} did not complete after recovery"
        );
        digests_match &= s.digest.as_deref() == Some(format!("{reference:#018x}").as_str());
        // run_ms restarts from zero in the second incarnation only for
        // resumed jobs; jobs finished before the kill keep their stats.
        if s.queue_wait_ms == 0 || s.run_ms > 0 {
            resumed_jobs += 1;
        }
    }
    let recovery_ms = t1.elapsed().as_millis() as u64;
    assert!(
        digests_match,
        "kill -9 + restart changed a canonical digest"
    );
    let mut shutdown_client = client;
    let _ = shutdown_client.shutdown();
    let _ = child2.wait();
    let _ = std::fs::remove_dir_all(&state);
    Crash {
        jobs,
        killed_after_ms,
        recovery_ms,
        resumed_jobs,
        digests_match,
    }
}

struct ObserveOverhead {
    trials: usize,
    baseline_ms: u64,
    observed_ms: u64,
    overhead_percent: f64,
    events_seen: usize,
    scrapes: usize,
}

/// Runs `jobs` demo campaigns through an in-process daemon and returns
/// the fleet wall-clock. With `observe`, the run happens under maximal
/// observation: telemetry recorders on, a subscriber thread draining
/// the live event stream, and a TCP client scraping the real Prometheus
/// endpoint in a tight loop. Digests are asserted against `reference`
/// either way — observation must never change what the fleet computes.
fn timed_fleet(
    tag: &str,
    k: u32,
    jobs: usize,
    observe: bool,
    reference: u64,
) -> (u64, usize, usize) {
    let d = Daemon::new(DaemonConfig {
        state_dir: tmp(tag),
        pool_replicas: 2,
        queue_max: jobs,
        observe,
        ..DaemonConfig::default()
    })
    .expect("daemon");
    let mut drainer = None;
    let mut scraper = None;
    let stop = Arc::new(AtomicBool::new(false));
    if observe {
        let sub = d.subscribe();
        drainer = Some(std::thread::spawn(move || {
            let mut seen = 0usize;
            let mut terminals = 0usize;
            while let Some(ev) = sub.recv_timeout(Duration::from_millis(250)) {
                seen += 1;
                if matches!(ev.body, EventBody::Terminal { .. }) {
                    terminals += 1;
                    if terminals == jobs {
                        break;
                    }
                }
            }
            seen
        }));
        let addr = d
            .spawn_metrics_http("127.0.0.1:0")
            .expect("metrics endpoint");
        let stop2 = Arc::clone(&stop);
        scraper = Some(std::thread::spawn(move || {
            use std::io::{Read, Write};
            let mut ok = 0usize;
            while !stop2.load(Ordering::Relaxed) {
                if let Ok(mut s) = std::net::TcpStream::connect(addr) {
                    let _ = s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n");
                    let mut body = String::new();
                    let _ = s.read_to_string(&mut body);
                    if body.contains("hardsnap_") {
                        ok += 1;
                    }
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            ok
        }));
    }
    let t0 = Instant::now();
    let ids: Vec<u64> = (0..jobs)
        .map(|i| {
            d.submit(demo_spec(&format!("o{i}"), k, 256))
                .expect("admit")
        })
        .collect();
    assert!(d.wait_idle(Duration::from_secs(600)), "observe phase hung");
    let wall_ms = t0.elapsed().as_millis() as u64;
    for id in ids {
        let s = &d.status(Some(id))[0];
        assert_eq!(s.verdict, Some(Verdict::Completed));
        assert_eq!(
            s.digest.as_deref(),
            Some(format!("{reference:#018x}").as_str()),
            "job {id}: observation changed the digest (observe={observe})"
        );
    }
    stop.store(true, Ordering::Relaxed);
    let events = drainer.map(|t| t.join().expect("drainer")).unwrap_or(0);
    let scrapes = scraper.map(|t| t.join().expect("scraper")).unwrap_or(0);
    if observe {
        assert!(events > 0, "subscriber saw no events");
        assert!(scrapes > 0, "no successful Prometheus scrape");
    }
    (wall_ms, events, scrapes)
}

fn phase_observe(k: u32, jobs: usize, reference: u64, trials: usize) -> ObserveOverhead {
    // min-of-N on both sides strips scheduler noise; the observed run
    // pays for event publication, per-leg telemetry merges, and the
    // concurrent scraper — all of which must stay in the noise floor.
    let mut baseline_ms = u64::MAX;
    let mut observed_ms = u64::MAX;
    let mut events_seen = 0;
    let mut scrapes = 0;
    for t in 0..trials {
        let (b, _, _) = timed_fleet(&format!("dark-{t}"), k, jobs, false, reference);
        baseline_ms = baseline_ms.min(b);
        let (o, ev, sc) = timed_fleet(&format!("lit-{t}"), k, jobs, true, reference);
        if o < observed_ms {
            observed_ms = o;
            events_seen = ev;
            scrapes = sc;
        }
    }
    let overhead_percent = if observed_ms > baseline_ms && baseline_ms > 0 {
        (observed_ms - baseline_ms) as f64 * 100.0 / baseline_ms as f64
    } else {
        0.0
    };
    ObserveOverhead {
        trials,
        baseline_ms,
        observed_ms,
        overhead_percent,
        events_seen,
        scrapes,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut json_path = "BENCH_serve.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                i += 1;
                json_path = args.get(i).expect("--json needs a path").clone();
            }
            other => panic!("unknown argument {other:?} (try --smoke / --json PATH)"),
        }
        i += 1;
    }
    let k: u32 = if smoke { 4 } else { 5 };
    let jobs = if smoke { 3 } else { 4 };

    banner(
        "E-serve",
        "Campaign service: budgets, admission, crash safety",
        "a bounded replica pool multiplexes budgeted jobs; kill -9 + \
         restart must reproduce uninterrupted digests bit-for-bit",
    );
    println!();

    let reference = reference_digest(&demo_spec("ref", k, 0), "main");
    println!("reference digest (demo:{k}): {reference:#018x}");

    println!();
    println!("--- phase 1: contention ({jobs} jobs, pool 2) ---");
    let contention = phase_contention(k, jobs, reference);
    let widths = [8, 8, 18, 12];
    row(&["jobs", "pool", "max queue wait", "total"], &widths);
    row(
        &[
            &contention.jobs.to_string(),
            &contention.pool.to_string(),
            &format!("{} ms", contention.max_queue_wait_ms),
            &format!("{} ms", contention.total_ms),
        ],
        &widths,
    );

    println!();
    println!("--- phase 2: saturation (pool 1, queue 1, burst 6 + wide job) ---");
    let saturation = phase_saturation(k);
    println!(
        "admitted {} / rejected {} (every rejection typed Saturated)",
        saturation.admitted, saturation.rejected
    );

    println!();
    println!("--- phase 3: over-budget cancel at quantum boundary + resume ---");
    let over = phase_over_budget(k, reference);
    println!(
        "stopped on {} after {} instructions; resumed digest matches: {}",
        over.stop.as_str(),
        over.partial_instructions,
        over.resumed_matches
    );
    assert!(over.resumed_matches, "over-budget resume diverged");

    println!();
    println!("--- phase 4: SIGKILL mid-run + restart ({jobs} jobs) ---");
    let crash = phase_crash(k, jobs, reference);
    println!(
        "killed after {} ms; {} resumed; all terminal {} ms after restart; digests match: {}",
        crash.killed_after_ms, crash.resumed_jobs, crash.recovery_ms, crash.digests_match
    );

    println!();
    println!("--- phase 5: observer effect (subscriber + Prometheus scraper) ---");
    let trials = if smoke { 1 } else { 3 };
    // The percent bound needs enough wall-clock to amortize the fixed
    // per-run costs (thread spawns, endpoint bind), so the full run
    // uses a heavier fleet than the other phases.
    let ok = if smoke { k } else { 7 };
    let obs_reference = if ok == k {
        reference
    } else {
        reference_digest(&demo_spec("oref", ok, 0), "obs")
    };
    let obs = phase_observe(ok, jobs, obs_reference, trials);
    println!(
        "dark {} ms vs observed {} ms (min of {}): overhead {:.2}% \
         ({} events drained, {} scrapes, digests bit-identical)",
        obs.baseline_ms,
        obs.observed_ms,
        obs.trials,
        obs.overhead_percent,
        obs.events_seen,
        obs.scrapes
    );
    // Smoke runs are too short to measure percent overhead meaningfully;
    // the full run enforces the paper-grade bound.
    if !smoke {
        assert!(
            obs.overhead_percent <= 2.0,
            "observability overhead {:.2}% exceeds the 2% budget",
            obs.overhead_percent
        );
    }

    let json = format!(
        "{{\n  \"experiment\": \"serve\",\n  \
         \"workload\": \"demo:{k}, bounded pool, leg-checkpointed jobs\",\n  \
         \"invariant\": \"saturation is typed, budgets cancel at quantum boundaries, kill -9 + restart reproduces uninterrupted digests\",\n  \
         \"reference_digest\": \"{reference:016x}\",\n  \
         \"contention\": {{\"jobs\": {}, \"pool\": {}, \"max_queue_wait_ms\": {}, \"total_ms\": {}}},\n  \
         \"saturation\": {{\"admitted\": {}, \"rejected\": {}}},\n  \
         \"over_budget\": {{\"stop\": \"{}\", \"partial_instructions\": {}, \"resumed_digest_matches\": {}}},\n  \
         \"crash\": {{\"jobs\": {}, \"killed_after_ms\": {}, \"recovery_ms\": {}, \"resumed_jobs\": {}, \"digests_match\": {}}},\n  \
         \"observe\": {{\"trials\": {}, \"baseline_ms\": {}, \"observed_ms\": {}, \"overhead_percent\": {:.2}, \"events_seen\": {}, \"scrapes\": {}, \"digests_match\": true}}\n}}\n",
        contention.jobs,
        contention.pool,
        contention.max_queue_wait_ms,
        contention.total_ms,
        saturation.admitted,
        saturation.rejected,
        over.stop.as_str(),
        over.partial_instructions,
        over.resumed_matches,
        crash.jobs,
        crash.killed_after_ms,
        crash.recovery_ms,
        crash.resumed_jobs,
        crash.digests_match,
        obs.trials,
        obs.baseline_ms,
        obs.observed_ms,
        obs.overhead_percent,
        obs.events_seen,
        obs.scrapes,
    );
    std::fs::write(&json_path, json).unwrap_or_else(|e| panic!("write {json_path}: {e}"));
    println!();
    println!("recorded {json_path}");
    println!("note: phase 4 SIGKILLs a live daemon only after observing a");
    println!("checkpointed-but-unfinished job; the restarted daemon re-enqueues");
    println!("every journaled job and each resumes from its last crash-atomic");
    println!("leg checkpoint to the bit-identical canonical digest.");
}
