//! E7 — Scan-chain instrumentation overhead and scan vs readback.
//!
//! Area overhead of the inserted scan chain + memory collars per corpus
//! design, and the latency comparison between the scan chain and the
//! high-end-FPGA readback path across design sizes.

use hardsnap_bench::{banner, fmt_ns, row, synthetic_design};
use hardsnap_bus::HwTarget;
use hardsnap_fpga::{FpgaOptions, FpgaTarget};
use hardsnap_rtl::ModuleStats;
use hardsnap_scan::{instrument, ScanOptions};

/// Scan-save latency of the size-`n` synthetic design with a
/// `width`-lane chain.
fn save_latency(n: u32, width: u32) -> u64 {
    let mut t = FpgaTarget::new(
        synthetic_design(n),
        &FpgaOptions {
            scan: ScanOptions {
                width,
                ..ScanOptions::default()
            },
            ..FpgaOptions::default()
        },
    )
    .unwrap();
    t.reset();
    let t0 = t.virtual_time_ns();
    let _ = t.save_snapshot().unwrap();
    t.virtual_time_ns() - t0
}

fn main() {
    banner(
        "E7",
        "Scan-chain area overhead and scan-vs-readback latency",
        "modest comb-cell overhead, zero added flip-flops; scan beats \
         readback below ~10^6 state bits (readback's fixed frame cost \
         dominates), readback wins asymptotically on giant designs",
    );
    println!("--- area overhead per corpus design ---");
    let widths = [10, 12, 12, 10, 12, 12];
    row(
        &[
            "design",
            "cells-orig",
            "cells-scan",
            "overhead",
            "ff-orig",
            "ff-scan",
        ],
        &widths,
    );
    for (name, f) in hardsnap_periph::corpus()
        .into_iter()
        .chain([("soc_top", hardsnap_periph::soc as fn() -> _)])
    {
        let m = f().unwrap();
        let before = ModuleStats::of(&m);
        let (im, _) = instrument(&m, &ScanOptions::default()).unwrap();
        let after = ModuleStats::of(&im);
        row(
            &[
                name,
                &before.comb_cells.to_string(),
                &after.comb_cells.to_string(),
                &format!(
                    "{:+.1}%",
                    100.0 * (after.comb_cells as f64 - before.comb_cells as f64)
                        / before.comb_cells as f64
                ),
                &before.flop_bits.to_string(),
                &after.flop_bits.to_string(),
            ],
            &widths,
        );
    }
    println!();
    println!("--- scan vs readback latency (size sweep) ---");
    let widths = [10, 12, 12, 14, 10];
    row(
        &[
            "design",
            "state-bits",
            "scan-save",
            "readback-save",
            "winner",
        ],
        &widths,
    );
    for n in [1u32, 16, 128, 512] {
        let m = synthetic_design(n);
        let bits = ModuleStats::of(&m).state_bits;
        let mut t = FpgaTarget::new(
            m,
            &FpgaOptions {
                readback: true,
                ..Default::default()
            },
        )
        .unwrap();
        t.reset();
        let t0 = t.virtual_time_ns();
        let _ = t.save_snapshot().unwrap();
        let scan = t.virtual_time_ns() - t0;
        let t1 = t.virtual_time_ns();
        let _ = t.save_via_readback().unwrap();
        let rb = t.virtual_time_ns() - t1;
        row(
            &[
                &format!("synth-{n}"),
                &bits.to_string(),
                &fmt_ns(scan),
                &fmt_ns(rb),
                if scan < rb { "scan" } else { "readback" },
            ],
            &widths,
        );
    }
    println!();
    println!("--- batched shifting: serial (1 lane) vs word-wide (32 lanes) ---");
    let widths = [10, 12, 13, 13, 12];
    row(
        &[
            "design",
            "state-bits",
            "save-1-lane",
            "save-32-lane",
            "improvement",
        ],
        &widths,
    );
    for n in [1u32, 16, 128, 512] {
        let bits = ModuleStats::of(&synthetic_design(n)).state_bits;
        let serial = save_latency(n, 1);
        let wide = save_latency(n, 32);
        row(
            &[
                &format!("synth-{n}"),
                &bits.to_string(),
                &fmt_ns(serial),
                &fmt_ns(wide),
                &format!("{:.1}x", serial as f64 / wide as f64),
            ],
            &widths,
        );
    }
    println!();
    println!("note: a W-lane chain moves W cells per scan cycle, so the shift");
    println!("component of a save/restore pass shrinks by ~W; the residual is");
    println!("the fixed controller overhead and the memory-collar words, which");
    println!("do not ride the chain.");
    println!();
    println!("note: readback is save-only (no restore path on real fabrics),");
    println!("which is why the scan chain is required for snapshot *restore*.");
}
