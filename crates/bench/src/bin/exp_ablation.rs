//! Ablations of the design choices DESIGN.md calls out: snapshot storage
//! representation, scheduling quantum, and concretization policy.

use hardsnap::firmware;
use hardsnap::{Concretization, Engine, EngineConfig, Searcher};
use hardsnap_bench::{banner, fmt_ns, row};
use hardsnap_sim::SimTarget;

fn engine(config: EngineConfig) -> Engine {
    Engine::new(
        Box::new(SimTarget::new(hardsnap_periph::soc().unwrap()).unwrap()),
        config,
    )
}

fn main() {
    banner(
        "ABL",
        "Design-choice ablations",
        "delta storage shrinks the controller footprint; larger quanta cut \
         context switches at the cost of interleaving granularity; the \
         exhaustive concretization policy trades paths for completeness",
    );

    // ---- 1. snapshot storage: full vs delta ------------------------------
    println!("--- snapshot storage representation (branching k=5, BFS) ---");
    let widths = [8, 9, 12, 13, 11];
    row(
        &["store", "paths", "snapshots", "peak-bytes", "live-bytes"],
        &widths,
    );
    for delta in [false, true] {
        let prog = hardsnap_isa::assemble(&firmware::branching_firmware(5)).unwrap();
        let mut e = engine(EngineConfig {
            searcher: Searcher::Bfs,
            quantum: 4,
            delta_snapshots: delta,
            max_instructions: 2_000_000,
            ..Default::default()
        });
        e.load_firmware(&prog);
        let r = e.run();
        assert_eq!(r.metrics.paths_completed, 32);
        row(
            &[
                if delta { "delta" } else { "full" },
                &r.metrics.paths_completed.to_string(),
                &r.metrics.snapshots_saved.to_string(),
                &e.store.peak_bytes().to_string(),
                &e.store.total_bytes().to_string(),
            ],
            &widths,
        );
    }

    // ---- 2. scheduling quantum -------------------------------------------
    println!();
    println!("--- scheduling quantum (branching k=4, round-robin) ---");
    let widths = [9, 9, 11, 15];
    row(&["quantum", "paths", "switches", "hw-time"], &widths);
    for quantum in [1u64, 4, 16, 64] {
        let prog = hardsnap_isa::assemble(&firmware::branching_firmware(4)).unwrap();
        let mut e = engine(EngineConfig {
            searcher: Searcher::RoundRobin,
            quantum,
            max_instructions: 2_000_000,
            ..Default::default()
        });
        e.load_firmware(&prog);
        let r = e.run();
        assert_eq!(r.metrics.paths_completed, 16);
        row(
            &[
                &quantum.to_string(),
                &r.metrics.paths_completed.to_string(),
                &r.metrics.context_switches.to_string(),
                &fmt_ns(r.hw_virtual_time_ns),
            ],
            &widths,
        );
    }

    // ---- 3. concretization policy ------------------------------------------
    println!();
    println!("--- concretization policy at the VM boundary ---");
    // Firmware writing through a symbolic (masked) register offset:
    // minimal tests one concrete offset; exhaustive forks per value.
    let src = format!(
        "
        .equ TIMER_BASE, {:#x}
        .org 0x100
        entry:
            li r3, TIMER_BASE
            sym r1, #0
            andi r1, r1, #0x10     ; offset 0x00 (CTRL) or 0x10 (PRESCALER)
            add r3, r3, r1
            movi r4, #0
            stw r4, [r3]
            halt
        ",
        hardsnap_bus::map::soc::TIMER_BASE
    );
    let widths = [16, 7, 17, 9];
    row(&["policy", "paths", "concretizations", "queries"], &widths);
    for (name, policy) in [
        ("minimal", Concretization::Minimal),
        ("exhaustive(8)", Concretization::Exhaustive(8)),
    ] {
        let prog = hardsnap_isa::assemble(&src).unwrap();
        let mut e = engine(EngineConfig {
            policy,
            ..Default::default()
        });
        e.load_firmware(&prog);
        let r = e.run();
        row(
            &[
                name,
                &r.metrics.paths_completed.to_string(),
                &e.executor.stats.concretizations.to_string(),
                &e.executor.solver.stats.queries.to_string(),
            ],
            &widths,
        );
    }
    println!();
    println!("minimal explores one concrete boundary value per path (fast);");
    println!("exhaustive forks one successor per feasible value (complete).");
}
